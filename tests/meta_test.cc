#include "meta/meta_model.h"

#include <string>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/workspace.h"
#include "meta/codegen.h"
#include "meta/reflect.h"

namespace lbtrust::meta {
namespace {

using datalog::Tuple;
using datalog::Value;
using datalog::ValueKind;
using datalog::Workspace;

TEST(ReflectTest, RuleEntityIsCanonical) {
  auto r1 = datalog::ParseRuleText("p(X) <- q(X),  r(X).");
  auto r2 = datalog::ParseRuleText("p(X) <- q(X), r(X).");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(RuleEntity(*r1), RuleEntity(*r2));
}

TEST(MetaModelTest, ReflectsInstalledRules) {
  Workspace ws;
  ASSERT_TRUE(EnableMetaModel(&ws).ok());
  ASSERT_TRUE(ws.Load("p(X) <- q(X), !r(X). q(1).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());

  // One rule: two body atoms, one head atom.
  EXPECT_EQ(*ws.Count("head(R,A)"), 1u);
  EXPECT_EQ(*ws.Count("body(R,A)"), 2u);
  EXPECT_EQ(*ws.Count("negated(A)"), 1u);
  // functor facts for head + both body atoms.
  auto functors = ws.Query("functor(A,P)");
  ASSERT_TRUE(functors.ok());
  EXPECT_EQ(functors->size(), 3u);
}

TEST(MetaModelTest, ArgAndVnameFacts) {
  Workspace ws;
  ASSERT_TRUE(EnableMetaModel(&ws).ok());
  ASSERT_TRUE(ws.Load("p(X,42) <- q(X).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  // p's args: X at 1, 42 at 2; q's arg: X at 1.
  EXPECT_EQ(*ws.Count("arg(A,I,T)"), 3u);
  EXPECT_EQ(*ws.Count("vname(T,\"X\")"), 1u);
  EXPECT_EQ(*ws.Count("value(T,\"42\")"), 1u);
}

TEST(MetaModelTest, ReflectionQueriesJoinWithOwner) {
  // The paper's §3.3 translated constraint shape as a query: which
  // predicates does each owner's rule read?
  Workspace::Options opts;
  opts.principal = "alice";
  Workspace ws(opts);
  ASSERT_TRUE(EnableMetaModel(&ws).ok());
  ASSERT_TRUE(ws.Load("p(X) <- q(X), r(X).").ok());
  ASSERT_TRUE(ws.Load("reads(U,P) <- owner(R,U), body(R,A), functor(A,P).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("reads(alice,q)"), 1u);
  EXPECT_EQ(*ws.Count("reads(alice,r)"), 1u);
  // The meta-rule itself also has an owner; it reads owner/body/functor.
  EXPECT_EQ(*ws.Count("reads(alice,body)"), 1u);
}

TEST(MetaModelTest, KindCheckBuiltins) {
  Workspace ws;
  ASSERT_TRUE(EnableMetaModel(&ws).ok());
  ASSERT_TRUE(ws.Load("p(X) <- q(X).\n"
                      "q(1).\n"
                      "isrule(R) <- active(R), rule(R).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  // Both installed rules (p<-q and isrule itself) are active rule values.
  EXPECT_EQ(*ws.Count("isrule(R)"), 2u);
}

TEST(MetaModelTest, UnreflectOnRemove) {
  Workspace ws;
  ASSERT_TRUE(EnableMetaModel(&ws).ok());
  ASSERT_TRUE(ws.Load("p(X) <- q(X).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("body(R,A)"), 1u);
  auto rule = datalog::ParseRuleText("p(X) <- q(X).");
  ASSERT_TRUE(ws.RemoveRule(*rule).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("body(R,A)"), 0u);
  EXPECT_EQ(*ws.Count("active(R)"), 0u);
}

TEST(CodegenTest, ActivateRuleText) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("q(1). q(2).").ok());
  ASSERT_TRUE(ActivateRuleText(&ws, "p(X) <- q(X).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("p(X)"), 2u);
}

TEST(CodegenTest, QuoteRuleText) {
  auto code = QuoteRuleText("access(alice,f,read).");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code->kind(), ValueKind::kCode);
  EXPECT_EQ(code->AsCode().canon, "access(alice,f,read).");
  EXPECT_FALSE(QuoteRuleText("p(X <-").ok());
}

TEST(CodegenTest, TranslatePatternConstraintShape) {
  auto translated = TranslatePatternConstraint(
      "owner([| A <- P(T2*), A*. |], U) -> canRead(U,P).");
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  // The paper's §3.3 worked example: owner + rule + body + atom + functor.
  EXPECT_NE(translated->find("rule(R1)"), std::string::npos);
  EXPECT_NE(translated->find("body(R1,A1)"), std::string::npos);
  EXPECT_NE(translated->find("functor(A1,P)"), std::string::npos);
}

TEST(CodegenTest, TranslatedConstraintIsEquivalent) {
  // Enforce the same policy through the pattern form and the translated
  // meta-model form; both must flag the same violation.
  for (bool use_translation : {false, true}) {
    Workspace::Options opts;
    opts.principal = "alice";
    Workspace ws(opts);
    ASSERT_TRUE(EnableMetaModel(&ws).ok());
    std::string pattern_form =
        "owner([| A <- P(T2*), A*. |], U) -> canRead(U,P).";
    if (use_translation) {
      auto translated = TranslatePatternConstraint(pattern_form);
      ASSERT_TRUE(translated.ok());
      ASSERT_TRUE(ws.Load(*translated).ok()) << *translated;
    } else {
      ASSERT_TRUE(ws.Load(pattern_form).ok());
    }
    ASSERT_TRUE(ws.Load("p(X) <- q(X). q(1).").ok());
    auto st = ws.Fixpoint();
    EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation)
        << "use_translation=" << use_translation << ": " << st.ToString();
    ASSERT_TRUE(
        ws.AddFact("canRead", {Value::Sym("alice"), Value::Sym("q")}).ok());
    EXPECT_TRUE(ws.Fixpoint().ok()) << "use_translation=" << use_translation;
  }
}

TEST(CodegenTest, TranslateRejectsNonPattern) {
  EXPECT_FALSE(TranslatePatternConstraint("p(X) -> q(X).").ok());
  EXPECT_FALSE(TranslatePatternConstraint("p(X) <- q(X).").ok());
}

}  // namespace
}  // namespace lbtrust::meta
