#include "datalog/relation.h"

#include <gtest/gtest.h>

namespace lbtrust::datalog {
namespace {

Tuple T(int a, int b) { return {Value::Int(a), Value::Int(b)}; }

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T(1, 2)));
  EXPECT_FALSE(rel.Insert(T(1, 2)));
  EXPECT_TRUE(rel.Insert(T(1, 3)));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains(T(1, 2)));
  EXPECT_FALSE(rel.Contains(T(9, 9)));
}

TEST(RelationTest, LookupByMask) {
  Relation rel(2);
  for (int i = 0; i < 10; ++i) {
    rel.Insert(T(i % 3, i));
  }
  // Column 0 == 1: rows 1, 4, 7.
  const auto ids = rel.Lookup(0b01, {Value::Int(1)});
  EXPECT_EQ(ids.size(), 3u);
  for (uint32_t id : ids) {
    EXPECT_EQ(rel.ValueAt(id, 0), Value::Int(1));
  }
  // Both columns bound: exact probe.
  EXPECT_EQ(rel.Lookup(0b11, {Value::Int(2), Value::Int(5)}).size(), 1u);
  EXPECT_TRUE(rel.Lookup(0b11, {Value::Int(2), Value::Int(6)}).empty());
}

TEST(RelationTest, IndexExtendsAfterInserts) {
  Relation rel(2);
  rel.Insert(T(1, 1));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 1u);  // builds index
  rel.Insert(T(1, 2));
  rel.Insert(T(2, 9));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 2u);  // extended
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(2)}).size(), 1u);
}

TEST(RelationTest, MatchesWildcard) {
  Relation rel(2);
  EXPECT_FALSE(rel.Matches(0, {}));
  rel.Insert(T(1, 2));
  EXPECT_TRUE(rel.Matches(0, {}));
  EXPECT_TRUE(rel.Matches(0b10, {Value::Int(2)}));
  EXPECT_FALSE(rel.Matches(0b10, {Value::Int(3)}));
}

TEST(RelationTest, EraseRebuilds) {
  Relation rel(2);
  for (int i = 0; i < 5; ++i) rel.Insert(T(1, i));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 5u);
  EXPECT_TRUE(rel.Erase(T(1, 3)));
  EXPECT_FALSE(rel.Erase(T(1, 3)));
  EXPECT_EQ(rel.size(), 4u);
  EXPECT_FALSE(rel.Contains(T(1, 3)));
  // Indexes were invalidated and rebuilt correctly.
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 4u);
}

TEST(RelationTest, EraseMaintainsEveryIndexInPlace) {
  // Build several indexes with different masks, then erase from the
  // middle, the end, and the front; every index must keep answering
  // exactly as a freshly built one would.
  Relation rel(2);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) rel.Insert(T(a, b));
  }
  // Materialize three indexes.
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 4u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(2)}).size(), 4u);
  EXPECT_EQ(rel.Lookup(0b11, T(3, 3)).size(), 1u);

  EXPECT_TRUE(rel.Erase(T(1, 2)));   // middle row
  EXPECT_TRUE(rel.Erase(T(3, 3)));   // last row
  EXPECT_TRUE(rel.Erase(T(0, 0)));   // first row
  EXPECT_EQ(rel.size(), 13u);

  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 3u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(2)}).size(), 3u);
  EXPECT_EQ(rel.Lookup(0b11, T(3, 3)).size(), 0u);
  EXPECT_EQ(rel.Lookup(0b11, T(1, 3)).size(), 1u);
  // Row ids handed back by Lookup must still point at the right rows.
  for (uint32_t id : rel.Lookup(0b01, {Value::Int(2)})) {
    EXPECT_EQ(rel.ValueAt(id, 0), Value::Int(2));
  }
  for (uint32_t id : rel.Lookup(0b10, {Value::Int(0)})) {
    EXPECT_EQ(rel.ValueAt(id, 1), Value::Int(0));
  }
}

TEST(RelationTest, ErasePatchesPartiallyBuiltIndexes) {
  // An index built before later inserts has built_upto < rows(); erasing
  // an indexed row moves an unindexed row below built_upto and the index
  // must pick it up exactly once.
  Relation rel(2);
  for (int i = 0; i < 3; ++i) rel.Insert(T(0, i));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 3u);  // build index
  for (int i = 3; i < 6; ++i) rel.Insert(T(0, i));  // beyond built_upto
  EXPECT_TRUE(rel.Erase(T(0, 1)));  // moves row 5 into slot 1
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 5u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(5)}).size(), 1u);
  // Erase a row the index has never seen.
  EXPECT_TRUE(rel.Erase(T(0, 4)));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 4u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(4)}).size(), 0u);
}

TEST(RelationTest, EraseThenInsertKeepsIndexesConsistent) {
  Relation rel(2);
  for (int i = 0; i < 8; ++i) rel.Insert(T(i % 2, i));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 4u);
  EXPECT_TRUE(rel.Erase(T(0, 4)));
  EXPECT_TRUE(rel.Insert(T(0, 100)));
  EXPECT_TRUE(rel.Insert(T(0, 4)));  // re-insert the erased tuple
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 5u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(4)}).size(), 1u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(100)}).size(), 1u);
}

TEST(RelationTest, ZeroArity) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({}));
}

TEST(RelationTest, ClearResets) {
  Relation rel(2);
  rel.Insert(T(1, 2));
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  EXPECT_FALSE(rel.Contains(T(1, 2)));
  EXPECT_TRUE(rel.Insert(T(1, 2)));
}

}  // namespace
}  // namespace lbtrust::datalog
