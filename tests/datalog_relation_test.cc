#include "datalog/relation.h"

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace lbtrust::datalog {
namespace {

Tuple T(int a, int b) { return {Value::Int(a), Value::Int(b)}; }

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T(1, 2)));
  EXPECT_FALSE(rel.Insert(T(1, 2)));
  EXPECT_TRUE(rel.Insert(T(1, 3)));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains(T(1, 2)));
  EXPECT_FALSE(rel.Contains(T(9, 9)));
}

TEST(RelationTest, LookupByMask) {
  Relation rel(2);
  for (int i = 0; i < 10; ++i) {
    rel.Insert(T(i % 3, i));
  }
  // Column 0 == 1: rows 1, 4, 7.
  const auto ids = rel.Lookup(0b01, {Value::Int(1)});
  EXPECT_EQ(ids.size(), 3u);
  for (uint32_t id : ids) {
    EXPECT_EQ(rel.ValueAt(id, 0), Value::Int(1));
  }
  // Both columns bound: exact probe.
  EXPECT_EQ(rel.Lookup(0b11, {Value::Int(2), Value::Int(5)}).size(), 1u);
  EXPECT_TRUE(rel.Lookup(0b11, {Value::Int(2), Value::Int(6)}).empty());
}

TEST(RelationTest, IndexExtendsAfterInserts) {
  Relation rel(2);
  rel.Insert(T(1, 1));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 1u);  // builds index
  rel.Insert(T(1, 2));
  rel.Insert(T(2, 9));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 2u);  // extended
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(2)}).size(), 1u);
}

TEST(RelationTest, MatchesWildcard) {
  Relation rel(2);
  EXPECT_FALSE(rel.Matches(0, {}));
  rel.Insert(T(1, 2));
  EXPECT_TRUE(rel.Matches(0, {}));
  EXPECT_TRUE(rel.Matches(0b10, {Value::Int(2)}));
  EXPECT_FALSE(rel.Matches(0b10, {Value::Int(3)}));
}

TEST(RelationTest, EraseRebuilds) {
  Relation rel(2);
  for (int i = 0; i < 5; ++i) rel.Insert(T(1, i));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 5u);
  EXPECT_TRUE(rel.Erase(T(1, 3)));
  EXPECT_FALSE(rel.Erase(T(1, 3)));
  EXPECT_EQ(rel.size(), 4u);
  EXPECT_FALSE(rel.Contains(T(1, 3)));
  // Indexes were invalidated and rebuilt correctly.
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 4u);
}

TEST(RelationTest, EraseMaintainsEveryIndexInPlace) {
  // Build several indexes with different masks, then erase from the
  // middle, the end, and the front; every index must keep answering
  // exactly as a freshly built one would.
  Relation rel(2);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) rel.Insert(T(a, b));
  }
  // Materialize three indexes.
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 4u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(2)}).size(), 4u);
  EXPECT_EQ(rel.Lookup(0b11, T(3, 3)).size(), 1u);

  EXPECT_TRUE(rel.Erase(T(1, 2)));   // middle row
  EXPECT_TRUE(rel.Erase(T(3, 3)));   // last row
  EXPECT_TRUE(rel.Erase(T(0, 0)));   // first row
  EXPECT_EQ(rel.size(), 13u);

  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 3u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(2)}).size(), 3u);
  EXPECT_EQ(rel.Lookup(0b11, T(3, 3)).size(), 0u);
  EXPECT_EQ(rel.Lookup(0b11, T(1, 3)).size(), 1u);
  // Row ids handed back by Lookup must still point at the right rows.
  for (uint32_t id : rel.Lookup(0b01, {Value::Int(2)})) {
    EXPECT_EQ(rel.ValueAt(id, 0), Value::Int(2));
  }
  for (uint32_t id : rel.Lookup(0b10, {Value::Int(0)})) {
    EXPECT_EQ(rel.ValueAt(id, 1), Value::Int(0));
  }
}

TEST(RelationTest, ErasePatchesPartiallyBuiltIndexes) {
  // An index built before later inserts has built_upto < rows(); erasing
  // an indexed row moves an unindexed row below built_upto and the index
  // must pick it up exactly once.
  Relation rel(2);
  for (int i = 0; i < 3; ++i) rel.Insert(T(0, i));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 3u);  // build index
  for (int i = 3; i < 6; ++i) rel.Insert(T(0, i));  // beyond built_upto
  EXPECT_TRUE(rel.Erase(T(0, 1)));  // moves row 5 into slot 1
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 5u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(5)}).size(), 1u);
  // Erase a row the index has never seen.
  EXPECT_TRUE(rel.Erase(T(0, 4)));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 4u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(4)}).size(), 0u);
}

TEST(RelationTest, EraseThenInsertKeepsIndexesConsistent) {
  Relation rel(2);
  for (int i = 0; i < 8; ++i) rel.Insert(T(i % 2, i));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 4u);
  EXPECT_TRUE(rel.Erase(T(0, 4)));
  EXPECT_TRUE(rel.Insert(T(0, 100)));
  EXPECT_TRUE(rel.Insert(T(0, 4)));  // re-insert the erased tuple
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(0)}).size(), 5u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(4)}).size(), 1u);
  EXPECT_EQ(rel.Lookup(0b10, {Value::Int(100)}).size(), 1u);
}

TEST(RelationTest, ZeroArity) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({}));
}

TEST(RelationTest, ClearResets) {
  Relation rel(2);
  rel.Insert(T(1, 2));
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  EXPECT_FALSE(rel.Contains(T(1, 2)));
  EXPECT_TRUE(rel.Insert(T(1, 2)));
}

// --- Append-only / checked mixing is an always-on hard failure -------------
// (Previously assert-only, so Release builds silently broke set semantics.)

TEST(RelationAppendOnlyDeathTest, CheckedMutationsAfterAppendHardFail) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Relation rel(2);
  IdTuple row = InternTuple(rel.pool(), T(1, 2));
  rel.AppendUnchecked(row.data());
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_DEATH(rel.InsertIds(row.data()), "AppendUnchecked");
  EXPECT_DEATH(rel.EraseIds(row.data()), "AppendUnchecked");
  // Clear resets the append-only mode; checked use works again.
  rel.Clear();
  EXPECT_TRUE(rel.InsertIds(row.data()));
}

TEST(RelationAppendOnlyDeathTest, AppendAfterCheckedInsertHardFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Relation rel(2);
  ASSERT_TRUE(rel.Insert(T(1, 2)));
  IdTuple row = InternTuple(rel.pool(), T(3, 4));
  EXPECT_DEATH(rel.AppendUnchecked(row.data()), "checked rows");
}

// --- Arity cap (mask bits address columns; 65 columns would shift UB) ------

TEST(RelationTest, ArityAtTheCapWorks) {
  // 63 and 64 columns are legal: bit 63 is the last addressable column.
  for (size_t arity : {size_t{63}, size_t{64}}) {
    Relation rel(arity);
    Tuple wide;
    for (size_t i = 0; i < arity; ++i) {
      wide.push_back(Value::Int(static_cast<int64_t>(i)));
    }
    EXPECT_TRUE(rel.Insert(wide));
    EXPECT_FALSE(rel.Insert(wide));
    EXPECT_TRUE(rel.Contains(wide));
    // Probe on the last column alone.
    uint64_t mask = uint64_t{1} << (arity - 1);
    EXPECT_EQ(rel.Lookup(mask, {Value::Int(static_cast<int64_t>(arity - 1))})
                  .size(),
              1u);
    wide.back() = Value::Int(-1);
    EXPECT_FALSE(rel.Contains(wide));
  }
}

TEST(RelationArityDeathTest, ArityBeyondCapHardFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Relation rel(65);
        (void)rel;
      },
      "kMaxArity");
}

// --- Randomized churn: differential against a std::set model ---------------
// Exercises tombstone reuse, swap-and-pop index patch-up and built_upto
// edges by interleaving inserts, erases and index-building lookups —
// per shard count, since every one of those code paths is now per-shard
// (shards = 1 is the classic single-partition layout).

class RelationChurnTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RelationChurnTest, RandomizedInsertEraseLookupMatchesSetModel) {
  std::mt19937 rng(20260729);
  Relation rel(2, nullptr, GetParam());
  ASSERT_EQ(rel.shard_count(), GetParam());
  std::set<std::pair<int, int>> model;
  std::vector<std::pair<int, int>> live;  // model contents, for erase picks

  auto pick_value = [&](int spread) {
    return static_cast<int>(rng() % static_cast<unsigned>(spread));
  };

  for (int step = 0; step < 20000; ++step) {
    int op = static_cast<int>(rng() % 100);
    if (op < 55) {
      // Insert (duplicates on purpose: small value domain).
      int a = pick_value(24), b = pick_value(24);
      bool fresh = model.emplace(a, b).second;
      if (fresh) live.emplace_back(a, b);
      EXPECT_EQ(rel.Insert(T(a, b)), fresh) << "step " << step;
    } else if (op < 80) {
      // Erase: half the time a present row, half the time a random one.
      if (!live.empty() && op % 2 == 0) {
        size_t i = rng() % live.size();
        auto [a, b] = live[i];
        live[i] = live.back();
        live.pop_back();
        model.erase({a, b});
        EXPECT_TRUE(rel.Erase(T(a, b))) << "step " << step;
      } else {
        int a = pick_value(24), b = pick_value(24);
        bool present = model.erase({a, b}) > 0;
        if (present) {
          live.erase(std::find(live.begin(), live.end(),
                               std::make_pair(a, b)));
        }
        EXPECT_EQ(rel.Erase(T(a, b)), present) << "step " << step;
      }
    } else if (op < 90) {
      // Masked lookup (builds/extends indexes mid-churn).
      int key = pick_value(24);
      uint64_t mask = (op % 2 == 0) ? 0b01 : 0b10;
      size_t expected = 0;
      for (const auto& [a, b] : model) {
        if ((mask == 0b01 ? a : b) == key) ++expected;
      }
      auto hits = rel.Lookup(mask, {Value::Int(key)});
      EXPECT_EQ(hits.size(), expected) << "step " << step;
      for (uint32_t id : hits) {
        int a = static_cast<int>(rel.ValueAt(id, 0).AsInt());
        int b = static_cast<int>(rel.ValueAt(id, 1).AsInt());
        EXPECT_EQ((mask == 0b01 ? a : b), key);
        EXPECT_TRUE(model.count({a, b})) << "step " << step;
      }
    } else {
      // Membership probes.
      int a = pick_value(24), b = pick_value(24);
      EXPECT_EQ(rel.Contains(T(a, b)), model.count({a, b}) > 0)
          << "step " << step;
    }
    EXPECT_EQ(rel.size(), model.size());
  }
  // Full final sweep: every surviving row matches the model exactly.
  std::set<std::pair<int, int>> stored;
  for (uint32_t i : rel.Rows()) {
    stored.emplace(static_cast<int>(rel.ValueAt(i, 0).AsInt()),
                   static_cast<int>(rel.ValueAt(i, 1).AsInt()));
  }
  EXPECT_EQ(stored, model);
}

INSTANTIATE_TEST_SUITE_P(Shards, RelationChurnTest,
                         ::testing::Values<size_t>(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lbtrust::datalog
