#include "datalog/relation.h"

#include <gtest/gtest.h>

namespace lbtrust::datalog {
namespace {

Tuple T(int a, int b) { return {Value::Int(a), Value::Int(b)}; }

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T(1, 2)));
  EXPECT_FALSE(rel.Insert(T(1, 2)));
  EXPECT_TRUE(rel.Insert(T(1, 3)));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains(T(1, 2)));
  EXPECT_FALSE(rel.Contains(T(9, 9)));
}

TEST(RelationTest, LookupByMask) {
  Relation rel(2);
  for (int i = 0; i < 10; ++i) {
    rel.Insert(T(i % 3, i));
  }
  // Column 0 == 1: rows 1, 4, 7.
  const auto& ids = rel.Lookup(0b01, {Value::Int(1)});
  EXPECT_EQ(ids.size(), 3u);
  for (uint32_t id : ids) {
    EXPECT_EQ(rel.rows()[id][0], Value::Int(1));
  }
  // Both columns bound: exact probe.
  EXPECT_EQ(rel.Lookup(0b11, {Value::Int(2), Value::Int(5)}).size(), 1u);
  EXPECT_TRUE(rel.Lookup(0b11, {Value::Int(2), Value::Int(6)}).empty());
}

TEST(RelationTest, IndexExtendsAfterInserts) {
  Relation rel(2);
  rel.Insert(T(1, 1));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 1u);  // builds index
  rel.Insert(T(1, 2));
  rel.Insert(T(2, 9));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 2u);  // extended
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(2)}).size(), 1u);
}

TEST(RelationTest, MatchesWildcard) {
  Relation rel(2);
  EXPECT_FALSE(rel.Matches(0, {}));
  rel.Insert(T(1, 2));
  EXPECT_TRUE(rel.Matches(0, {}));
  EXPECT_TRUE(rel.Matches(0b10, {Value::Int(2)}));
  EXPECT_FALSE(rel.Matches(0b10, {Value::Int(3)}));
}

TEST(RelationTest, EraseRebuilds) {
  Relation rel(2);
  for (int i = 0; i < 5; ++i) rel.Insert(T(1, i));
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 5u);
  EXPECT_TRUE(rel.Erase(T(1, 3)));
  EXPECT_FALSE(rel.Erase(T(1, 3)));
  EXPECT_EQ(rel.size(), 4u);
  EXPECT_FALSE(rel.Contains(T(1, 3)));
  // Indexes were invalidated and rebuilt correctly.
  EXPECT_EQ(rel.Lookup(0b01, {Value::Int(1)}).size(), 4u);
}

TEST(RelationTest, ZeroArity) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({}));
}

TEST(RelationTest, ClearResets) {
  Relation rel(2);
  rel.Insert(T(1, 2));
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  EXPECT_FALSE(rel.Contains(T(1, 2)));
  EXPECT_TRUE(rel.Insert(T(1, 2)));
}

}  // namespace
}  // namespace lbtrust::datalog
