#include "obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace lbtrust::obs {
namespace {

TEST(CounterTest, AddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);  // mirror-on-dump overwrite
  EXPECT_EQ(c.value(), 7u);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i holds values with bit_width == i: upper bounds 0, 1, 3, 7...
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpper(3), 7u);
}

TEST(HistogramTest, ObserveAccumulates) {
  Histogram h;
  h.Observe(0);
  h.Observe(5);
  h.Observe(5);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.bucket(0), 1u);   // 0
  EXPECT_EQ(h.bucket(3), 2u);   // 5 twice (bit width 3)
  EXPECT_EQ(h.bucket(10), 1u);  // 1000 (bit width 10)
}

TEST(RegistryTest, HandlesAreDedupedAndStable) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("lbtrust_x_total", "k=\"1\"");
  Counter* b = reg.GetCounter("lbtrust_x_total", "k=\"2\"");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, reg.GetCounter("lbtrust_x_total", "k=\"1\""));
  // Registering more families never moves existing handles (deque).
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("lbtrust_churn_total", "i=\"" + std::to_string(i) + "\"");
  }
  EXPECT_EQ(a, reg.GetCounter("lbtrust_x_total", "k=\"1\""));
}

TEST(RegistryTest, SameNameDifferentKindDoesNotAlias) {
  // A name accidentally reused across kinds must not hand back a handle
  // into the wrong deque; each kind keeps its own instance map.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("lbtrust_dual");
  Gauge* g = reg.GetGauge("lbtrust_dual");
  c->Add(3);
  g->Set(-5);
  EXPECT_EQ(c->value(), 3u);
  EXPECT_EQ(g->value(), -5);
}

TEST(RegistryTest, RenderTextFormat) {
  MetricsRegistry reg;
  reg.GetCounter("lbtrust_tuples_total")->Add(12);
  reg.GetCounter("lbtrust_rule_evals_total", "rule=\"1\"")->Add(3);
  reg.GetCounter("lbtrust_rule_evals_total", "rule=\"2\"")->Add(4);
  reg.GetGauge("lbtrust_rows", "relation=\"edge\"")->Set(99);
  Histogram* h = reg.GetHistogram("lbtrust_latency");
  h->Observe(2);
  h->Observe(100);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("# TYPE lbtrust_tuples_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("lbtrust_tuples_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("lbtrust_rule_evals_total{rule=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lbtrust_rule_evals_total{rule=\"2\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lbtrust_rows{relation=\"edge\"} 99\n"),
            std::string::npos);
  // Histogram: cumulative buckets, +Inf, _sum and _count.
  EXPECT_NE(text.find("# TYPE lbtrust_latency histogram"), std::string::npos);
  EXPECT_NE(text.find("lbtrust_latency_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lbtrust_latency_sum 102\n"), std::string::npos);
  EXPECT_NE(text.find("lbtrust_latency_count 2\n"), std::string::npos);
  // Deterministic: two renders are byte-identical.
  EXPECT_EQ(text, reg.RenderText());
}

TEST(RegistryTest, HistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lbtrust_h");
  h->Observe(0);  // bucket 0 (le="0")
  h->Observe(3);  // bucket 2 (le="3")
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("lbtrust_h_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lbtrust_h_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lbtrust_h_bucket{le=\"3\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lbtrust_h_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
}

TEST(RegistryTest, ConcurrentUpdatesDoNotLose) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("lbtrust_contended_total");
  Histogram* h = reg.GetHistogram("lbtrust_contended_latency");
  constexpr int kThreads = 4, kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c->Add(1);
        h->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads * kIters));
}

TEST(LabelEscapeTest, EscapesQuotesBackslashesNewlines) {
  EXPECT_EQ(LabelEscape("plain"), "plain");
  EXPECT_EQ(LabelEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(LabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(LabelEscape("a\nb"), "a\\nb");
}

TEST(TracerTest, RecordsSpansWithNesting) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    EXPECT_TRUE(outer.enabled());
    {
      ScopedSpan inner(&tracer, "inner");
      inner.set_args("\"n\":1");
    }
    outer.set_args("\"n\":2");
  }
  EXPECT_EQ(tracer.event_count(), 2u);
  std::string json = tracer.ExportJson();
  // Chrome trace-event envelope with complete events.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":1}"), std::string::npos);
}

TEST(TracerTest, NullTracerIsNoOp) {
  ScopedSpan span(nullptr, "ignored");
  EXPECT_FALSE(span.enabled());
  span.set_args("\"x\":1");  // must not crash
}

TEST(TracerTest, FreshTracerNeverHitsStaleThreadCache) {
  // Regression: the per-thread buffer cache used to key on the tracer's
  // address, so a new tracer allocated where a destroyed one lived would
  // record into the old (freed) buffer. Repeated create/record/destroy on
  // one thread reliably reuses the allocation.
  for (int i = 0; i < 16; ++i) {
    Tracer tracer;
    { ScopedSpan span(&tracer, "work"); }
    EXPECT_EQ(tracer.event_count(), 1u) << "iteration " << i;
  }
}

TEST(TracerTest, PerThreadBuffersMergeOnExport) {
  Tracer tracer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 10; ++i) {
        ScopedSpan span(&tracer, "work");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.event_count(), 30u);
}

}  // namespace
}  // namespace lbtrust::obs
