#include "trust/trust_runtime.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "meta/codegen.h"
#include "trust/delegation.h"

namespace lbtrust::trust {
namespace {

using datalog::Value;

std::unique_ptr<TrustRuntime> MakeRuntime(const std::string& name,
                                          bool trusting = true) {
  TrustRuntime::Options opts;
  opts.principal = name;
  opts.rsa_bits = 512;  // small keys keep unit tests fast
  opts.trusting_activation = trusting;
  auto rt = TrustRuntime::Create(opts);
  EXPECT_TRUE(rt.ok()) << rt.status().ToString();
  return std::move(*rt);
}

TEST(TrustRuntimeTest, CreatePopulatesIdentity) {
  auto rt = MakeRuntime("alice");
  ASSERT_TRUE(rt->Fixpoint().ok());
  EXPECT_EQ(*rt->workspace()->Count("prin(alice)"), 1u);
  EXPECT_EQ(*rt->workspace()->Count("rsaprivkey(alice,K)"), 1u);
  EXPECT_EQ(*rt->workspace()->Count("rsapubkey(alice,K)"), 1u);
}

TEST(TrustRuntimeTest, SayActivatesAtDestinationMe) {
  // In a single workspace, saying something to myself activates it via
  // says1 (the trusting default).
  auto rt = MakeRuntime("alice");
  ASSERT_TRUE(rt->Say("alice", "flag(up).").ok());
  ASSERT_TRUE(rt->Fixpoint().ok());
  EXPECT_EQ(*rt->workspace()->Count("flag(up)"), 1u);
}

TEST(TrustRuntimeTest, SaysRequiresKnownPrincipals) {
  // says0: says(U1,U2,R) -> prin(U1), prin(U2), rule(R).
  auto rt = MakeRuntime("alice");
  ASSERT_TRUE(rt->Say("stranger", "x().").ok());
  auto st = rt->Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
}

TEST(TrustRuntimeTest, SaysPatternImport) {
  // Binder-style: derive access from what bob says (bex1' shape).
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(alice->AddPeer("bob", bob->keypair().public_key).ok());
  ASSERT_TRUE(
      alice
          ->Load("access(P,O,read) <- says(bob,me,[| access(P,O,read). |]).")
          .ok());
  ASSERT_TRUE(alice->workspace()
                  ->AddFact("says",
                            {Value::Sym("bob"), Value::Sym("alice"),
                             *lbtrust::meta::QuoteRuleText(
                                 "access(carol,file1,read).")})
                  .ok());
  ASSERT_TRUE(alice->Fixpoint().ok());
  EXPECT_EQ(*alice->workspace()->Count("access(carol,file1,read)"), 1u);
}

TEST(TrustRuntimeTest, SchemeSwapChangesTwoClauses) {
  // §4.1.2: moving from RSA to HMAC modifies exactly two clauses
  // (exp1 and exp3); exp0/exp2 are shared.
  auto rt = MakeRuntime("alice");
  RsaScheme rsa;
  HmacScheme hmac;
  auto first = rt->UseScheme(rsa);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);  // nothing to remove on first install
  auto swapped = rt->UseScheme(hmac);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(*swapped, 2);
  EXPECT_EQ(rt->scheme_name(), "hmac");
  // And static clause diff agrees with the paper.
  EXPECT_EQ(AuthScheme::CountDifferingRules(rsa, hmac), 2);
  PlaintextScheme plain;
  EXPECT_GE(AuthScheme::CountDifferingRules(rsa, plain), 2);
}

TEST(TrustRuntimeTest, SchemeSwapIdempotent) {
  auto rt = MakeRuntime("alice");
  RsaScheme rsa;
  ASSERT_TRUE(rt->UseScheme(rsa).ok());
  auto again = rt->UseScheme(rsa);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
}

TEST(SpeaksForTest, ActivatesEverythingSaid) {
  auto alice = MakeRuntime("alice");
  TrustRuntime::Options opts;
  opts.principal = "carol";
  opts.rsa_bits = 512;
  opts.trusting_activation = false;  // only speaks-for activates
  auto rt = TrustRuntime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto& carol = *rt;
  ASSERT_TRUE(carol->AddPeer("alice", alice->keypair().public_key).ok());
  ASSERT_TRUE(carol->AddPeer("bob", alice->keypair().public_key).ok());
  ASSERT_TRUE(carol->Load(SpeaksForRule("alice")).ok());

  // alice's statement activates, bob's does not.
  ASSERT_TRUE(carol->workspace()
                  ->AddFact("says", {Value::Sym("alice"), Value::Sym("carol"),
                                     *meta::QuoteRuleText("a(1).")})
                  .ok());
  ASSERT_TRUE(carol->workspace()
                  ->AddFact("says", {Value::Sym("bob"), Value::Sym("carol"),
                                     *meta::QuoteRuleText("b(1).")})
                  .ok());
  ASSERT_TRUE(carol->Fixpoint().ok());
  EXPECT_EQ(*carol->workspace()->Count("a(1)"), 1u);
  EXPECT_EQ(*carol->workspace()->Count("b(X)"), 0u);
}

TEST(DelegationTest, DelegatesRestrictedToPredicate) {
  // del1: delegates(me,mgr,permission) activates only mgr's permission
  // statements.
  TrustRuntime::Options opts;
  opts.principal = "owner";
  opts.rsa_bits = 512;
  opts.trusting_activation = false;
  auto rt = TrustRuntime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto& owner = *rt;
  auto mgr = MakeRuntime("mgr");
  ASSERT_TRUE(owner->AddPeer("mgr", mgr->keypair().public_key).ok());
  ASSERT_TRUE(owner->Load(DelegationRules()).ok());
  ASSERT_TRUE(
      owner->workspace()
          ->AddFact("delegates", {Value::Sym("owner"), Value::Sym("mgr"),
                                  Value::Sym("permission")})
          .ok());
  ASSERT_TRUE(owner->workspace()
                  ->AddFact("says", {Value::Sym("mgr"), Value::Sym("owner"),
                                     *meta::QuoteRuleText(
                                         "permission(alice,f1,read).")})
                  .ok());
  ASSERT_TRUE(owner->workspace()
                  ->AddFact("says", {Value::Sym("mgr"), Value::Sym("owner"),
                                     *meta::QuoteRuleText("other(x).")})
                  .ok());
  ASSERT_TRUE(owner->Fixpoint().ok());
  EXPECT_EQ(*owner->workspace()->Count("permission(alice,f1,read)"), 1u);
  EXPECT_EQ(*owner->workspace()->Count("other(X)"), 0u);
}

TEST(DelegationTest, DelegatedRulesAlsoActivate) {
  // The delegated predicate may arrive as a rule, not just a fact.
  TrustRuntime::Options opts;
  opts.principal = "owner";
  opts.rsa_bits = 512;
  opts.trusting_activation = false;
  auto rt = TrustRuntime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto& owner = *rt;
  auto mgr = MakeRuntime("mgr");
  ASSERT_TRUE(owner->AddPeer("mgr", mgr->keypair().public_key).ok());
  ASSERT_TRUE(owner->Load(DelegationRules()).ok());
  ASSERT_TRUE(owner->Load("emp(dave).").ok());
  ASSERT_TRUE(
      owner->workspace()
          ->AddFact("delegates", {Value::Sym("owner"), Value::Sym("mgr"),
                                  Value::Sym("permission")})
          .ok());
  ASSERT_TRUE(
      owner->workspace()
          ->AddFact("says",
                    {Value::Sym("mgr"), Value::Sym("owner"),
                     *meta::QuoteRuleText(
                         "permission(E,f1,read) <- emp(E).")})
          .ok());
  ASSERT_TRUE(owner->Fixpoint().ok());
  EXPECT_EQ(*owner->workspace()->Count("permission(dave,f1,read)"), 1u);
}

TEST(DelegationDepthTest, DepthZeroForbidsDelegation) {
  // Single-workspace emulation (the §9 demo setting): root restricts mgr
  // with depth 0; mgr delegating anyway violates dd4.
  datalog::Workspace::Options wopts;
  wopts.principal = "root";
  datalog::Workspace ws(wopts);
  ASSERT_TRUE(ws.Load("prin(root). prin(mgr). prin(sub).").ok());
  // says core for this shared workspace: every principal trusts directly.
  ASSERT_TRUE(ws.LoadAs("root", "active(R) <- says(_,me,R).").ok());
  ASSERT_TRUE(ws.LoadAs("mgr", "active(R) <- says(_,me,R).").ok());
  ASSERT_TRUE(ws.LoadAs("sub", "active(R) <- says(_,me,R).").ok());
  ASSERT_TRUE(ws.LoadAs("root", DelegationDepthRules()).ok());
  ASSERT_TRUE(ws.LoadAs("mgr", DelegationDepthRules()).ok());
  ASSERT_TRUE(ws.AddFactTextAs("root",
                               "delDepth(me,mgr,permission,0). "
                               "delegates(me,mgr,permission).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());  // mgr has not delegated yet
  ASSERT_TRUE(
      ws.AddFactTextAs("mgr", "delegates(me,sub,permission).").ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation)
      << st.ToString();
}

TEST(DelegationDepthTest, DepthLimitsPropagateAlongChain) {
  // depth 1: mgr may delegate once; sub may not delegate further.
  datalog::Workspace::Options wopts;
  wopts.principal = "root";
  datalog::Workspace ws(wopts);
  ASSERT_TRUE(ws.Load("prin(root). prin(mgr). prin(sub). prin(leaf).").ok());
  for (const char* p : {"root", "mgr", "sub", "leaf"}) {
    ASSERT_TRUE(ws.LoadAs(p, "active(R) <- says(_,me,R).").ok());
    ASSERT_TRUE(ws.LoadAs(p, DelegationDepthRules()).ok());
  }
  ASSERT_TRUE(ws.AddFactTextAs("root",
                               "delDepth(me,mgr,permission,1). "
                               "delegates(me,mgr,permission).")
                  .ok());
  ASSERT_TRUE(
      ws.AddFactTextAs("mgr", "delegates(me,sub,permission).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok())
      << (ws.violations().empty() ? "" : ws.violations()[0]);
  // sub received inferredDelDepth(...,sub,permission,0).
  EXPECT_GE(*ws.Count("inferredDelDepth(U,sub,permission,0)"), 1u);
  ASSERT_TRUE(
      ws.AddFactTextAs("sub", "delegates(me,leaf,permission).").ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
}

TEST(DelegationWidthTest, OutsidersAreRejected) {
  // Width restriction (§4.2.1): root allows only {mgr, sub} in the chain
  // for `perm`; mgr delegating to an outsider violates dw3.
  datalog::Workspace::Options wopts;
  wopts.principal = "root";
  datalog::Workspace ws(wopts);
  ASSERT_TRUE(
      ws.Load("prin(root). prin(mgr). prin(sub). prin(outsider).").ok());
  for (const char* p : {"root", "mgr", "sub", "outsider"}) {
    ASSERT_TRUE(ws.LoadAs(p, "active(R) <- says(_,me,R).").ok());
    ASSERT_TRUE(ws.LoadAs(p, DelegationWidthRules()).ok());
    ASSERT_TRUE(ws.LoadAs(p, DelegationRules()).ok());
  }
  ASSERT_TRUE(ws.AddFactTextAs("root",
                               "delWidth(me,perm,mgr). delWidth(me,perm,sub). "
                               "delegates(me,mgr,perm).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok())
      << (ws.violations().empty() ? "" : ws.violations()[0]);
  // Inside the width set: fine.
  ASSERT_TRUE(ws.AddFactTextAs("mgr", "delegates(me,sub,perm).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok())
      << (ws.violations().empty() ? "" : ws.violations()[0]);
  // Outside it: violation.
  ASSERT_TRUE(ws.AddFactTextAs("mgr", "delegates(me,outsider,perm).").ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation)
      << st.ToString();
}

TEST(ThresholdTest, KOfNPrincipalsMustConcur) {
  // Activation must flow through the threshold, not through trusting says1.
  auto bank = MakeRuntime("bank", /*trusting=*/false);
  for (const char* b : {"b1", "b2", "b3"}) {
    auto bureau = MakeRuntime(b);
    ASSERT_TRUE(bank->AddPeer(b, bureau->keypair().public_key).ok());
    ASSERT_TRUE(bank->workspace()
                    ->AddFact("pringroup",
                              {Value::Sym(b), Value::Sym("creditBureau")})
                    .ok());
  }
  ASSERT_TRUE(bank->Load(ThresholdRules("creditOK", "creditBureau", 3)).ok());
  auto say_ok = [&](const char* bureau) {
    ASSERT_TRUE(bank->workspace()
                    ->AddFact("says", {Value::Sym(bureau), Value::Sym("bank"),
                                       *meta::QuoteRuleText(
                                           "creditOK(customer1).")})
                    .ok());
  };
  say_ok("b1");
  say_ok("b2");
  ASSERT_TRUE(bank->Fixpoint().ok());
  EXPECT_EQ(*bank->workspace()->Count("creditOK(customer1)"), 0u);
  say_ok("b3");
  ASSERT_TRUE(bank->Fixpoint().ok());
  EXPECT_EQ(*bank->workspace()->Count("creditOK(customer1)"), 1u);
}

TEST(ThresholdTest, WeightedThreshold) {
  auto bank = MakeRuntime("bank", /*trusting=*/false);
  struct Bureau {
    const char* name;
    double weight;
  } bureaus[] = {{"b1", 0.5}, {"b2", 0.3}, {"b3", 0.4}};
  for (const auto& b : bureaus) {
    auto bureau = MakeRuntime(b.name);
    ASSERT_TRUE(bank->AddPeer(b.name, bureau->keypair().public_key).ok());
    ASSERT_TRUE(
        bank->workspace()
            ->AddFact("prinweight", {Value::Sym(b.name),
                                     Value::Sym("creditBureau"),
                                     Value::Double(b.weight)})
            .ok());
  }
  ASSERT_TRUE(
      bank->Load(WeightedThresholdRules("loanOK", "creditBureau", 0.8)).ok());
  auto say_ok = [&](const char* bureau) {
    ASSERT_TRUE(bank->workspace()
                    ->AddFact("says", {Value::Sym(bureau), Value::Sym("bank"),
                                       *meta::QuoteRuleText("loanOK(c1).")})
                    .ok());
  };
  say_ok("b2");  // 0.3 < 0.8
  ASSERT_TRUE(bank->Fixpoint().ok());
  EXPECT_EQ(*bank->workspace()->Count("loanOK(c1)"), 0u);
  say_ok("b1");  // 0.3 + 0.5 = 0.8 >= 0.8
  ASSERT_TRUE(bank->Fixpoint().ok());
  EXPECT_EQ(*bank->workspace()->Count("loanOK(c1)"), 1u);
}

TEST(KeyStoreTest, FingerprintOfStoredHandles) {
  auto rt = MakeRuntime("alice");
  KeyStore* ks = rt->keystore();
  std::string pub = ks->AddRsaPublicKey(rt->keypair().public_key);
  std::string priv = ks->AddRsaPrivateKey(rt->keypair().private_key);
  std::string hmac = ks->AddSharedSecret("s3cret");

  auto pub_fp = ks->Fingerprint(pub);
  ASSERT_TRUE(pub_fp.ok());
  EXPECT_EQ(*pub_fp, crypto::KeyFingerprint(rt->keypair().public_key));
  EXPECT_EQ(pub, "rsa:pub:" + *pub_fp);
  // A key pair's private and public handle share the fingerprint.
  auto priv_fp = ks->Fingerprint(priv);
  ASSERT_TRUE(priv_fp.ok());
  EXPECT_EQ(*priv_fp, *pub_fp);
  auto hmac_fp = ks->Fingerprint(hmac);
  ASSERT_TRUE(hmac_fp.ok());
  EXPECT_EQ(hmac, "hmac:" + *hmac_fp);

  auto missing = ks->Fingerprint("rsa:pub:deadbeefdeadbeef");
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST(KeyStoreTest, EnumeratesPublicKeyHandles) {
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  auto carol = MakeRuntime("carol");
  // Runtime creation registered alice's own public key already.
  EXPECT_EQ(alice->keystore()->PublicKeyHandles().size(), 1u);
  ASSERT_TRUE(alice->AddPeer("bob", bob->keypair().public_key).ok());
  ASSERT_TRUE(alice->AddPeer("carol", carol->keypair().public_key).ok());
  std::vector<std::string> handles = alice->keystore()->PublicKeyHandles();
  ASSERT_EQ(handles.size(), 3u);
  EXPECT_TRUE(std::is_sorted(handles.begin(), handles.end()));
  for (const std::string& handle : handles) {
    auto fp = alice->keystore()->Fingerprint(handle);
    ASSERT_TRUE(fp.ok());
    const auto* key = alice->keystore()->FindPublicByFingerprint(*fp);
    ASSERT_NE(key, nullptr);
    EXPECT_EQ(crypto::KeyFingerprint(*key), *fp);
  }
  EXPECT_EQ(alice->keystore()->FindPublicByFingerprint("0000000000000000"),
            nullptr);
}

TEST(CryptoBuiltinsTest, IntegrityPrimitives) {
  auto rt = MakeRuntime("alice");
  ASSERT_TRUE(rt->Load("digest(H) <- msg(M), sha1hash(M,H).\n"
                       "crc(C) <- msg(M), checksum(M,C).\n"
                       "msg(\"hello\").")
                  .ok());
  ASSERT_TRUE(rt->Fixpoint().ok());
  EXPECT_EQ(*rt->workspace()->Count("digest(H)"), 1u);
  EXPECT_EQ(*rt->workspace()->Count("crc(C)"), 1u);
}

TEST(CryptoBuiltinsTest, ConfidentialityRoundTrip) {
  auto alice = MakeRuntime("alice");
  ASSERT_TRUE(alice->AddSharedSecret("bob", "s3cret").ok());
  ASSERT_TRUE(
      alice
          ->Load("ct(C) <- secretmsg(M), sharedsecret(me,bob,K), "
                 "encrypt(M,K,C).\n"
                 "rt(M) <- ct(C), sharedsecret(me,bob,K), decrypt(C,K,M).\n"
                 "secretmsg(\"attack at dawn\").")
          .ok());
  ASSERT_TRUE(alice->Fixpoint().ok());
  EXPECT_EQ(*alice->workspace()->Count("rt(\"attack at dawn\")"), 1u);
}

TEST(CryptoBuiltinsTest, SignVerifyThroughPolicy) {
  auto alice = MakeRuntime("alice");
  ASSERT_TRUE(
      alice
          ->Load("sig(S) <- rsaprivkey(me,K), rsasign(\"m\",S,K).\n"
                 "ok(yes) <- sig(S), rsapubkey(me,K), rsaverify(\"m\",S,K).\n"
                 "bad(yes) <- sig(S), rsapubkey(me,K), "
                 "rsaverify(\"other\",S,K).")
          .ok());
  ASSERT_TRUE(alice->Fixpoint().ok());
  EXPECT_EQ(*alice->workspace()->Count("ok(yes)"), 1u);
  EXPECT_EQ(*alice->workspace()->Count("bad(yes)"), 0u);
  EXPECT_GE(alice->crypto_stats().rsa_signs, 1u);
  EXPECT_GE(alice->crypto_stats().rsa_verifies, 1u);
}

TEST(CryptoBuiltinsTest, SigningIsCachedAcrossFixpoints) {
  auto alice = MakeRuntime("alice");
  ASSERT_TRUE(alice->Load("sig(S) <- rsaprivkey(me,K), rsasign(\"m\",S,K).")
                  .ok());
  ASSERT_TRUE(alice->Fixpoint().ok());
  size_t signs_after_first = alice->crypto_stats().rsa_signs;
  // A no-change Fixpoint() takes the delta-aware path and does not even
  // re-evaluate the signing rule.
  ASSERT_TRUE(alice->Fixpoint().ok());
  EXPECT_EQ(alice->crypto_stats().rsa_signs, signs_after_first);
  EXPECT_TRUE(alice->workspace()->last_fixpoint_incremental());
  // Rule churn forces a full rebuild; the re-evaluated rsasign call must
  // then hit the signature cache instead of signing again.
  ASSERT_TRUE(alice->Load("unrelated(X) <- prin(X).").ok());
  ASSERT_TRUE(alice->Fixpoint().ok());
  EXPECT_FALSE(alice->workspace()->last_fixpoint_incremental());
  EXPECT_EQ(alice->crypto_stats().rsa_signs, signs_after_first);
  EXPECT_GE(alice->crypto_stats().cache_hits, 1u);
}

}  // namespace
}  // namespace lbtrust::trust
