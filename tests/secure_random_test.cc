#include "crypto/secure_random.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace lbtrust::crypto {
namespace {

TEST(SecureRandomTest, DeterministicPerSeed) {
  SecureRandom a(uint64_t{5});
  SecureRandom b(uint64_t{5});
  EXPECT_EQ(a.Bytes(100), b.Bytes(100));
  SecureRandom c(uint64_t{6});
  EXPECT_NE(SecureRandom(uint64_t{5}).Bytes(100), c.Bytes(100));
}

TEST(SecureRandomTest, StringSeed) {
  SecureRandom a(std::string_view("alice"));
  SecureRandom b(std::string_view("alice"));
  SecureRandom c(std::string_view("bob"));
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_NE(SecureRandom(std::string_view("alice")).NextUint64(),
            c.NextUint64());
}

TEST(SecureRandomTest, BytesSpansBlockBoundaries) {
  SecureRandom a(uint64_t{5});
  std::string big = a.Bytes(100);
  SecureRandom b(uint64_t{5});
  std::string parts;
  for (int i = 0; i < 10; ++i) parts += b.Bytes(10);
  EXPECT_EQ(big, parts);
}

TEST(SecureRandomTest, UniformRespectsBound) {
  SecureRandom rng(uint64_t{17});
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit over 1000 draws
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(SecureRandomTest, RandomBitsExactWidth) {
  SecureRandom rng(uint64_t{23});
  for (size_t bits : {1u, 7u, 8u, 63u, 64u, 65u, 512u, 1024u}) {
    BigInt v = rng.RandomBits(bits);
    EXPECT_EQ(v.BitLength(), bits) << bits;
  }
  EXPECT_TRUE(rng.RandomBits(0).is_zero());
}

TEST(SecureRandomTest, PrimeCandidateShape) {
  SecureRandom rng(uint64_t{29});
  for (int i = 0; i < 10; ++i) {
    BigInt c = rng.RandomPrimeCandidate(256);
    EXPECT_EQ(c.BitLength(), 256u);
    EXPECT_TRUE(c.is_odd());
    EXPECT_TRUE(c.Bit(254));  // second-highest bit forced
  }
}

TEST(SecureRandomTest, SystemSeedsDiffer) {
  SecureRandom a = SecureRandom::FromSystem();
  SecureRandom b = SecureRandom::FromSystem();
  // Overwhelmingly likely to differ.
  EXPECT_NE(a.Bytes(32), b.Bytes(32));
}

}  // namespace
}  // namespace lbtrust::crypto
