#include "datalog/value_pool.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/workspace.h"

namespace lbtrust::datalog {
namespace {

TEST(ValueIdTest, NilIsDefaultAndUnbound) {
  ValueId id;
  EXPECT_TRUE(id.is_nil());
  EXPECT_EQ(id.bits(), 0u);
  EXPECT_EQ(id.kind(), ValueKind::kNil);
}

TEST(ValueIdTest, InlineIntBounds) {
  // 56-bit two's complement: [-2^55, 2^55 - 1] is inline, outside pools.
  const int64_t max_inline = (int64_t{1} << 55) - 1;
  const int64_t min_inline = -(int64_t{1} << 55);
  EXPECT_TRUE(ValueId::IntFitsInline(0));
  EXPECT_TRUE(ValueId::IntFitsInline(max_inline));
  EXPECT_TRUE(ValueId::IntFitsInline(min_inline));
  EXPECT_FALSE(ValueId::IntFitsInline(max_inline + 1));
  EXPECT_FALSE(ValueId::IntFitsInline(min_inline - 1));
  EXPECT_FALSE(ValueId::IntFitsInline(INT64_MAX));
  EXPECT_FALSE(ValueId::IntFitsInline(INT64_MIN));
}

TEST(ValuePoolTest, RoundTripEveryKind) {
  ValuePool pool;
  auto rule = ParseRuleText("p(X) <- q(X).");
  ASSERT_TRUE(rule.ok());
  std::vector<Value> values = {
      Value(),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int(0),
      Value::Int(-1),
      Value::Int(42),
      Value::Int(INT64_MAX),
      Value::Int(INT64_MIN),
      Value::Int((int64_t{1} << 55) - 1),
      Value::Int(-(int64_t{1} << 55)),
      Value::Int(int64_t{1} << 55),
      Value::Double(0.0),
      Value::Double(1.5),
      Value::Double(3.141592653589793),  // low mantissa byte non-zero
      Value::Double(-2.25),
      Value::Str("hello world"),
      Value::Str(""),
      Value::Sym("alice"),
      Value::CodeRule(std::make_shared<const Rule>(CloneRule(*rule))),
      Value::Part("export", Value::Sym("alice")),
  };
  for (const Value& v : values) {
    ValueId id = pool.Intern(v);
    EXPECT_EQ(pool.Get(id), v) << v.ToString();
    EXPECT_EQ(pool.Get(id).kind(), v.kind()) << v.ToString();
    EXPECT_EQ(id.kind(), v.kind()) << v.ToString();
  }
}

TEST(ValuePoolTest, InterningDeduplicates) {
  ValuePool pool;
  ValueId a = pool.Intern(Value::Str("shared"));
  ValueId b = pool.Intern(Value::Str("shared"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.pooled_count(), 1u);
  ValueId c = pool.Intern(Value::Sym("shared"));  // different kind
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.pooled_count(), 2u);
  // Inline kinds never grow the pool.
  pool.Intern(Value::Int(7));
  pool.Intern(Value::Bool(true));
  pool.Intern(Value::Double(0.5));
  EXPECT_EQ(pool.pooled_count(), 2u);
}

TEST(ValuePoolTest, IdEqualityMatchesValueEquality) {
  ValuePool pool;
  std::vector<Value> values = {
      Value::Int(1),     Value::Double(1.0),     Value::Str("1"),
      Value::Sym("one"), Value::Str("x"),        Value::Sym("x"),
      Value::Bool(true), Value::Int(1095216660480),
  };
  for (const Value& a : values) {
    for (const Value& b : values) {
      EXPECT_EQ(pool.Intern(a) == pool.Intern(b), a == b)
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValuePoolTest, FindDoesNotInsert) {
  ValuePool pool;
  ValueId id;
  EXPECT_FALSE(pool.Find(Value::Str("absent"), &id));
  EXPECT_EQ(pool.pooled_count(), 0u);
  // Inline-representable values always resolve.
  EXPECT_TRUE(pool.Find(Value::Int(9), &id));
  EXPECT_EQ(pool.Get(id), Value::Int(9));
  ValueId interned = pool.Intern(Value::Str("present"));
  EXPECT_TRUE(pool.Find(Value::Str("present"), &id));
  EXPECT_EQ(id, interned);
}

TEST(ValuePoolTest, CodeValuesShareIdByCanonicalForm) {
  // Two structurally identical fragments parsed independently (e.g. one
  // that travelled through the network and back) intern to the same id.
  ValuePool pool;
  auto t1 = ParseTermText("[| access(P,O,read) <- good(P). |]");
  auto t2 = ParseTermText("[| access(P,O,read) <- good(P). |]");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ValueId a = pool.Intern(t1->value);
  ValueId b = pool.Intern(t2->value);
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.pooled_count(), 1u);
  EXPECT_EQ(pool.Get(a).AsCode().canon, t1->value.AsCode().canon);
}

TEST(ValuePoolTest, NegativeZeroNormalizes) {
  // Value::operator== says 0.0 == -0.0; ids must agree.
  ValuePool pool;
  EXPECT_EQ(pool.Intern(Value::Double(0.0)), pool.Intern(Value::Double(-0.0)));
}

TEST(ValuePoolTest, CrossTransactionIdStability) {
  // Ids handed out by a workspace pool survive fixpoints, rule churn and
  // store rebuilds: the same boundary value maps to the same id across
  // transactions.
  Workspace ws;
  ValueId before = ws.pool()->Intern(Value::Sym("alice"));

  Transaction t1 = ws.Begin();
  t1.AddFact("good", {Value::Sym("alice")});
  ASSERT_TRUE(t1.Commit().ok());

  ASSERT_TRUE(ws.Load("access(P) <- good(P).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());

  Transaction t2 = ws.Begin();
  t2.AddFact("good", {Value::Sym("bob")});
  ASSERT_TRUE(t2.Commit().ok());

  ValueId after;
  ASSERT_TRUE(ws.pool()->Find(Value::Sym("alice"), &after));
  EXPECT_EQ(before, after);

  // And the stored rows actually carry that id.
  const Relation* access = ws.GetRelation("access");
  ASSERT_NE(access, nullptr);
  ASSERT_EQ(access->size(), 2u);
  bool saw_alice = false;
  for (uint32_t i : access->Rows()) {
    if (access->RowIds(i)[0] == before) saw_alice = true;
  }
  EXPECT_TRUE(saw_alice);
}

TEST(ValuePoolTest, ComputedProbeKeysDoNotGrowPool) {
  // A body literal probed with a *computed* key (here a partition ref
  // built from a bound variable) must treat a never-interned value as a
  // guaranteed miss — matching for the present key, passing the negation
  // for the absent one — WITHOUT interning the transient value.
  Workspace ws;
  ASSERT_TRUE(ws.Load("loc(alice). loc(bob).\n"
                      "placed(export[alice]).\n"
                      "found(P) <- loc(P), placed(export[P]).\n"
                      "lonely(P) <- loc(P), !placed(export[P]).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("found(P)"), 1u);
  EXPECT_EQ(*ws.Count("found(alice)"), 1u);
  EXPECT_EQ(*ws.Count("lonely(P)"), 1u);
  EXPECT_EQ(*ws.Count("lonely(bob)"), 1u);
  // export[bob] was computed during both probes but never stored; it must
  // not have become a workspace-lifetime pool entry.
  ValueId id;
  EXPECT_FALSE(ws.pool()->Find(Value::Part("export", Value::Sym("bob")), &id));
  EXPECT_TRUE(ws.pool()->Find(Value::Part("export", Value::Sym("alice")), &id));
}

TEST(ValuePoolTest, RelationBoundaryProbesDoNotGrowPool) {
  // Lookups for never-seen values must miss without polluting the pool.
  ValuePool pool;
  Relation rel(1, &pool);
  rel.Insert({Value::Sym("present")});
  size_t pooled = pool.pooled_count();
  EXPECT_FALSE(rel.Contains({Value::Sym("never_inserted")}));
  EXPECT_TRUE(rel.Lookup(0b1, {Value::Sym("also_never")}).empty());
  EXPECT_FALSE(rel.Matches(0b1, {Value::Sym("nor_this")}));
  EXPECT_EQ(pool.pooled_count(), pooled);
}

}  // namespace
}  // namespace lbtrust::datalog
