// Static analyzer: one table entry per diagnostic code, exercising the
// parse/safety/stratification/dead-code/arity/type/says analyses, plus
// golden text + JSON output shapes, the join-order smell over compiled
// schedules, workspace ingress wiring (Options::lint), and the guarantee
// that the whole golden corpus and every shipped example stays clean.
#include "datalog/lint.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/parser.h"
#include "datalog/workspace.h"
#include "golden_programs.h"

namespace lbtrust::datalog {
namespace {

using ::testing::Test;

LintReport Lint(const std::string& program,
                const LintOptions& opts = LintOptions(),
                const std::string& principal = "alice") {
  return LintProgram(program, principal, opts);
}

bool HasCode(const LintReport& report, const std::string& code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

const Diagnostic& First(const LintReport& report, const std::string& code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return d;
  }
  static Diagnostic missing;
  ADD_FAILURE() << "no diagnostic with code " << code;
  return missing;
}

// --- Table: one bad program per diagnostic code ---------------------------

struct Case {
  const char* name;
  const char* program;
  const char* code;
  LintSeverity severity;
  /// Substrings the diagnostic message must contain.
  std::vector<const char*> message_contains;
  /// Expected structured fields ("" / -2 = don't check).
  const char* variable = "";
  const char* predicate = "";
  int position = -2;
  bool says_check = false;
  std::vector<std::string> exports;
};

const Case kCases[] = {
    {"parse_error", "p(X <- q(X).", "L000", LintSeverity::kError,
     {"expected"}},
    {"unbound_head_var", "p(X, Y) <- q(X).", "L001", LintSeverity::kError,
     {"head variable 'Y'", "not bound"}, "Y", "p"},
    {"unbound_negation_var", "p(X, Y) <- q(X), !r(X, Y).", "L002",
     LintSeverity::kError,
     {"'Y'", "negated literal", "!r(X,Y)", "shared with the rest"}, "Y", "r",
     1},
    {"unbindable_builtin", "p(X) <- q(X), Y < X.", "L003",
     LintSeverity::kError, {"'Y'", "cannot be bound"}, "Y", "<", 1},
    {"unbindable_equality", "p(X) <- q(X), Y = Z + 1.", "L003",
     LintSeverity::kError, {"neither side"}, "", "=", 1},
    {"aggregate_unbound_input",
     "tally(C, N) <- agg<<N = count(X)>> vote(C, U).", "L004",
     LintSeverity::kError, {"aggregate input variable 'X'"}, "X", "tally"},
    {"aggregate_bound_result",
     "tally(C, N) <- agg<<N = count(U)>> vote(C, U), m(N).", "L004",
     LintSeverity::kError, {"aggregate result variable 'N'"}, "N", "tally"},
    {"expr_unbound", "p(X) <- q(X + Y).", "L005", LintSeverity::kError,
     {"arithmetic", "unbound"}, "", "q", 0},
    {"negation_cycle", "p(X) <- q(X), !p(X).", "L010", LintSeverity::kError,
     {"p -!-> p", "not stratifiable"}, "", "p"},
    {"aggregation_cycle",
     "t(C, N) <- agg<<N = count(U)>> v(C, U).\n"
     "v(C, U) <- t(C, U), w(U).",
     "L010", LintSeverity::kError, {"-!->", "not stratifiable"}},
    {"dead_rule", "goal(X) <- q(X).\norphan(X) <- q(X).", "L020",
     LintSeverity::kWarning, {"dead rule", "'orphan'"}, "", "orphan", -2,
     false, {"goal"}},
    {"derived_never_read", "goal(X) <- aux(X).\naux(X) <- q(X).\n"
     "extra(X) <- aux(X).",
     "L021", LintSeverity::kWarning, {"'extra'", "never read"}, "", "extra",
     -2, false, {"goal"}},
    {"arity_drift", "p(X) <- q(X).\nq(a, b).", "L030", LintSeverity::kError,
     {"'q'", "arity"}, "", "q"},
    {"builtin_arity", "p(X) <- q(X), int(X, X).", "L030",
     LintSeverity::kError, {"builtin 'int'", "expects 1"}, "", "int"},
    {"constant_type_drift", "r(s).\np(X) <- q(X), r(1).", "L031",
     LintSeverity::kWarning, {"can never unify", "'r'"}, "", "r", 1},
    {"says_foreign_speaker", "says(bob, carol, X) <- q(X).", "L060",
     LintSeverity::kError, {"'bob'", "cannot speak"}, "", "says", -2, true},
    {"says_variable_speaker", "says(U, carol, X) <- q(U, X).", "L060",
     LintSeverity::kWarning, {"variable speaker 'U'"}, "U", "says", -2, true},
    {"says_foreign_destination", "p(X) <- says(U, bob, X).", "L060",
     LintSeverity::kError, {"addressed to 'bob'", "cannot receive"}, "",
     "says", 0, true},
};

TEST(DatalogLintTest, DiagnosticTable) {
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    LintOptions opts;
    opts.says_check = c.says_check;
    opts.says_principal = "alice";
    opts.exports = c.exports;
    LintReport report = Lint(c.program, opts);
    ASSERT_TRUE(HasCode(report, c.code)) << report.ToText();
    const Diagnostic& d = First(report, c.code);
    EXPECT_EQ(d.severity, c.severity) << report.ToText();
    for (const char* piece : c.message_contains) {
      EXPECT_NE(d.message.find(piece), std::string::npos)
          << "missing \"" << piece << "\" in: " << d.message;
    }
    if (c.variable[0] != '\0') EXPECT_EQ(d.variable, c.variable);
    if (c.predicate[0] != '\0') EXPECT_EQ(d.predicate, c.predicate);
    if (c.position != -2) EXPECT_EQ(d.position, c.position);
    // Severity gates: errors must fail ToStatus, warnings must not.
    if (c.severity == LintSeverity::kError) {
      EXPECT_FALSE(report.ToStatus().ok());
    }
  }
}

TEST(DatalogLintTest, CleanProgramHasNoDiagnostics) {
  LintReport report = Lint(
      "path(X, Y) <- edge(X, Y).\n"
      "path(X, Z) <- path(X, Y), edge(Y, Z).\n"
      "edge(a, b). edge(b, c).");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToText();
  EXPECT_TRUE(report.ToStatus().ok());
}

TEST(DatalogLintTest, WildcardNegationIsLegal) {
  // A negation variable used nowhere else is a wildcard, not a safety
  // violation (the engine schedules it the same way).
  LintReport report = Lint(
      "user(a). knows(a, b).\n"
      "lonely(U) <- user(U), !knows(U, V).");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToText();
}

TEST(DatalogLintTest, StatusCodesMatchEngine) {
  EXPECT_EQ(Lint("p(X, Y) <- q(X).").ToStatus().code(),
            util::StatusCode::kUnsafeProgram);
  EXPECT_EQ(Lint("p(X) <- q(X), !p(X).").ToStatus().code(),
            util::StatusCode::kNotStratifiable);
  EXPECT_EQ(Lint("p(X) <- q(X).\nq(a, b).").ToStatus().code(),
            util::StatusCode::kTypeError);
}

TEST(DatalogLintTest, StratificationCyclePathIsFull) {
  // Indirect cycle: the path must walk every predicate on the loop.
  LintReport report = Lint(
      "a(X) <- c(X), !b(X).\n"
      "b(X) <- a(X).\n"
      "c(a).");
  ASSERT_TRUE(HasCode(report, "L010")) << report.ToText();
  const Diagnostic& d = First(report, "L010");
  EXPECT_NE(d.message.find("b -!-> a -> b"), std::string::npos) << d.message;
}

// --- Golden output shapes -------------------------------------------------

TEST(DatalogLintTest, GoldenTextOutput) {
  LintReport report = Lint("p(X, Y) <- q(X).");
  EXPECT_EQ(report.ToText(),
            "L001 error: head variable 'Y' is not bound by any positive "
            "body literal in p(X,Y) <- q(X).\n");
}

TEST(DatalogLintTest, GoldenJsonOutput) {
  LintReport report = Lint("p(X, Y) <- q(X).");
  EXPECT_EQ(
      report.ToJson(),
      "{\"diagnostics\":[{\"code\":\"L001\",\"severity\":\"error\","
      "\"rule\":0,\"source\":\"p(X,Y) <- q(X).\",\"predicate\":\"p\","
      "\"variable\":\"Y\",\"position\":-1,\"message\":\"head variable 'Y' "
      "is not bound by any positive body literal in p(X,Y) <- q(X).\"}],"
      "\"errors\":1,\"warnings\":0}");
}

TEST(DatalogLintTest, EmptyReportJsonShape) {
  LintReport report;
  EXPECT_EQ(report.ToJson(), "{\"diagnostics\":[],\"errors\":0,\"warnings\":0}");
}

// --- Join-order smell over compiled schedules -----------------------------

TEST(DatalogLintTest, JoinOrderSmellFlagsLeadingScan) {
  // The BM_JoinOrderSelectiveLast shape: the greedy scheduler leads with
  // a blind scan of `wide` even though `narrow` is far smaller.
  auto rule = ParseRuleText("out(X, Y) <- wide(X, Y), narrow(Y).");
  ASSERT_TRUE(rule.ok()) << rule.status().message();
  BuiltinRegistry builtins;
  RegisterStandardBuiltins(&builtins);
  auto compiled = CompileRule(*rule, builtins);
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  auto rows = [](const std::string& pred) -> size_t {
    if (pred == "wide") return 100000;
    if (pred == "narrow") return 10;
    return kUnknownRows;
  };
  std::vector<Diagnostic> out;
  LintJoinOrder(**compiled, 7, rows, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].code, "L050");
  EXPECT_EQ(out[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(out[0].rule_index, 7);
  EXPECT_NE(out[0].message.find("'wide' (100000 rows)"), std::string::npos)
      << out[0].message;
  EXPECT_NE(out[0].message.find("'narrow' (10 rows)"), std::string::npos)
      << out[0].message;

  // Balanced cardinalities: no smell.
  auto even = [](const std::string&) -> size_t { return 100; };
  out.clear();
  LintJoinOrder(**compiled, 7, even, &out);
  EXPECT_TRUE(out.empty());
}

TEST(DatalogLintTest, JoinOrderSmellExemptsRecursiveLead) {
  // Semi-naive evaluation drives recursion from the delta orders, so a
  // large self-recursive lead is not a smell.
  auto rule = ParseRuleText("path(X, Z) <- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(rule.ok());
  BuiltinRegistry builtins;
  RegisterStandardBuiltins(&builtins);
  auto compiled = CompileRule(*rule, builtins);
  ASSERT_TRUE(compiled.ok());
  auto rows = [](const std::string& pred) -> size_t {
    return pred == "path" ? 100000 : 10;
  };
  std::vector<Diagnostic> out;
  LintJoinOrder(**compiled, 0, rows, &out);
  EXPECT_TRUE(out.empty());
}

// --- Corpus cleanliness ---------------------------------------------------

TEST(DatalogLintTest, GoldenCorpusIsClean) {
  for (size_t i = 0; i < lbtrust::testing::kNumGoldenPrograms; ++i) {
    const auto& gp = lbtrust::testing::kGoldenPrograms[i];
    SCOPED_TRACE(gp.name);
    LintReport report = LintProgram(gp.program, gp.principal);
    EXPECT_FALSE(report.has_errors()) << report.ToText();
    EXPECT_TRUE(report.diagnostics.empty()) << report.ToText();
  }
}

// --- Workspace ingress wiring ---------------------------------------------

TEST(DatalogLintTest, WorkspaceWarnModeCollectsWithoutRejecting) {
  Workspace ws;  // default lint = kWarn
  // Dead-code warning (sink inference does not fire here: reach(X) is the
  // sink root and everything feeds it) — use a says-free warning shape:
  // constant type drift.
  ASSERT_TRUE(ws.Load("r(s).\np(X) <- q(X), r(1).\nq(a).").ok());
  EXPECT_FALSE(ws.last_lint().has_errors());
  ASSERT_FALSE(ws.last_lint().diagnostics.empty());
  EXPECT_EQ(ws.last_lint().diagnostics[0].code, "L031");
}

TEST(DatalogLintTest, WorkspaceEnforceModeRejectsBeforeInstall) {
  Workspace::Options options;
  options.lint = Workspace::Options::LintMode::kEnforce;
  Workspace ws(options);
  ASSERT_TRUE(ws.Load("good(X) <- base(X).").ok());
  util::Status status = ws.Load("good(X) <- base(X).\nbad(X, Y) <- base(X).");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kUnsafeProgram);
  EXPECT_NE(status.message().find("L001"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("'Y'"), std::string::npos)
      << status.message();
  // Nothing from the rejected program installed — the duplicate `good`
  // rule would have been a no-op anyway, so probe via the bad head.
  ASSERT_TRUE(ws.AddFact("base", {Value::Sym("a")}).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto rows = ws.Query("bad(X, Y)");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(DatalogLintTest, WorkspaceOffModeSkipsAnalysis) {
  Workspace::Options options;
  options.lint = Workspace::Options::LintMode::kOff;
  Workspace ws(options);
  ASSERT_TRUE(ws.Load("r(s).\np(X) <- q(X), r(1).\nq(a).").ok());
  EXPECT_TRUE(ws.last_lint().diagnostics.empty());
}

TEST(DatalogLintTest, WorkspaceLintRulesSeesStoreCardinalities) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("out(X, Y) <- wide(X, Y), narrow(Y).").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        ws.AddFact("wide", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  ASSERT_TRUE(ws.AddFact("narrow", {Value::Int(1)}).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  LintReport report = ws.LintRules();
  ASSERT_TRUE(HasCode(report, "L050")) << report.ToText();
  const Diagnostic& d = First(report, "L050");
  EXPECT_NE(d.message.find("'wide' (64 rows)"), std::string::npos)
      << d.message;
}

TEST(DatalogLintTest, ExplainRulesCarriesDiagnostics) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("out(X, Y) <- wide(X, Y), narrow(Y).").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        ws.AddFact("wide", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  ASSERT_TRUE(ws.AddFact("narrow", {Value::Int(1)}).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  std::string json = ws.ExplainRules(ExplainFormat::kJson);
  EXPECT_NE(json.find("\"diagnostics\":[{\"code\":\"L050\""),
            std::string::npos)
      << json;
  std::string text = ws.ExplainRules(ExplainFormat::kText);
  EXPECT_NE(text.find("  diagnostics:\n    L050 warning:"),
            std::string::npos)
      << text;
}

TEST(DatalogLintTest, PreparedQueryExplainHasDiagnosticsArray) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("edge(a, b).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto query = ws.Prepare("edge(X, Y)");
  ASSERT_TRUE(query.ok());
  std::string json = query->Explain(ExplainFormat::kJson);
  EXPECT_NE(json.find("\"diagnostics\":[]"), std::string::npos) << json;
}

}  // namespace
}  // namespace lbtrust::datalog
