#include "d1lp/d1lp.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace lbtrust::d1lp {
namespace {

std::unique_ptr<trust::TrustRuntime> MakeRuntime(const std::string& name,
                                                 bool trusting = false) {
  trust::TrustRuntime::Options opts;
  opts.principal = name;
  opts.rsa_bits = 512;
  opts.trusting_activation = trusting;
  auto rt = trust::TrustRuntime::Create(opts);
  EXPECT_TRUE(rt.ok());
  return std::move(*rt);
}

TEST(D1lpCompileTest, SaysStatement) {
  auto compiled = CompileD1lp("alice", "bob says access(carol,f1).");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled->assertions.size(), 1u);
  EXPECT_EQ(compiled->assertions[0].first, "bob");
  EXPECT_EQ(compiled->assertions[0].second, "access(carol,f1).");
  EXPECT_NE(compiled->core_rules.find("prin(bob)."), std::string::npos);
}

TEST(D1lpCompileTest, DelegationWithDepth) {
  auto compiled = CompileD1lp("alice", "alice delegates access^2 to bob.");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_NE(compiled->core_rules.find("delegates(me,bob,access)."),
            std::string::npos);
  EXPECT_NE(compiled->core_rules.find("delDepth(me,bob,access,2)."),
            std::string::npos);
  // The §4.2 library is pulled in.
  EXPECT_NE(compiled->core_rules.find("del1:"), std::string::npos);
  EXPECT_NE(compiled->core_rules.find("dd4:"), std::string::npos);
}

TEST(D1lpCompileTest, UnboundedDepth) {
  auto compiled = CompileD1lp("alice", "alice delegates access^* to bob.");
  ASSERT_TRUE(compiled.ok());
  EXPECT_NE(compiled->core_rules.find("delegates(me,bob,access)."),
            std::string::npos);
  // No depth *fact* (the dd library rules still mention the predicate).
  EXPECT_EQ(compiled->core_rules.find("delDepth(me,bob"), std::string::npos);
}

TEST(D1lpCompileTest, SpeaksFor) {
  auto compiled = CompileD1lp("alice", "bob speaks-for alice.");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_NE(compiled->core_rules.find("active(R) <- says(bob,me,R)."),
            std::string::npos);
}

TEST(D1lpCompileTest, Threshold) {
  auto compiled =
      CompileD1lp("bank", "bank trusts threshold(2, b1, b2, b3) on credit.");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_NE(compiled->core_rules.find("pringroup(b2,thrgrp_credit)."),
            std::string::npos);
  EXPECT_NE(compiled->core_rules.find("creditCount"), std::string::npos);
}

TEST(D1lpCompileTest, Errors) {
  EXPECT_FALSE(CompileD1lp("alice", "bob delegates p^1 to carol.").ok());
  EXPECT_FALSE(CompileD1lp("alice", "bob speaks-for carol.").ok());
  EXPECT_FALSE(CompileD1lp("alice", "alice delegates p^-1 to bob.").ok());
  EXPECT_FALSE(
      CompileD1lp("alice", "alice trusts threshold(4, a, b) on p.").ok());
  EXPECT_FALSE(CompileD1lp("alice", "alice declares p.").ok());
  EXPECT_FALSE(CompileD1lp("alice", "alice says p(X).").ok());  // non-ground
}

TEST(D1lpTest, DelegationEndToEnd) {
  // alice delegates `access` to bob with depth 0: bob's statements about
  // access activate; carol's do not; bob cannot re-delegate.
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  auto carol = MakeRuntime("carol");
  ASSERT_TRUE(alice->AddPeer("bob", bob->keypair().public_key).ok());
  ASSERT_TRUE(alice->AddPeer("carol", carol->keypair().public_key).ok());
  ASSERT_TRUE(LoadD1lp(alice.get(),
                       "alice delegates access^0 to bob.\n"
                       "bob says access(dave,f1).\n"
                       "carol says access(mallory,f2).")
                  .ok());
  ASSERT_TRUE(alice->Fixpoint().ok());
  EXPECT_EQ(*alice->workspace()->Count("access(dave,f1)"), 1u);
  EXPECT_EQ(*alice->workspace()->Count("access(mallory,f2)"), 0u);
}

TEST(D1lpTest, SpeaksForEndToEnd) {
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(alice->AddPeer("bob", bob->keypair().public_key).ok());
  ASSERT_TRUE(LoadD1lp(alice.get(),
                       "bob speaks-for alice.\n"
                       "bob says anything(1).")
                  .ok());
  ASSERT_TRUE(alice->Fixpoint().ok());
  EXPECT_EQ(*alice->workspace()->Count("anything(1)"), 1u);
}

TEST(D1lpTest, ThresholdEndToEnd) {
  auto bank = MakeRuntime("bank");
  for (const char* b : {"b1", "b2", "b3"}) {
    auto bureau = MakeRuntime(b);
    ASSERT_TRUE(bank->AddPeer(b, bureau->keypair().public_key).ok());
  }
  ASSERT_TRUE(LoadD1lp(bank.get(),
                       "bank trusts threshold(2, b1, b2, b3) on credit.\n"
                       "b1 says credit(carol).")
                  .ok());
  ASSERT_TRUE(bank->Fixpoint().ok());
  EXPECT_EQ(*bank->workspace()->Count("credit(carol)"), 0u);
  ASSERT_TRUE(LoadD1lp(bank.get(), "b3 says credit(carol).").ok());
  ASSERT_TRUE(bank->Fixpoint().ok());
  EXPECT_EQ(*bank->workspace()->Count("credit(carol)"), 1u);
}

TEST(D1lpTest, DepthRestrictionPropagates) {
  // Shared-workspace check that a ^0 delegatee cannot re-delegate (the
  // same dd4 machinery the trust tests exercise, reached from D1LP).
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(alice->AddPeer("bob", bob->keypair().public_key).ok());
  ASSERT_TRUE(
      LoadD1lp(alice.get(), "alice delegates access^0 to bob.").ok());
  ASSERT_TRUE(alice->Fixpoint().ok());
  // alice's own workspace holds the inferred restriction for bob.
  EXPECT_EQ(*alice->workspace()->Count(
                "says(alice,bob,[| inferredDelDepth(alice,bob,access,0). "
                "|])"),
            1u);
}

}  // namespace
}  // namespace lbtrust::d1lp
