#include "net/cluster.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "net/wire.h"

namespace lbtrust::net {
namespace {

using datalog::Tuple;
using datalog::Value;
using datalog::ValueKind;

TEST(WireTest, ScalarRoundTrip) {
  Tuple t = {Value::Int(-42),       Value::Str("a:b|c"),
             Value::Sym("alice"),   Value::Bool(true),
             Value::Double(2.5),    Value()};
  auto back = DeserializeTuple(SerializeTuple(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, t);
}

TEST(WireTest, CodeRoundTrip) {
  auto term = datalog::ParseTermText(
      "[| says(alice,bob,[| access(P,O,read). |]) <- grant(P,O). |]");
  ASSERT_TRUE(term.ok());
  Tuple t = {term->value};
  auto back = DeserializeTuple(SerializeTuple(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, t);
  EXPECT_EQ((*back)[0].AsCode().canon, term->value.AsCode().canon);
}

TEST(WireTest, PartRefRoundTrip) {
  Tuple t = {Value::Part("export", Value::Sym("alice"))};
  auto back = DeserializeTuple(SerializeTuple(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
  EXPECT_EQ((*back)[0].AsPart().predicate, "export");
}

TEST(WireTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeTuple("").ok());
  EXPECT_FALSE(DeserializeTuple("2:i:1:5").ok());      // short
  EXPECT_FALSE(DeserializeTuple("1:q:1:x").ok());      // unknown kind
  EXPECT_FALSE(DeserializeTuple("1:i:999:5").ok());    // bad length
}

TEST(WireTest, MalformedInputsReturnStatusNotCrash) {
  // Table-driven adversarial inputs: every case must produce a non-OK
  // status — never a crash, over-read or runaway allocation.
  struct Case {
    const char* name;
    const char* input;
  };
  const Case kCases[] = {
      {"empty", ""},
      {"no count separator", "abc"},
      {"non-numeric count", "x:i:1:5"},
      {"oversized count (DoS reserve)", "99999999999999:i:1:5"},
      {"count overflows size_t", "99999999999999999999999:i:1:5"},
      {"count larger than input", "9:i:1:5"},
      {"truncated value header", "1:i"},
      {"missing value length delimiter", "1:i:5"},
      {"empty value length", "1:i::x"},
      {"non-numeric value length", "1:i:zz:x"},
      {"value length overflows size_t", "1:s:99999999999999999999999:x"},
      {"value length past end", "1:s:100:abc"},
      {"huge value length (wraparound)", "1:s:18446744073709551615:x"},
      {"bad int payload", "1:i:3:abc"},
      {"int payload with trailing junk", "1:i:4:5abc"},
      {"empty double payload", "1:d:0:"},
      {"bad double payload", "1:d:3:abc"},
      {"double payload trailing junk", "1:d:5:1.5xy"},
      {"double overflow", "1:d:6:1e9999"},
      {"bad bool payload", "1:b:1:7"},
      {"nil with payload", "1:n:1:x"},
      {"unknown kind tag", "1:z:1:x"},
      {"part without separator", "1:p:3:abc"},
      {"part with truncated key", "1:p:6:ex:i:9"},
      {"part with trailing bytes", "1:p:10:ex:i:1:5xx"},
      {"code payload without tag", "1:c:1:R"},
      {"code payload bad tag", "1:c:4:Z:p()"},
      {"code payload unparsable", "1:c:6:R:((((" },
      {"trailing bytes after tuple", "1:i:1:5xxx"},
      {"two values claimed one present", "2:i:1:5"},
  };
  for (const Case& c : kCases) {
    auto result = DeserializeTuple(c.input);
    EXPECT_FALSE(result.ok()) << "case '" << c.name << "' should reject";
  }
  // Deeply nested part values (built inside-out with correct lengths) must
  // hit the depth limit, not the stack.
  std::string nested = "i:1:5";
  for (int i = 0; i < 2000; ++i) {
    std::string body = "x:" + nested;
    nested = "p:" + std::to_string(body.size()) + ":" + body;
  }
  EXPECT_FALSE(DeserializeTuple("1:" + nested).ok());
}

TEST(WireBlockTest, RoundTripWithDictionarySharing) {
  auto term = datalog::ParseTermText("[| ping(1). |]");
  ASSERT_TRUE(term.ok());
  std::vector<Tuple> tuples = {
      {Value::Sym("alice"), Value::Sym("bob"), Value::Int(1)},
      {Value::Sym("alice"), Value::Sym("bob"), Value::Int(2)},
      {Value::Sym("alice"), Value::Sym("carol"), term->value},
      {Value::Sym("alice"), Value::Sym("bob"), Value::Int(1)},  // repeat row
  };
  std::string block = SerializeTupleBlock(tuples);
  auto back = DeserializeTupleBlock(block);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, tuples);
  // The dictionary dedups: the block must be smaller than the naive
  // concatenation of per-tuple serializations.
  size_t naive = 0;
  for (const Tuple& t : tuples) naive += SerializeTuple(t).size();
  EXPECT_LT(block.size(), naive);
  // "alice" is serialized exactly once in the whole message.
  size_t first = block.find("alice");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(block.find("alice", first + 1), std::string::npos);
}

TEST(WireBlockTest, EmptyBlockRoundTrips) {
  auto back = DeserializeTupleBlock(SerializeTupleBlock({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(WireBlockTest, MalformedBlocksReturnStatusNotCrash) {
  const char* kCases[] = {
      "",
      "X:1:",                      // wrong magic
      "B:",                        // missing dictionary count
      "B:zz:",                     // bad dictionary count
      "B:99999999:i:1:5",          // dictionary count exceeds input
      "B:1:i:1:5",                 // missing row count
      "B:1:i:1:5zz:",              // bad row count
      "B:1:i:1:51:",               // missing row arity
      "B:1:i:1:51:1:",             // missing index
      "B:1:i:1:51:1:9:",           // index out of range
      "B:1:i:1:51:1:0:xx",         // trailing bytes
      "B:0:1:1:0:",                // index into empty dictionary
      "B:1:i:1:51:99:0:",          // oversized arity
  };
  for (const char* c : kCases) {
    EXPECT_FALSE(DeserializeTupleBlock(c).ok()) << "input: " << c;
  }
}

TEST(WireBlockTest, ShardFilterPartitionsBlock) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 64; ++i) {
    tuples.push_back({Value::Sym("alice"), Value::Int(i)});
  }
  // The full range is byte-identical to the unfiltered serializer.
  EXPECT_EQ(SerializeTupleBlock(tuples, 0, 4, 4), SerializeTupleBlock(tuples));
  EXPECT_EQ(SerializeTupleBlock(tuples, 0, 1, 1), SerializeTupleBlock(tuples));
  // Per-shard sub-blocks partition the batch: disjoint, order-preserving,
  // and their union is the whole batch.
  std::vector<Tuple> reassembled;
  size_t total_rows = 0;
  for (size_t s = 0; s < 4; ++s) {
    size_t rows = 0;
    auto part = DeserializeTupleBlock(
        SerializeTupleBlock(tuples, s, s + 1, 4, &rows));
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    EXPECT_EQ(part->size(), rows);
    total_rows += rows;
    for (const Tuple& t : *part) {
      EXPECT_EQ(WireTupleShard(t, 4), s);
      reassembled.push_back(t);
    }
  }
  EXPECT_EQ(total_rows, tuples.size());
  // Routing must actually spread rows (splitmix-backed value hashes).
  EXPECT_LT(DeserializeTupleBlock(SerializeTupleBlock(tuples, 0, 1, 4))->size(),
            tuples.size());
  // Same rows overall; order within each shard matches the batch order.
  std::sort(reassembled.begin(), reassembled.end(),
            [](const Tuple& a, const Tuple& b) {
              return a[1].AsInt() < b[1].AsInt();
            });
  EXPECT_EQ(reassembled, tuples);
}

class SchemeExchangeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemeExchangeTest, TwoPrincipalExchange) {
  // The Figure 2 micro-workload at unit scale: alice exports authenticated
  // facts to bob through says; bob imports, verifies and activates them.
  Cluster::Options copts;
  copts.scheme = GetParam();
  Cluster cluster(copts);
  trust::TrustRuntime::Options small;
  small.rsa_bits = 512;
  ASSERT_TRUE(cluster.AddNode("alice", small).ok());
  ASSERT_TRUE(cluster.AddNode("bob", small).ok());
  ASSERT_TRUE(cluster.Connect().ok());

  auto* alice = cluster.node("alice");
  ASSERT_TRUE(
      alice->Load("says(me,bob,[| ping(N). |]) <- msg(N).").ok());
  ASSERT_TRUE(alice->workspace()->AddFactText("msg(1). msg(2). msg(3).").ok());

  auto stats = cluster.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // All three exported tuples for bob batch into one dictionary-framed
  // block message (repeated principals ship once per message).
  EXPECT_EQ(stats->messages, 1u);

  auto* bob = cluster.node("bob");
  EXPECT_EQ(*bob->workspace()->Count("ping(N)"), 3u);
  EXPECT_EQ(*bob->workspace()->Count("says(alice,bob,R)"), 3u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeExchangeTest,
                         ::testing::Values("plaintext", "hmac", "rsa"));

class TamperTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TamperTest, AuthenticatedSchemesRejectTampering) {
  Cluster::Options copts;
  copts.scheme = GetParam();
  Cluster cluster(copts);
  trust::TrustRuntime::Options small;
  small.rsa_bits = 512;
  ASSERT_TRUE(cluster.AddNode("alice", small).ok());
  ASSERT_TRUE(cluster.AddNode("bob", small).ok());
  ASSERT_TRUE(cluster.Connect().ok());
  ASSERT_TRUE(cluster.node("alice")
                  ->Load("says(me,bob,[| balance(100). |]) <- go().")
                  .ok());
  ASSERT_TRUE(cluster.node("alice")->workspace()->AddFactText("go().").ok());

  // Flip a digit inside the payload: 100 -> 900 (the signature text stays).
  cluster.InjectTamper("export", [](std::string* payload) {
    size_t pos = payload->find("balance(100)");
    ASSERT_NE(pos, std::string::npos);
    (*payload)[pos + 8] = '9';
  });

  auto stats = cluster.Run();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), util::StatusCode::kConstraintViolation);
  EXPECT_NE(stats.status().message().find("bob"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AuthSchemes, TamperTest,
                         ::testing::Values("hmac", "rsa"));

TEST(TamperTest, PlaintextAcceptsTampering) {
  // The flip side of the security/efficiency tradeoff (§2.2): plaintext
  // "says" happily accepts the forged fact.
  Cluster::Options copts;
  copts.scheme = "plaintext";
  Cluster cluster(copts);
  trust::TrustRuntime::Options small;
  small.rsa_bits = 512;
  ASSERT_TRUE(cluster.AddNode("alice", small).ok());
  ASSERT_TRUE(cluster.AddNode("bob", small).ok());
  ASSERT_TRUE(cluster.Connect().ok());
  ASSERT_TRUE(cluster.node("alice")
                  ->Load("says(me,bob,[| balance(100). |]) <- go().")
                  .ok());
  ASSERT_TRUE(cluster.node("alice")->workspace()->AddFactText("go().").ok());
  cluster.InjectTamper("export", [](std::string* payload) {
    size_t pos = payload->find("balance(100)");
    ASSERT_NE(pos, std::string::npos);
    (*payload)[pos + 8] = '9';
  });
  auto stats = cluster.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(*cluster.node("bob")->workspace()->Count("balance(900)"), 1u);
}

TEST(ClusterTest, MessagesAreDedupedAcrossRounds) {
  Cluster::Options copts;
  copts.scheme = "plaintext";
  Cluster cluster(copts);
  trust::TrustRuntime::Options small;
  small.rsa_bits = 512;
  ASSERT_TRUE(cluster.AddNode("alice", small).ok());
  ASSERT_TRUE(cluster.AddNode("bob", small).ok());
  ASSERT_TRUE(cluster.Connect().ok());
  ASSERT_TRUE(cluster.node("alice")
                  ->Load("says(me,bob,[| ping(1). |]) <- go().")
                  .ok());
  ASSERT_TRUE(cluster.node("alice")->workspace()->AddFactText("go().").ok());
  auto first = cluster.Run();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->messages, 1u);
  // A second run with new local facts at alice re-derives the same export
  // but must not re-ship it.
  ASSERT_TRUE(
      cluster.node("alice")->workspace()->AddFactText("unrelated(9).").ok());
  auto second = cluster.Run();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->messages, 0u);
}

TEST(ClusterTest, ShardedShippingConvergesIdentically) {
  // ship_shards > 1 splits each (dest, relation) batch into per-shard
  // messages via the filtered serializer; the receiver must converge on
  // exactly the same facts, with the same total tuples delivered.
  auto run = [](size_t ship_shards) {
    Cluster::Options copts;
    copts.scheme = "plaintext";
    copts.ship_shards = ship_shards;
    Cluster cluster(copts);
    trust::TrustRuntime::Options small;
    small.rsa_bits = 512;
    EXPECT_TRUE(cluster.AddNode("alice", small).ok());
    EXPECT_TRUE(cluster.AddNode("bob", small).ok());
    EXPECT_TRUE(cluster.Connect().ok());
    EXPECT_TRUE(cluster.node("alice")
                    ->Load("says(me,bob,[| ping(N). |]) <- num(N).")
                    .ok());
    for (int i = 0; i < 12; ++i) {
      EXPECT_TRUE(cluster.node("alice")
                      ->workspace()
                      ->AddFactText("num(" + std::to_string(i) + ").")
                      .ok());
    }
    auto stats = cluster.Run();
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return std::make_pair(*cluster.node("bob")->workspace()->Count("ping(N)"),
                          stats->tuples);
  };
  auto [classic_pings, classic_tuples] = run(1);
  auto [sharded_pings, sharded_tuples] = run(4);
  EXPECT_EQ(classic_pings, 12u);
  EXPECT_EQ(sharded_pings, classic_pings);
  EXPECT_EQ(sharded_tuples, classic_tuples);
}

TEST(ClusterTest, ThreeHopRelay) {
  // a says to b; a rule at b forwards to c.
  Cluster::Options copts;
  copts.scheme = "hmac";
  Cluster cluster(copts);
  trust::TrustRuntime::Options small;
  small.rsa_bits = 512;
  for (const char* n : {"a", "b", "c"}) {
    ASSERT_TRUE(cluster.AddNode(n, small).ok());
  }
  ASSERT_TRUE(cluster.Connect().ok());
  ASSERT_TRUE(cluster.node("a")
                  ->Load("says(me,b,[| token(1). |]) <- go().")
                  .ok());
  ASSERT_TRUE(cluster.node("a")->workspace()->AddFactText("go().").ok());
  ASSERT_TRUE(cluster.node("b")
                  ->Load("says(me,c,[| token(N). |]) <- token(N).")
                  .ok());
  auto stats = cluster.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(*cluster.node("c")->workspace()->Count("token(1)"), 1u);
  EXPECT_GE(stats->rounds, 2u);
}

TEST(ClusterTest, CustomPlacementMovesPartitions) {
  // Placement is ordinary data (§3.5): pointing loc(bob) at node "a" keeps
  // bob's export partition on a — nothing is shipped.
  Cluster::Options copts;
  copts.scheme = "plaintext";
  copts.default_placement = false;
  Cluster cluster(copts);
  trust::TrustRuntime::Options small;
  small.rsa_bits = 512;
  ASSERT_TRUE(cluster.AddNode("a", small).ok());
  ASSERT_TRUE(cluster.AddNode("bob", small).ok());
  ASSERT_TRUE(cluster.Connect().ok());
  auto* a = cluster.node("a");
  ASSERT_TRUE(a->Load("ld2: predNode(export[P],N) <- loc(P,N).").ok());
  ASSERT_TRUE(a->workspace()->AddFactText("loc(bob,a).").ok());
  ASSERT_TRUE(a->Load("says(me,bob,[| ping(1). |]) <- go(). go().").ok());
  auto stats = cluster.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->messages, 0u);
  // Re-point bob's partition at node bob and re-run: now it ships.
  ASSERT_TRUE(a->workspace()->RemoveFact(
                   "loc", {Value::Sym("bob"), Value::Sym("a")})
                  .ok());
  ASSERT_TRUE(a->workspace()->AddFactText("loc(bob,bob).").ok());
  auto stats2 = cluster.Run();
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->messages, 1u);
}

}  // namespace
}  // namespace lbtrust::net
