#include "util/status.h"

#include <memory>
#include <utility>

#include <gtest/gtest.h>

namespace lbtrust::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ParseError("unexpected ')'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "unexpected ')'");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: unexpected ')'");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(ParseError("x"), ParseError("x"));
  EXPECT_FALSE(ParseError("x") == ParseError("y"));
  EXPECT_FALSE(ParseError("x") == TypeError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return InvalidArgument("odd");
  return v / 2;
}

Status UseHalf(int v, int* out) {
  LB_ASSIGN_OR_RETURN(int h, Half(v));
  *out = h;
  return OkStatus();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

}  // namespace
}  // namespace lbtrust::util
