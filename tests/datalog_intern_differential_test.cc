// Representation differential: the interned (ValueId) engine must be
// observationally identical to the seed (shared_ptr Value) representation.
// tests/golden_dumps.inc holds Workspace::Dump output captured from the
// PRE-interning engine (PR 2 tree) for every corpus program in
// tests/golden_programs.h; this suite replays the corpus through the
// current engine — on the default options AND on the naive / no-delta
// ablations — and requires byte-identical dumps.
#include <string>

#include <gtest/gtest.h>

#include "datalog/dump.h"
#include "datalog/workspace.h"
#include "golden_programs.h"

namespace lbtrust::datalog {
namespace {

#include "golden_dumps.inc"

static_assert(sizeof(kGoldenDumps) / sizeof(kGoldenDumps[0]) ==
                  lbtrust::testing::kNumGoldenPrograms,
              "golden_dumps.inc is out of sync with golden_programs.h — "
              "regenerate with tools/gen_goldens.cc");

std::string RunAndDump(const lbtrust::testing::GoldenProgram& prog,
                       bool naive, bool delta) {
  Workspace::Options opts;
  opts.principal = prog.principal;
  opts.naive_eval = naive;
  opts.delta_fixpoint = delta;
  Workspace ws(opts);
  auto load = ws.Load(prog.program);
  EXPECT_TRUE(load.ok()) << prog.name << ": " << load.ToString();
  auto fix = ws.Fixpoint();
  EXPECT_TRUE(fix.ok()) << prog.name << ": " << fix.ToString();
  return DumpWorkspace(ws, 0);
}

class InternDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(InternDifferentialTest, DumpMatchesSeedRepresentation) {
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  EXPECT_EQ(RunAndDump(prog, /*naive=*/false, /*delta=*/true),
            kGoldenDumps[GetParam()])
      << "program: " << prog.name;
}

TEST_P(InternDifferentialTest, NaiveAblationMatchesSeed) {
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  EXPECT_EQ(RunAndDump(prog, /*naive=*/true, /*delta=*/false),
            kGoldenDumps[GetParam()])
      << "program: " << prog.name;
}

TEST_P(InternDifferentialTest, FullRebuildAblationMatchesSeed) {
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  EXPECT_EQ(RunAndDump(prog, /*naive=*/false, /*delta=*/false),
            kGoldenDumps[GetParam()])
      << "program: " << prog.name;
}

TEST_P(InternDifferentialTest, FactByFactCommitsMatchSeed) {
  // Same corpus, loaded through the Transaction write path with a
  // fixpoint per commit: the delta-aware path over interned storage must
  // land on the identical dump.
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  Workspace::Options opts;
  opts.principal = prog.principal;
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load(prog.program).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  ASSERT_TRUE(ws.Fixpoint().ok());  // idempotent re-run (empty delta)
  EXPECT_EQ(DumpWorkspace(ws, 0), kGoldenDumps[GetParam()])
      << "program: " << prog.name;
}

TEST_P(InternDifferentialTest, ParallelEvaluationMatchesSeed) {
  // The worker-pool evaluator (frozen store snapshot + ordered merge)
  // must reproduce the seed-representation dumps byte-for-byte too:
  // parallel evaluation is observationally identical to sequential.
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  Workspace::Options opts;
  opts.principal = prog.principal;
  opts.threads = 4;
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load(prog.program).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(DumpWorkspace(ws, 0), kGoldenDumps[GetParam()])
      << "program: " << prog.name;
}

TEST_P(InternDifferentialTest, ShardedParallelEvaluationMatchesSeed) {
  // Sharded storage with the parallel per-shard merge must also reproduce
  // the seed-representation dumps byte-for-byte: repartitioning by row
  // hash never changes the stored set, and Dump sorts away the
  // enumeration-order difference.
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  Workspace::Options opts;
  opts.principal = prog.principal;
  opts.threads = 4;
  opts.shards = 8;
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load(prog.program).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(DumpWorkspace(ws, 0), kGoldenDumps[GetParam()])
      << "program: " << prog.name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, InternDifferentialTest,
    ::testing::Range<size_t>(0, lbtrust::testing::kNumGoldenPrograms),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return lbtrust::testing::kGoldenPrograms[info.param].name;
    });

}  // namespace
}  // namespace lbtrust::datalog
