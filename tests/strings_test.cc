#include "util/strings.h"

#include <gtest/gtest.h>

namespace lbtrust::util {
namespace {

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, HexRoundTrip) {
  std::string raw = "\x00\xff\x10 abc";
  raw.push_back('\0');
  std::string hex = HexEncode(raw);
  std::string back;
  ASSERT_TRUE(HexDecode(hex, &back));
  EXPECT_EQ(back, raw);
}

TEST(StringsTest, HexDecodeRejectsBadInput) {
  std::string out;
  EXPECT_FALSE(HexDecode("abc", &out));   // odd length
  EXPECT_FALSE(HexDecode("zz", &out));    // non-hex
  EXPECT_TRUE(HexDecode("", &out));       // empty ok
  EXPECT_TRUE(out.empty());
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("export[me]", "export"));
  EXPECT_FALSE(StartsWith("exp", "export"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "file.cc"));
}

TEST(StringsTest, EscapeQuoted) {
  EXPECT_EQ(EscapeQuoted("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(StringsTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a("alice"), Fnv1a("bob"));
  EXPECT_EQ(Fnv1a("says"), Fnv1a("says"));
}

}  // namespace
}  // namespace lbtrust::util
