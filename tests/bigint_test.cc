#include "crypto/bigint.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/secure_random.h"

namespace lbtrust::crypto {
namespace {

BigInt FromHexOrDie(std::string_view hex) {
  auto r = BigInt::FromHex(hex);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

TEST(BigIntTest, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_EQ(z.Uint64(), 0u);
}

TEST(BigIntTest, Int64Construction) {
  EXPECT_EQ(BigInt(5).ToHex(), "5");
  EXPECT_EQ(BigInt(-5).ToHex(), "-5");
  EXPECT_EQ(BigInt(0).ToHex(), "0");
  EXPECT_EQ(BigInt(INT64_MIN).ToHex(), "-8000000000000000");
  EXPECT_EQ(BigInt(INT64_MAX).ToHex(), "7fffffffffffffff");
}

TEST(BigIntTest, HexRoundTrip) {
  const char* cases[] = {"0",
                         "1",
                         "ff",
                         "100",
                         "123456789abcdef0",
                         "fedcba98765432100123456789abcdef",
                         "-deadbeefcafebabe1234"};
  for (const char* hex : cases) {
    EXPECT_EQ(FromHexOrDie(hex).ToHex(), hex);
  }
}

TEST(BigIntTest, FromHexRejectsJunk) {
  EXPECT_FALSE(BigInt::FromHex("12g4").ok());
  EXPECT_FALSE(BigInt::FromHex("0x12").ok());
}

TEST(BigIntTest, BytesRoundTrip) {
  BigInt v = FromHexOrDie("0102030405060708090a0b");
  std::string bytes = v.ToBytes();
  EXPECT_EQ(bytes.size(), 11u);
  EXPECT_EQ(BigInt::FromBytes(bytes), v);
  // Padding.
  std::string padded = v.ToBytes(16);
  EXPECT_EQ(padded.size(), 16u);
  EXPECT_EQ(BigInt::FromBytes(padded), v);
}

TEST(BigIntTest, ComparisonRespectSign) {
  EXPECT_LT(BigInt(-3), BigInt(2));
  EXPECT_LT(BigInt(-3), BigInt(-2));
  EXPECT_GT(BigInt(7), BigInt(-7));
  EXPECT_EQ(BigInt(0), BigInt(-0));
  EXPECT_LE(BigInt(4), BigInt(4));
}

TEST(BigIntTest, AddSubSmallMatchesInt64) {
  const int64_t vals[] = {0, 1, -1, 5, -5, 123456789, -987654321, 1L << 40};
  for (int64_t a : vals) {
    for (int64_t b : vals) {
      EXPECT_EQ(BigInt(a) + BigInt(b), BigInt(a + b)) << a << "+" << b;
      EXPECT_EQ(BigInt(a) - BigInt(b), BigInt(a - b)) << a << "-" << b;
      // Guard the reference computation against int64 overflow.
      if (a > -(1L << 31) && a < (1L << 31) && b > -(1L << 31) &&
          b < (1L << 31)) {
        EXPECT_EQ(BigInt(a) * BigInt(b), BigInt(a * b)) << a << "*" << b;
      }
    }
  }
}

TEST(BigIntTest, CarryPropagation) {
  BigInt max64 = FromHexOrDie("ffffffffffffffff");
  EXPECT_EQ((max64 + BigInt(1)).ToHex(), "10000000000000000");
  EXPECT_EQ((FromHexOrDie("10000000000000000") - BigInt(1)).ToHex(),
            "ffffffffffffffff");
}

TEST(BigIntTest, MulWide) {
  BigInt a = FromHexOrDie("ffffffffffffffff");
  EXPECT_EQ((a * a).ToHex(), "fffffffffffffffe0000000000000001");
}

TEST(BigIntTest, Shifts) {
  BigInt one(1);
  EXPECT_EQ((one << 0).ToHex(), "1");
  EXPECT_EQ((one << 4).ToHex(), "10");
  EXPECT_EQ((one << 64).ToHex(), "10000000000000000");
  EXPECT_EQ((one << 127).ToHex(), "80000000000000000000000000000000");
  EXPECT_EQ(((one << 127) >> 127).ToHex(), "1");
  EXPECT_EQ((FromHexOrDie("ff00") >> 8).ToHex(), "ff");
  EXPECT_EQ((FromHexOrDie("ff") >> 9).ToHex(), "0");
}

TEST(BigIntTest, BitAccess) {
  BigInt v = FromHexOrDie("5");  // 101
  EXPECT_TRUE(v.Bit(0));
  EXPECT_FALSE(v.Bit(1));
  EXPECT_TRUE(v.Bit(2));
  EXPECT_FALSE(v.Bit(200));
  EXPECT_EQ(v.BitLength(), 3u);
}

TEST(BigIntTest, DivModInvariantSmall) {
  const int64_t as[] = {0, 1, -1, 17, -17, 100, -100, 123456789};
  const int64_t bs[] = {1, -1, 2, 3, -3, 10, 17, 1000};
  for (int64_t a : as) {
    for (int64_t b : bs) {
      BigInt q, r;
      ASSERT_TRUE(BigInt::DivMod(BigInt(a), BigInt(b), &q, &r).ok());
      EXPECT_EQ(q, BigInt(a / b)) << a << "/" << b;
      EXPECT_EQ(r, BigInt(a % b)) << a << "%" << b;
      // Invariant a = q*b + r.
      EXPECT_EQ(q * BigInt(b) + r, BigInt(a));
    }
  }
}

TEST(BigIntTest, DivModByZeroFails) {
  BigInt q, r;
  EXPECT_FALSE(BigInt::DivMod(BigInt(3), BigInt(0), &q, &r).ok());
}

TEST(BigIntTest, ModNonNegative) {
  auto m = BigInt::Mod(BigInt(-7), BigInt(3));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, BigInt(2));
}

TEST(BigIntTest, ModUint64) {
  BigInt v = FromHexOrDie("123456789abcdef0123456789abcdef");
  // Cross-check against DivMod.
  for (uint64_t m : {3ull, 7ull, 97ull, 65537ull, 4294967291ull}) {
    BigInt q, r;
    ASSERT_TRUE(BigInt::DivMod(v, BigInt::FromUint64(m), &q, &r).ok());
    EXPECT_EQ(v.ModUint64(m), r.Uint64()) << m;
  }
}

// Property sweep: random arithmetic invariants at several widths.
class BigIntPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BigIntPropertyTest, DivModInvariantRandom) {
  size_t bits = GetParam();
  SecureRandom rng(uint64_t{0xB16B00B5} + bits);
  for (int i = 0; i < 25; ++i) {
    BigInt a = rng.RandomBits(bits);
    BigInt b = rng.RandomBits(bits / 2 + 1);
    BigInt q, r;
    ASSERT_TRUE(BigInt::DivMod(a, b, &q, &r).ok());
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    EXPECT_FALSE(r.is_negative());
  }
}

TEST_P(BigIntPropertyTest, AddSubInverse) {
  size_t bits = GetParam();
  SecureRandom rng(uint64_t{0xC0FFEE} + bits);
  for (int i = 0; i < 25; ++i) {
    BigInt a = rng.RandomBits(bits);
    BigInt b = rng.RandomBits(bits);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
    EXPECT_EQ(a + b, b + a);
  }
}

TEST_P(BigIntPropertyTest, MulDistributes) {
  size_t bits = GetParam();
  SecureRandom rng(uint64_t{0xD15EA5E} + bits);
  for (int i = 0; i < 10; ++i) {
    BigInt a = rng.RandomBits(bits);
    BigInt b = rng.RandomBits(bits);
    BigInt c = rng.RandomBits(bits);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST_P(BigIntPropertyTest, MontgomeryMatchesPlainModExp) {
  size_t bits = GetParam();
  SecureRandom rng(uint64_t{0xFACADE} + bits);
  for (int i = 0; i < 5; ++i) {
    BigInt m = rng.RandomBits(bits);
    if (!m.is_odd()) m = m + BigInt(1);
    BigInt base = rng.RandomBits(bits);
    BigInt exp = rng.RandomBits(16);
    auto fast = BigInt::ModExp(base, exp, m);
    ASSERT_TRUE(fast.ok());
    // Naive square-and-multiply with explicit Mod.
    auto naive_mod = [&](const BigInt& x) {
      auto r = BigInt::Mod(x, m);
      return r.value();
    };
    BigInt acc(1);
    BigInt b = naive_mod(base);
    for (size_t bit = exp.BitLength(); bit-- > 0;) {
      acc = naive_mod(acc * acc);
      if (exp.Bit(bit)) acc = naive_mod(acc * b);
    }
    EXPECT_EQ(*fast, acc);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BigIntPropertyTest,
                         ::testing::Values(64, 128, 256, 512, 1024));

TEST(BigIntTest, ModExpKnownValues) {
  // 2^10 mod 1000 = 24
  auto r = BigInt::ModExp(BigInt(2), BigInt(10), BigInt(1001));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, BigInt(23));  // 1024 mod 1001
  // Fermat: a^(p-1) = 1 mod p for prime p.
  auto f = BigInt::ModExp(BigInt(12345), BigInt(65536), BigInt(65537));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, BigInt(1));
}

TEST(BigIntTest, ModExpZeroExponent) {
  auto r = BigInt::ModExp(BigInt(7), BigInt(0), BigInt(13));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, BigInt(1));
}

TEST(BigIntTest, ModExpRejectsEvenModulus) {
  EXPECT_FALSE(BigInt::ModExp(BigInt(2), BigInt(3), BigInt(8)).ok());
}

TEST(BigIntTest, ModInverse) {
  auto inv = BigInt::ModInverse(BigInt(3), BigInt(11));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(*inv, BigInt(4));  // 3*4 = 12 = 1 mod 11
  EXPECT_FALSE(BigInt::ModInverse(BigInt(4), BigInt(8)).ok());  // gcd 4
}

TEST(BigIntTest, ModInversePropertyRandom) {
  SecureRandom rng(uint64_t{0x1234});
  BigInt m = rng.RandomBits(256);
  if (!m.is_odd()) m = m + BigInt(1);
  for (int i = 0; i < 10; ++i) {
    BigInt a = rng.RandomBits(200);
    if (!(BigInt::Gcd(a, m) == BigInt(1))) continue;
    auto inv = BigInt::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    auto prod = BigInt::Mod(a * *inv, m);
    ASSERT_TRUE(prod.ok());
    EXPECT_EQ(*prod, BigInt(1));
  }
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(5)), BigInt(1));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
}

TEST(BigIntTest, PrimalityKnownPrimes) {
  SecureRandom rng(uint64_t{7});
  auto bytes = [&rng](uint8_t* out, size_t len) { rng.Bytes(out, len); };
  EXPECT_TRUE(IsProbablePrime(BigInt(2), 10, bytes));
  EXPECT_TRUE(IsProbablePrime(BigInt(65537), 10, bytes));
  // 2^127 - 1 is a Mersenne prime.
  BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(IsProbablePrime(m127, 20, bytes));
}

TEST(BigIntTest, PrimalityKnownComposites) {
  SecureRandom rng(uint64_t{8});
  auto bytes = [&rng](uint8_t* out, size_t len) { rng.Bytes(out, len); };
  EXPECT_FALSE(IsProbablePrime(BigInt(1), 10, bytes));
  EXPECT_FALSE(IsProbablePrime(BigInt(0), 10, bytes));
  EXPECT_FALSE(IsProbablePrime(BigInt(561), 20, bytes));   // Carmichael
  EXPECT_FALSE(IsProbablePrime(BigInt(65536), 10, bytes));
  BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_FALSE(IsProbablePrime(m127 * BigInt(3), 20, bytes));
}

TEST(MontgomeryTest, RoundTripDomain) {
  BigInt m = FromHexOrDie("fedcba9876543210fedcba9876543211");  // odd
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  for (int64_t v : {0L, 1L, 2L, 123456789L}) {
    BigInt x(v);
    EXPECT_EQ(ctx->FromMont(ctx->ToMont(x)), x);
  }
}

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(10)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(1)).ok());
}

TEST(MontgomeryTest, MulMatchesSchoolbook) {
  BigInt m = FromHexOrDie("f123456789abcdef123456789abcdef1");
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  SecureRandom rng(uint64_t{99});
  for (int i = 0; i < 20; ++i) {
    BigInt a = rng.RandomBits(120);
    BigInt b = rng.RandomBits(120);
    BigInt got = ctx->FromMont(ctx->MulMont(ctx->ToMont(a), ctx->ToMont(b)));
    auto want = BigInt::Mod(a * b, m);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got, *want);
  }
}

}  // namespace
}  // namespace lbtrust::crypto
