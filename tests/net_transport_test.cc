#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/event_loop.h"

namespace lbtrust::net {
namespace {

/// Polls every transport round-robin until `done` or the budget expires.
/// Single-threaded on purpose: transports are poll-driven, so one thread
/// can host both ends of a connection.
bool Pump(std::vector<Transport*> transports, std::function<bool()> done,
          int budget_ms = 5000) {
  int64_t deadline = EventLoop::NowMs() + budget_ms;
  while (EventLoop::NowMs() < deadline) {
    if (done()) return true;
    for (Transport* t : transports) {
      util::Status st = t->Poll(2);
      if (!st.ok()) {
        ADD_FAILURE() << st.ToString();
        return false;
      }
    }
  }
  return done();
}

Frame DataFrame(const std::string& relation, const std::string& payload) {
  Frame frame;
  frame.kind = Frame::Kind::kData;
  frame.relation = relation;
  frame.payload = payload;
  return frame;
}

struct Endpoint {
  explicit Endpoint(const std::string& name,
                    Transport::Options options = {})
      : transport(name, options) {
    transport.set_handler([this](const Frame& frame) {
      if (frame.kind == Frame::Kind::kData ||
          frame.kind == Frame::Kind::kCredential) {
        received.push_back(frame);
      }
      return util::OkStatus();
    });
    EXPECT_TRUE(transport.Listen("127.0.0.1", 0).ok());
  }

  Transport transport;
  std::vector<Frame> received;
};

TEST(TransportTest, DeliversBatchedFramesAndAcks) {
  Endpoint a("a"), b("b");
  a.transport.AddPeer("b", "127.0.0.1", b.transport.listen_port());
  b.transport.AddPeer("a", "127.0.0.1", a.transport.listen_port());

  ASSERT_TRUE(a.transport.Send("b", DataFrame("export", "payload-1")));
  ASSERT_TRUE(a.transport.Send("b", DataFrame("export", "payload-22")));
  ASSERT_TRUE(Pump({&a.transport, &b.transport}, [&] {
    return b.received.size() == 2 && a.transport.AllAcked();
  }));

  EXPECT_EQ(b.received[0].seq, 1u);
  EXPECT_EQ(b.received[0].from, "a");
  EXPECT_EQ(b.received[0].relation, "export");
  EXPECT_EQ(b.received[0].payload, "payload-1");
  EXPECT_EQ(b.received[1].seq, 2u);

  const TransportStats& out = a.transport.stats();
  EXPECT_EQ(out.data_frames_out, 2u);
  EXPECT_EQ(out.tuple_bytes_out, std::strlen("payload-1payload-22"));
  EXPECT_EQ(out.acks_in, 2u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.reconnects, 0u);
  const TransportStats& in = b.transport.stats();
  EXPECT_EQ(in.data_frames_in, 2u);
  EXPECT_EQ(in.tuple_bytes_in, std::strlen("payload-1payload-22"));
  EXPECT_EQ(in.acks_out, 2u);
  EXPECT_EQ(in.duplicate_frames_in, 0u);
  EXPECT_GT(in.bytes_in, 0u);
}

TEST(TransportTest, CredentialBytesAccountedSeparately) {
  Endpoint a("a"), b("b");
  a.transport.AddPeer("b", "127.0.0.1", b.transport.listen_port());

  Frame cred;
  cred.kind = Frame::Kind::kCredential;
  cred.payload = "LBCB2-bundle-bytes";
  ASSERT_TRUE(a.transport.Send("b", std::move(cred)));
  ASSERT_TRUE(Pump({&a.transport, &b.transport},
                   [&] { return a.transport.AllAcked(); }));

  EXPECT_EQ(a.transport.stats().credential_bytes_out,
            std::strlen("LBCB2-bundle-bytes"));
  EXPECT_EQ(a.transport.stats().tuple_bytes_out, 0u);
  EXPECT_EQ(b.transport.stats().credential_bytes_in,
            std::strlen("LBCB2-bundle-bytes"));
}

TEST(TransportTest, InjectedDuplicatesAreDeliveredAndCounted) {
  // At-least-once means receivers must tolerate duplicates; the transport
  // surfaces them (stats) but still delivers, because idempotency lives in
  // the engine (set semantics + content-addressed credentials), not here.
  Transport::Options dup;
  dup.duplicate_data_frames = true;
  Endpoint a("a", dup), b("b");
  a.transport.AddPeer("b", "127.0.0.1", b.transport.listen_port());

  ASSERT_TRUE(a.transport.Send("b", DataFrame("export", "x")));
  ASSERT_TRUE(Pump({&a.transport, &b.transport},
                   [&] { return b.received.size() >= 2; }));

  EXPECT_EQ(b.received[0].seq, b.received[1].seq);
  EXPECT_EQ(b.received[0].payload, b.received[1].payload);
  EXPECT_EQ(b.transport.stats().duplicate_frames_in, 1u);
  EXPECT_TRUE(Pump({&a.transport, &b.transport},
                   [&] { return a.transport.AllAcked(); }));
}

TEST(TransportTest, ReorderedFlushDeliversAllFrames) {
  // Frames staged within one flush ship in reverse: cross-batch ordering
  // is not part of the delivery contract, only at-least-once is.
  Transport::Options reorder;
  reorder.reorder_flush = true;
  Endpoint a("a", reorder), b("b");
  a.transport.AddPeer("b", "127.0.0.1", b.transport.listen_port());

  // Stage three frames before the first poll so one flush carries all.
  ASSERT_TRUE(a.transport.Send("b", DataFrame("r", "one")));
  ASSERT_TRUE(a.transport.Send("b", DataFrame("r", "two")));
  ASSERT_TRUE(a.transport.Send("b", DataFrame("r", "three")));
  ASSERT_TRUE(Pump({&a.transport, &b.transport}, [&] {
    return b.received.size() == 3 && a.transport.AllAcked();
  }));

  EXPECT_EQ(b.received[0].seq, 3u);
  EXPECT_EQ(b.received[1].seq, 2u);
  EXPECT_EQ(b.received[2].seq, 1u);
}

TEST(TransportTest, ForcedDropTriggersReconnectAndResend) {
  // The armed drop closes the carrying connection right after its bytes
  // flush — before any ack can arrive — so the reconnect must retransmit
  // and the receiver may see the frame twice. End state: acked.
  Transport::Options drop;
  drop.drop_connection_after_data_frames = 1;
  drop.reconnect_backoff_min_ms = 1;
  Endpoint a("a", drop), b("b");
  a.transport.AddPeer("b", "127.0.0.1", b.transport.listen_port());

  ASSERT_TRUE(a.transport.Send("b", DataFrame("export", "survives")));
  ASSERT_TRUE(Pump({&a.transport, &b.transport}, [&] {
    return a.transport.AllAcked() && !b.received.empty();
  }));

  EXPECT_GE(a.transport.stats().reconnects, 1u);
  EXPECT_GE(a.transport.stats().retries, 1u);
  EXPECT_EQ(b.received.front().payload, "survives");
  // Every copy that arrived carried the same sequence number.
  for (const Frame& frame : b.received) EXPECT_EQ(frame.seq, 1u);
}

TEST(TransportTest, ReconnectStatsReconcileAcrossRegistry) {
  // Satellite 3: after a forced mid-run reconnect, the sender's and
  // receiver's TransportStats must reconcile with each other and with the
  // metrics registry they are mirrored into. Fixed-size payloads make the
  // byte equations exact: tuple_bytes_out counts each frame once (at
  // Send), tuple_bytes_in counts every delivery (duplicates included).
  Transport::Options drop;
  drop.drop_connection_after_data_frames = 3;
  drop.reconnect_backoff_min_ms = 1;
  Endpoint a("a", drop), b("b");
  a.transport.AddPeer("b", "127.0.0.1", b.transport.listen_port());
  b.transport.AddPeer("a", "127.0.0.1", a.transport.listen_port());

  constexpr uint64_t kFrames = 6;
  const std::string payload = "0123456789";  // 10 bytes, all frames
  for (uint64_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(a.transport.Send("b", DataFrame("export", payload)));
  }
  ASSERT_TRUE(Pump({&a.transport, &b.transport}, [&] {
    return a.transport.AllAcked() && b.received.size() >= kFrames;
  }));

  const TransportStats& out = a.transport.stats();
  const TransportStats& in = b.transport.stats();
  // The forced drop happened mid-run and the mesh recovered from it.
  EXPECT_GE(out.reconnects, 1u);
  EXPECT_GE(out.retries, 1u);

  // Sender-side: each unique frame's payload counted exactly once, every
  // transmission (first sends + post-reconnect resends) counted in
  // data_frames_out.
  EXPECT_EQ(out.tuple_bytes_out, kFrames * payload.size());
  EXPECT_GE(out.data_frames_out, kFrames);

  // Receiver-side: every delivery (duplicates included) counted in both
  // data_frames_in and tuple_bytes_in; duplicates are exactly the
  // deliveries beyond the unique kFrames.
  EXPECT_EQ(in.data_frames_in, static_cast<uint64_t>(b.received.size()));
  EXPECT_EQ(in.tuple_bytes_in, in.data_frames_in * payload.size());
  EXPECT_EQ(in.duplicate_frames_in, in.data_frames_in - kFrames);
  // Cross-side reconciliation: the inbound byte surplus is exactly the
  // duplicated payload bytes.
  EXPECT_EQ(in.tuple_bytes_in - out.tuple_bytes_out,
            in.duplicate_frames_in * payload.size());
  // Acks: the drop may lose acks in flight toward the sender, never the
  // other direction.
  EXPECT_GE(in.acks_out, out.acks_in);

  // Registry mirror: every struct field lands under its lbtrust_transport_*
  // name, and re-syncing is idempotent (Set, not Add).
  obs::MetricsRegistry sender_reg, receiver_reg;
  SyncTransportMetrics(out, &sender_reg);
  SyncTransportMetrics(out, &sender_reg);
  SyncTransportMetrics(in, &receiver_reg);
  EXPECT_EQ(sender_reg
                .GetCounter("lbtrust_transport_tuple_bytes_total",
                            "direction=\"out\"")
                ->value(),
            out.tuple_bytes_out);
  EXPECT_EQ(sender_reg.GetCounter("lbtrust_transport_retries_total")->value(),
            out.retries);
  EXPECT_EQ(
      sender_reg.GetCounter("lbtrust_transport_reconnects_total")->value(),
      out.reconnects);
  EXPECT_EQ(receiver_reg
                .GetCounter("lbtrust_transport_tuple_bytes_total",
                            "direction=\"in\"")
                ->value(),
            in.tuple_bytes_in);
  EXPECT_EQ(receiver_reg
                .GetCounter("lbtrust_transport_duplicate_frames_in_total")
                ->value(),
            in.duplicate_frames_in);
  std::string text = sender_reg.RenderText();
  EXPECT_NE(text.find("lbtrust_transport_tuple_bytes_total{direction=\"out\"} "),
            std::string::npos);
  EXPECT_NE(text.find("lbtrust_transport_retries_total "), std::string::npos);
}

TEST(TransportTest, BoundedSendQueueBackpressure) {
  Transport::Options tiny;
  tiny.send_queue_limit_bytes = 220;
  Endpoint a("a", tiny), b("b");
  a.transport.AddPeer("b", "127.0.0.1", b.transport.listen_port());

  // Peer never polled yet: frames pile up until the bound refuses more.
  int accepted = 0;
  while (a.transport.Send("b", DataFrame("r", "0123456789")) &&
         accepted < 100) {
    ++accepted;
  }
  ASSERT_GT(accepted, 0);
  ASSERT_LT(accepted, 10);  // ~50 encoded bytes each against a 220-byte cap
  EXPECT_FALSE(a.transport.SendQueuesEmpty());

  // Draining the queue (connect + flush + acks) lifts the backpressure.
  ASSERT_TRUE(Pump({&a.transport, &b.transport},
                   [&] { return a.transport.AllAcked(); }));
  EXPECT_TRUE(a.transport.Send("b", DataFrame("r", "0123456789")));
  ASSERT_TRUE(Pump({&a.transport, &b.transport},
                   [&] { return a.transport.AllAcked(); }));
  EXPECT_EQ(b.received.size(), static_cast<size_t>(accepted) + 1);
}

TEST(TransportTest, SendToUnknownPeerFails) {
  Endpoint a("a");
  EXPECT_FALSE(a.transport.Send("nobody", DataFrame("r", "x")));
}

TEST(TransportTest, UnreliableFramesDropWhileDisconnected) {
  Endpoint a("a");
  a.transport.AddPeer("b", "127.0.0.1", 1);  // nothing listens there
  Frame status;
  status.kind = Frame::Kind::kStatus;
  status.payload = "0:0";
  EXPECT_TRUE(a.transport.Send("b", std::move(status)));  // dropped, not queued
  EXPECT_TRUE(a.transport.SendQueuesEmpty());
  EXPECT_TRUE(a.transport.AllAcked());
}

/// Blocking client socket for adversarial wire-level tests.
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) close(fd_);
  }
  bool connected() const { return connected_; }
  void Write(const std::string& bytes) {
    ASSERT_EQ(send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  /// True once the server closed its end (EOF or reset).
  bool ServerClosed() {
    char byte;
    ssize_t n = recv(fd_, &byte, 1, MSG_DONTWAIT);
    if (n == 0) return true;
    return n < 0 && errno != EAGAIN && errno != EWOULDBLOCK;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(TransportHardeningTest, MidFrameStallClosesConnection) {
  Transport::Options strict;
  strict.read_deadline_ms = 50;
  Endpoint a("a", strict);
  RawClient client(a.transport.listen_port());
  ASSERT_TRUE(client.connected());

  // A complete header declaring 999 bytes, then silence: the slow-loris
  // pattern. The server must cut the connection after the deadline.
  client.Write("999:D:1");
  ASSERT_TRUE(Pump({&a.transport}, [&] {
    return a.transport.stats().deadline_closes >= 1;
  }));
  ASSERT_TRUE(Pump({&a.transport}, [&] { return client.ServerClosed(); }));
}

TEST(TransportHardeningTest, OversizeFrameClosedBeforeAllocation) {
  Transport::Options strict;
  strict.max_frame_bytes = 1024;
  Endpoint a("a", strict);
  RawClient client(a.transport.listen_port());
  ASSERT_TRUE(client.connected());

  // Declares a 64 MiB body; the 1 KiB cap rejects it from the header
  // alone, before any body byte is buffered.
  client.Write("67108864:");
  ASSERT_TRUE(Pump({&a.transport}, [&] {
    return a.transport.stats().oversize_rejects >= 1;
  }));
  ASSERT_TRUE(Pump({&a.transport}, [&] { return client.ServerClosed(); }));
}

TEST(TransportHardeningTest, MalformedFrameClosesConnection) {
  Endpoint a("a");
  RawClient client(a.transport.listen_port());
  ASSERT_TRUE(client.connected());
  client.Write("complete garbage, no length prefix anywhere");
  ASSERT_TRUE(Pump({&a.transport}, [&] { return client.ServerClosed(); }));
  EXPECT_TRUE(a.received.empty());
}

}  // namespace
}  // namespace lbtrust::net
