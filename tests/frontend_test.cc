#include <map>
#include <queue>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "binder/binder.h"
#include "crypto/secure_random.h"
#include "net/cluster.h"
#include "sendlog/sendlog.h"
#include "util/strings.h"

namespace lbtrust {
namespace {

using datalog::Value;

trust::TrustRuntime::Options SmallKeys() {
  trust::TrustRuntime::Options opts;
  opts.rsa_bits = 512;
  return opts;
}

TEST(BinderCompileTest, SaysLowering) {
  auto core = binder::CompileBinder(
      "b1: access(P,O,read) :- good(P).\n"
      "b2: access(P,O,read) :- bob says access(P,O,read).");
  ASSERT_TRUE(core.ok()) << core.status().ToString();
  EXPECT_NE(core->find("says(bob,me,[| access(P,O,read). |])"),
            std::string::npos)
      << *core;
}

TEST(BinderCompileTest, VariablePrincipal) {
  auto core = binder::CompileBinder("t(X,S) :- X says s(S), trusted(X).");
  ASSERT_TRUE(core.ok());
  EXPECT_NE(core->find("says(X,me,[| s(S). |])"), std::string::npos);
}

TEST(BinderCompileTest, RejectsContexts) {
  EXPECT_FALSE(binder::CompileBinder("At S:\np(X) :- q(X).").ok());
}

TEST(BinderTest, Section22PolicyOverCluster) {
  // The paper's b1/b2: alice accepts access facts that bob says.
  net::Cluster::Options copts;
  copts.scheme = "rsa";
  net::Cluster cluster(copts);
  ASSERT_TRUE(cluster.AddNode("alice", SmallKeys()).ok());
  ASSERT_TRUE(cluster.AddNode("bob", SmallKeys()).ok());
  ASSERT_TRUE(cluster.Connect().ok());

  // The paper's b1 ranges over "any object O"; range-restriction requires
  // the object relation to make that safe.
  auto st = binder::LoadBinder(
      cluster.node("alice"),
      "b1: access(P,O,read) :- good(P), object(O).\n"
      "b2: access(P,O,read) :- bob says access(P,O,read).");
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(cluster.node("alice")->workspace()
                  ->AddFactText("good(carol). object(f).")
                  .ok());
  // bob exports an access statement.
  ASSERT_TRUE(cluster.node("bob")
                  ->Load("says(me,alice,[| access(dave,f,read). |]) <- "
                         "grant(dave).")
                  .ok());
  ASSERT_TRUE(cluster.node("bob")->workspace()
                  ->AddFactText("grant(dave).")
                  .ok());
  auto stats = cluster.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto* alice = cluster.node("alice")->workspace();
  EXPECT_EQ(*alice->Count("access(carol,f,read)"), 1u);  // via b1
  EXPECT_EQ(*alice->Count("access(dave,f,read)"), 1u);   // via b2
}

TEST(BinderTest, PullRewriteAnswersRequests) {
  // §5.1 top-down evaluation: alice's import rule triggers a request to
  // bob; bob answers with his matching facts; alice derives access.
  net::Cluster::Options copts;
  copts.scheme = "hmac";
  net::Cluster cluster(copts);
  ASSERT_TRUE(cluster.AddNode("alice", SmallKeys()).ok());
  ASSERT_TRUE(cluster.AddNode("bob", SmallKeys()).ok());
  ASSERT_TRUE(cluster.Connect().ok());

  ASSERT_TRUE(binder::LoadBinder(
                  cluster.node("alice"),
                  "access(P,O,read) :- bob says access(P,O,read).")
                  .ok());
  ASSERT_TRUE(
      binder::InstallPullRequester(cluster.node("alice")->workspace()).ok());
  ASSERT_TRUE(binder::InstallPullResponder(cluster.node("bob")->workspace(),
                                           "access", 3)
                  .ok());
  // bob holds the data but never proactively exports it.
  ASSERT_TRUE(cluster.node("bob")->workspace()
                  ->AddFactText("access(carol,f1,read). "
                                "access(dave,f2,read). "
                                "access(erin,f3,write).")
                  .ok());
  auto stats = cluster.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto* alice = cluster.node("alice")->workspace();
  // The request pattern fixes mode=read: both read facts arrive, the
  // write fact does not.
  EXPECT_EQ(*alice->Count("access(carol,f1,read)"), 1u);
  EXPECT_EQ(*alice->Count("access(dave,f2,read)"), 1u);
  EXPECT_EQ(*alice->Count("access(erin,X,Y)"), 0u);
}

TEST(SendlogCompileTest, PaperTranslation) {
  // s1/s2 of §5.2 compile to the paper's ls1/ls2.
  auto core = sendlog::CompileSendlog(
      "At S:\n"
      "s1: reachable(S,D) :- neighbor(S,D).\n"
      "s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).");
  ASSERT_TRUE(core.ok()) << core.status().ToString();
  EXPECT_NE(core->find("reachable(me,D) <- neighbor(me,D)."),
            std::string::npos)
      << *core;
  EXPECT_NE(core->find("says(me,Z,[| reachable(Z,D). |]) <- neighbor(me,Z), "
                       "says(W,me,[| reachable(me,D). |])."),
            std::string::npos)
      << *core;
}

TEST(SendlogCompileTest, ConstantContextNeedsCluster) {
  EXPECT_FALSE(sendlog::CompileSendlog("At alice:\np(X) :- q(X).").ok());
}

// Reference reachability: BFS over the (directed) edge set.
std::set<std::pair<std::string, std::string>> BfsReachability(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& [src, next] : adj) {
    std::queue<std::string> frontier;
    std::set<std::string> seen;
    frontier.push(src);
    seen.insert(src);
    while (!frontier.empty()) {
      std::string cur = frontier.front();
      frontier.pop();
      auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& nxt : it->second) {
        if (seen.insert(nxt).second) frontier.push(nxt);
        out.insert({src, nxt});
      }
    }
  }
  return out;
}

// The SeNDlog reachability program used across tests/benches: the paper's
// s1/s2 plus the bootstrap export s0 (see DESIGN.md deviations).
const char kReachabilityProgram[] =
    "At S:\n"
    "s1: reachable(S,D) :- neighbor(S,D).\n"
    "s0: reachable(Z,D)@Z :- neighbor(S,Z), reachable(S,D).\n"
    "s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).";

class SendlogReachabilityTest : public ::testing::TestWithParam<int> {};

TEST_P(SendlogReachabilityTest, MatchesBfsOnRandomGraphs) {
  int n = 5;
  crypto::SecureRandom rng(static_cast<uint64_t>(GetParam()));
  // Random *undirected* graph over n nodes (~2 incident edges per node):
  // the paper's s2 propagates claims from a node to its neighbors, which is
  // sound when links are symmetric (the declarative-networking setting).
  std::map<std::string, std::set<std::string>> adj;
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back(util::StrCat("n", i));
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 2; ++k) {
      int j = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      if (j != i) {
        adj[names[static_cast<size_t>(i)]].insert(
            names[static_cast<size_t>(j)]);
        adj[names[static_cast<size_t>(j)]].insert(
            names[static_cast<size_t>(i)]);
      }
    }
  }

  net::Cluster::Options copts;
  copts.scheme = "hmac";
  copts.max_rounds = 128;
  net::Cluster cluster(copts);
  for (const std::string& name : names) {
    ASSERT_TRUE(cluster.AddNode(name, SmallKeys()).ok());
  }
  ASSERT_TRUE(cluster.Connect().ok());
  ASSERT_TRUE(sendlog::LoadSendlogOnCluster(&cluster, kReachabilityProgram)
                  .ok());
  for (const auto& [src, next] : adj) {
    for (const std::string& dst : next) {
      ASSERT_TRUE(cluster.node(src)->workspace()
                      ->AddFact("neighbor",
                                {Value::Sym(src), Value::Sym(dst)})
                      .ok());
    }
  }
  auto stats = cluster.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Collect reachable(me,D) per node and compare against BFS.
  std::set<std::pair<std::string, std::string>> got;
  for (const std::string& name : names) {
    auto rows = cluster.node(name)->workspace()->Query("reachable(S,D)");
    ASSERT_TRUE(rows.ok());
    for (const auto& t : *rows) {
      if (t[0].AsText() == name) got.insert({name, t[1].AsText()});
    }
  }
  std::set<std::pair<std::string, std::string>> expected =
      BfsReachability(adj);
  // Self-reachability via cycles is included by BFS when a cycle returns
  // to the source; s0/s2 propagate the same claims.
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SendlogReachabilityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SendlogTest, ConstantContextInstallsOnOneNode) {
  net::Cluster::Options copts;
  copts.scheme = "plaintext";
  net::Cluster cluster(copts);
  ASSERT_TRUE(cluster.AddNode("alice", SmallKeys()).ok());
  ASSERT_TRUE(cluster.AddNode("bob", SmallKeys()).ok());
  ASSERT_TRUE(cluster.Connect().ok());
  ASSERT_TRUE(sendlog::LoadSendlogOnCluster(&cluster,
                                            "At alice:\n"
                                            "p(X) :- q(X).\n"
                                            "At bob:\n"
                                            "r(X) :- q(X).")
                  .ok());
  for (const char* n : {"alice", "bob"}) {
    ASSERT_TRUE(cluster.node(n)->workspace()->AddFactText("q(1).").ok());
  }
  ASSERT_TRUE(cluster.Run().ok());
  EXPECT_EQ(*cluster.node("alice")->workspace()->Count("p(X)"), 1u);
  EXPECT_EQ(*cluster.node("bob")->workspace()->Count("p(X)"), 0u);
  EXPECT_EQ(*cluster.node("bob")->workspace()->Count("r(X)"), 1u);
}

}  // namespace
}  // namespace lbtrust
