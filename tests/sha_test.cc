#include <string>

#include <gtest/gtest.h>

#include "crypto/crc32.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace lbtrust::crypto {
namespace {

// FIPS 180 test vectors.
TEST(Sha1Test, KnownVectors) {
  EXPECT_EQ(Sha1::HexDigest(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::HexDigest("abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::HexDigest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionA) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  uint8_t out[Sha1::kDigestSize];
  h.Final(out);
  std::string hex;
  static constexpr char kDigits[] = "0123456789abcdef";
  for (uint8_t b : out) {
    hex.push_back(kDigits[b >> 4]);
    hex.push_back(kDigits[b & 0xf]);
  }
  EXPECT_EQ(hex, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    uint8_t out[Sha1::kDigestSize];
    h.Final(out);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(out), sizeof(out)),
              Sha1::Digest(msg));
  }
}

TEST(Sha1Test, BlockBoundaryLengths) {
  // Exercise padding at 55/56/63/64/65 bytes (single vs double pad block).
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    std::string msg(len, 'x');
    std::string d1 = Sha1::Digest(msg);
    Sha1 h;
    for (char c : msg) h.Update(&c, 1);
    uint8_t out[Sha1::kDigestSize];
    h.Final(out);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(out), sizeof(out)), d1)
        << len;
  }
}

TEST(Sha256Test, KnownVectors) {
  EXPECT_EQ(Sha256::HexDigest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::HexDigest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::HexDigest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg(300, '\0');
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<char>(i * 7);
  Sha256 h;
  h.Update(msg.substr(0, 100));
  h.Update(msg.substr(100, 100));
  h.Update(msg.substr(200));
  uint8_t out[Sha256::kDigestSize];
  h.Final(out);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(out), sizeof(out)),
            Sha256::Digest(msg));
}

TEST(Sha256Test, DifferentInputsDiffer) {
  EXPECT_NE(Sha256::Digest("a"), Sha256::Digest("b"));
  EXPECT_NE(Sha256::Digest("says(alice,bob,x)"),
            Sha256::Digest("says(alice,bob,y)"));
}

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string msg = "reachable(alice,bob)";
  uint32_t base = Crc32(msg);
  for (size_t i = 0; i < msg.size(); ++i) {
    std::string flipped = msg;
    flipped[i] = static_cast<char>(flipped[i] ^ 1);
    EXPECT_NE(Crc32(flipped), base) << i;
  }
}

}  // namespace
}  // namespace lbtrust::crypto
