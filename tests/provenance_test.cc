#include "datalog/provenance.h"

#include <string>

#include <gtest/gtest.h>

#include "datalog/workspace.h"
#include "meta/codegen.h"
#include "trust/trust_runtime.h"

namespace lbtrust::datalog {
namespace {

Workspace::Options WithProvenance(const std::string& principal = "local") {
  Workspace::Options opts;
  opts.principal = principal;
  opts.track_provenance = true;
  return opts;
}

TEST(ProvenanceTest, DisabledByDefault) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(a).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.Explain("p(a)").status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(ProvenanceTest, BaseFactsAreBase) {
  Workspace ws(WithProvenance());
  ASSERT_TRUE(ws.Load("p(a).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto text = ws.Explain("p(a)");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[base]"), std::string::npos);
}

TEST(ProvenanceTest, SingleStepDerivation) {
  Workspace ws(WithProvenance());
  ASSERT_TRUE(ws.Load("q(1). p(X) <- q(X).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto text = ws.Explain("p(1)");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("rule: p(X) <- q(X)."), std::string::npos) << *text;
  EXPECT_NE(text->find("q(1)   [base]"), std::string::npos) << *text;
}

TEST(ProvenanceTest, RecursiveDerivationChains) {
  Workspace ws(WithProvenance());
  ASSERT_TRUE(ws.Load("edge(a,b). edge(b,c). edge(c,d).\n"
                      "path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto text = ws.Explain("path(a,d)");
  ASSERT_TRUE(text.ok());
  // The witness chains back to base edges.
  EXPECT_NE(text->find("path(a,c)"), std::string::npos) << *text;
  EXPECT_NE(text->find("edge(c,d)   [base]"), std::string::npos) << *text;
  EXPECT_NE(text->find("edge(a,b)   [base]"), std::string::npos) << *text;
}

TEST(ProvenanceTest, AggregateMarked) {
  Workspace ws(WithProvenance());
  ASSERT_TRUE(ws.Load("v(g,x). v(g,y).\n"
                      "c(G,N) <- agg<<N = count(U)>> v(G,U).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto text = ws.Explain("c(g,2)");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("aggregate:"), std::string::npos) << *text;
}

TEST(ProvenanceTest, ActivationChainsToSays) {
  // The trust-management payoff: a fact activated from a says message
  // explains back through active(R) to the says fact itself.
  trust::TrustRuntime::Options opts;
  opts.principal = "alice";
  opts.rsa_bits = 512;
  opts.workspace.track_provenance = true;
  auto rt = trust::TrustRuntime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto bob_opts = opts;
  bob_opts.principal = "bob";
  auto bob = trust::TrustRuntime::Create(bob_opts);
  ASSERT_TRUE((*rt)->AddPeer("bob", (*bob)->keypair().public_key).ok());
  ASSERT_TRUE((*rt)->workspace()
                  ->AddFact("says",
                            {Value::Sym("bob"), Value::Sym("alice"),
                             *meta::QuoteRuleText("grant(carol).")})
                  .ok());
  ASSERT_TRUE((*rt)->Fixpoint().ok());
  auto text = (*rt)->workspace()->Explain("grant(carol)");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("activated: grant(carol)."), std::string::npos)
      << *text;
  EXPECT_NE(text->find("rule: active(R) <- says(_G0,alice,R)."),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("says(bob,alice,"), std::string::npos) << *text;
}

TEST(ProvenanceTest, CycleIsCut) {
  Workspace ws(WithProvenance());
  ASSERT_TRUE(ws.Load("edge(a,b). edge(b,a).\n"
                      "path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), path(Y,Z).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto text = ws.Explain("path(a,a)");
  ASSERT_TRUE(text.ok());
  // The tree terminates (either on base edges or the cycle marker).
  EXPECT_LT(text->size(), 10000u);
}

TEST(ProvenanceStoreTest, FirstWitnessWins) {
  ProvenanceStore store;
  Derivation base;
  store.Record("p", {Value::Int(1)}, base);
  Derivation rule;
  rule.kind = Derivation::Kind::kRule;
  rule.rule_canon = "p(X) <- q(X).";
  store.Record("p", {Value::Int(1)}, rule);
  const Derivation* d = store.Find("p", {Value::Int(1)});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, Derivation::Kind::kBase);
}

TEST(ProvenanceStoreTest, MissingTupleUnknown) {
  ProvenanceStore store;
  EXPECT_EQ(store.Find("p", {Value::Int(1)}), nullptr);
  EXPECT_NE(store.Explain("p", {Value::Int(1)}).find("[unknown]"),
            std::string::npos);
}

}  // namespace
}  // namespace lbtrust::datalog
