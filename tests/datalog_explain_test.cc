// EXPLAIN profiles: the compiled literal schedule with static probe masks
// plus measured probe/hit selectivities, as text and JSON. The anchor case
// is the BM_JoinOrderSelectiveLast shape — a selective literal written
// syntactically last — whose page must show exactly what the greedy,
// cardinality-blind scheduler actually does: a leading scan over the wide
// relation (the known bad choice) with the selective probes hoisted to
// directly after their variables bind.
#include "datalog/explain.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/value.h"
#include "datalog/workspace.h"

namespace lbtrust::datalog {
namespace {

// --- Mini JSON parser -----------------------------------------------------
// Full syntax validation plus collection of every string value keyed
// "head" — enough to prove the page is machine-parseable without dragging
// a JSON library into the tree.
class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : text_(text) {}

  bool Parse() {
    bool ok = ParseValue();
    SkipWs();
    return ok && pos_ == text_.size();
  }

  const std::vector<std::string>& heads() const { return heads_; }

 private:
  char Peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        std::string ignored;
        return ParseString(&ignored);
      }
      default: return ParseScalar();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (key == "head" && Peek() == '"') {
        std::string value;
        if (!ParseString(&value)) return false;
        heads_.push_back(value);
      } else if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        out->push_back(text_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseScalar() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    std::string token = text_.substr(start, pos_ - start);
    if (token == "true" || token == "false" || token == "null") return true;
    char* end = nullptr;
    std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::vector<std::string> heads_;
};

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(ExplainTest, SelectiveLastJoinReportsStaticOrderAndSelectivities) {
  Workspace::Options opts;
  opts.delta_fixpoint = false;
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load("q(X,Y) <- wide(X), wide(Y), narrow(X), narrow(Y).")
                  .ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(ws.AddFact("wide", {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(ws.AddFact("narrow", {Value::Int(1)}).ok());
  ASSERT_TRUE(ws.AddFact("narrow", {Value::Int(2)}).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());

  std::string text = ws.ExplainRules();
  EXPECT_TRUE(Contains(text, "head=q")) << text;
  EXPECT_TRUE(Contains(text, "schedule (full):")) << text;

  // The greedy scheduler's actual (and known-bad) static choice: it
  // cannot see cardinalities, so the tie between the four zero-bound
  // literals falls to source order and the rule leads with a full scan of
  // `wide`. What it does get right is hoisting each narrow probe to the
  // moment its variable binds: wide(X), narrow(X), wide(Y), narrow(Y).
  size_t lead = text.find("body[0] wide(X)  kind=relation probe_mask=0x0"
                          " (leading scan)");
  size_t probe_x = text.find("body[2] narrow(X)  kind=relation"
                             " probe_mask=0x1");
  size_t scan_y = text.find("body[1] wide(Y)  kind=relation probe_mask=0x0");
  size_t probe_y = text.find("body[3] narrow(Y)  kind=relation"
                             " probe_mask=0x1");
  ASSERT_NE(lead, std::string::npos) << text;
  ASSERT_NE(probe_x, std::string::npos) << text;
  ASSERT_NE(scan_y, std::string::npos) << text;
  ASSERT_NE(probe_y, std::string::npos) << text;
  EXPECT_LT(lead, probe_x);
  EXPECT_LT(probe_x, scan_y);
  EXPECT_LT(scan_y, probe_y);

  // Measured numbers from the fixpoint that just ran.
  size_t measured = text.find("  measured: evals=");
  ASSERT_NE(measured, std::string::npos) << text;
  unsigned long long evals = 0, derived = 0;
  ASSERT_EQ(std::sscanf(text.c_str() + measured,
                        "  measured: evals=%llu derived=%llu", &evals,
                        &derived),
            2);
  EXPECT_GE(evals, 1u);
  // q = narrow × narrow = {1,2}².
  EXPECT_GE(derived, 4u);

  // The selectivity feed names the join's relations, and `narrow` shows
  // why the leading scan is the bad choice: most probes into it miss.
  size_t narrow_line = text.find("    narrow: probes=");
  ASSERT_NE(narrow_line, std::string::npos) << text;
  unsigned long long probes = 0, hits = 0;
  ASSERT_EQ(std::sscanf(text.c_str() + narrow_line,
                        "    narrow: probes=%llu hits=%llu", &probes, &hits),
            2);
  EXPECT_GT(probes, 0u);
  EXPECT_LT(hits, probes);
  EXPECT_TRUE(Contains(text, "    wide: probes=")) << text;
}

TEST(ExplainTest, JsonParsesAndNamesEveryRule) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("edge(1,2). edge(2,3).\n"
                      "path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).\n"
                      "q(X) <- path(X,Y), path(Y,Z).\n")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());

  std::string json = ws.ExplainRules(ExplainFormat::kJson);
  MiniJson parser(json);
  ASSERT_TRUE(parser.Parse()) << json;

  // One "head" per installed rule, in install order.
  std::vector<std::string> expected = {"path", "path", "q"};
  EXPECT_EQ(parser.heads(), expected) << json;
  EXPECT_TRUE(Contains(json, "\"schedule\":[{")) << json;
  EXPECT_TRUE(Contains(json, "\"measured\":{")) << json;
  EXPECT_TRUE(Contains(json, "\"selectivity\":[")) << json;
}

TEST(ExplainTest, PreparedQueryExplainRendersItsPlan) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("edge(1,2). edge(2,3).\n"
                      "path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).\n")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto query = ws.Prepare("path(1,X)");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(query->Run().ok());

  std::string text = query->Explain();
  EXPECT_TRUE(Contains(text, "head=path")) << text;
  EXPECT_TRUE(Contains(text, "schedule (full):")) << text;
  // The query's single literal probes with the constant column bound.
  EXPECT_TRUE(Contains(text, "path(1,X)")) << text;

  std::string json = query->Explain(ExplainFormat::kJson);
  MiniJson parser(json);
  ASSERT_TRUE(parser.Parse()) << json;
  ASSERT_EQ(parser.heads().size(), 1u);
  EXPECT_EQ(parser.heads()[0], "path");
}

TEST(ExplainTest, UnevaluatedRuleReadsAsZerosNotErrors) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("r(X) <- s(X), t(X).").ok());
  // No fixpoint: every measured counter is created on read.
  std::string text = ws.ExplainRules();
  EXPECT_TRUE(
      Contains(text, "measured: evals=0 derived=0 probes=0 eval_us=0"))
      << text;
}

TEST(ExplainTest, MetricsDisabledStillRendersSchedule) {
  Workspace::Options opts;
  opts.metrics = false;
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load("r(X) <- s(X), t(X).").ok());
  std::string text = ws.ExplainRules();
  EXPECT_TRUE(Contains(text, "schedule (full):")) << text;
  EXPECT_TRUE(Contains(text, "measured: (metrics disabled)")) << text;
}

}  // namespace
}  // namespace lbtrust::datalog
