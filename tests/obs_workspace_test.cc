// End-to-end observability: the workspace-owned metrics registry and span
// tracer, exercised through real fixpoints, commits, prepared queries and a
// trust runtime. Asserts the acceptance surface of the unified registry:
// per-rule stats, commit/query latency histograms and credential/crypto
// counters all appear in one DumpMetrics() page.
#include <string>

#include <gtest/gtest.h>

#include "datalog/workspace.h"
#include "obs/trace.h"
#include "trust/trust_runtime.h"

namespace lbtrust {
namespace {

using datalog::Workspace;

constexpr const char* kClosure =
    "edge(1,2). edge(2,3). edge(3,4).\n"
    "path(X,Y) <- edge(X,Y).\n"
    "path(X,Z) <- path(X,Y), edge(Y,Z).\n";

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(ObsWorkspaceTest, FixpointPopulatesEngineMetrics) {
  Workspace ws;
  ASSERT_NE(ws.metrics(), nullptr);
  ASSERT_TRUE(ws.Load(kClosure).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());

  std::string page = ws.DumpMetrics();
  // Per-rule counters, labeled by head predicate and rule id.
  EXPECT_TRUE(Contains(page, "lbtrust_rule_evals_total{head=\"path\""))
      << page;
  EXPECT_TRUE(Contains(page, "lbtrust_rule_tuples_derived_total{head=\"path\""))
      << page;
  EXPECT_TRUE(Contains(page, "lbtrust_rule_probes_total{head=\"path\""))
      << page;
  // Per-relation probe/hit counters (selectivity feed).
  EXPECT_TRUE(Contains(page, "lbtrust_relation_probes_total{relation=\"edge\"}"))
      << page;
  EXPECT_TRUE(
      Contains(page, "lbtrust_relation_probe_hits_total{relation=\"edge\"}"))
      << page;
  // Global evaluation counters and the fixpoint path split.
  EXPECT_GT(ws.metrics()->GetCounter("lbtrust_tuples_derived_total")->value(),
            0u);
  EXPECT_GT(ws.metrics()->GetCounter("lbtrust_eval_rounds_total")->value(),
            0u);
  EXPECT_GT(
      ws.metrics()->GetCounter("lbtrust_fixpoints_total", "path=\"full\"")
          ->value(),
      0u);
  EXPECT_GT(
      ws.metrics()->GetHistogram("lbtrust_fixpoint_latency_microseconds")
          ->count(),
      0u);
  // Relation cardinality gauges refresh at dump time: path is the full
  // transitive closure of the 4-node chain (3+2+1 = 6 rows).
  EXPECT_TRUE(Contains(page, "lbtrust_relation_rows{relation=\"path\"} 6\n"))
      << page;
}

TEST(ObsWorkspaceTest, CommitAndQueryLatencyHistogramsRecord) {
  Workspace ws;
  ASSERT_TRUE(ws.Load(kClosure).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());

  // Transaction commit (EDB-only: rides the delta path) records commit
  // latency and bumps the delta fixpoint counter.
  auto txn = ws.Begin();
  txn.AddFactText("edge(4,5).");
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_GE(ws.metrics()
                ->GetHistogram("lbtrust_commit_latency_microseconds")
                ->count(),
            1u);
  EXPECT_GE(
      ws.metrics()->GetCounter("lbtrust_fixpoints_total", "path=\"delta\"")
          ->value(),
      1u);

  // Prepared-query latency: one observation per ForEach/Run/Exists.
  auto query = ws.Prepare("path(X,Y)");
  ASSERT_TRUE(query.ok());
  auto rows = query->Run();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);  // closure of the 5-node chain
  auto exists = query->Exists();
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);
  EXPECT_GE(ws.metrics()
                ->GetHistogram("lbtrust_query_latency_microseconds")
                ->count(),
            2u);
  EXPECT_TRUE(Contains(ws.DumpMetrics(),
                       "lbtrust_commit_latency_microseconds_count"));
}

TEST(ObsWorkspaceTest, MetricsOffDisablesRegistryAndDump) {
  Workspace::Options opts;
  opts.metrics = false;
  Workspace ws(opts);
  EXPECT_EQ(ws.metrics(), nullptr);
  ASSERT_TRUE(ws.Load(kClosure).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.DumpMetrics(), "# metrics disabled\n");
  // The off path computes the same fixpoint.
  auto count = ws.Count("path(X,Y)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);
}

TEST(ObsWorkspaceTest, MetricsOnAndOffDeriveIdenticalStores) {
  Workspace on;
  Workspace::Options off_opts;
  off_opts.metrics = false;
  Workspace off(off_opts);
  for (Workspace* ws : {&on, &off}) {
    ASSERT_TRUE(ws->Load(kClosure).ok());
    ASSERT_TRUE(ws->Fixpoint().ok());
  }
  auto on_rows = on.Query("path(X,Y)");
  auto off_rows = off.Query("path(X,Y)");
  ASSERT_TRUE(on_rows.ok());
  ASSERT_TRUE(off_rows.ok());
  EXPECT_EQ(*on_rows, *off_rows);
}

TEST(ObsWorkspaceTest, TracerEmitsNestedFixpointSpans) {
  Workspace ws;
  obs::Tracer tracer;
  ws.SetTracer(&tracer);
  ASSERT_TRUE(ws.Load(kClosure).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  ws.SetTracer(nullptr);

  EXPECT_GT(tracer.event_count(), 2u);
  std::string json = tracer.ExportJson();
  EXPECT_TRUE(Contains(json, "\"name\":\"fixpoint\"")) << json;
  EXPECT_TRUE(Contains(json, "\"name\":\"stratum\"")) << json;
  EXPECT_TRUE(Contains(json, "\"name\":\"rule\"")) << json;
  // Span args carry the per-fixpoint/per-rule counters.
  EXPECT_TRUE(Contains(json, "\"path\":\"full\"")) << json;
  EXPECT_TRUE(Contains(json, "\"derived\":")) << json;
}

TEST(ObsTrustTest, RuntimeDumpCoversCredentialAndCryptoCounters) {
  trust::TrustRuntime::Options opts;
  opts.principal = "alice";
  opts.rsa_bits = 512;
  auto rt = trust::TrustRuntime::Create(opts);
  ASSERT_TRUE(rt.ok());

  // Issuing signs a credential: the store and RSA counters must move.
  auto hash = (*rt)->Issue("grant(bob,file1,read).");
  ASSERT_TRUE(hash.ok());

  std::string page = (*rt)->DumpMetrics();
  EXPECT_TRUE(Contains(page, "lbtrust_credential_store_puts_total 1\n"))
      << page;
  EXPECT_TRUE(Contains(page, "lbtrust_crypto_ops_total{op=\"rsa_sign\"}"))
      << page;
  EXPECT_TRUE(Contains(page, "lbtrust_credential_verify_total{cache=\"hit\"}"))
      << page;
  // Engine metrics share the same page (unified registry).
  EXPECT_TRUE(Contains(page, "lbtrust_fixpoints_total")) << page;
}

}  // namespace
}  // namespace lbtrust
