// Parallel intra-stratum evaluation: determinism, differential equality
// against the sequential engine, and the frozen-relation concurrency
// contract (the latter is what the ThreadSanitizer CI job exercises).
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/dump.h"
#include "datalog/relation.h"
#include "datalog/workspace.h"
#include "golden_programs.h"
#include "util/strings.h"

namespace lbtrust::datalog {
namespace {

/// Shard count the suite's fixed-count tests run with. Defaults to 1 (the
/// classic layout) so the plain ctest run covers the pre-sharding paths;
/// the TSan CI job sets LBTRUST_TEST_SHARDS=4 to drive every test below
/// through the parallel shard-replay merge.
size_t DefaultShards() {
  const char* env = std::getenv("LBTRUST_TEST_SHARDS");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<size_t>(std::strtoul(env, nullptr, 10));
}

std::string DumpWithThreads(const lbtrust::testing::GoldenProgram& prog,
                            unsigned threads, size_t shards = 0) {
  Workspace::Options opts;
  opts.principal = prog.principal;
  opts.threads = threads;
  opts.shards = shards == 0 ? DefaultShards() : shards;
  Workspace ws(opts);
  auto load = ws.Load(prog.program);
  EXPECT_TRUE(load.ok()) << prog.name << ": " << load.ToString();
  auto fix = ws.Fixpoint();
  EXPECT_TRUE(fix.ok()) << prog.name << ": " << fix.ToString();
  return DumpWorkspace(ws, 0);
}

// Every corpus program — joins, recursion, negation, aggregates, code
// values, codegen activation — must dump byte-identically whether rules
// evaluate sequentially or across a worker pool.
class ParallelDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelDifferentialTest, ThreadCountsAgree) {
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  std::string seq = DumpWithThreads(prog, 1);
  EXPECT_EQ(seq, DumpWithThreads(prog, 2)) << "program: " << prog.name;
  EXPECT_EQ(seq, DumpWithThreads(prog, 4)) << "program: " << prog.name;
}

TEST_P(ParallelDifferentialTest, ParallelRunsAreDeterministic) {
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  EXPECT_EQ(DumpWithThreads(prog, 4), DumpWithThreads(prog, 4))
      << "program: " << prog.name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParallelDifferentialTest,
    ::testing::Range<size_t>(0, lbtrust::testing::kNumGoldenPrograms),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return lbtrust::testing::kGoldenPrograms[info.param].name;
    });

// A deeper recursive workload than the corpus: transitive closure of a
// chain with a back edge (n rounds of n-row deltas — the worst case for
// round synchronization) plus cross joins that re-derive tuples.
std::string TransitiveClosureDump(unsigned threads, int n, bool batched,
                                  size_t shards = 0) {
  Workspace::Options opts;
  opts.threads = threads;
  opts.shards = shards == 0 ? DefaultShards() : shards;
  Workspace ws(opts);
  EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).\n"
                      "reach(Y) <- seed(X), path(X,Y).\n"
                      "seed(0).")
                  .ok());
  if (batched) {
    Transaction txn = ws.Begin();
    for (int i = 0; i + 1 < n; ++i) {
      txn.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    txn.AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
    EXPECT_TRUE(txn.Commit().ok());
  } else {
    for (int i = 0; i + 1 < n; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    (void)ws.AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
    EXPECT_TRUE(ws.Fixpoint().ok());
  }
  EXPECT_EQ(ws.GetRelation("path")->size(), static_cast<size_t>(n) * n);
  return DumpWorkspace(ws, 0);
}

TEST(ParallelEval, TransitiveClosureMatchesSequential) {
  std::string seq = TransitiveClosureDump(1, 48, /*batched=*/false);
  EXPECT_EQ(seq, TransitiveClosureDump(2, 48, false));
  EXPECT_EQ(seq, TransitiveClosureDump(4, 48, false));
  EXPECT_EQ(seq, TransitiveClosureDump(3, 48, false));
}

// The delta-aware (incremental) fixpoint also runs its rounds through the
// parallel path: a warm store extended by a batch commit must agree.
TEST(ParallelEval, DeltaFixpointMatchesSequential) {
  std::string seq = TransitiveClosureDump(1, 32, /*batched=*/true);
  EXPECT_EQ(seq, TransitiveClosureDump(4, 32, true));
}

TEST(ParallelEval, WarmStoreIncrementalCommits) {
  auto run = [](unsigned threads) {
    Workspace::Options opts;
    opts.threads = threads;
    opts.shards = DefaultShards();
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).")
                    .ok());
    for (int i = 0; i + 1 < 24; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    EXPECT_TRUE(ws.Fixpoint().ok());
    // Several small incremental commits against the warm closure.
    for (int i = 0; i < 6; ++i) {
      Transaction txn = ws.Begin();
      txn.AddFact("edge", {Value::Int(100 + i), Value::Int(i)});
      EXPECT_TRUE(txn.Commit().ok());
      EXPECT_TRUE(ws.last_fixpoint_incremental());
    }
    return DumpWorkspace(ws, 0);
  };
  EXPECT_EQ(run(1), run(4));
}

// Mixed rounds: parallel-safe join rules coexisting with pattern/builtin
// rules (which evaluate sequentially in the merge phase) and negation.
TEST(ParallelEval, MixedSafeAndUnsafeRules) {
  auto run = [](unsigned threads) {
    Workspace::Options opts;
    opts.threads = threads;
    opts.shards = DefaultShards();
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("link(X,Y) <- edge(X,Y).\n"
                        "link(X,Z) <- link(X,Y), edge(Y,Z).\n"
                        "dist(X, Y, 1) <- edge(X, Y).\n"       // const col
                        "far(X) <- node(X), !edge(X, Y).\n"    // negation
                        "twice(X, X + X) <- node(X).\n"        // arithmetic
                        "small(X) <- node(X), X < 7.\n"        // builtin
                        "shifted(Y) <- node(X), Y = X * 2.\n")  // equality
                    .ok());
    for (int i = 0; i < 20; ++i) {
      (void)ws.AddFact("node", {Value::Int(i)});
      if (i + 1 < 20 && i % 3 != 2) {
        (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
      }
    }
    EXPECT_TRUE(ws.Fixpoint().ok());
    return DumpWorkspace(ws, 0);
  };
  std::string seq = run(1);
  EXPECT_EQ(seq, run(2));
  EXPECT_EQ(seq, run(4));
}

// Duplicate derivations across chunks: a diamond-heavy graph where the
// same path tuple is derivable from many delta rows in one round. The
// merge's deduplicating insert must keep set semantics.
TEST(ParallelEval, DuplicateDerivationsAcrossChunks) {
  auto run = [](unsigned threads) {
    Workspace::Options opts;
    opts.threads = threads;
    opts.shards = DefaultShards();
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).")
                    .ok());
    // Layered complete bipartite graph: 4 layers of 6 nodes.
    for (int layer = 0; layer < 3; ++layer) {
      for (int a = 0; a < 6; ++a) {
        for (int b = 0; b < 6; ++b) {
          (void)ws.AddFact("edge", {Value::Int(layer * 10 + a),
                                    Value::Int((layer + 1) * 10 + b)});
        }
      }
    }
    EXPECT_TRUE(ws.Fixpoint().ok());
    return DumpWorkspace(ws, 0);
  };
  std::string seq = run(1);
  EXPECT_EQ(seq, run(4));
}

// The tuple budget counts distinct inserts. A dense join emits the same
// new tuple many times before the merge deduplicates; those raw duplicate
// emissions must not fail a budget the sequential engine passes (the
// chunk buffer compacts instead).
TEST(ParallelEval, DuplicateEmissionsDoNotTripTupleBudget) {
  auto run = [](unsigned threads) {
    constexpr int m = 16;
    Workspace::Options opts;
    opts.threads = threads;
    // Distinct derived tuples: 3*m^2 = 768. One parallel chunk's raw
    // emissions in the cross-layer round reach ~(m^2/4)*m = 1024.
    opts.limits.max_tuples = 900;
    opts.shards = DefaultShards();
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).")
                    .ok());
    for (int layer = 0; layer < 2; ++layer) {
      for (int a = 0; a < m; ++a) {
        for (int b = 0; b < m; ++b) {
          (void)ws.AddFact("edge", {Value::Int(layer * 100 + a),
                                    Value::Int((layer + 1) * 100 + b)});
        }
      }
    }
    EXPECT_TRUE(ws.Fixpoint().ok()) << "threads=" << threads;
    return DumpWorkspace(ws, 0);
  };
  EXPECT_EQ(run(1), run(4));
}

// --- Sharded storage / parallel merge --------------------------------------

// The headline sharding guarantee: Workspace::Dump is byte-identical at
// every (threads, shards) combination — sharding repartitions storage and
// parallelizes the round merge but never changes the stored row set.
TEST(ShardedEval, DumpsAgreeAcrossThreadAndShardMatrix) {
  const unsigned kThreads[] = {1, 2, 4};
  const size_t kShards[] = {1, 2, 8};
  // Wide layered closure: rounds with thousands of buffered rows, which
  // is the shape that actually takes the parallel per-shard merge (the
  // chain closure's tiny rounds replay inline below the row cutoff).
  auto wide = [](unsigned threads, size_t shards) {
    Workspace::Options opts;
    opts.threads = threads;
    opts.shards = shards;
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).")
                    .ok());
    for (int layer = 0; layer < 3; ++layer) {
      for (int a = 0; a < 12; ++a) {
        for (int b = 0; b < 12; ++b) {
          (void)ws.AddFact("edge", {Value::Int(layer * 100 + a),
                                    Value::Int((layer + 1) * 100 + b)});
        }
      }
    }
    EXPECT_TRUE(ws.Fixpoint().ok());
    return DumpWorkspace(ws, 0);
  };
  std::string baseline = TransitiveClosureDump(1, 48, /*batched=*/false, 1);
  std::string wide_baseline = wide(1, 1);
  for (unsigned threads : kThreads) {
    for (size_t shards : kShards) {
      EXPECT_EQ(baseline,
                TransitiveClosureDump(threads, 48, /*batched=*/false, shards))
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(baseline,
                TransitiveClosureDump(threads, 48, /*batched=*/true, shards))
          << "batched threads=" << threads << " shards=" << shards;
      EXPECT_EQ(wide_baseline, wide(threads, shards))
          << "wide threads=" << threads << " shards=" << shards;
    }
  }
}

// Every corpus program (negation, aggregates, codegen, patterns) through
// the full matrix corner: max threads, max shards.
TEST(ShardedEval, GoldenCorpusAgreesAtMaxShards) {
  for (size_t p = 0; p < lbtrust::testing::kNumGoldenPrograms; ++p) {
    const auto& prog = lbtrust::testing::kGoldenPrograms[p];
    EXPECT_EQ(DumpWithThreads(prog, 1, 1), DumpWithThreads(prog, 4, 8))
        << "program: " << prog.name;
  }
}

// Shard counts that are not powers of two round up; counts beyond
// kMaxShards clamp. Both still dump identically.
TEST(ShardedEval, OddShardCountsNormalize) {
  std::string baseline = TransitiveClosureDump(1, 24, false, 1);
  EXPECT_EQ(baseline, TransitiveClosureDump(2, 24, false, 3));
  EXPECT_EQ(baseline, TransitiveClosureDump(2, 24, false, 1000));
}

// The parallel merge must actually spread work: on the transitive-closure
// corpus no shard may see more than 2x the mean replayed rows, and the
// parallel-path counter must have fired. Parses the Prometheus page the
// workspace metrics registry renders.
TEST(ShardedEval, MergeShardRowsAreBalanced) {
  Workspace::Options opts;
  opts.threads = 4;
  opts.shards = 4;
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).")
                  .ok());
  // Layered complete-bipartite closure: few rounds with thousands of
  // buffered rows each, so every round clears the parallel-merge row
  // cutoff (a chain graph's tiny per-round deltas deliberately would
  // not — that shape replays inline).
  for (int layer = 0; layer < 3; ++layer) {
    for (int a = 0; a < 12; ++a) {
      for (int b = 0; b < 12; ++b) {
        (void)ws.AddFact("edge", {Value::Int(layer * 100 + a),
                                  Value::Int((layer + 1) * 100 + b)});
      }
    }
  }
  ASSERT_TRUE(ws.Fixpoint().ok());

  const std::string page = ws.DumpMetrics();
  EXPECT_NE(page.find("lbtrust_merge_parallel_total"), std::string::npos);
  std::vector<uint64_t> shard_rows;
  size_t pos = 0;
  const std::string needle = "lbtrust_merge_shard_rows_total{shard=\"";
  while ((pos = page.find(needle, pos)) != std::string::npos) {
    size_t line_end = page.find('\n', pos);
    size_t value_at = page.rfind(' ', line_end);
    shard_rows.push_back(
        std::strtoull(page.c_str() + value_at + 1, nullptr, 10));
    pos = line_end;
  }
  ASSERT_EQ(shard_rows.size(), 4u) << page;
  uint64_t total = 0, max_rows = 0;
  for (uint64_t rows : shard_rows) {
    total += rows;
    max_rows = std::max(max_rows, rows);
  }
  ASSERT_GT(total, 0u);
  // The closure inserts 864 distinct path rows from thousands of
  // replayed emissions; splitmix64-routed shards stay well under 2x the
  // mean (the acceptance bound for skew).
  EXPECT_LE(max_rows, 2 * (total / shard_rows.size()))
      << "skewed shards: " << page;
}

// Erase + reinsert churn against a sharded relation keeps LookupIds ids
// valid (bit-packed ids are stable under appends to other shards).
TEST(ShardedEval, LookupIdsStableAcrossShardAppends) {
  Relation rel(2, nullptr, 8);
  ASSERT_EQ(rel.shard_count(), 8u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rel.Insert({Value::Int(i % 10), Value::Int(i)}));
  }
  IdTuple key = InternTuple(rel.pool(), {Value::Int(3)});
  std::vector<uint32_t> ids;
  rel.LookupIds(0b01, key.data(), &ids);
  ASSERT_EQ(ids.size(), 10u);
  // Appending 1000 more rows grows every shard; previously returned ids
  // must still dereference to the same rows.
  std::vector<Tuple> before;
  for (uint32_t id : ids) before.push_back(rel.RowTuple(id));
  for (int i = 100; i < 1100; ++i) {
    ASSERT_TRUE(rel.Insert({Value::Int(i % 10 + 50), Value::Int(i)}));
  }
  for (size_t k = 0; k < ids.size(); ++k) {
    EXPECT_EQ(rel.RowTuple(ids[k]), before[k]);
  }
}

// The parallel merge's storage contract, exercised directly (so the TSan
// job covers it regardless of how many cores the host has): concurrent
// writers that own disjoint shards may InsertIdsHashed into one shared
// relation — and append to shard-routed delta relations — with no
// synchronization beyond the join at the end.
TEST(RelationConcurrency, DisjointShardWritersAreRaceFree) {
  constexpr size_t kShards = 8;
  constexpr int kRows = 4000;
  Relation full(2, nullptr, kShards);
  Relation delta(2, nullptr, kShards);
  ASSERT_EQ(full.shard_count(), kShards);
  // Intern and route every row on this thread, exactly like the round
  // prep (workers never touch the pool).
  std::vector<std::vector<std::pair<IdTuple, uint64_t>>> per_shard(kShards);
  for (int i = 0; i < kRows; ++i) {
    IdTuple row = InternTuple(full.pool(),
                              {Value::Int(i % 97), Value::Int(i)});
    const uint64_t h = full.RowHash(row.data());
    per_shard[full.ShardOfHash(h)].emplace_back(std::move(row), h);
  }
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (size_t s = t * 2; s < t * 2 + 2; ++s) {
        for (const auto& [row, h] : per_shard[s]) {
          if (full.InsertIdsHashed(row.data(), h)) {
            delta.AppendUncheckedHashed(row.data(), h);
          }
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(full.size(), static_cast<size_t>(kRows));
  EXPECT_EQ(delta.size(), static_cast<size_t>(kRows));
  for (size_t s = 0; s < kShards; ++s) {
    for (const auto& [row, h] : per_shard[s]) {
      EXPECT_TRUE(full.ContainsIds(row.data()));
    }
  }
}

// --- Frozen-relation concurrency contract ---------------------------------

// Regression for the const-lookup index race: LookupIds/MatchesIds were
// `const` but lazily mutated `indexes_`, so two concurrent readers raced.
// With BuildIndex + FreezeForRead, concurrent read-only probes touch no
// mutable state; the TSan CI job proves it.
TEST(RelationConcurrency, ConcurrentFrozenProbesAreRaceFree) {
  Relation rel(2);
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(rel.Insert({Value::Int(i % 64), Value::Int(i)}));
  }
  rel.BuildIndex(0b01);
  rel.BuildIndex(0b10);
  rel.FreezeForRead();

  std::atomic<size_t> total_hits{0};
  std::atomic<bool> failed{false};
  auto reader = [&](int tid) {
    size_t hits = 0;
    std::vector<uint32_t> scratch;
    for (int iter = 0; iter < 2000; ++iter) {
      // Column-0 values 0..63 each occur 8 times; 64..127 never.
      int k = (iter * 7 + tid * 13) % 128;
      ValueId key[1];
      if (!rel.pool()->Find(Value::Int(k), &key[0])) {
        failed = true;  // ints are inline-representable: Find never misses
        continue;
      }
      scratch.clear();
      rel.LookupIds(0b01, key, &scratch);
      hits += scratch.size();
      if (scratch.size() != (k < 64 ? 8u : 0u)) failed = true;
      if (rel.MatchesIds(0b01, key) != (k < 64)) failed = true;
      if (k < 64) {
        // Row (k, k + 64) exists: i = k + 64 has i % 64 == k.
        ValueId row[2];
        if (!rel.pool()->Find(Value::Int(k), &row[0]) ||
            !rel.pool()->Find(Value::Int(k + 64), &row[1]) ||
            !rel.ContainsIds(row)) {
          failed = true;
        }
      }
    }
    total_hits.fetch_add(hits);
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(reader, t);
  for (auto& t : threads) t.join();
  rel.Thaw();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(total_hits.load(), 0u);
}

// End-to-end: concurrent Fixpoints on independent workspaces (one pool and
// store per workspace — the sharding unit) must not interfere.
TEST(RelationConcurrency, IndependentWorkspacesInParallel) {
  std::vector<std::string> dumps(3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t, &dumps] {
      Workspace::Options opts;
      opts.threads = 2;
      opts.shards = DefaultShards();
      Workspace ws(opts);
      ASSERT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                          "path(X,Z) <- path(X,Y), edge(Y,Z).")
                      .ok());
      for (int i = 0; i + 1 < 20; ++i) {
        (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
      }
      ASSERT_TRUE(ws.Fixpoint().ok());
      dumps[t] = DumpWorkspace(ws, 0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

using RelationFreezeDeathTest = ::testing::Test;

TEST(RelationFreezeDeathTest, FrozenMutationHardFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Relation rel(1);
  ASSERT_TRUE(rel.Insert({Value::Int(1)}));
  rel.FreezeForRead();
  IdTuple row = InternTuple(rel.pool(), {Value::Int(2)});
  EXPECT_DEATH(rel.InsertIds(row.data()), "frozen relation");
  EXPECT_DEATH(rel.EraseIds(row.data()), "frozen relation");
  EXPECT_DEATH(rel.Clear(), "frozen relation");
  rel.Thaw();
  EXPECT_TRUE(rel.InsertIds(row.data()));
}

TEST(RelationFreezeDeathTest, FrozenProbeWithoutIndexHardFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Relation rel(2);
  ASSERT_TRUE(rel.Insert({Value::Int(1), Value::Int(2)}));
  rel.BuildIndex(0b01);
  rel.FreezeForRead();
  IdTuple key = InternTuple(rel.pool(), {Value::Int(1)});
  std::vector<uint32_t> out;
  rel.LookupIds(0b01, key.data(), &out);  // pre-built: fine
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DEATH(rel.LookupIds(0b10, key.data(), &out), "pre-built index");
  // A stale index (built before later inserts) must also be rejected.
  rel.Thaw();
  ASSERT_TRUE(rel.Insert({Value::Int(3), Value::Int(4)}));
  rel.FreezeForRead();
  EXPECT_DEATH(rel.MatchesIds(0b01, key.data()), "pre-built index");
}

}  // namespace
}  // namespace lbtrust::datalog
