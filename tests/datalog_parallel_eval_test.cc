// Parallel intra-stratum evaluation: determinism, differential equality
// against the sequential engine, and the frozen-relation concurrency
// contract (the latter is what the ThreadSanitizer CI job exercises).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/dump.h"
#include "datalog/relation.h"
#include "datalog/workspace.h"
#include "golden_programs.h"
#include "util/strings.h"

namespace lbtrust::datalog {
namespace {

std::string DumpWithThreads(const lbtrust::testing::GoldenProgram& prog,
                            unsigned threads) {
  Workspace::Options opts;
  opts.principal = prog.principal;
  opts.threads = threads;
  Workspace ws(opts);
  auto load = ws.Load(prog.program);
  EXPECT_TRUE(load.ok()) << prog.name << ": " << load.ToString();
  auto fix = ws.Fixpoint();
  EXPECT_TRUE(fix.ok()) << prog.name << ": " << fix.ToString();
  return DumpWorkspace(ws, 0);
}

// Every corpus program — joins, recursion, negation, aggregates, code
// values, codegen activation — must dump byte-identically whether rules
// evaluate sequentially or across a worker pool.
class ParallelDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelDifferentialTest, ThreadCountsAgree) {
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  std::string seq = DumpWithThreads(prog, 1);
  EXPECT_EQ(seq, DumpWithThreads(prog, 2)) << "program: " << prog.name;
  EXPECT_EQ(seq, DumpWithThreads(prog, 4)) << "program: " << prog.name;
}

TEST_P(ParallelDifferentialTest, ParallelRunsAreDeterministic) {
  const auto& prog = lbtrust::testing::kGoldenPrograms[GetParam()];
  EXPECT_EQ(DumpWithThreads(prog, 4), DumpWithThreads(prog, 4))
      << "program: " << prog.name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParallelDifferentialTest,
    ::testing::Range<size_t>(0, lbtrust::testing::kNumGoldenPrograms),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return lbtrust::testing::kGoldenPrograms[info.param].name;
    });

// A deeper recursive workload than the corpus: transitive closure of a
// chain with a back edge (n rounds of n-row deltas — the worst case for
// round synchronization) plus cross joins that re-derive tuples.
std::string TransitiveClosureDump(unsigned threads, int n, bool batched) {
  Workspace::Options opts;
  opts.threads = threads;
  Workspace ws(opts);
  EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).\n"
                      "reach(Y) <- seed(X), path(X,Y).\n"
                      "seed(0).")
                  .ok());
  if (batched) {
    Transaction txn = ws.Begin();
    for (int i = 0; i + 1 < n; ++i) {
      txn.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    txn.AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
    EXPECT_TRUE(txn.Commit().ok());
  } else {
    for (int i = 0; i + 1 < n; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    (void)ws.AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
    EXPECT_TRUE(ws.Fixpoint().ok());
  }
  EXPECT_EQ(ws.GetRelation("path")->size(), static_cast<size_t>(n) * n);
  return DumpWorkspace(ws, 0);
}

TEST(ParallelEval, TransitiveClosureMatchesSequential) {
  std::string seq = TransitiveClosureDump(1, 48, /*batched=*/false);
  EXPECT_EQ(seq, TransitiveClosureDump(2, 48, false));
  EXPECT_EQ(seq, TransitiveClosureDump(4, 48, false));
  EXPECT_EQ(seq, TransitiveClosureDump(3, 48, false));
}

// The delta-aware (incremental) fixpoint also runs its rounds through the
// parallel path: a warm store extended by a batch commit must agree.
TEST(ParallelEval, DeltaFixpointMatchesSequential) {
  std::string seq = TransitiveClosureDump(1, 32, /*batched=*/true);
  EXPECT_EQ(seq, TransitiveClosureDump(4, 32, true));
}

TEST(ParallelEval, WarmStoreIncrementalCommits) {
  auto run = [](unsigned threads) {
    Workspace::Options opts;
    opts.threads = threads;
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).")
                    .ok());
    for (int i = 0; i + 1 < 24; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    EXPECT_TRUE(ws.Fixpoint().ok());
    // Several small incremental commits against the warm closure.
    for (int i = 0; i < 6; ++i) {
      Transaction txn = ws.Begin();
      txn.AddFact("edge", {Value::Int(100 + i), Value::Int(i)});
      EXPECT_TRUE(txn.Commit().ok());
      EXPECT_TRUE(ws.last_fixpoint_incremental());
    }
    return DumpWorkspace(ws, 0);
  };
  EXPECT_EQ(run(1), run(4));
}

// Mixed rounds: parallel-safe join rules coexisting with pattern/builtin
// rules (which evaluate sequentially in the merge phase) and negation.
TEST(ParallelEval, MixedSafeAndUnsafeRules) {
  auto run = [](unsigned threads) {
    Workspace::Options opts;
    opts.threads = threads;
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("link(X,Y) <- edge(X,Y).\n"
                        "link(X,Z) <- link(X,Y), edge(Y,Z).\n"
                        "dist(X, Y, 1) <- edge(X, Y).\n"       // const col
                        "far(X) <- node(X), !edge(X, Y).\n"    // negation
                        "twice(X, X + X) <- node(X).\n"        // arithmetic
                        "small(X) <- node(X), X < 7.\n"        // builtin
                        "shifted(Y) <- node(X), Y = X * 2.\n")  // equality
                    .ok());
    for (int i = 0; i < 20; ++i) {
      (void)ws.AddFact("node", {Value::Int(i)});
      if (i + 1 < 20 && i % 3 != 2) {
        (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
      }
    }
    EXPECT_TRUE(ws.Fixpoint().ok());
    return DumpWorkspace(ws, 0);
  };
  std::string seq = run(1);
  EXPECT_EQ(seq, run(2));
  EXPECT_EQ(seq, run(4));
}

// Duplicate derivations across chunks: a diamond-heavy graph where the
// same path tuple is derivable from many delta rows in one round. The
// merge's deduplicating insert must keep set semantics.
TEST(ParallelEval, DuplicateDerivationsAcrossChunks) {
  auto run = [](unsigned threads) {
    Workspace::Options opts;
    opts.threads = threads;
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).")
                    .ok());
    // Layered complete bipartite graph: 4 layers of 6 nodes.
    for (int layer = 0; layer < 3; ++layer) {
      for (int a = 0; a < 6; ++a) {
        for (int b = 0; b < 6; ++b) {
          (void)ws.AddFact("edge", {Value::Int(layer * 10 + a),
                                    Value::Int((layer + 1) * 10 + b)});
        }
      }
    }
    EXPECT_TRUE(ws.Fixpoint().ok());
    return DumpWorkspace(ws, 0);
  };
  std::string seq = run(1);
  EXPECT_EQ(seq, run(4));
}

// The tuple budget counts distinct inserts. A dense join emits the same
// new tuple many times before the merge deduplicates; those raw duplicate
// emissions must not fail a budget the sequential engine passes (the
// chunk buffer compacts instead).
TEST(ParallelEval, DuplicateEmissionsDoNotTripTupleBudget) {
  auto run = [](unsigned threads) {
    constexpr int m = 16;
    Workspace::Options opts;
    opts.threads = threads;
    // Distinct derived tuples: 3*m^2 = 768. One parallel chunk's raw
    // emissions in the cross-layer round reach ~(m^2/4)*m = 1024.
    opts.limits.max_tuples = 900;
    Workspace ws(opts);
    EXPECT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).")
                    .ok());
    for (int layer = 0; layer < 2; ++layer) {
      for (int a = 0; a < m; ++a) {
        for (int b = 0; b < m; ++b) {
          (void)ws.AddFact("edge", {Value::Int(layer * 100 + a),
                                    Value::Int((layer + 1) * 100 + b)});
        }
      }
    }
    EXPECT_TRUE(ws.Fixpoint().ok()) << "threads=" << threads;
    return DumpWorkspace(ws, 0);
  };
  EXPECT_EQ(run(1), run(4));
}

// --- Frozen-relation concurrency contract ---------------------------------

// Regression for the const-lookup index race: LookupIds/MatchesIds were
// `const` but lazily mutated `indexes_`, so two concurrent readers raced.
// With BuildIndex + FreezeForRead, concurrent read-only probes touch no
// mutable state; the TSan CI job proves it.
TEST(RelationConcurrency, ConcurrentFrozenProbesAreRaceFree) {
  Relation rel(2);
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(rel.Insert({Value::Int(i % 64), Value::Int(i)}));
  }
  rel.BuildIndex(0b01);
  rel.BuildIndex(0b10);
  rel.FreezeForRead();

  std::atomic<size_t> total_hits{0};
  std::atomic<bool> failed{false};
  auto reader = [&](int tid) {
    size_t hits = 0;
    std::vector<uint32_t> scratch;
    for (int iter = 0; iter < 2000; ++iter) {
      // Column-0 values 0..63 each occur 8 times; 64..127 never.
      int k = (iter * 7 + tid * 13) % 128;
      ValueId key[1];
      if (!rel.pool()->Find(Value::Int(k), &key[0])) {
        failed = true;  // ints are inline-representable: Find never misses
        continue;
      }
      scratch.clear();
      rel.LookupIds(0b01, key, &scratch);
      hits += scratch.size();
      if (scratch.size() != (k < 64 ? 8u : 0u)) failed = true;
      if (rel.MatchesIds(0b01, key) != (k < 64)) failed = true;
      if (k < 64) {
        // Row (k, k + 64) exists: i = k + 64 has i % 64 == k.
        ValueId row[2];
        if (!rel.pool()->Find(Value::Int(k), &row[0]) ||
            !rel.pool()->Find(Value::Int(k + 64), &row[1]) ||
            !rel.ContainsIds(row)) {
          failed = true;
        }
      }
    }
    total_hits.fetch_add(hits);
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(reader, t);
  for (auto& t : threads) t.join();
  rel.Thaw();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(total_hits.load(), 0u);
}

// End-to-end: concurrent Fixpoints on independent workspaces (one pool and
// store per workspace — the sharding unit) must not interfere.
TEST(RelationConcurrency, IndependentWorkspacesInParallel) {
  std::vector<std::string> dumps(3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t, &dumps] {
      Workspace::Options opts;
      opts.threads = 2;
      Workspace ws(opts);
      ASSERT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                          "path(X,Z) <- path(X,Y), edge(Y,Z).")
                      .ok());
      for (int i = 0; i + 1 < 20; ++i) {
        (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
      }
      ASSERT_TRUE(ws.Fixpoint().ok());
      dumps[t] = DumpWorkspace(ws, 0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

using RelationFreezeDeathTest = ::testing::Test;

TEST(RelationFreezeDeathTest, FrozenMutationHardFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Relation rel(1);
  ASSERT_TRUE(rel.Insert({Value::Int(1)}));
  rel.FreezeForRead();
  IdTuple row = InternTuple(rel.pool(), {Value::Int(2)});
  EXPECT_DEATH(rel.InsertIds(row.data()), "frozen relation");
  EXPECT_DEATH(rel.EraseIds(row.data()), "frozen relation");
  EXPECT_DEATH(rel.Clear(), "frozen relation");
  rel.Thaw();
  EXPECT_TRUE(rel.InsertIds(row.data()));
}

TEST(RelationFreezeDeathTest, FrozenProbeWithoutIndexHardFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Relation rel(2);
  ASSERT_TRUE(rel.Insert({Value::Int(1), Value::Int(2)}));
  rel.BuildIndex(0b01);
  rel.FreezeForRead();
  IdTuple key = InternTuple(rel.pool(), {Value::Int(1)});
  std::vector<uint32_t> out;
  rel.LookupIds(0b01, key.data(), &out);  // pre-built: fine
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DEATH(rel.LookupIds(0b10, key.data(), &out), "pre-built index");
  // A stale index (built before later inserts) must also be rejected.
  rel.Thaw();
  ASSERT_TRUE(rel.Insert({Value::Int(3), Value::Int(4)}));
  rel.FreezeForRead();
  EXPECT_DEATH(rel.MatchesIds(0b01, key.data()), "pre-built index");
}

}  // namespace
}  // namespace lbtrust::datalog
