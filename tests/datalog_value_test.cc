#include "datalog/value.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/parser.h"

namespace lbtrust::datalog {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_nil());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("s").AsText(), "s");
  EXPECT_EQ(Value::Sym("alice").AsText(), "alice");
}

TEST(ValueTest, StringAndSymbolAreDistinct) {
  EXPECT_NE(Value::Str("alice"), Value::Sym("alice"));
  EXPECT_NE(Value::Str("alice").Hash(), Value::Sym("alice").Hash());
}

TEST(ValueTest, NumericView) {
  EXPECT_TRUE(Value::Int(3).IsNumeric());
  EXPECT_TRUE(Value::Double(3.5).IsNumeric());
  EXPECT_FALSE(Value::Sym("x").IsNumeric());
  EXPECT_EQ(Value::Int(3).NumericValue(), 3.0);
  // Int and Double are distinct values even at equal magnitude.
  EXPECT_NE(Value::Int(3), Value::Double(3.0));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Sym("bob").ToString(), "bob");
  EXPECT_EQ(Value::Str("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Double(0.5).ToString(), "0.5");
  // Doubles always print distinguishably from ints.
  EXPECT_EQ(Value::Double(3).ToString(), "3.0");
  EXPECT_EQ(Value::Part("export", Value::Sym("alice")).ToString(),
            "export[alice]");
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  std::set<Value> ordered = {Value::Int(1), Value::Sym("a"), Value::Str("a"),
                             Value::Bool(true), Value::Double(0.5)};
  EXPECT_EQ(ordered.size(), 5u);
  EXPECT_FALSE(Value::Int(1) < Value::Int(1));
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
}

TEST(ValueTest, CodeEqualityByCanonicalForm) {
  auto t1 = ParseTermText("[| p(X) <-  q(X). |]");
  auto t2 = ParseTermText("[| p(X) <- q(X). |]");
  auto t3 = ParseTermText("[| p(X) <- r(X). |]");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->value, t2->value);
  EXPECT_EQ(t1->value.Hash(), t2->value.Hash());
  EXPECT_NE(t1->value, t3->value);
}

TEST(ValueTest, PartEqualityIncludesKey) {
  Value a = Value::Part("export", Value::Sym("alice"));
  Value b = Value::Part("export", Value::Sym("bob"));
  Value a2 = Value::Part("export", Value::Sym("alice"));
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, Value::Part("import", Value::Sym("alice")));
}

TEST(TupleHashTest, UsableInHashSet) {
  std::unordered_set<Tuple, TupleHash> set;
  set.insert({Value::Sym("a"), Value::Int(1)});
  set.insert({Value::Sym("a"), Value::Int(1)});
  set.insert({Value::Sym("a"), Value::Int(2)});
  set.insert({Value::Int(1), Value::Sym("a")});  // order matters
  EXPECT_EQ(set.size(), 3u);
}

TEST(TupleTest, ToStringIsReadable) {
  Tuple t = {Value::Sym("alice"), Value::Int(3)};
  EXPECT_EQ(TupleToString(t), "(alice,3)");
  EXPECT_EQ(TupleToString({}), "()");
}

}  // namespace
}  // namespace lbtrust::datalog
