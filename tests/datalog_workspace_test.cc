#include "datalog/workspace.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "trust/auth_scheme.h"
#include "trust/trust_runtime.h"

namespace lbtrust::datalog {
namespace {

// Canonical dump of every relation visible after a Fixpoint(), for
// byte-identical comparison between evaluation strategies.
std::string Snapshot(const Workspace& ws) {
  std::string out;
  for (const auto& [name, info] : ws.catalog().predicates()) {
    if (info.builtin) continue;
    const Relation* rel = ws.GetRelation(name);
    if (rel == nullptr) continue;
    std::vector<std::string> rows;
    rows.reserve(rel->size());
    for (uint32_t i : rel->Rows()) {
      rows.push_back(TupleToString(rel->RowTuple(i)));
    }
    std::sort(rows.begin(), rows.end());
    out += name;
    out += ":\n";
    for (const std::string& r : rows) {
      out += "  ";
      out += r;
      out += "\n";
    }
  }
  return out;
}

TEST(WorkspaceTest, FactArityMismatchRejected) {
  Workspace ws;
  ASSERT_TRUE(ws.AddFact("p", {Value::Int(1), Value::Int(2)}).ok());
  auto st = ws.AddFact("p", {Value::Int(1)});
  EXPECT_EQ(st.code(), util::StatusCode::kTypeError);
}

TEST(WorkspaceTest, ArityCapEnforcedAtBoundary) {
  // Probe masks address columns as uint64_t bits, so arity is capped at
  // 64; 63 and 64 are legal, 65 is a clean kInvalidArgument (not UB).
  Workspace ws;
  EXPECT_TRUE(ws.EnsurePredicate("w63", 63).ok());
  EXPECT_TRUE(ws.EnsurePredicate("w64", 64).ok());
  EXPECT_EQ(ws.EnsurePredicate("w65", 65).code(),
            util::StatusCode::kInvalidArgument);
  Tuple wide(65, Value::Int(1));
  EXPECT_EQ(ws.AddFact("w65fact", wide).code(),
            util::StatusCode::kInvalidArgument);
  // Boundary facts round-trip through fixpoint + query.
  Tuple row64;
  for (int i = 0; i < 64; ++i) row64.push_back(Value::Int(i));
  ASSERT_TRUE(ws.AddFact("w64", row64).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("w64(A0,A1,A2,A3,A4,A5,A6,A7,A8,A9,A10,A11,A12,A13,"
                      "A14,A15,A16,A17,A18,A19,A20,A21,A22,A23,A24,A25,A26,"
                      "A27,A28,A29,A30,A31,A32,A33,A34,A35,A36,A37,A38,A39,"
                      "A40,A41,A42,A43,A44,A45,A46,A47,A48,A49,A50,A51,A52,"
                      "A53,A54,A55,A56,A57,A58,A59,A60,A61,A62,A63)"),
            1u);
}

TEST(WorkspaceTest, CannotAssertOrDeriveBuiltins) {
  Workspace ws;
  EXPECT_FALSE(ws.AddFact("int64", {Value::Int(1)}).ok());
  EXPECT_FALSE(ws.Load("int64(X) <- p(X).").ok());
  EXPECT_FALSE(ws.Load("rule(X) <- p(X).").ok());
}

TEST(WorkspaceTest, CannotQueryBuiltins) {
  Workspace ws;
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_FALSE(ws.Query("int64(X)").ok());
}

TEST(WorkspaceTest, RemoveRuleNotFound) {
  Workspace ws;
  auto rule = ParseRuleText("p(X) <- q(X).");
  EXPECT_EQ(ws.RemoveRule(*rule).code(), util::StatusCode::kNotFound);
}

TEST(WorkspaceTest, RemoveConstraintByLabel) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("c1: p(X) -> q(X).\np(a).").ok());
  EXPECT_FALSE(ws.Fixpoint().ok());
  ASSERT_TRUE(ws.RemoveConstraintsByLabel("c1").ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.RemoveConstraintsByLabel("c1").code(),
            util::StatusCode::kNotFound);
  EXPECT_FALSE(ws.RemoveConstraintsByLabel("").ok());
}

TEST(WorkspaceTest, ActiveAndOwnerTrackInstalledRules) {
  Workspace::Options opts;
  opts.principal = "alice";
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load("p(X) <- q(X).").ok());
  ASSERT_TRUE(ws.LoadAs("bob", "r(X) <- s(X).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("active(R)"), 2u);
  EXPECT_EQ(*ws.Count("owner(R,alice)"), 1u);
  EXPECT_EQ(*ws.Count("owner(R,bob)"), 1u);
}

TEST(WorkspaceTest, PnameEnumeratesDeclaredPredicates) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(a). q(b,c).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("pname(p,\"p\")"), 1u);
  EXPECT_EQ(*ws.Count("pname(q,\"q\")"), 1u);
  // Hidden engine predicates are not listed.
  auto rows = ws.Query("pname(P,N)");
  ASSERT_TRUE(rows.ok());
  for (const Tuple& t : *rows) {
    EXPECT_NE(t[1].AsText()[0], '$');
  }
}

TEST(WorkspaceTest, LabelsSurviveInstall) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("exp1: p(X) <- q(X).").ok());
  ASSERT_EQ(ws.rules().size(), 1u);
  EXPECT_EQ(ws.rules()[0]->label, "exp1");
}

TEST(WorkspaceTest, CodegenRoundsReported) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("q(1).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.last_codegen_rounds(), 1);
  ASSERT_TRUE(ws.Load("active([| p(X) <- q(X). |]) <- q(1).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.last_codegen_rounds(), 2);
}

TEST(WorkspaceTest, CodegenCycleDetected) {
  // Each round manufactures a brand-new rule (growing body) forever; the
  // codegen cap turns this into an error instead of a hang.
  Workspace::Options opts;
  opts.max_codegen_rounds = 8;
  Workspace ws(opts);
  ASSERT_TRUE(
      ws.Load("active([| gen(X+1) <- gen(X). |]) <- go().\n"
              "active([| active([| gen(Y+2) <- gen(Y), gen(X). |]) <- "
              "gen(X). |]) <- go().\n"
              "go(). gen(0).")
          .ok());
  auto st = ws.Fixpoint();
  // Either quiesces within the cap or reports the cap cleanly — never
  // hangs. (This program quiesces: generated rules dedupe by canon.)
  EXPECT_TRUE(st.ok() || st.code() == util::StatusCode::kInternal)
      << st.ToString();
}

TEST(WorkspaceTest, HasRuleByCanon) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) <- q(X).").ok());
  EXPECT_TRUE(ws.HasRule("p(X) <- q(X)."));
  EXPECT_FALSE(ws.HasRule("p(X) <- r(X)."));
}

TEST(WorkspaceTest, FactTextRejectsRules) {
  Workspace ws;
  EXPECT_FALSE(ws.AddFactText("p(X) <- q(X).").ok());
  EXPECT_FALSE(ws.AddFactText("p(X) -> q(X).").ok());
  EXPECT_TRUE(ws.AddFactText("p(1). q(2,3).").ok());
}

TEST(WorkspaceTest, PartitionedDeclarationViaUse) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("exp[U](R) <- src(U,R). src(bob,x).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  const PredicateInfo* info = ws.catalog().Find("exp");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->partitioned);
  EXPECT_EQ(info->arity, 2u);
}

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

TEST(PreparedQueryTest, RunCountExists) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(1,a). p(2,b). p(2,c).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto q = ws.Prepare("p(X,Y)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_columns(), 2u);
  EXPECT_EQ((*q->Run()).size(), 3u);
  EXPECT_EQ(*q->Count(), 3u);
  EXPECT_TRUE(*q->Exists());

  auto bound = ws.Prepare("p(2,Y)");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound->Count(), 2u);
  auto miss = ws.Prepare("p(9,Y)");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(*miss->Exists());
  EXPECT_EQ(*miss->Count(), 0u);
}

TEST(PreparedQueryTest, HandleSurvivesRuleChurnAndFixpoints) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("r(X) <- s(X). s(1).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto q = ws.Prepare("r(X)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q->Count(), 1u);
  // New facts and even new rules deriving into the queried relation are
  // visible through the same handle after the next Fixpoint().
  ASSERT_TRUE(ws.AddFact("s", {Value::Int(2)}).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*q->Count(), 2u);
  ASSERT_TRUE(ws.Load("r(X) <- t(X). t(7).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*q->Count(), 3u);
}

TEST(PreparedQueryTest, CountMatchesRunWithoutMaterializing) {
  Workspace ws;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(ws.AddFact("big", {Value::Int(i), Value::Int(i % 7)}).ok());
  }
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto q = ws.Prepare("big(X,3)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q->Count(), (*q->Run()).size());
  EXPECT_EQ(*ws.Count("big(X,Y)"), 500u);
}

TEST(PreparedQueryTest, RejectsBuiltins) {
  Workspace ws;
  EXPECT_FALSE(ws.Prepare("int64(X)").ok());
}

TEST(PreparedQueryTest, ForEachEarlyStop) {
  Workspace ws;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ws.AddFact("n", {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(ws.Fixpoint().ok());
  auto q = ws.Prepare("n(X)");
  ASSERT_TRUE(q.ok());
  int seen = 0;
  ASSERT_TRUE(q->ForEach([&](const Tuple&) { return ++seen < 5; }).ok());
  EXPECT_EQ(seen, 5);
}

// ---------------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------------

TEST(TransactionTest, BatchCommitAppliesAllThenFixpointsOnce) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("reach(X) <- seed(X).\n"
                      "reach(Y) <- reach(X), edge(X,Y).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  Transaction txn = ws.Begin();
  txn.AddFact("seed", {Value::Int(0)});
  for (int i = 0; i + 1 < 10; ++i) {
    txn.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
  }
  EXPECT_EQ(txn.pending_ops(), 10u);
  // Nothing is visible before Commit().
  EXPECT_EQ(*ws.Count("seed(X)"), 0u);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(*ws.Count("reach(X)"), 10u);
}

TEST(TransactionTest, EdbOnlyCommitTakesDeltaPath) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).\n"
                      "edge(0,1).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  int full_before = ws.full_eval_rounds();
  Transaction txn = ws.Begin();
  txn.AddFact("edge", {Value::Int(1), Value::Int(2)})
      .AddFact("edge", {Value::Int(2), Value::Int(3)});
  ASSERT_TRUE(txn.Commit().ok());
  // The commit fixpoint seeded from deltas instead of rebuilding.
  EXPECT_TRUE(ws.last_fixpoint_incremental());
  EXPECT_EQ(ws.full_eval_rounds(), full_before);
  EXPECT_EQ(*ws.Count("path(0,Y)"), 3u);
  // Rule churn falls back to the full rebuild.
  ASSERT_TRUE(ws.AddRuleText("sym(Y,X) <- edge(X,Y).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_FALSE(ws.last_fixpoint_incremental());
  EXPECT_EQ(ws.full_eval_rounds(), full_before + 1);
}

TEST(TransactionTest, AbortDiscardsStagedOps) {
  Workspace ws;
  ASSERT_TRUE(ws.Fixpoint().ok());
  Transaction txn = ws.Begin();
  txn.AddFact("p", {Value::Int(1)}).AddRuleText("q(X) <- p(X).");
  txn.Abort();
  EXPECT_FALSE(txn.active());
  EXPECT_FALSE(txn.Commit().ok());  // committing an aborted txn fails
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("p(X)"), 0u);
  EXPECT_FALSE(ws.HasRule("q(X) <- p(X)."));
}

TEST(TransactionTest, MidBatchFailureRollsBackFactsAndRules) {
  Workspace ws;
  ASSERT_TRUE(ws.AddFact("keep", {Value::Int(1)}).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  Transaction txn = ws.Begin();
  txn.AddFact("p", {Value::Int(1)})
      .AddRuleText("q(X) <- p(X).")
      .RemoveFact("keep", {Value::Int(1)})
      .AddRuleText("not a parsable rule <-<-");  // fails here
  auto st = txn.Commit();
  EXPECT_FALSE(st.ok());
  // The applied prefix was rolled back: no p fact, no q rule, keep intact.
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("p(X)"), 0u);
  EXPECT_FALSE(ws.HasRule("q(X) <- p(X)."));
  EXPECT_EQ(*ws.Count("keep(1)"), 1u);
}

TEST(TransactionTest, SayStagesSaysFact) {
  Workspace::Options opts;
  opts.principal = "alice";
  Workspace ws(opts);
  ASSERT_TRUE(ws.Fixpoint().ok());
  Transaction txn = ws.Begin();
  txn.Say("bob", "greeting(hello).");
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(*ws.Count("says(alice,bob,R)"), 1u);
}

TEST(TransactionTest, RemoveRuleAndProgramOps) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) <- q(X). q(1).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("p(X)"), 1u);
  Transaction txn = ws.Begin();
  auto rule = ParseRuleText("p(X) <- q(X).");
  txn.RemoveRule(*rule).AddProgram("r(X) <- q(X).\nq(2).");
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(*ws.Count("p(X)"), 0u);
  EXPECT_EQ(*ws.Count("r(X)"), 2u);
}

// ---------------------------------------------------------------------------
// Delta-aware fixpoint: differential correctness
// ---------------------------------------------------------------------------

// Runs the same mutation sequence against a delta-aware workspace and a
// naive-evaluation reference; after every Fixpoint() the visible stores
// must be byte-identical.
class DifferentialHarness {
 public:
  DifferentialHarness() {
    Workspace::Options naive;
    naive.naive_eval = true;
    ref_ = std::make_unique<Workspace>(naive);
    dut_ = std::make_unique<Workspace>();
  }

  void Apply(const std::function<util::Status(Workspace*)>& op) {
    auto st_ref = op(ref_.get());
    auto st_dut = op(dut_.get());
    ASSERT_EQ(st_ref.code(), st_dut.code())
        << st_ref.ToString() << " vs " << st_dut.ToString();
  }

  void FixpointAndCompare() {
    auto st_ref = ref_->Fixpoint();
    auto st_dut = dut_->Fixpoint();
    ASSERT_EQ(st_ref.code(), st_dut.code())
        << st_ref.ToString() << " vs " << st_dut.ToString();
    EXPECT_EQ(Snapshot(*ref_), Snapshot(*dut_));
  }

  Workspace* dut() { return dut_.get(); }

 private:
  std::unique_ptr<Workspace> ref_;
  std::unique_ptr<Workspace> dut_;
};

TEST(DeltaFixpointTest, DifferentialInterleavedMutations) {
  DifferentialHarness h;
  h.Apply([](Workspace* ws) {
    return ws->Load("path(X,Y) <- edge(X,Y).\n"
                    "path(X,Z) <- path(X,Y), edge(Y,Z).");
  });
  h.FixpointAndCompare();
  // EDB-only additions (delta path on the DUT).
  for (int i = 0; i < 6; ++i) {
    h.Apply([i](Workspace* ws) {
      return ws->AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    });
    h.FixpointAndCompare();
  }
  EXPECT_TRUE(h.dut()->last_fixpoint_incremental());
  // Retraction: falls back to the full rebuild, consequences disappear.
  h.Apply([](Workspace* ws) {
    return ws->RemoveFact("edge", {Value::Int(2), Value::Int(3)});
  });
  h.FixpointAndCompare();
  EXPECT_FALSE(h.dut()->last_fixpoint_incremental());
  // Rule churn interleaved with additions.
  h.Apply([](Workspace* ws) {
    return ws->AddRuleText("sym(Y,X) <- edge(X,Y).");
  });
  h.Apply([](Workspace* ws) {
    return ws->AddFact("edge", {Value::Int(9), Value::Int(10)});
  });
  h.FixpointAndCompare();
  auto rule = ParseRuleText("sym(Y,X) <- edge(X,Y).");
  ASSERT_TRUE(rule.ok());
  h.Apply([&](Workspace* ws) { return ws->RemoveRule(*rule); });
  h.FixpointAndCompare();
  h.Apply([](Workspace* ws) {
    return ws->AddFact("edge", {Value::Int(10), Value::Int(11)});
  });
  h.FixpointAndCompare();
  EXPECT_TRUE(h.dut()->last_fixpoint_incremental());
}

TEST(DeltaFixpointTest, DifferentialNegationForcesFullRebuild) {
  DifferentialHarness h;
  h.Apply([](Workspace* ws) {
    return ws->Load("lonely(X) <- node(X), !edge(X,Y).\n"
                    "node(1). node(2). edge(1,2).");
  });
  h.FixpointAndCompare();
  // edge grows and is read under negation: lonely(2) must disappear, which
  // the additive path cannot express — the DUT must detect this and
  // rebuild.
  h.Apply([](Workspace* ws) {
    return ws->AddFact("edge", {Value::Int(2), Value::Int(1)});
  });
  h.FixpointAndCompare();
  EXPECT_FALSE(h.dut()->last_fixpoint_incremental());
  EXPECT_EQ(*h.dut()->Count("lonely(X)"), 0u);
  // A delta that cannot reach the negated relation stays incremental.
  h.Apply([](Workspace* ws) {
    return ws->AddFact("unrelated", {Value::Int(1)});
  });
  h.FixpointAndCompare();
  EXPECT_TRUE(h.dut()->last_fixpoint_incremental());
}

TEST(DeltaFixpointTest, DifferentialAggregateForcesFullRebuild) {
  DifferentialHarness h;
  h.Apply([](Workspace* ws) {
    return ws->Load("tally(G,N) <- agg<<N = count(U)>> vote(G,U).\n"
                    "vote(g1,1). vote(g1,2).");
  });
  h.FixpointAndCompare();
  // Growing an aggregated relation must replace the old count.
  h.Apply([](Workspace* ws) {
    return ws->AddFact("vote", {Value::Sym("g1"), Value::Int(3)});
  });
  h.FixpointAndCompare();
  EXPECT_FALSE(h.dut()->last_fixpoint_incremental());
  EXPECT_EQ(*h.dut()->Count("tally(g1,3)"), 1u);
}

TEST(DeltaFixpointTest, DifferentialConstraintsAndActivation) {
  DifferentialHarness h;
  h.Apply([](Workspace* ws) {
    return ws->Load("c9: p(X) -> t(X).\nt(1).");
  });
  h.FixpointAndCompare();
  // Violation on both sides; retract on both sides; removal of the
  // constraint label; meta-activation of a rule through `active`.
  h.Apply([](Workspace* ws) {
    return ws->AddFact("p", {Value::Int(5)});
  });
  h.FixpointAndCompare();  // both must report kConstraintViolation
  h.Apply([](Workspace* ws) {
    return ws->RemoveFact("p", {Value::Int(5)});
  });
  h.FixpointAndCompare();
  h.Apply([](Workspace* ws) {
    return ws->RemoveConstraintsByLabel("c9");
  });
  h.Apply([](Workspace* ws) {
    return ws->AddFact("p", {Value::Int(5)});
  });
  h.FixpointAndCompare();
  h.Apply([](Workspace* ws) {
    return ws->Load("active([| q(X) <- p(X). |]) <- p(5).");
  });
  h.FixpointAndCompare();
  EXPECT_EQ(*h.dut()->Count("q(5)"), 1u);
}

// Full-stack differential: a TrustRuntime pair (delta-aware vs naive
// reference) driven through says/UseScheme reconfiguration, the ISSUE's
// interleaved AddFact/RemoveFact/RemoveRule/UseScheme sequence.
TEST(DeltaFixpointTest, DifferentialTrustRuntimeUseScheme) {
  auto make = [](bool naive) {
    trust::TrustRuntime::Options opts;
    opts.principal = "alice";
    opts.rsa_bits = 512;
    opts.workspace.naive_eval = naive;
    auto rt = trust::TrustRuntime::Create(opts);
    EXPECT_TRUE(rt.ok());
    return std::move(*rt);
  };
  auto ref = make(true);
  auto dut = make(false);

  auto both = [&](const std::function<util::Status(trust::TrustRuntime*)>& op) {
    auto st_ref = op(ref.get());
    auto st_dut = op(dut.get());
    ASSERT_EQ(st_ref.code(), st_dut.code())
        << st_ref.ToString() << " vs " << st_dut.ToString();
  };
  auto compare = [&]() {
    auto st_ref = ref->Fixpoint();
    auto st_dut = dut->Fixpoint();
    ASSERT_EQ(st_ref.code(), st_dut.code())
        << st_ref.ToString() << " vs " << st_dut.ToString();
    EXPECT_EQ(Snapshot(*ref->workspace()), Snapshot(*dut->workspace()));
  };

  trust::TrustRuntime::Options bob_opts;
  bob_opts.principal = "bob";
  bob_opts.rsa_bits = 512;
  auto bob = trust::TrustRuntime::Create(bob_opts);
  ASSERT_TRUE(bob.ok());

  both([&](trust::TrustRuntime* rt) {
    return rt->AddPeer("bob", (*bob)->keypair().public_key);
  });
  both([&](trust::TrustRuntime* rt) {
    return rt->AddSharedSecret("bob", "secret:alice:bob");
  });
  compare();

  both([](trust::TrustRuntime* rt) {
    return rt->UseScheme(*trust::MakeScheme("rsa")).status();
  });
  compare();
  both([](trust::TrustRuntime* rt) {
    return rt->Say("alice", "flag(up).");
  });
  compare();
  // Scheme swap: the paper's RSA -> HMAC reconfiguration (rule removal +
  // install), interleaved with fact churn.
  both([](trust::TrustRuntime* rt) {
    return rt->UseScheme(*trust::MakeScheme("hmac")).status();
  });
  both([](trust::TrustRuntime* rt) {
    return rt->workspace()->AddFact("blob", {Value::Int(1)});
  });
  compare();
  both([](trust::TrustRuntime* rt) {
    return rt->workspace()->RemoveFact("blob", {Value::Int(1)});
  });
  compare();
  both([](trust::TrustRuntime* rt) {
    return rt->UseScheme(*trust::MakeScheme("plaintext")).status();
  });
  compare();
}

}  // namespace
}  // namespace lbtrust::datalog
