#include "datalog/workspace.h"

#include <string>

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace lbtrust::datalog {
namespace {

TEST(WorkspaceTest, FactArityMismatchRejected) {
  Workspace ws;
  ASSERT_TRUE(ws.AddFact("p", {Value::Int(1), Value::Int(2)}).ok());
  auto st = ws.AddFact("p", {Value::Int(1)});
  EXPECT_EQ(st.code(), util::StatusCode::kTypeError);
}

TEST(WorkspaceTest, CannotAssertOrDeriveBuiltins) {
  Workspace ws;
  EXPECT_FALSE(ws.AddFact("int64", {Value::Int(1)}).ok());
  EXPECT_FALSE(ws.Load("int64(X) <- p(X).").ok());
  EXPECT_FALSE(ws.Load("rule(X) <- p(X).").ok());
}

TEST(WorkspaceTest, CannotQueryBuiltins) {
  Workspace ws;
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_FALSE(ws.Query("int64(X)").ok());
}

TEST(WorkspaceTest, RemoveRuleNotFound) {
  Workspace ws;
  auto rule = ParseRuleText("p(X) <- q(X).");
  EXPECT_EQ(ws.RemoveRule(*rule).code(), util::StatusCode::kNotFound);
}

TEST(WorkspaceTest, RemoveConstraintByLabel) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("c1: p(X) -> q(X).\np(a).").ok());
  EXPECT_FALSE(ws.Fixpoint().ok());
  ASSERT_TRUE(ws.RemoveConstraintsByLabel("c1").ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.RemoveConstraintsByLabel("c1").code(),
            util::StatusCode::kNotFound);
  EXPECT_FALSE(ws.RemoveConstraintsByLabel("").ok());
}

TEST(WorkspaceTest, ActiveAndOwnerTrackInstalledRules) {
  Workspace::Options opts;
  opts.principal = "alice";
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load("p(X) <- q(X).").ok());
  ASSERT_TRUE(ws.LoadAs("bob", "r(X) <- s(X).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("active(R)"), 2u);
  EXPECT_EQ(*ws.Count("owner(R,alice)"), 1u);
  EXPECT_EQ(*ws.Count("owner(R,bob)"), 1u);
}

TEST(WorkspaceTest, PnameEnumeratesDeclaredPredicates) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(a). q(b,c).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("pname(p,\"p\")"), 1u);
  EXPECT_EQ(*ws.Count("pname(q,\"q\")"), 1u);
  // Hidden engine predicates are not listed.
  auto rows = ws.Query("pname(P,N)");
  ASSERT_TRUE(rows.ok());
  for (const Tuple& t : *rows) {
    EXPECT_NE(t[1].AsText()[0], '$');
  }
}

TEST(WorkspaceTest, LabelsSurviveInstall) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("exp1: p(X) <- q(X).").ok());
  ASSERT_EQ(ws.rules().size(), 1u);
  EXPECT_EQ(ws.rules()[0]->label, "exp1");
}

TEST(WorkspaceTest, CodegenRoundsReported) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("q(1).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.last_codegen_rounds(), 1);
  ASSERT_TRUE(ws.Load("active([| p(X) <- q(X). |]) <- q(1).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.last_codegen_rounds(), 2);
}

TEST(WorkspaceTest, CodegenCycleDetected) {
  // Each round manufactures a brand-new rule (growing body) forever; the
  // codegen cap turns this into an error instead of a hang.
  Workspace::Options opts;
  opts.max_codegen_rounds = 8;
  Workspace ws(opts);
  ASSERT_TRUE(
      ws.Load("active([| gen(X+1) <- gen(X). |]) <- go().\n"
              "active([| active([| gen(Y+2) <- gen(Y), gen(X). |]) <- "
              "gen(X). |]) <- go().\n"
              "go(). gen(0).")
          .ok());
  auto st = ws.Fixpoint();
  // Either quiesces within the cap or reports the cap cleanly — never
  // hangs. (This program quiesces: generated rules dedupe by canon.)
  EXPECT_TRUE(st.ok() || st.code() == util::StatusCode::kInternal)
      << st.ToString();
}

TEST(WorkspaceTest, HasRuleByCanon) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) <- q(X).").ok());
  EXPECT_TRUE(ws.HasRule("p(X) <- q(X)."));
  EXPECT_FALSE(ws.HasRule("p(X) <- r(X)."));
}

TEST(WorkspaceTest, FactTextRejectsRules) {
  Workspace ws;
  EXPECT_FALSE(ws.AddFactText("p(X) <- q(X).").ok());
  EXPECT_FALSE(ws.AddFactText("p(X) -> q(X).").ok());
  EXPECT_TRUE(ws.AddFactText("p(1). q(2,3).").ok());
}

TEST(WorkspaceTest, PartitionedDeclarationViaUse) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("exp[U](R) <- src(U,R). src(bob,x).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  const PredicateInfo* info = ws.catalog().Find("exp");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->partitioned);
  EXPECT_EQ(info->arity, 2u);
}

}  // namespace
}  // namespace lbtrust::datalog
