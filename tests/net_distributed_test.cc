#include "net/distributed.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/dump.h"
#include "net/cluster.h"

namespace lbtrust::net {
namespace {

using trust::TrustRuntime;

/// Per-node scenario setup, shared verbatim between the simulated and the
/// socket deployment so any divergence in the converged dumps is the
/// transport's fault, not the scenario's.
using NodeSetup =
    std::function<util::Status(const std::string& name, TrustRuntime* rt)>;

util::Status SetupDelegation(const std::string& name, TrustRuntime* rt) {
  if (name == "a") {
    LB_RETURN_IF_ERROR(rt->Load("says(me,b,[| token(N). |]) <- go(N)."));
    return rt->workspace()->AddFactText("go(1). go(2).");
  }
  if (name == "b") {
    // Delegation hop: b re-exports every token it learns to c.
    return rt->Load("says(me,c,[| token(N). |]) <- token(N).");
  }
  return util::OkStatus();
}

util::Status SetupLinkedRelay(const std::string& name, TrustRuntime* rt) {
  if (name == "b") {
    // b derives canread from the imported linked credentials, then
    // re-exports the conclusion to c.
    return rt->Load("says(me,c,[| holds(P,F). |]) <- canread(P,F).");
  }
  return util::OkStatus();
}

/// Issues the linked-credential pair on a and returns the root hash to
/// ship: grant fact <- policy rule, link-closed.
util::Result<std::string> IssueLinked(TrustRuntime* a) {
  LB_ASSIGN_OR_RETURN(std::string base,
                      a->Issue("grant(carol,file1,read)."));
  return a->Issue("canread(P,F) <- grant(P,F,read).", {base});
}

constexpr const char* kNodes[] = {"a", "b", "c"};

/// Runs the scenario on the simulated (in-memory, reliable, in-order)
/// Cluster — the differential oracle — and returns per-node dumps.
/// Credential scenarios run under "plaintext": the rsa/hmac import
/// constraints demand a signed export tuple for every says fact, which
/// credential-imported says facts (verified by the bundle signature
/// instead) do not have.
std::map<std::string, std::string> RunSimulated(const NodeSetup& setup,
                                                bool linked_credential,
                                                const std::string& scheme) {
  std::map<std::string, std::string> dumps;
  Cluster::Options copts;
  copts.scheme = scheme;
  Cluster cluster(copts);
  TrustRuntime::Options small;
  small.rsa_bits = 512;
  for (const char* n : kNodes) {
    auto node = cluster.AddNode(n, small);
    EXPECT_TRUE(node.ok()) << node.status().ToString();
  }
  EXPECT_TRUE(cluster.Connect().ok());
  for (const char* n : kNodes) {
    EXPECT_TRUE(setup(n, cluster.node(n)).ok());
  }
  if (linked_credential) {
    auto hash = IssueLinked(cluster.node("a"));
    EXPECT_TRUE(hash.ok()) << hash.status().ToString();
    EXPECT_TRUE(cluster.ShipCredential("a", "b", *hash).ok());
  }
  auto stats = cluster.Run();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* n : kNodes) {
    dumps[n] = datalog::DumpWorkspace(*cluster.node(n)->workspace(),
                                      /*max_rows=*/0, /*sort_rules=*/true);
  }
  return dumps;
}

struct DistResult {
  std::map<std::string, std::string> dumps;
  std::map<std::string, DistributedCluster::RunStats> stats;
};

/// Runs the same scenario over real localhost sockets: three
/// DistributedCluster nodes in one process (one thread each — the
/// transports are single-threaded per node), ephemeral ports, full mesh.
DistResult RunDistributed(
    const NodeSetup& setup, bool linked_credential, const std::string& scheme,
    std::function<Transport::Options(const std::string&)> transport_opts =
        nullptr,
    size_t send_queue_limit_for_a = 0) {
  DistResult result;
  std::vector<std::unique_ptr<DistributedCluster>> nodes;
  for (const char* n : kNodes) {
    DistributedCluster::Options opts;
    opts.self = n;
    opts.nodes = {"a", "b", "c"};
    opts.listen_port = 0;  // ephemeral
    opts.scheme = scheme;
    opts.runtime.rsa_bits = 512;
    opts.convergence_timeout_ms = 20000;
    opts.poll_interval_ms = 2;
    opts.status_heartbeat_ms = 20;
    if (transport_opts) opts.transport = transport_opts(n);
    opts.transport.reconnect_backoff_min_ms = 1;
    if (send_queue_limit_for_a != 0 && std::string(n) == "a") {
      opts.transport.send_queue_limit_bytes = send_queue_limit_for_a;
    }
    auto node = DistributedCluster::Create(std::move(opts));
    EXPECT_TRUE(node.ok()) << node.status().ToString();
    if (!node.ok()) return result;
    nodes.push_back(std::move(*node));
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (i == j) continue;
      EXPECT_TRUE(nodes[i]
                      ->AddPeer(kNodes[j], "127.0.0.1",
                                nodes[j]->listen_port())
                      .ok());
    }
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_TRUE(setup(kNodes[i], nodes[i]->runtime()).ok());
  }
  if (linked_credential) {
    auto hash = IssueLinked(nodes[0]->runtime());
    EXPECT_TRUE(hash.ok()) << hash.status().ToString();
    EXPECT_TRUE(nodes[0]->ShipCredential("b", *hash).ok());
  }

  std::vector<util::Status> statuses(nodes.size(), util::OkStatus());
  std::vector<DistributedCluster::RunStats> run_stats(nodes.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < nodes.size(); ++i) {
    threads.emplace_back([&, i] {
      auto r = nodes[i]->RunToConvergence();
      statuses[i] = r.status();
      if (r.ok()) run_stats[i] = *r;
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_TRUE(statuses[i].ok())
        << "node " << kNodes[i] << ": " << statuses[i].ToString();
    result.stats[kNodes[i]] = run_stats[i];
    result.dumps[kNodes[i]] =
        datalog::DumpWorkspace(*nodes[i]->runtime()->workspace(),
                               /*max_rows=*/0, /*sort_rules=*/true);
  }
  return result;
}

void ExpectDumpsIdentical(const std::map<std::string, std::string>& sim,
                          const std::map<std::string, std::string>& dist) {
  ASSERT_EQ(sim.size(), dist.size());
  for (const auto& [name, dump] : sim) {
    auto it = dist.find(name);
    ASSERT_NE(it, dist.end()) << "missing node " << name;
    EXPECT_EQ(dump, it->second)
        << "node '" << name
        << "': socket convergence diverged from simulated";
  }
}

TEST(DistributedClusterTest, DelegationConvergesIdenticalToSimulated) {
  auto sim = RunSimulated(SetupDelegation, /*linked_credential=*/false, "rsa");
  auto dist =
      RunDistributed(SetupDelegation, /*linked_credential=*/false, "rsa");
  ExpectDumpsIdentical(sim, dist.dumps);
  // c holds the relayed tokens, proving the two-hop exchange ran.
  EXPECT_NE(sim["c"].find("token"), std::string::npos);
  // Wire accounting flowed through: a shipped data bytes, c received some.
  EXPECT_GT(dist.stats["a"].transport.tuple_bytes_out, 0u);
  EXPECT_GT(dist.stats["a"].tuples_out, 0u);
  EXPECT_GT(dist.stats["c"].tuples_in, 0u);
  EXPECT_GT(dist.stats["c"].transport.bytes_in, 0u);
}

TEST(DistributedClusterTest, LinkedCredentialConvergesIdenticalToSimulated) {
  auto sim =
      RunSimulated(SetupLinkedRelay, /*linked_credential=*/true, "plaintext");
  auto dist = RunDistributed(SetupLinkedRelay, /*linked_credential=*/true,
                             "plaintext");
  ExpectDumpsIdentical(sim, dist.dumps);
  // The linked pair imported at b and the conclusion relayed to c.
  EXPECT_NE(sim["b"].find("canread"), std::string::npos);
  EXPECT_NE(sim["c"].find("holds"), std::string::npos);
  EXPECT_EQ(dist.stats["b"].credential_imports, 1u);
  EXPECT_GT(dist.stats["a"].transport.credential_bytes_out, 0u);
  EXPECT_GT(dist.stats["b"].transport.credential_bytes_in, 0u);
}

TEST(DistributedClusterTest, DuplicateDeliveryConvergesIdentical) {
  // Every reliable frame transmits twice: the engine's set semantics and
  // content-addressed credential store absorb the duplicates.
  auto dup = [](const std::string&) {
    Transport::Options t;
    t.duplicate_data_frames = true;
    return t;
  };
  auto sim =
      RunSimulated(SetupLinkedRelay, /*linked_credential=*/true, "plaintext");
  auto dist = RunDistributed(SetupLinkedRelay, /*linked_credential=*/true,
                             "plaintext", dup);
  ExpectDumpsIdentical(sim, dist.dumps);
  uint64_t duplicates = 0;
  for (const auto& [name, stats] : dist.stats) {
    duplicates += stats.transport.duplicate_frames_in;
  }
  EXPECT_GE(duplicates, 2u);  // every data/credential frame arrived twice
}

TEST(DistributedClusterTest, ReorderedDeliveryConvergesIdentical) {
  auto reorder = [](const std::string&) {
    Transport::Options t;
    t.reorder_flush = true;
    return t;
  };
  auto sim = RunSimulated(SetupDelegation, /*linked_credential=*/false, "rsa");
  auto dist = RunDistributed(SetupDelegation, /*linked_credential=*/false,
                             "rsa", reorder);
  ExpectDumpsIdentical(sim, dist.dumps);
}

TEST(DistributedClusterTest, ForcedReconnectConvergesIdentical) {
  // Node a's first reliable frame tears its connection down right after
  // flushing, losing the ack in flight: the reconnect must resend, the
  // receiver sees a duplicate, and convergence is unaffected.
  auto drop = [](const std::string& name) {
    Transport::Options t;
    if (name == "a") t.drop_connection_after_data_frames = 1;
    return t;
  };
  auto sim = RunSimulated(SetupDelegation, /*linked_credential=*/false, "rsa");
  auto dist = RunDistributed(SetupDelegation, /*linked_credential=*/false,
                             "rsa", drop);
  ExpectDumpsIdentical(sim, dist.dumps);
  EXPECT_GE(dist.stats["a"].transport.reconnects, 1u);
  EXPECT_GE(dist.stats["a"].transport.retries, 1u);
}

TEST(DistributedClusterTest, BackpressureDefersAndRecovers) {
  // Node a owes peer b two reliable frames at startup: the pre-queued
  // credential bundle and one fat token block. Size a's per-peer send
  // queue from the simulated run's own byte accounting so either frame
  // fits alone but not both at once — the data send hits the bounded
  // queue, defers, and is retried once the credential frame is acked.
  auto fanout = [](const std::string& name, TrustRuntime* rt) {
    if (name != "a") return util::OkStatus();
    LB_RETURN_IF_ERROR(rt->Load("says(me,b,[| token(N). |]) <- go(N)."));
    std::string facts;
    for (int i = 1; i <= 40; ++i) {
      facts += "go(" + std::to_string(i) + "). ";
    }
    return rt->workspace()->AddFactText(facts);
  };
  Cluster::Options copts;
  copts.scheme = "plaintext";
  Cluster probe(copts);
  TrustRuntime::Options small;
  small.rsa_bits = 512;
  for (const char* n : kNodes) ASSERT_TRUE(probe.AddNode(n, small).ok());
  ASSERT_TRUE(probe.Connect().ok());
  for (const char* n : kNodes) ASSERT_TRUE(fanout(n, probe.node(n)).ok());
  auto hash = IssueLinked(probe.node("a"));
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  ASSERT_TRUE(probe.ShipCredential("a", "b", *hash).ok());
  auto probe_stats = probe.Run();
  ASSERT_TRUE(probe_stats.ok()) << probe_stats.status().ToString();
  ASSERT_GT(probe_stats->tuple_bytes, 0u);
  ASSERT_GT(probe_stats->credential_bytes, 0u);
  // ~85% of the combined payload holds either single frame but not both.
  size_t limit =
      (probe_stats->tuple_bytes + probe_stats->credential_bytes) * 17 / 20;

  auto sim = RunSimulated(fanout, /*linked_credential=*/true, "plaintext");
  auto dist = RunDistributed(fanout, /*linked_credential=*/true, "plaintext",
                             nullptr, /*send_queue_limit_for_a=*/limit);
  ExpectDumpsIdentical(sim, dist.dumps);
  EXPECT_GE(dist.stats["a"].deferred_sends, 1u);
}

TEST(DistributedClusterTest, RejectsUnknownMeshMembers) {
  DistributedCluster::Options opts;
  opts.self = "a";
  opts.nodes = {"a", "b"};
  opts.runtime.rsa_bits = 512;
  auto node = DistributedCluster::Create(std::move(opts));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_FALSE((*node)->AddPeer("zebra", "127.0.0.1", 1).ok());
  EXPECT_FALSE((*node)->AddPeer("a", "127.0.0.1", 1).ok());
  EXPECT_FALSE((*node)->ShipCredential("zebra", "deadbeef").ok());

  DistributedCluster::Options bad;
  bad.self = "x";
  bad.nodes = {"a", "b"};
  EXPECT_FALSE(DistributedCluster::Create(std::move(bad)).ok());
}

}  // namespace
}  // namespace lbtrust::net
