#include "util/log.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

namespace lbtrust::util {
namespace {

/// Captures log lines for the duration of a test; restores the default
/// stderr sink on destruction.
class SinkCapture {
 public:
  SinkCapture() {
    SetLogSink([this](LogLevel level, std::string_view line) {
      levels_.push_back(level);
      lines_.emplace_back(line);
    });
  }
  ~SinkCapture() { SetLogSink(nullptr); }

  const std::vector<std::string>& lines() const { return lines_; }
  const std::vector<LogLevel>& levels() const { return levels_; }

 private:
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST(LogTest, ThresholdFiltersLevels) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));

  LBTRUST_LOG(LogLevel::kError, "boom %d", 1);
  LBTRUST_LOG(LogLevel::kDebug, "invisible");
  ASSERT_EQ(capture.lines().size(), 1u);
  // Every line carries a monotonic `<seconds>.<millis>` prefix so
  // interleaved multi-process logs can be ordered per process.
  EXPECT_THAT(capture.lines()[0],
              testing::MatchesRegex(R"(\[lbtrust [0-9]+\.[0-9]{3} E\] boom 1
)"));
  EXPECT_EQ(capture.levels()[0], LogLevel::kError);
}

TEST(LogTest, FormatsPrintfStyleOneLinePerMessage) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kDebug);
  LBTRUST_LOG(LogLevel::kDebug, "[%s] quiet=%d deferred=%zu", "a", 1,
              static_cast<size_t>(3));
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_THAT(capture.lines()[0],
              testing::MatchesRegex(
                  R"(\[lbtrust [0-9]+\.[0-9]{3} D\] \[a\] quiet=1 deferred=3
)"));
}

TEST(LogTest, OversizedMessageIsNotTruncated) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kInfo);
  std::string big(2000, 'x');  // larger than the 512-byte stack buffer
  LBTRUST_LOG(LogLevel::kInfo, "%s", big.c_str());
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_TRUE(line.size() > big.size()) << line.size();
  EXPECT_EQ(line.substr(line.size() - big.size() - 1), big + "\n");
}

TEST(LogTest, NodeTagAppearsInEveryLine) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kInfo);
  SetLogNodeTag("nodeb");
  LBTRUST_LOG(LogLevel::kInfo, "tagged");
  SetLogNodeTag("");  // restore for the other tests
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_THAT(capture.lines()[0],
              testing::MatchesRegex(
                  R"(\[lbtrust [0-9]+\.[0-9]{3} nodeb I\] tagged
)"));
}

TEST(LogTest, TimestampsAreMonotonic) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kInfo);
  LBTRUST_LOG(LogLevel::kInfo, "first");
  LBTRUST_LOG(LogLevel::kInfo, "second");
  ASSERT_EQ(capture.lines().size(), 2u);
  auto stamp = [](const std::string& line) {
    size_t start = line.find(' ') + 1;
    size_t end = line.find(' ', start);
    std::string ts = line.substr(start, end - start);
    size_t dot = ts.find('.');
    return std::stoll(ts.substr(0, dot)) * 1000 + std::stoll(ts.substr(dot + 1));
  };
  EXPECT_LE(stamp(capture.lines()[0]), stamp(capture.lines()[1]));
}

TEST(LogTest, UnrecognizedEnvLevelWarnsOnceNamingValueAndAcceptedSet) {
  SinkCapture capture;
  ::setenv("LBTRUST_LOG", "vebose", /*overwrite=*/1);
  ReinitLogLevelFromEnvForTest();
  ::unsetenv("LBTRUST_LOG");

  // Typo falls back to the default threshold (warn).
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));

  LBTRUST_LOG(LogLevel::kError, "first message");
  LBTRUST_LOG(LogLevel::kError, "second message");
  ASSERT_EQ(capture.lines().size(), 3u);
  // The one-shot warning precedes the message that triggered it, names
  // the bad value, and lists the accepted set; it is not repeated.
  EXPECT_EQ(capture.levels()[0], LogLevel::kWarn);
  EXPECT_THAT(capture.lines()[0],
              testing::HasSubstr("unrecognized LBTRUST_LOG value 'vebose'"));
  EXPECT_THAT(capture.lines()[0],
              testing::HasSubstr("accepted: error, warn, info, debug"));
  EXPECT_THAT(capture.lines()[1], testing::HasSubstr("first message"));
  EXPECT_THAT(capture.lines()[2], testing::HasSubstr("second message"));
}

TEST(LogTest, RecognizedEnvLevelDoesNotWarn) {
  SinkCapture capture;
  ::setenv("LBTRUST_LOG", "debug", /*overwrite=*/1);
  ReinitLogLevelFromEnvForTest();
  ::unsetenv("LBTRUST_LOG");
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));
  LBTRUST_LOG(LogLevel::kInfo, "hello");
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_THAT(capture.lines()[0], testing::HasSubstr("hello"));
  SetLogLevel(LogLevel::kWarn);  // restore the default for other tests
}

TEST(LogTest, DisabledLevelSkipsArgumentEvaluation) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "computed";
  };
  LBTRUST_LOG(LogLevel::kDebug, "%s", expensive());
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(capture.lines().empty());
}

}  // namespace
}  // namespace lbtrust::util
