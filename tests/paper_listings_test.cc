// Conformance: every program listing in the paper parses in our dialect
// and (where it stands alone) installs into a workspace. Listings the
// paper prints with errata use the corrected form recorded in DESIGN.md §8.
#include <string>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/workspace.h"
#include "trust/auth_scheme.h"
#include "trust/delegation.h"

namespace lbtrust {
namespace {

void ExpectParses(const std::string& text) {
  auto clauses = datalog::ParseProgram(text);
  EXPECT_TRUE(clauses.ok()) << text << "\n  -> "
                            << clauses.status().ToString();
}

void ExpectLoads(const std::string& text) {
  datalog::Workspace::Options opts;
  opts.principal = "alice";
  datalog::Workspace ws(opts);
  auto st = ws.Load(text);
  EXPECT_TRUE(st.ok()) << text << "\n  -> " << st.ToString();
}

TEST(PaperListings, Section22Binder) {
  // b1/b2 with the range-restriction fix for O (DESIGN.md §8).
  ExpectLoads(
      "b1: access(P,O,read) <- good(P), object(O).\n"
      "b2: access(P,O,read) <- says(bob,me,[| access(P,O,read). |]).");
}

TEST(PaperListings, Section32Constraints) {
  ExpectLoads("fail() <- access(P,O,M), !principal(P).");
  ExpectLoads("access(P,O,M) -> principal(P).");
  ExpectLoads("access(P,O,M) -> principal(P), object(O), mode(M).");
}

TEST(PaperListings, Figure1MetaModel) {
  // The meta-model declarations of Figure 1 parse as written. (rule/atom/
  // term/... are kind-check builtins in this engine, so loading them as
  // entity declarations is rejected — parsing is what Figure 1 specifies.)
  ExpectParses(
      "rule(R) ->.\n"
      "head(R,A) -> rule(R), atom(A).\n"
      "body(R,A) -> rule(R), atom(A).\n"
      "atom(A) ->.\n"
      "functor(A,P) -> atom(A), predicate(P).\n"
      "arg(A,I,T) -> atom(A), int(I), term(T).\n"
      "negated(A) -> atom(A).\n"
      "term(T) ->.\n"
      "variable(X) -> term(X).\n"
      "vname(X,N) -> variable(X), string(N).\n"
      "constant(C) -> term(C).\n"
      "value(C,V) -> constant(C), string(V).\n"
      "predicate(P) ->.\n"
      "pname(P,N) -> predicate(P), string(N).");
}

TEST(PaperListings, Section33OwnerConstraint) {
  // Declaration + the meta-constraint (argument order per the paper's own
  // owner declaration, DESIGN.md §8).
  ExpectLoads(
      "owner(R,P) -> rule(R), principal(P).\n"
      "access(U,P,M) -> principal(U), predicate(P), mode(M).\n"
      "owner([| A <- P(T2*), A*. |], U) -> access(U,P,read).");
}

TEST(PaperListings, Section34Partitioning) {
  ExpectLoads(
      "p(X1,X2) -> t1(X1), t2(X2).\n"
      "pp[X1](X2) -> t1(X1), t2(X2).\n"
      "pp[X1](X2) <- p(X1,X2).");
}

TEST(PaperListings, Section35Distribution) {
  ExpectLoads(
      "locX1(X1,N) -> t1(X1), node(N).\n"
      "predNode(pp[X1],N) <- locX1(X1,N).");
}

TEST(PaperListings, Section41SaysCore) {
  ExpectLoads(
      "says0: says(U1,U2,R) -> prin(U1), prin(U2), rule(R).\n"
      "says1: active(R) <- says(_,me,R).");
}

TEST(PaperListings, Section41AuthorizationGuards) {
  ExpectLoads(
      "says(U,me,[| A <- P(T*), A*. |]) -> mayRead(U,P).\n"
      "says(U,me,[| P(T*) <- A*. |]) -> mayWrite(U,P).");
}

TEST(PaperListings, Section411RsaExportImport) {
  trust::RsaScheme rsa;
  ExpectLoads(rsa.ExportRules());
  ExpectLoads(rsa.ImportRules());
}

TEST(PaperListings, Section412HmacVariant) {
  trust::HmacScheme hmac;
  ExpectLoads(hmac.ExportRules());
  ExpectLoads(hmac.ImportRules());
}

TEST(PaperListings, Section42SpeaksForAndDelegates) {
  ExpectLoads("sf0: active(R) <- says(bob,me,R).");
  ExpectLoads(trust::DelegationRules());
}

TEST(PaperListings, Section421DelegationDepth) {
  ExpectLoads(trust::DelegationDepthRules());
}

TEST(PaperListings, Section422Thresholds) {
  ExpectLoads(
      "wd0: creditOK(C) -> customer(C).\n"
      "wd1: creditOK(C) <- creditOKCount(C,N), N >= 3.\n"
      "wd2: creditOKCount(C,N) <- agg<<N = count(U)>> "
      "pringroup(U,creditBureau), says(U,me,[| creditOK(C). |]).");
}

TEST(PaperListings, Section51BinderEquivalent) {
  // bex1' — pubkey carried as a symbol with colon segments.
  ExpectLoads(
      "bex1: access(P,O,read) <- says(bob,me,[| access(P,O,read). |]), "
      "pubkey(bob,rsa:3:c1ebab5d).");
}

TEST(PaperListings, Section51PullRewrite) {
  // pull0 verbatim; pull1 responder uses the joined form (DESIGN.md §8).
  ExpectLoads(
      "pull0: says(me,X,[| request(R). |]) <- "
      "active([| A <- says(X,me,R), A*. |]), X != me.\n"
      "pull1: says(me,X,R) <- says(X,me,[| request(R). |]).");
}

TEST(PaperListings, Section52SendlogSurface) {
  auto units = datalog::ParseSurfaceProgram(
      "At S:\n"
      "s1: reachable(S,D) :- neighbor(S,D).\n"
      "s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).");
  ASSERT_TRUE(units.ok()) << units.status().ToString();
  ASSERT_EQ(units->size(), 1u);
  EXPECT_EQ((*units)[0].context, "S");
  EXPECT_EQ((*units)[0].rules.size(), 2u);
}

TEST(PaperListings, Section52LbtrustEquivalent) {
  // lc1/lc2/ls1/ls2/ld1/ld2 as printed.
  ExpectLoads(
      "lc1: neighbor(S,D) -> prin(S), prin(D).\n"
      "lc2: reachable(S,D) -> prin(S), prin(D).\n"
      "ls1: reachable(me,D) <- neighbor(me,D).\n"
      "ls2: says(me,Z,[| reachable(Z,D). |]) <- neighbor(me,Z), "
      "says(W,me,[| reachable(me,D). |]).\n"
      "ld1: loc(P,N) -> prin(P), node(N).\n"
      "ld2: predNode(export[P],N) <- loc(P,N).");
}

TEST(PaperListings, Section9FileSystemSchema) {
  // f1-f6 and m1-m6 (message:* names are single symbols in our lexer).
  ExpectLoads(
      "f1: file(F) ->.\n"
      "f2: filename(F,S) -> file(F), string(S).\n"
      "f3: filedata(F,S) -> file(F), string(S).\n"
      "f4: fileowner(F,O) -> file(F), prin(O).\n"
      "f5: filestore(F,P) -> file(F), prin(P).\n"
      "f6: file(F) -> filename(F,_), filedata(F,_), fileowner(F,_), "
      "filestore(F,_).\n"
      "m1: message(M) ->.\n"
      "m2: message:id(M,N) -> message(M), int[64](N).\n"
      "m3: message:fname(M,F) -> message(M), string(F).\n"
      "m4: message:data(M,D) -> message(M), string(D).\n"
      "m5: request(R) -> message(R).\n"
      "m6: response(R) -> message(R).\n"
      "dfs1: permission(P,X,F,M) -> prin(P), prin(X), file(F), mode(M).");
}

TEST(PaperListings, Section9DelegationToAccessManager) {
  ExpectLoads(
      "delegates(me,accessMgr,[| permission(me,_,F,_). |]) <- "
      "fileowner(F,me).");
}

TEST(PaperListings, Section9Dfs2Constraint) {
  // dfs2 as printed (multi-atom LHS with a quoted pattern).
  ExpectParses(
      "dfs2: says(me,U,[| response(R), message:fname(R,S) <- A*. |]), "
      "fileName(F,S), fileowner(F,O) -> "
      "says(O,me,[| permission(O,U,F,read) |]).");
}

}  // namespace
}  // namespace lbtrust
