#include "datalog/unify.h"

#include <string>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/pretty.h"

namespace lbtrust::datalog {
namespace {

struct UnifyResult {
  bool matched = false;
  VarTable vars;
  Bindings bindings;

  std::string Binding(const std::string& name) const {
    int slot = vars.Find(name);
    if (slot < 0 || !bindings.IsBound(slot)) return "<unbound>";
    return bindings.Get(slot).ToString();
  }
};

/// Interns `name` and binds it (bindings now hold interned ValueIds).
void Bind(VarTable* vars, Bindings* b, const std::string& name,
          const Value& v) {
  int slot = vars->Intern(name);
  b->EnsureSize(vars->size());
  b->Set(slot, v);
}

UnifyResult UnifyCode(const std::string& pattern_text,
                      const std::string& target_text) {
  UnifyResult out;
  auto pattern = ParseTermText(pattern_text);
  auto target = ParseTermText(target_text);
  EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
  EXPECT_TRUE(target.ok()) << target.status().ToString();
  Trail trail;
  out.matched =
      UnifyCodeValue(pattern->value.AsCode(), target->value.AsCode(),
                     &out.vars, &out.bindings, &trail);
  return out;
}

TEST(UnifyTest, FactPatternBindsConstants) {
  auto r = UnifyCode("[| access(P,O,read). |]",
                     "[| access(alice,file1,read). |]");
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.Binding("P"), "alice");
  EXPECT_EQ(r.Binding("O"), "file1");
}

TEST(UnifyTest, ConstantMismatchFails) {
  EXPECT_FALSE(UnifyCode("[| access(P,O,read). |]",
                         "[| access(alice,file1,write). |]")
                   .matched);
  EXPECT_FALSE(
      UnifyCode("[| access(P). |]", "[| grant(alice). |]").matched);
  EXPECT_FALSE(
      UnifyCode("[| access(P). |]", "[| access(a,b). |]").matched);
}

TEST(UnifyTest, RepeatedVariableMustAgree) {
  EXPECT_TRUE(UnifyCode("[| p(X,X). |]", "[| p(a,a). |]").matched);
  EXPECT_FALSE(UnifyCode("[| p(X,X). |]", "[| p(a,b). |]").matched);
}

TEST(UnifyTest, MetaFunctorBindsPredicateName) {
  auto r = UnifyCode("[| A <- P(T*), A*. |]", "[| p(X) <- q(X), r(X). |]");
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.Binding("P"), "q");
  // The head meta-atom binds the head; the star binds the remaining body.
  EXPECT_EQ(r.Binding("A"), "[| p(X) |]");
  EXPECT_EQ(r.Binding(StarKey("A")), "[| r(X) |]");
  EXPECT_EQ(r.Binding(StarKey("T")), "[| X |]");
}

TEST(UnifyTest, StarMatchesEmptyRest) {
  auto r = UnifyCode("[| A <- P(T*), A*. |]", "[| p(X) <- q(X). |]");
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.Binding(StarKey("A")), "[|  |]");
}

TEST(UnifyTest, PatternVarAgainstTargetVarStaysFree) {
  // DESIGN.md §8: the target variable means "anything".
  auto r = UnifyCode("[| access(P,O,read). |]", "[| access(P,O,read). |]");
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.Binding("P"), "<unbound>");
}

TEST(UnifyTest, NestedQuotedCode) {
  auto r = UnifyCode("[| request(R). |]",
                     "[| request([| access(alice,f,read). |]). |]");
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.Binding("R"), "[| access(alice,f,read). |]");
}

TEST(UnifyTest, NegationPolarityMustMatch) {
  EXPECT_TRUE(
      UnifyCode("[| p() <- !q(X). |]", "[| p() <- !q(a). |]").matched);
  EXPECT_FALSE(
      UnifyCode("[| p() <- q(X). |]", "[| p() <- !q(a). |]").matched);
}

TEST(UnifyTest, BodyOrderIsPositional) {
  // Documented: non-star pattern atoms match target literals in order.
  EXPECT_TRUE(UnifyCode("[| A <- says(X,me2,R), A*. |]",
                        "[| p(V) <- says(bob,me2,V), q(V). |]")
                  .matched);
  EXPECT_FALSE(UnifyCode("[| A <- says(X,me2,R), A*. |]",
                         "[| p(V) <- q(V), says(bob,me2,V). |]")
                   .matched);
}

TEST(UnifyTest, TrailUndoRestoresBindings) {
  auto pattern = ParseTermText("[| p(X,Y). |]");
  auto target = ParseTermText("[| p(a,b). |]");
  VarTable vars;
  Bindings b;
  Trail trail;
  ASSERT_TRUE(UnifyCodeValue(pattern->value.AsCode(), target->value.AsCode(),
                             &vars, &b, &trail));
  EXPECT_EQ(trail.size(), 2u);
  UndoTrail(trail, &b);
  EXPECT_FALSE(b.IsBound(vars.Find("X")));
  EXPECT_FALSE(b.IsBound(vars.Find("Y")));
}

TEST(SubstituteTest, BoundVarsReplacedUnboundKept) {
  auto rule = ParseRuleText("says(me2,U,[| granted(P,F). |]) <- req(P,F).");
  VarTable vars;
  Bindings b;
  Bind(&vars, &b, "P", Value::Sym("alice"));
  // U and F stay variables.
  Rule substituted = SubstituteRule(*rule, vars, b);
  EXPECT_EQ(PrintRule(substituted),
            "says(me2,U,[| granted(alice,F). |]) <- req(alice,F).");
}

TEST(SubstituteTest, ArithmeticFoldsWhenGround) {
  auto term = ParseTermText("[| depth(N-1). |]");
  VarTable vars;
  Bindings b;
  Bind(&vars, &b, "N", Value::Int(5));
  Term out = SubstituteTerm(*term, vars, b);
  EXPECT_EQ(PrintTerm(out), "[| depth(4). |]");
}

TEST(SubstituteTest, MetaFunctorSubstitution) {
  auto term = ParseTermText("[| active(R2) <- says(U2,me2,R2), "
                            "R2 = [| P(T*) <- A*. |]. |]");
  VarTable vars;
  Bindings b;
  Bind(&vars, &b, "U2", Value::Sym("mgr"));
  Bind(&vars, &b, "P", Value::Sym("permission"));
  Term out = SubstituteTerm(*term, vars, b);
  EXPECT_EQ(PrintTerm(out),
            "[| active(R2) <- says(mgr,me2,R2), "
            "R2 = [| permission(T*) <- A*. |]. |]");
}

TEST(SubstituteTest, StarSplicing) {
  // A captured literal list splices back into a constructed rule.
  auto pattern = ParseTermText("[| A <- P(T*), A*. |]");
  auto target =
      ParseTermText("[| out(X) <- first(X), second(X), third(). |]");
  ASSERT_TRUE(pattern.ok());
  ASSERT_TRUE(target.ok()) << target.status().ToString();
  VarTable vars;
  Bindings b;
  Trail trail;
  ASSERT_TRUE(UnifyCodeValue(pattern->value.AsCode(), target->value.AsCode(),
                             &vars, &b, &trail));
  auto rebuild = ParseTermText("[| B <- A*. |]");
  ASSERT_TRUE(rebuild.ok()) << rebuild.status().ToString();
  Term out = SubstituteTerm(*rebuild, vars, b);
  EXPECT_EQ(PrintTerm(out), "[| B <- second(X), third(). |]");
}

TEST(EvalGroundTermTest, Basics) {
  VarTable vars;
  Bindings b;
  Bind(&vars, &b, "X", Value::Int(6));
  auto v = EvalGroundTerm(*ParseTermText("X / 2 + 1"), vars, b);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(4));
  EXPECT_FALSE(EvalGroundTerm(*ParseTermText("Y + 1"), vars, b).ok());
  auto div0 = EvalGroundTerm(*ParseTermText("X / 0"), vars, b);
  EXPECT_FALSE(div0.ok());
}

TEST(EvalGroundTermTest, PartRef) {
  VarTable vars;
  Bindings b;
  Bind(&vars, &b, "P", Value::Sym("alice"));
  auto v = EvalGroundTerm(*ParseTermText("export[P]"), vars, b);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsPart().predicate, "export");
  EXPECT_EQ(*v->AsPart().key, Value::Sym("alice"));
}

TEST(ValueTermConversionTest, RoundTrip) {
  // Constants convert value->term->value unchanged.
  for (const Value& v : {Value::Int(3), Value::Sym("a"), Value::Str("s")}) {
    EXPECT_EQ(ValueFromTerm(TermFromValue(v)), v);
  }
  // A variable term becomes a kCode term value and back.
  Term var = Term::Variable("X");
  Value as_value = ValueFromTerm(var);
  EXPECT_EQ(as_value.kind(), ValueKind::kCode);
  EXPECT_TRUE(TermFromValue(as_value).is_variable());
}

}  // namespace
}  // namespace lbtrust::datalog
