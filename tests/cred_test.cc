#include "cred/credential.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cred/importer.h"
#include "cred/store.h"
#include "datalog/pretty.h"
#include "net/cluster.h"
#include "sendlog/sendlog.h"
#include "trust/trust_runtime.h"
#include "util/strings.h"

namespace lbtrust::cred {
namespace {

using datalog::Tuple;
using trust::TrustRuntime;

std::unique_ptr<TrustRuntime> MakeRuntime(const std::string& name) {
  TrustRuntime::Options opts;
  opts.principal = name;
  opts.rsa_bits = 512;
  auto rt = TrustRuntime::Create(opts);
  EXPECT_TRUE(rt.ok()) << rt.status().ToString();
  return std::move(*rt);
}

// Canonical dump of every non-builtin relation, for byte-identical
// comparison of workspace states (mirrors the workspace differential
// tests).
std::string Snapshot(const datalog::Workspace& ws) {
  std::string out;
  for (const auto& [name, info] : ws.catalog().predicates()) {
    if (info.builtin) continue;
    const datalog::Relation* rel = ws.GetRelation(name);
    if (rel == nullptr) continue;
    std::vector<std::string> rows;
    rows.reserve(rel->size());
    for (uint32_t i : rel->Rows()) {
      rows.push_back(datalog::TupleToString(rel->RowTuple(i)));
    }
    std::sort(rows.begin(), rows.end());
    out += name + ":\n";
    for (const std::string& r : rows) out += "  " + r + "\n";
  }
  return out;
}

// --- Record layer ---------------------------------------------------------

TEST(CredentialTest, SerializeParseRoundTrip) {
  Credential cred;
  cred.issuer = "alice";
  cred.key_fingerprint = "0123456789abcdef";
  cred.not_before = 100;
  cred.not_after = 900;
  cred.links.push_back(std::string(64, 'a'));
  cred.links.push_back(std::string(64, 'b'));
  cred.payload = "grant(bob,file1,read). canread(P,F) <- grant(P,F,read).";
  cred.signature = "\x01\x02\xff";

  auto back = ParseCredential(SerializeCredential(cred));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->issuer, cred.issuer);
  EXPECT_EQ(back->key_fingerprint, cred.key_fingerprint);
  EXPECT_EQ(back->not_before, cred.not_before);
  EXPECT_EQ(back->not_after, cred.not_after);
  EXPECT_EQ(back->links, cred.links);
  EXPECT_EQ(back->payload, cred.payload);
  EXPECT_EQ(back->signature, cred.signature);
  EXPECT_EQ(CredentialHash(*back), CredentialHash(cred));
}

TEST(CredentialTest, HashCoversEveryField) {
  Credential base;
  base.issuer = "alice";
  base.key_fingerprint = "0123456789abcdef";
  base.payload = "p(1).";
  std::string h0 = CredentialHash(base);
  Credential changed = base;
  changed.payload = "p(2).";
  EXPECT_NE(CredentialHash(changed), h0);
  changed = base;
  changed.not_after = 7;
  EXPECT_NE(CredentialHash(changed), h0);
  changed = base;
  changed.links.push_back(std::string(64, 'c'));
  EXPECT_NE(CredentialHash(changed), h0);
  EXPECT_EQ(CredentialHash(base), h0);  // deterministic
}

TEST(CredentialTest, SignAndVerify) {
  auto alice = MakeRuntime("alice");
  Credential cred;
  cred.issuer = "alice";
  cred.key_fingerprint = crypto::KeyFingerprint(alice->keypair().public_key);
  cred.payload = "grant(bob,file1,read).";
  ASSERT_TRUE(SignCredential(&cred, alice->keypair().private_key).ok());
  EXPECT_TRUE(VerifyCredentialSignature(cred, alice->keypair().public_key));
  // Any payload bit-flip invalidates the signature.
  Credential tampered = cred;
  tampered.payload = "grant(eve,file1,read).";
  EXPECT_FALSE(
      VerifyCredentialSignature(tampered, alice->keypair().public_key));
  // The wrong public key rejects.
  auto bob = MakeRuntime("bob");
  EXPECT_FALSE(VerifyCredentialSignature(cred, bob->keypair().public_key));
}

TEST(CredentialTest, MalformedInputsReturnStatus) {
  const char* kCases[] = {
      "",
      "XXXX",
      "LBC1",                       // no fields
      "LBC15:alice",                // truncated after issuer
      "LBC199999999999999999999:x", // length overflow
      "LBC15:alice3:abc",           // short fingerprint field then garbage
  };
  for (const char* input : kCases) {
    EXPECT_FALSE(ParseCredential(input).ok()) << input;
  }
  EXPECT_FALSE(ParseBundle("").ok());
  EXPECT_FALSE(ParseBundle("LBCB1").ok());
  EXPECT_FALSE(ParseBundle("LBCB19999999999:").ok());
  EXPECT_FALSE(ParseBundle("LBCB2").ok());
  EXPECT_FALSE(ParseBundle("LBCB29999999999:").ok());
  EXPECT_FALSE(ParseBundle("LBCB20:1:0:").ok());  // index into empty dict
}

TEST(CredentialTest, BundleV2RoundTripSharesDictionary) {
  auto alice = MakeRuntime("alice");
  Credential base;
  base.issuer = "alice";
  base.key_fingerprint = crypto::KeyFingerprint(alice->keypair().public_key);
  base.payload = "grant(bob,file1,read).";
  ASSERT_TRUE(SignCredential(&base, alice->keypair().private_key).ok());
  Credential linked;
  linked.issuer = "alice";
  linked.key_fingerprint = base.key_fingerprint;
  linked.payload = "grant(carol,file2,read).";
  linked.links.push_back(CredentialHash(base));
  ASSERT_TRUE(SignCredential(&linked, alice->keypair().private_key).ok());

  std::string bundle = SerializeBundle({linked, base});
  auto back = ParseBundle(bundle);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  // Hashes recompute identically: the v2 container does not perturb the
  // per-credential canonical form.
  EXPECT_EQ(CredentialHash((*back)[0]), CredentialHash(linked));
  EXPECT_EQ(CredentialHash((*back)[1]), CredentialHash(base));
  // The shared issuer and key fingerprint are serialized exactly once.
  size_t first = bundle.find("alice");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(bundle.find("alice", first + 1), std::string::npos);
  size_t fp = bundle.find(base.key_fingerprint);
  ASSERT_NE(fp, std::string::npos);
  EXPECT_EQ(bundle.find(base.key_fingerprint, fp + 1), std::string::npos);
}

TEST(CredentialTest, LegacyV1BundleStillParses) {
  auto alice = MakeRuntime("alice");
  Credential cred;
  cred.issuer = "alice";
  cred.key_fingerprint = crypto::KeyFingerprint(alice->keypair().public_key);
  cred.payload = "grant(bob,file1,read).";
  ASSERT_TRUE(SignCredential(&cred, alice->keypair().private_key).ok());
  // Hand-build the v1 container around the (unchanged) credential codec.
  std::string serialized = SerializeCredential(cred);
  std::string v1 = "LBCB11:";
  v1 += std::to_string(serialized.size());
  v1.push_back(':');
  v1 += serialized;
  auto back = ParseBundle(v1);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ(CredentialHash((*back)[0]), CredentialHash(cred));
}

// --- Store layer ----------------------------------------------------------

TEST(CredentialStoreTest, PutDeduplicatesByContent) {
  auto alice = MakeRuntime("alice");
  CredentialStore store;
  Credential cred;
  cred.issuer = "alice";
  cred.key_fingerprint = crypto::KeyFingerprint(alice->keypair().public_key);
  cred.payload = "p(1).";
  ASSERT_TRUE(SignCredential(&cred, alice->keypair().private_key).ok());
  std::string h1 = store.Put(cred);
  std::string h2 = store.Put(cred);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().dedup_hits, 1u);
  ASSERT_NE(store.Get(h1), nullptr);
  EXPECT_EQ(store.Get(h1)->payload, "p(1).");
}

TEST(CredentialStoreTest, VerificationIsMemoizedPerHash) {
  auto alice = MakeRuntime("alice");
  CredentialStore store;
  Credential cred;
  cred.issuer = "alice";
  cred.key_fingerprint = crypto::KeyFingerprint(alice->keypair().public_key);
  cred.payload = "p(1).";
  ASSERT_TRUE(SignCredential(&cred, alice->keypair().private_key).ok());
  std::string hash = store.Put(cred);

  for (int i = 0; i < 5; ++i) {
    auto ok = store.VerifySignature(hash, alice->keypair().public_key);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok);
  }
  EXPECT_EQ(store.stats().rsa_verifies, 1u);       // RSA ran exactly once
  EXPECT_EQ(store.stats().verify_cache_hits, 4u);  // the rest were hits

  // A different key re-verifies (the cache is per key fingerprint).
  auto bob = MakeRuntime("bob");
  auto wrong = store.VerifySignature(hash, bob->keypair().public_key);
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(*wrong);
  EXPECT_EQ(store.stats().rsa_verifies, 2u);

  EXPECT_EQ(store.VerifySignature("no-such-hash",
                                  alice->keypair().public_key)
                .status()
                .code(),
            util::StatusCode::kNotFound);
}

TEST(CredentialStoreTest, ResolveClosureOrdersRootFirst) {
  auto alice = MakeRuntime("alice");
  ASSERT_TRUE(alice->Fixpoint().ok());
  auto leaf = alice->Issue("l(1).");
  ASSERT_TRUE(leaf.ok());
  auto mid = alice->Issue("m(1).", {*leaf});
  ASSERT_TRUE(mid.ok());
  auto root = alice->Issue("r(1).", {*mid, *leaf});
  ASSERT_TRUE(root.ok());
  auto closure = alice->credentials()->ResolveClosure(*root);
  ASSERT_TRUE(closure.ok()) << closure.status().ToString();
  ASSERT_EQ(closure->size(), 3u);
  EXPECT_EQ((*closure)[0], *root);
  // Each hash appears exactly once despite the diamond.
  std::vector<std::string> sorted = *closure;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(CredentialStoreTest, SweepExpiredRemovesAndForgets) {
  auto alice = MakeRuntime("alice");
  auto eternal = alice->Issue("e(1).");
  ASSERT_TRUE(eternal.ok());
  auto shortlived = alice->Issue("s(1).", {}, /*not_before=*/0,
                                 /*not_after=*/100);
  ASSERT_TRUE(shortlived.ok());
  CredentialStore* store = alice->credentials();
  ASSERT_TRUE(*store->VerifySignature(*shortlived,
                                      alice->keypair().public_key));
  EXPECT_EQ(store->SweepExpired(50), 0u);   // both still valid
  EXPECT_EQ(store->SweepExpired(200), 1u);  // short-lived one expires
  EXPECT_EQ(store->size(), 1u);
  EXPECT_FALSE(store->Contains(*shortlived));
  EXPECT_TRUE(store->Contains(*eternal));
  EXPECT_EQ(store->stats().swept, 1u);
}

// --- Issue / export / import ----------------------------------------------

TEST(ImportTest, IssueExportImportActivatesAtReceiver) {
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(bob->AddPeer("alice", alice->keypair().public_key).ok());

  auto hash = alice->Issue(
      "grant(carol,file1,read). canread(P,F) <- grant(P,F,read).");
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  auto bundle = alice->ExportCredential(*hash);
  ASSERT_TRUE(bundle.ok());

  auto stats = bob->ImportCredentials(*bundle);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->credentials, 1u);
  EXPECT_EQ(stats->clauses, 2u);
  // says1 (trusting activation) installs alice's statements at bob.
  EXPECT_EQ(*bob->workspace()->Count("grant(carol,file1,read)"), 1u);
  EXPECT_EQ(*bob->workspace()->Count("canread(carol,file1)"), 1u);
  EXPECT_EQ(*bob->workspace()->Count("says(alice,bob,R)"), 2u);
}

TEST(ImportTest, LinkedSetImportsTransitively) {
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(bob->AddPeer("alice", alice->keypair().public_key).ok());

  auto base = alice->Issue("role(carol,engineer).");
  ASSERT_TRUE(base.ok());
  auto policy = alice->Issue(
      "access(P,lab) <- role(P,engineer).", {*base});
  ASSERT_TRUE(policy.ok());
  auto bundle = alice->ExportCredential(*policy);
  ASSERT_TRUE(bundle.ok());
  auto stats = bob->ImportCredentials(*bundle);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->credentials, 2u);
  EXPECT_EQ(*bob->workspace()->Count("access(carol,lab)"), 1u);
}

TEST(ImportTest, SendlogProgramsShipAsCredentials) {
  // A SeNDlog policy fragment compiles to core clauses and travels as a
  // signed credential like any other evidence.
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(bob->AddPeer("alice", alice->keypair().public_key).ok());
  auto hash = sendlog::IssueSendlogCredential(
      alice.get(),
      "canread(P,F) :- grant(P,F,read).\n"
      "grant(carol,file1,read).");
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  auto bundle = alice->ExportCredential(*hash);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(bob->ImportCredentials(*bundle).ok());
  EXPECT_EQ(*bob->workspace()->Count("canread(carol,file1)"), 1u);
}

TEST(ImportTest, OutOfClosureBundleMembersArePruned) {
  // A hostile bundle rides one valid credential plus unverified freight
  // outside the root's link closure: the import succeeds, but the freight
  // must not survive in the receiver's store.
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(bob->AddPeer("alice", alice->keypair().public_key).ok());
  auto hash = alice->Issue("fact(1).");
  ASSERT_TRUE(hash.ok());
  auto bundle = alice->ExportCredential(*hash);
  ASSERT_TRUE(bundle.ok());
  auto parsed = ParseBundle(*bundle);
  ASSERT_TRUE(parsed.ok());
  Credential freight;
  freight.issuer = "nobody";
  freight.key_fingerprint = "ffffffffffffffff";
  freight.payload = "junk(1).";
  freight.signature = "bogus";
  parsed->push_back(freight);
  std::string padded = SerializeBundle(*parsed);

  ASSERT_TRUE(bob->ImportCredentials(padded).ok());
  EXPECT_EQ(*bob->workspace()->Count("fact(1)"), 1u);
  EXPECT_EQ(bob->credentials()->size(), 1u);  // freight pruned
  EXPECT_FALSE(bob->credentials()->Contains(CredentialHash(freight)));
}

TEST(ImportTest, IllFormedPayloadRejectedBeforeAnyMutation) {
  // A hostile (but validly signed) bundle carrying a non-range-restricted
  // program must be rejected by the static analyzer BEFORE anything
  // stages: the diagnostic names the unbound variable, and neither the
  // receiver's workspace nor its credential store changes at all.
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(bob->AddPeer("alice", alice->keypair().public_key).ok());

  // Head variable F never bound by a positive body literal: the engine
  // could derive infinitely many grants. Issue() only parses, so a
  // compromised issuer can sign this; the importer must still refuse it.
  auto hash = alice->Issue(
      "grant(carol,file1,read).\n"
      "grant(P,F,write) <- grant(P,file1,read).");
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  auto bundle = alice->ExportCredential(*hash);
  ASSERT_TRUE(bundle.ok());

  std::string before = Snapshot(*bob->workspace());
  ASSERT_EQ(bob->credentials()->size(), 0u);

  auto stats = bob->ImportCredentials(*bundle);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("ill-formed program"),
            std::string::npos)
      << stats.status().ToString();
  EXPECT_NE(stats.status().message().find("L001"), std::string::npos)
      << stats.status().ToString();
  EXPECT_NE(stats.status().message().find("'F'"), std::string::npos)
      << stats.status().ToString();

  // Zero mutation: no says-facts, no derived state, no staged credentials.
  EXPECT_EQ(Snapshot(*bob->workspace()), before);
  EXPECT_EQ(*bob->workspace()->Count("says(alice,bob,R)"), 0u);
  EXPECT_EQ(bob->credentials()->size(), 0u);
}

TEST(ImportTest, ReimportIsIdempotentAndSkipsRsa) {
  auto alice = MakeRuntime("alice");
  auto bob = MakeRuntime("bob");
  ASSERT_TRUE(bob->AddPeer("alice", alice->keypair().public_key).ok());
  auto hash = alice->Issue("fact(1).");
  ASSERT_TRUE(hash.ok());
  auto bundle = alice->ExportCredential(*hash);
  ASSERT_TRUE(bundle.ok());

  ASSERT_TRUE(bob->ImportCredentials(*bundle).ok());
  size_t rsa_after_first = bob->credentials()->stats().rsa_verifies;
  EXPECT_EQ(rsa_after_first, 1u);
  std::string snapshot = Snapshot(*bob->workspace());

  // Re-import: content-addressed dedup + memoized verification = no new
  // RSA work, no state change.
  ASSERT_TRUE(bob->ImportCredentials(*bundle).ok());
  EXPECT_EQ(bob->credentials()->stats().rsa_verifies, rsa_after_first);
  EXPECT_GE(bob->credentials()->stats().verify_cache_hits, 1u);
  EXPECT_EQ(bob->credentials()->size(), 1u);  // content-dedup, no new entry
  EXPECT_EQ(Snapshot(*bob->workspace()), snapshot);
}

// The acceptance differential: shipping evidence as a credential must be
// observationally identical to the issuer saying the same things locally.
TEST(ImportTest, DifferentialAgainstLocalSay) {
  const char* kClauses[] = {
      "grant(carol,file1,read).",
      "grant(dave,file2,write).",
      "canread(P,F) <- grant(P,F,read).",
  };

  // Path A: bob imports a credential from alice.
  auto alice = MakeRuntime("alice");
  auto bob_import = MakeRuntime("bob");
  ASSERT_TRUE(
      bob_import->AddPeer("alice", alice->keypair().public_key).ok());
  auto hash = alice->Issue(util::Join(
      std::vector<std::string>(std::begin(kClauses), std::end(kClauses)),
      " "));
  ASSERT_TRUE(hash.ok());
  auto bundle = alice->ExportCredential(*hash);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(bob_import->ImportCredentials(*bundle).ok());

  // Path B: an identical bob applies the same statements as local
  // says-facts (what a Say() by alice inside bob's workspace stages).
  auto alice2 = MakeRuntime("alice");
  auto bob_local = MakeRuntime("bob");
  ASSERT_TRUE(
      bob_local->AddPeer("alice", alice2->keypair().public_key).ok());
  datalog::Transaction txn = bob_local->Begin();
  for (const char* clause : kClauses) {
    txn.AddFactTextAs("alice",
                      util::StrCat("says(alice,bob,[| ", clause, " |])."));
  }
  ASSERT_TRUE(txn.Commit().ok());

  EXPECT_EQ(Snapshot(*bob_import->workspace()),
            Snapshot(*bob_local->workspace()));
  EXPECT_NE(Snapshot(*bob_import->workspace()).find("canread"),
            std::string::npos);
}

// --- Failure paths: every rejection leaves the workspace untouched --------

class RejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alice_ = MakeRuntime("alice");
    bob_ = MakeRuntime("bob");
    ASSERT_TRUE(bob_->AddPeer("alice", alice_->keypair().public_key).ok());
    ASSERT_TRUE(bob_->Fixpoint().ok());
    before_ = Snapshot(*bob_->workspace());
  }

  void ExpectUnchanged() {
    EXPECT_EQ(Snapshot(*bob_->workspace()), before_);
  }

  std::unique_ptr<TrustRuntime> alice_;
  std::unique_ptr<TrustRuntime> bob_;
  std::string before_;
};

TEST_F(RejectionTest, TamperedPayloadRejected) {
  auto hash = alice_->Issue("balance(100).");
  ASSERT_TRUE(hash.ok());
  auto bundle = alice_->ExportCredential(*hash);
  ASSERT_TRUE(bundle.ok());
  std::string tampered = *bundle;
  size_t pos = tampered.find("balance(100)");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos + 8] = '9';  // 100 -> 900, signature left alone

  auto st = bob_->ImportCredentials(tampered);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), util::StatusCode::kCryptoError);
  ExpectUnchanged();
  // The rejected member must not linger in the store either (it would be
  // unexpirable and ExportCredential could re-ship it unverified).
  EXPECT_EQ(bob_->credentials()->size(), 0u);
}

TEST_F(RejectionTest, WrongSignerRejected) {
  // eve signs a credential claiming to be from alice: the fingerprint she
  // must embed is her own (the signature would not verify under alice's
  // key), and bob has no binding alice -> eve's key.
  auto eve = MakeRuntime("eve");
  Credential forged;
  forged.issuer = "alice";
  forged.key_fingerprint = crypto::KeyFingerprint(eve->keypair().public_key);
  forged.payload = "grant(eve,vault,write).";
  ASSERT_TRUE(SignCredential(&forged, eve->keypair().private_key).ok());
  std::string bundle = SerializeBundle({forged});

  auto st = bob_->ImportCredentials(bundle);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), util::StatusCode::kCryptoError);
  ExpectUnchanged();

  // Variant: eve embeds alice's fingerprint instead — key binding matches,
  // so rejection must come from the RSA check itself.
  Credential forged2;
  forged2.issuer = "alice";
  forged2.key_fingerprint =
      crypto::KeyFingerprint(alice_->keypair().public_key);
  forged2.payload = "grant(eve,vault,write).";
  ASSERT_TRUE(SignCredential(&forged2, eve->keypair().private_key).ok());
  auto st2 = bob_->ImportCredentials(SerializeBundle({forged2}));
  ASSERT_FALSE(st2.ok());
  EXPECT_EQ(st2.status().code(), util::StatusCode::kCryptoError);
  ExpectUnchanged();
}

TEST_F(RejectionTest, ExpiredCredentialRejected) {
  auto hash = alice_->Issue("grant(carol,file1,read).", {},
                            /*not_before=*/100, /*not_after=*/200);
  ASSERT_TRUE(hash.ok());
  auto bundle = alice_->ExportCredential(*hash);
  ASSERT_TRUE(bundle.ok());
  auto expired = bob_->ImportCredentials(*bundle, /*now=*/300);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), util::StatusCode::kFailedPrecondition);
  ExpectUnchanged();
  EXPECT_EQ(bob_->credentials()->size(), 0u);  // rolled back out
  auto premature = bob_->ImportCredentials(*bundle, /*now=*/50);
  ASSERT_FALSE(premature.ok());
  ExpectUnchanged();
  // Inside the window it imports fine.
  EXPECT_TRUE(bob_->ImportCredentials(*bundle, /*now=*/150).ok());
  EXPECT_EQ(bob_->credentials()->size(), 1u);
}

TEST_F(RejectionTest, MissingLinkRejected) {
  auto base = alice_->Issue("role(carol,engineer).");
  ASSERT_TRUE(base.ok());
  auto root = alice_->Issue("access(P,lab) <- role(P,engineer).", {*base});
  ASSERT_TRUE(root.ok());
  auto bundle = alice_->ExportCredential(*root);
  ASSERT_TRUE(bundle.ok());
  // Strip the linked credential out of the bundle, keeping only the root.
  auto parsed = ParseBundle(*bundle);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  std::string partial = SerializeBundle({(*parsed)[0]});

  auto st = bob_->ImportCredentials(partial);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), util::StatusCode::kNotFound);
  ExpectUnchanged();
}

TEST_F(RejectionTest, LinkCycleRejected) {
  // An honest store cannot contain a cycle (it would require a SHA-256
  // fixed point), but a corrupt or malicious replica can sync entries
  // whose addresses do not match their content. Build A -> B -> A that
  // way and check both the store guard and the importer's no-mutation
  // guarantee.
  auto make = [&](const std::string& payload,
                  const std::string& link) {
    Credential c;
    c.issuer = "alice";
    c.key_fingerprint =
        crypto::KeyFingerprint(alice_->keypair().public_key);
    c.payload = payload;
    if (!link.empty()) c.links.push_back(link);
    EXPECT_TRUE(SignCredential(&c, alice_->keypair().private_key).ok());
    return c;
  };
  const std::string ha(64, 'a');
  const std::string hb(64, 'b');
  CredentialStore* store = bob_->credentials();
  store->InsertForReplication(ha, make("pa(1).", hb));
  store->InsertForReplication(hb, make("pb(1).", ha));

  auto closure = store->ResolveClosure(ha);
  ASSERT_FALSE(closure.ok());
  EXPECT_EQ(closure.status().code(),
            util::StatusCode::kFailedPrecondition);

  KeyResolver resolver = [this](const std::string& issuer,
                                const std::string& fingerprint)
      -> const crypto::RsaPublicKey* {
    (void)issuer;
    (void)fingerprint;
    return &alice_->keypair().public_key;
  };
  auto st = ImportCredentialSet(ha, store, bob_->workspace(), resolver,
                                /*now=*/0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), util::StatusCode::kFailedPrecondition);
  ExpectUnchanged();

  // Self-link variant.
  const std::string hs(64, 'c');
  store->InsertForReplication(hs, make("ps(1).", hs));
  EXPECT_FALSE(store->ResolveClosure(hs).ok());
  ExpectUnchanged();
}

// --- End-to-end through the cluster ---------------------------------------

TEST(ClusterCredentialTest, ShipThroughClusterMatchesLocalSay) {
  net::Cluster::Options copts;
  copts.scheme = "";  // schemes orthogonal to credential shipping
  copts.default_placement = false;
  net::Cluster cluster(copts);
  TrustRuntime::Options small;
  small.rsa_bits = 512;
  ASSERT_TRUE(cluster.AddNode("alice", small).ok());
  ASSERT_TRUE(cluster.AddNode("bob", small).ok());
  ASSERT_TRUE(cluster.Connect().ok());

  auto* alice = cluster.node("alice");
  auto* bob = cluster.node("bob");
  auto hash = alice->Issue(
      "grant(carol,file1,read). canread(P,F) <- grant(P,F,read).");
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  ASSERT_TRUE(cluster.ShipCredential("alice", "bob", *hash).ok());
  auto stats = cluster.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->messages, 1u);
  EXPECT_EQ(*bob->workspace()->Count("canread(carol,file1)"), 1u);
  EXPECT_EQ(*bob->workspace()->Count("says(alice,bob,R)"), 2u);

  // Differential: an identical receiver that gets the same statements via
  // local says-facts must end up byte-identical.
  net::Cluster::Options copts2 = copts;
  net::Cluster reference(copts2);
  ASSERT_TRUE(reference.AddNode("alice", small).ok());
  ASSERT_TRUE(reference.AddNode("bob", small).ok());
  ASSERT_TRUE(reference.Connect().ok());
  auto* bob_ref = reference.node("bob");
  datalog::Transaction txn = bob_ref->Begin();
  txn.AddFactTextAs(
      "alice", "says(alice,bob,[| grant(carol,file1,read). |]).");
  txn.AddFactTextAs(
      "alice", "says(alice,bob,[| canread(P,F) <- grant(P,F,read). |]).");
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(reference.Run().ok());
  EXPECT_EQ(Snapshot(*bob->workspace()), Snapshot(*bob_ref->workspace()));
}

TEST(ClusterCredentialTest, FailedDeliveryKeepsLaterBundlesQueued) {
  // Two bundles queued; the first is tampered in flight and rejected. The
  // second must survive the failed Run() and deliver on the next one.
  net::Cluster::Options copts;
  copts.scheme = "";
  copts.default_placement = false;
  net::Cluster cluster(copts);
  TrustRuntime::Options small;
  small.rsa_bits = 512;
  ASSERT_TRUE(cluster.AddNode("alice", small).ok());
  ASSERT_TRUE(cluster.AddNode("bob", small).ok());
  ASSERT_TRUE(cluster.Connect().ok());
  auto first = cluster.node("alice")->Issue("first(1).");
  ASSERT_TRUE(first.ok());
  auto second = cluster.node("alice")->Issue("second(2).");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(cluster.ShipCredential("alice", "bob", *first).ok());
  ASSERT_TRUE(cluster.ShipCredential("alice", "bob", *second).ok());
  cluster.InjectTamper("credential", [](std::string* payload) {
    size_t pos = payload->find("first(1)");
    ASSERT_NE(pos, std::string::npos);
    (*payload)[pos + 6] = '9';
  });
  ASSERT_FALSE(cluster.Run().ok());
  EXPECT_EQ(*cluster.node("bob")->workspace()->Count("second(N)"), 0u);
  auto retry = cluster.Run();
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*cluster.node("bob")->workspace()->Count("second(2)"), 1u);
  EXPECT_EQ(*cluster.node("bob")->workspace()->Count("first(N)"), 0u);
}

TEST(ClusterCredentialTest, TamperedBundleAbortsRun) {
  net::Cluster::Options copts;
  copts.scheme = "";
  copts.default_placement = false;
  net::Cluster cluster(copts);
  TrustRuntime::Options small;
  small.rsa_bits = 512;
  ASSERT_TRUE(cluster.AddNode("alice", small).ok());
  ASSERT_TRUE(cluster.AddNode("bob", small).ok());
  ASSERT_TRUE(cluster.Connect().ok());
  auto hash = cluster.node("alice")->Issue("balance(100).");
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(cluster.ShipCredential("alice", "bob", *hash).ok());
  cluster.InjectTamper("credential", [](std::string* payload) {
    size_t pos = payload->find("balance(100)");
    ASSERT_NE(pos, std::string::npos);
    (*payload)[pos + 8] = '9';
  });
  auto stats = cluster.Run();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), util::StatusCode::kCryptoError);
  EXPECT_NE(stats.status().message().find("bob"), std::string::npos);
  EXPECT_EQ(*cluster.node("bob")->workspace()->Count("balance(N)"), 0u);
}

}  // namespace
}  // namespace lbtrust::cred
