// HTTP introspection server hardening + liveness: malformed request lines,
// unknown paths, method filtering, the oversize-header cap, the slow-loris
// read deadline, and a scraper hammering /metrics while the workspace runs
// real fixpoints on the serving thread.
#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/workspace.h"
#include "util/strings.h"

namespace lbtrust::obs {
namespace {

int DialLocal(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    ASSERT_GT(n, 0) << "send: " << std::strerror(errno);
    off += static_cast<size_t>(n);
  }
}

/// Sends `request` and polls the owned-loop exporter until the server
/// closes the connection, returning everything it wrote. The client socket
/// is read non-blocking so one thread can play both sides.
std::string RoundTrip(HttpExporter* exporter, const std::string& request) {
  int fd = DialLocal(exporter->listen_port());
  EXPECT_GE(fd, 0);
  if (fd < 0) return "";
  SendAll(fd, request);
  std::string response;
  for (int i = 0; i < 1000; ++i) {
    exporter->Poll(5);
    char buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
    } else if (n == 0) {
      break;  // server finished and closed
    }
  }
  ::close(fd);
  return response;
}

std::string StatusLine(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

/// Splits a full response into (headers, body) and checks Content-Length
/// agrees with the body actually received.
std::string BodyOf(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  EXPECT_NE(split, std::string::npos) << response;
  if (split == std::string::npos) return "";
  std::string headers = response.substr(0, split);
  std::string body = response.substr(split + 4);
  size_t cl = headers.find("Content-Length: ");
  EXPECT_NE(cl, std::string::npos) << headers;
  if (cl != std::string::npos) {
    EXPECT_EQ(static_cast<size_t>(std::atoll(headers.c_str() + cl + 16)),
              body.size())
        << headers;
  }
  return body;
}

class HttpExporterTest : public testing::Test {
 protected:
  void Start(HttpExporter::Options options = HttpExporter::Options()) {
    exporter_ = std::make_unique<HttpExporter>(nullptr, options);
    exporter_->Handle("/metrics", [] {
      HttpExporter::Response r;
      r.body = "lbtrust_up 1\n";
      return r;
    });
    ASSERT_TRUE(exporter_->Listen("127.0.0.1", 0).ok());
    ASSERT_NE(exporter_->listen_port(), 0);
  }

  std::unique_ptr<HttpExporter> exporter_;
};

TEST_F(HttpExporterTest, ServesRegisteredHandler) {
  Start();
  std::string response =
      RoundTrip(exporter_.get(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusLine(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(BodyOf(response), "lbtrust_up 1\n");
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(exporter_->stats().requests, 1u);
  EXPECT_EQ(exporter_->stats().responses_ok, 1u);
}

TEST_F(HttpExporterTest, QueryStringIsStrippedBeforeMatching) {
  Start();
  std::string response = RoundTrip(
      exporter_.get(), "GET /metrics?format=prometheus HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusLine(response), "HTTP/1.1 200 OK");
}

TEST_F(HttpExporterTest, MalformedRequestLinesGet400) {
  Start();
  const char* kMalformed[] = {
      "garbage\r\n\r\n",                  // no method/target/version split
      "GET /metrics\r\n\r\n",             // missing version
      "GET /metrics SMTP/1.0\r\n\r\n",    // wrong protocol
      " GET /metrics HTTP/1.1\r\n\r\n",   // leading space shifts the split
  };
  for (const char* request : kMalformed) {
    std::string response = RoundTrip(exporter_.get(), request);
    EXPECT_EQ(StatusLine(response), "HTTP/1.1 400 Bad Request") << request;
  }
  EXPECT_EQ(exporter_->stats().responses_error, 4u);
}

TEST_F(HttpExporterTest, UnknownPathGets404) {
  Start();
  std::string response =
      RoundTrip(exporter_.get(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusLine(response), "HTTP/1.1 404 Not Found");
}

TEST_F(HttpExporterTest, NonGetMethodsGet405) {
  Start();
  std::string response =
      RoundTrip(exporter_.get(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusLine(response), "HTTP/1.1 405 Method Not Allowed");
}

TEST_F(HttpExporterTest, OversizedHeadersRejectedAtTheCap) {
  HttpExporter::Options options;
  options.max_request_bytes = 256;
  Start(options);
  // Never completes a request: header bytes keep coming. The server must
  // answer 431 as soon as the buffered request would pass the cap, not
  // keep buffering until a terminator shows up.
  std::string request = "GET /metrics HTTP/1.1\r\nX-Filler: ";
  request.append(4096, 'a');
  std::string response = RoundTrip(exporter_.get(), request);
  EXPECT_EQ(StatusLine(response),
            "HTTP/1.1 431 Request Header Fields Too Large");
  EXPECT_EQ(exporter_->stats().oversize_rejects, 1u);
  EXPECT_EQ(exporter_->open_connections(), 0u);
}

TEST_F(HttpExporterTest, SlowLorisClosedByReadDeadline) {
  HttpExporter::Options options;
  options.read_deadline_ms = 50;
  Start(options);
  int fd = DialLocal(exporter_->listen_port());
  ASSERT_GE(fd, 0);
  SendAll(fd, "GET /metr");  // stalls mid-request, forever
  for (int i = 0; i < 100 && exporter_->stats().deadline_closes == 0; ++i) {
    exporter_->Poll(5);
  }
  EXPECT_EQ(exporter_->stats().deadline_closes, 1u);
  EXPECT_EQ(exporter_->open_connections(), 0u);
  // The server hung up without writing anything.
  char buf[64];
  ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
  EXPECT_EQ(n, 0);
  ::close(fd);
}

TEST_F(HttpExporterTest, ScrapeDuringActiveFixpointStaysParseable) {
  // The deployment shape: the exporter serves from the engine thread, so a
  // scrape can only ever observe the store between fixpoints — but nothing
  // stops a client from *sending* while one runs. A client thread fires
  // blocking GETs as fast as the server answers them while this thread
  // alternates real fixpoint work with polls; every response must be a
  // complete, parseable metrics page.
  datalog::Workspace ws;
  ASSERT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).\n")
                  .ok());
  exporter_ = std::make_unique<HttpExporter>(nullptr);
  exporter_->Handle("/metrics", [&ws] {
    HttpExporter::Response r;
    r.body = ws.DumpMetrics();
    return r;
  });
  ASSERT_TRUE(exporter_->Listen("127.0.0.1", 0).ok());
  uint16_t port = exporter_->listen_port();

  constexpr int kScrapes = 8;
  std::vector<std::string> responses(kScrapes);
  std::thread scraper([port, &responses] {
    for (int i = 0; i < kScrapes; ++i) {
      int fd = DialLocal(port);
      ASSERT_GE(fd, 0);
      SendAll(fd, "GET /metrics HTTP/1.1\r\n\r\n");
      char buf[4096];
      ssize_t n;
      while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        responses[i].append(buf, static_cast<size_t>(n));
      }
      ::close(fd);
    }
  });

  int next_node = 0;
  while (exporter_->stats().responses_ok < kScrapes) {
    // Grow the edge chain and re-run the fixpoint: the handler renders a
    // different (larger) page on every scrape.
    auto txn = ws.Begin();
    txn.AddFactText(util::StrCat("edge(", next_node, ",", next_node + 1,
                                 ")."));
    ASSERT_TRUE(txn.Commit().ok());
    ++next_node;
    exporter_->Poll(5);
  }
  scraper.join();

  for (const std::string& response : responses) {
    EXPECT_EQ(StatusLine(response), "HTTP/1.1 200 OK");
    std::string body = BodyOf(response);
    EXPECT_NE(body.find("# TYPE lbtrust_relation_rows gauge"),
              std::string::npos);
    EXPECT_NE(body.find("lbtrust_relation_rows{relation=\"path\"}"),
              std::string::npos);
    // A torn page would end mid-line; Content-Length is already checked by
    // BodyOf, so just confirm the page ends on a line boundary.
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body.back(), '\n');
  }
}

TEST_F(HttpExporterTest, SyncMetricsMirrorsStats) {
  Start();
  RoundTrip(exporter_.get(), "GET /metrics HTTP/1.1\r\n\r\n");
  RoundTrip(exporter_.get(), "GET /nope HTTP/1.1\r\n\r\n");
  MetricsRegistry registry;
  exporter_->SyncMetrics(&registry);
  EXPECT_EQ(registry.GetCounter("lbtrust_http_requests_total")->value(), 2u);
  EXPECT_EQ(
      registry.GetCounter("lbtrust_http_responses_total", "code=\"200\"")
          ->value(),
      1u);
  EXPECT_EQ(
      registry.GetCounter("lbtrust_http_responses_total", "code=\"error\"")
          ->value(),
      1u);
}

}  // namespace
}  // namespace lbtrust::obs
