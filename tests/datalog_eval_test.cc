#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/workspace.h"

namespace lbtrust::datalog {
namespace {

// Helper: run program then query.
std::vector<Tuple> RunAndQuery(Workspace* ws, const std::string& program,
                       const std::string& query) {
  auto st = ws->Load(program);
  EXPECT_TRUE(st.ok()) << st.ToString();
  st = ws->Fixpoint();
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto result = ws->Query(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : std::vector<Tuple>{};
}

TEST(EvalTest, FactsAndSimpleRule) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "parent(alice,bob). parent(bob,carol).\n"
                  "grandparent(X,Z) <- parent(X,Y), parent(Y,Z).",
                  "grandparent(X,Y)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Sym("alice"));
  EXPECT_EQ(rows[0][1], Value::Sym("carol"));
}

TEST(EvalTest, TransitiveClosure) {
  Workspace ws;
  std::string program = "edge(a,b). edge(b,c). edge(c,d). edge(d,b).\n"
                        "path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).";
  auto rows = RunAndQuery(&ws, program, "path(X,Y)");
  // a reaches b,c,d; b reaches c,d,b; c reaches d,b,c; d reaches b,c,d.
  EXPECT_EQ(rows.size(), 12u);
}

TEST(EvalTest, SemiNaiveMatchesNaive) {
  std::string program = "edge(a,b). edge(b,c). edge(c,d). edge(d,e).\n"
                        "edge(e,a). edge(b,e). edge(c,a).\n"
                        "path(X,Y) <- edge(X,Y).\n"
                        "path(X,Z) <- path(X,Y), edge(Y,Z).";
  Workspace fast;
  auto fast_rows = RunAndQuery(&fast, program, "path(X,Y)");
  Workspace::Options opts;
  opts.naive_eval = true;
  Workspace slow(opts);
  auto slow_rows = RunAndQuery(&slow, program, "path(X,Y)");
  auto key = [](const Tuple& t) {
    return t[0].ToString() + "|" + t[1].ToString();
  };
  std::vector<std::string> a, b;
  for (const auto& t : fast_rows) a.push_back(key(t));
  for (const auto& t : slow_rows) b.push_back(key(t));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(EvalTest, StratifiedNegation) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "node(a). node(b). node(c).\n"
                  "blocked(b).\n"
                  "allowed(X) <- node(X), !blocked(X).",
                  "allowed(X)");
  ASSERT_EQ(rows.size(), 2u);
}

TEST(EvalTest, NegationThroughRecursionRejected) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) <- q(X), !p(X). q(a).").ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kNotStratifiable) << st.ToString();
}

TEST(EvalTest, NegationWithWildcard) {
  // Unbound variables in negation act existentially (dd4-style).
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "emp(alice,sales). emp(bob,eng).\n"
                  "dept(sales). dept(eng). dept(legal).\n"
                  "emptyDept(D) <- dept(D), !emp(_,D).",
                  "emptyDept(X)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Sym("legal"));
}

TEST(EvalTest, DisjunctionInBody) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "a(1). b(2). c(3).\n"
                  "out(X) <- a(X) ; (b(X), !c(X)) ; c(X).",
                  "out(X)");
  EXPECT_EQ(rows.size(), 3u);  // 1 from a, 2 from b (not in c), 3 from c
}

TEST(EvalTest, ComparisonBuiltins) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "n(1). n(2). n(3). n(4).\n"
                  "big(X) <- n(X), X >= 3.\n"
                  "pair(X,Y) <- n(X), n(Y), X < Y.",
                  "big(X)");
  EXPECT_EQ(rows.size(), 2u);
  auto pairs = ws.Query("pair(X,Y)");
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 6u);
}

TEST(EvalTest, ArithmeticInHeadAndBody) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "n(5).\n"
                  "dec(X-1) <- n(X).\n"
                  "sum(X+Y) <- n(X), n(Y).",
                  "dec(X)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(4));
  auto sums = ws.Query("sum(X)");
  ASSERT_TRUE(sums.ok());
  ASSERT_EQ(sums->size(), 1u);
  EXPECT_EQ((*sums)[0][0], Value::Int(10));
}

TEST(EvalTest, ArithmeticRecursionWithGuard) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "count(10).\n"
                  "count(N-1) <- count(N), N > 0.",
                  "count(X)");
  EXPECT_EQ(rows.size(), 11u);  // 10 down to 0
}

TEST(EvalTest, EqualityBindsAndChecks) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "n(3). n(4).\n"
                  "twice(Y) <- n(X), Y = X + X.\n"
                  "three(X) <- n(X), X = 3.",
                  "twice(Y)");
  EXPECT_EQ(rows.size(), 2u);
  auto threes = ws.Query("three(X)");
  ASSERT_TRUE(threes.ok());
  EXPECT_EQ(threes->size(), 1u);
}

TEST(EvalTest, InequalityBuiltin) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "n(1). n(2).\n"
                  "diff(X,Y) <- n(X), n(Y), X != Y.",
                  "diff(X,Y)");
  EXPECT_EQ(rows.size(), 2u);
}

TEST(EvalTest, UnsafeHeadVariableRejected) {
  Workspace ws;
  auto st = ws.Load("p(X,Y) <- q(X). q(a).");
  EXPECT_EQ(st.code(), util::StatusCode::kUnsafeProgram) << st.ToString();
}

TEST(EvalTest, StringAndIntValues) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "f(alice,\"hello world\",42).\n"
                  "g(S) <- f(_,S,_).",
                  "g(X)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Str("hello world"));
}

TEST(EvalTest, CountAggregate) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "vote(a,alice). vote(a,bob). vote(a,carol). vote(b,dave).\n"
                  "tally(C,N) <- agg<<N = count(U)>> vote(C,U).",
                  "tally(C,N)");
  ASSERT_EQ(rows.size(), 2u);
  for (const Tuple& t : rows) {
    if (t[0] == Value::Sym("a")) {
      EXPECT_EQ(t[1], Value::Int(3));
    }
    if (t[0] == Value::Sym("b")) {
      EXPECT_EQ(t[1], Value::Int(1));
    }
  }
}

TEST(EvalTest, CountDistinct) {
  // Duplicate derivations count once (set semantics).
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "v(a,x). v(a,x). v(a,y).\n"
                  "c(G,N) <- agg<<N = count(U)>> v(G,U).",
                  "c(G,N)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int(2));
}

TEST(EvalTest, TotalAggregate) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "score(alice,3). score(alice,4). score(bob,10).\n"
                  "sum(P,N) <- agg<<N = total(S)>> score(P,S).",
                  "sum(P,N)");
  ASSERT_EQ(rows.size(), 2u);
  for (const Tuple& t : rows) {
    if (t[0] == Value::Sym("alice")) {
      EXPECT_EQ(t[1], Value::Int(7));
    }
    if (t[0] == Value::Sym("bob")) {
      EXPECT_EQ(t[1], Value::Int(10));
    }
  }
}

TEST(EvalTest, MinMaxAggregates) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "price(apple,3). price(apple,5). price(pear,7).\n"
                  "cheapest(P,N) <- agg<<N = min(C)>> price(P,C).\n"
                  "dearest(P,N) <- agg<<N = max(C)>> price(P,C).",
                  "cheapest(apple,N)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int(3));
  auto max_rows = ws.Query("dearest(apple,N)");
  ASSERT_TRUE(max_rows.ok());
  ASSERT_EQ(max_rows->size(), 1u);
  EXPECT_EQ((*max_rows)[0][1], Value::Int(5));
}

TEST(EvalTest, AggregateOverDerived) {
  // Aggregation is stratified above the aggregated predicate.
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "edge(a,b). edge(b,c). edge(a,c).\n"
                  "reach(X,Y) <- edge(X,Y).\n"
                  "reach(X,Z) <- reach(X,Y), edge(Y,Z).\n"
                  "fanout(X,N) <- agg<<N = count(Y)>> reach(X,Y).",
                  "fanout(a,N)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int(2));  // a reaches b and c
}

TEST(EvalTest, AggregateThroughRecursionRejected) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X,N) <- agg<<N = count(Y)>> q(X,Y).\n"
                      "q(X,N) <- p(X,N).\n"
                      "q(a,1).")
                  .ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kNotStratifiable);
}

TEST(EvalTest, IncrementalFactAddition) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).\n"
                      "edge(a,b).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("path(X,Y)"), 1u);
  ASSERT_TRUE(ws.AddFact("edge", {Value::Sym("b"), Value::Sym("c")}).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("path(X,Y)"), 3u);
}

TEST(EvalTest, FactRemovalRecomputes) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("edge(a,b). edge(b,c).\n"
                      "path(X,Y) <- edge(X,Y).\n"
                      "path(X,Z) <- path(X,Y), edge(Y,Z).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("path(X,Y)"), 3u);
  ASSERT_TRUE(ws.RemoveFact("edge", {Value::Sym("b"), Value::Sym("c")}).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("path(X,Y)"), 1u);
}

TEST(EvalTest, RuleRemoval) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) <- q(X). q(a).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("p(X)"), 1u);
  auto rule = ParseRuleText("p(X) <- q(X).");
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(ws.RemoveRule(*rule).ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("p(X)"), 0u);
}

TEST(EvalTest, DuplicateRuleIsNoOp) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) <- q(X). q(a).").ok());
  ASSERT_TRUE(ws.Load("p(X) <- q(X).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(ws.rules().size(), 1u);
}

TEST(EvalTest, ZeroArityPredicates) {
  Workspace ws;
  auto rows = RunAndQuery(&ws, "go(). ready() <- go().", "ready()");
  EXPECT_EQ(rows.size(), 1u);
}

TEST(EvalTest, MeResolution) {
  Workspace::Options opts;
  opts.principal = "alice";
  Workspace ws(opts);
  auto rows = RunAndQuery(&ws, "self(me).", "self(X)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Sym("alice"));
}

TEST(EvalTest, LoadAsOverridesMe) {
  Workspace ws;  // principal "local"
  ASSERT_TRUE(ws.LoadAs("bob", "self(me).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("self(bob)"), 1u);
  EXPECT_EQ(*ws.Count("self(local)"), 0u);
}

TEST(EvalTest, PartitionedPredicates) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "p(a,1). p(a,2). p(b,3).\n"
                  "q[X](Y) <- p(X,Y).",
                  "q[a](Y)");
  EXPECT_EQ(rows.size(), 2u);
  auto all = ws.Query("q[X](Y)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST(EvalTest, PartitionRefValues) {
  Workspace ws;
  auto rows = RunAndQuery(&ws,
                  "loc(alice,n1). loc(bob,n2).\n"
                  "predNode(export[P],N) <- loc(P,N).",
                  "predNode(X,N)");
  ASSERT_EQ(rows.size(), 2u);
  for (const Tuple& t : rows) {
    ASSERT_EQ(t[0].kind(), ValueKind::kPart);
    EXPECT_EQ(t[0].AsPart().predicate, "export");
  }
}

TEST(EvalTest, ActiveCodegenInstallsRules) {
  // A fact derived into `active` as a code value becomes a running rule.
  Workspace ws;
  ASSERT_TRUE(ws.Load("trigger(yes).\n"
                      "active([| p(X) <- q(X). |]) <- trigger(yes).\n"
                      "q(1). q(2).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("p(X)"), 2u);
  EXPECT_GT(ws.last_codegen_rounds(), 1);
}

TEST(EvalTest, ActiveCodegenFacts) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("active([| granted(alice). |]) <- request(alice).\n"
                      "request(alice).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("granted(alice)"), 1u);
  // Re-running must not loop.
  ASSERT_TRUE(ws.Fixpoint().ok());
  EXPECT_EQ(*ws.Count("granted(alice)"), 1u);
}

TEST(EvalTest, FixpointBudgetGuards) {
  // A diverging program (no guard on arithmetic recursion) hits the tuple
  // budget instead of hanging.
  Workspace::Options opts;
  opts.limits.max_tuples = 1000;
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load("n(0). n(X+1) <- n(X).").ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kInternal);
}

TEST(EvalTest, QueryWithConstantFilter) {
  Workspace ws;
  RunAndQuery(&ws, "f(a,1). f(b,2). f(a,3).", "f(a,X)");
  auto rows = ws.Query("f(a,X)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

}  // namespace
}  // namespace lbtrust::datalog
