#include "net/frame.h"

#include <string>

#include <gtest/gtest.h>

namespace lbtrust::net {
namespace {

Frame MakeFrame(Frame::Kind kind, uint64_t seq) {
  Frame frame;
  frame.kind = kind;
  frame.seq = seq;
  frame.from = "alice";
  frame.relation = "export";
  frame.payload = "B:0:0:";
  return frame;
}

TEST(FrameCodecTest, AllKindsRoundTrip) {
  for (Frame::Kind kind :
       {Frame::Kind::kHello, Frame::Kind::kData, Frame::Kind::kCredential,
        Frame::Kind::kAck, Frame::Kind::kStatus, Frame::Kind::kConfirm}) {
    Frame frame = MakeFrame(kind, 42);
    std::string encoded = EncodeFrame(frame);
    // Strip the outer length prefix by hand, as the stream reader would.
    size_t colon = encoded.find(':');
    ASSERT_NE(colon, std::string::npos);
    auto back = DecodeFrameBody(
        std::string_view(encoded).substr(colon + 1));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->kind, frame.kind);
    EXPECT_EQ(back->seq, frame.seq);
    EXPECT_EQ(back->from, frame.from);
    EXPECT_EQ(back->relation, frame.relation);
    EXPECT_EQ(back->payload, frame.payload);
  }
}

TEST(FrameCodecTest, TraceFieldRoundTrips) {
  Frame frame = MakeFrame(Frame::Kind::kData, 11);
  frame.trace = "a:3:7";
  std::string encoded = EncodeFrame(frame);
  size_t colon = encoded.find(':');
  ASSERT_NE(colon, std::string::npos);
  auto back = DecodeFrameBody(std::string_view(encoded).substr(colon + 1));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->trace, "a:3:7");
  EXPECT_EQ(back->payload, frame.payload);
}

TEST(FrameCodecTest, EmptyTraceKeepsLegacyLayout) {
  // Untraced frames stay on the original 3-field body — byte-identical to
  // the pre-trace encoding — and the decoder accepts both layouts.
  Frame frame = MakeFrame(Frame::Kind::kData, 12);
  std::string untraced = EncodeFrame(frame);
  Frame traced_frame = frame;
  traced_frame.trace = "a:1:1";
  EXPECT_LT(untraced.size(), EncodeFrame(traced_frame).size());
  size_t colon = untraced.find(':');
  ASSERT_NE(colon, std::string::npos);
  auto back = DecodeFrameBody(std::string_view(untraced).substr(colon + 1));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->trace.empty());
}

TEST(FrameCodecTest, BinaryPayloadSurvives) {
  Frame frame = MakeFrame(Frame::Kind::kData, 7);
  frame.payload = std::string("\x00\x01:\xff\n:junk", 11);
  std::string encoded = EncodeFrame(frame);
  FrameParser parser(1 << 20);
  ASSERT_TRUE(parser.Append(encoded));
  auto next = parser.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->payload, frame.payload);
}

TEST(FrameCodecTest, MalformedBodiesReturnStatusNotCrash) {
  // Table-driven adversarial bodies: every case must produce a non-OK
  // status — never a crash, over-read, or runaway allocation.
  struct Case {
    const char* name;
    const char* body;
  };
  const Case kCases[] = {
      {"empty", ""},
      {"kind only", "D"},
      {"kind without separator", "Dx"},
      {"unknown kind", "Z:1:5:alice0:0:"},
      {"missing seq", "D:"},
      {"non-numeric seq", "D:xx:5:alice0:0:0:"},
      {"seq overflows cap", "D:99999999999999999999:5:alice0:0:0:"},
      {"truncated after seq", "D:1:"},
      {"from length past end", "D:1:99:alice"},
      {"missing relation", "D:1:5:alice"},
      {"relation length past end", "D:1:5:alice99:x"},
      {"missing payload", "D:1:5:alice6:export"},
      {"payload length past end", "D:1:5:alice6:export99:zz"},
      {"non-numeric field length", "D:1:zz:alice"},
      {"trailing bytes", "D:1:5:alice6:export2:okXX"},
      {"trace length past end", "D:1:5:alice6:export2:ok99:x"},
  };
  for (const Case& c : kCases) {
    EXPECT_FALSE(DecodeFrameBody(c.body).ok())
        << "case '" << c.name << "' should reject";
  }
}

TEST(FrameParserTest, ByteAtATimeDelivery) {
  // TCP offers no message boundaries; the parser must reassemble frames
  // from arbitrarily small chunks.
  Frame a = MakeFrame(Frame::Kind::kData, 1);
  Frame b = MakeFrame(Frame::Kind::kCredential, 2);
  std::string stream = EncodeFrame(a) + EncodeFrame(b);
  FrameParser parser(1 << 20);
  std::vector<Frame> got;
  for (char c : stream) {
    ASSERT_TRUE(parser.Append(std::string_view(&c, 1)));
    for (;;) {
      auto next = parser.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      got.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 1u);
  EXPECT_EQ(got[0].kind, Frame::Kind::kData);
  EXPECT_EQ(got[1].seq, 2u);
  EXPECT_EQ(got[1].kind, Frame::Kind::kCredential);
  EXPECT_FALSE(parser.mid_frame());
}

TEST(FrameParserTest, CoalescedFramesInOneChunk) {
  std::string stream;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    stream += EncodeFrame(MakeFrame(Frame::Kind::kData, seq));
  }
  FrameParser parser(1 << 20);
  ASSERT_TRUE(parser.Append(stream));
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    auto next = parser.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ((*next)->seq, seq);
  }
  auto done = parser.Next();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->has_value());
}

TEST(FrameParserTest, OversizeFrameRejectedBeforeBodyBuffering) {
  // The declared length exceeds the cap: rejection must happen from the
  // header alone — the attacker never gets the parser to buffer (let alone
  // allocate) a body of the declared size.
  FrameParser parser(/*max_frame_bytes=*/1024);
  EXPECT_FALSE(parser.Append("1048576:"));
  EXPECT_TRUE(parser.failed());
  EXPECT_NE(parser.error().find("exceeds cap"), std::string::npos);
  // Sticky: nothing revives the parser.
  EXPECT_FALSE(parser.Append("4:D:1:"));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(FrameParserTest, OversizeFrameWithinChunkRejected) {
  // Header and (partial) body arrive in one chunk; still rejected.
  FrameParser parser(/*max_frame_bytes=*/16);
  std::string encoded = EncodeFrame(MakeFrame(Frame::Kind::kData, 1));
  ASSERT_GT(encoded.size(), 16u);
  EXPECT_FALSE(parser.Append(encoded));
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParserTest, HeaderGarbageCutOffAtCap) {
  // A peer streaming digits (or junk) without ever completing a length
  // prefix is rejected after ~20 bytes, not buffered forever.
  FrameParser digits(1 << 20);
  EXPECT_FALSE(digits.Append("999999999999999999999999999999"));
  EXPECT_TRUE(digits.failed());

  FrameParser junk(1 << 20);
  EXPECT_FALSE(junk.Append("this is not a frame header at all"));
  EXPECT_TRUE(junk.failed());

  FrameParser nonnumeric(1 << 20);
  EXPECT_FALSE(nonnumeric.Append("abc:D:1:"));
  EXPECT_TRUE(nonnumeric.failed());

  FrameParser zero(1 << 20);
  EXPECT_FALSE(zero.Append("0:"));
  EXPECT_TRUE(zero.failed());
}

TEST(FrameParserTest, TruncatedFrameStaysMidFrame) {
  std::string encoded = EncodeFrame(MakeFrame(Frame::Kind::kData, 9));
  FrameParser parser(1 << 20);
  ASSERT_TRUE(parser.Append(encoded.substr(0, encoded.size() - 3)));
  auto next = parser.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  // The read-deadline trigger: a partial frame is pending.
  EXPECT_TRUE(parser.mid_frame());
  // The remainder completes it.
  ASSERT_TRUE(parser.Append(encoded.substr(encoded.size() - 3)));
  next = parser.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->seq, 9u);
  EXPECT_FALSE(parser.mid_frame());
}

TEST(FrameParserTest, MalformedBodyIsStickyError) {
  // Correct outer length, garbage body: the error must stick (the stream
  // is unrecoverable once framing trust is gone).
  std::string body = "Z:1:0:0:0:";
  std::string stream = std::to_string(body.size()) + ":" + body;
  FrameParser parser(1 << 20);
  ASSERT_TRUE(parser.Append(stream));
  EXPECT_FALSE(parser.Next().ok());
  EXPECT_TRUE(parser.failed());
  // A valid frame appended afterwards is not parsed.
  EXPECT_FALSE(parser.Append(EncodeFrame(MakeFrame(Frame::Kind::kData, 1))));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(FrameParserTest, LengthPrefixMustMatchBody) {
  // Declared length splits mid-field: body decode fails (truncated field),
  // and the over-long remainder is treated as the next frame's header —
  // which then fails too. Either way: sticky error, no silent resync.
  Frame frame = MakeFrame(Frame::Kind::kData, 3);
  std::string encoded = EncodeFrame(frame);
  size_t colon = encoded.find(':');
  std::string body = encoded.substr(colon + 1);
  std::string lying = std::to_string(body.size() - 4) + ":" + body;
  FrameParser parser(1 << 20);
  if (parser.Append(lying)) {
    EXPECT_FALSE(parser.Next().ok());
  }
  EXPECT_TRUE(parser.failed());
}

}  // namespace
}  // namespace lbtrust::net
