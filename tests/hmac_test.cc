#include "crypto/hmac.h"

#include <string>

#include <gtest/gtest.h>

#include "util/strings.h"

namespace lbtrust::crypto {
namespace {

// RFC 2202 HMAC-SHA1 test vectors.
TEST(HmacSha1Test, Rfc2202Case1) {
  std::string key(20, '\x0b');
  EXPECT_EQ(util::HexEncode(HmacSha1(key, "Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1Test, Rfc2202Case2) {
  EXPECT_EQ(util::HexEncode(HmacSha1("Jefe", "what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1Test, Rfc2202Case3) {
  std::string key(20, '\xaa');
  std::string msg(50, '\xdd');
  EXPECT_EQ(util::HexEncode(HmacSha1(key, msg)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1Test, Rfc2202LongKey) {
  std::string key(80, '\xaa');
  EXPECT_EQ(util::HexEncode(HmacSha1(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacSha256Test, Rfc4231Case1) {
  std::string key(20, '\x0b');
  EXPECT_EQ(util::HexEncode(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(
      util::HexEncode(HmacSha256("Jefe", "what do ya want for nothing?")),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, KeySensitivity) {
  EXPECT_NE(HmacSha1("k1", "msg"), HmacSha1("k2", "msg"));
  EXPECT_NE(HmacSha1("k", "msg1"), HmacSha1("k", "msg2"));
}

TEST(ConstantTimeEqualsTest, Behaviour) {
  EXPECT_TRUE(ConstantTimeEquals("abc", "abc"));
  EXPECT_FALSE(ConstantTimeEquals("abc", "abd"));
  EXPECT_FALSE(ConstantTimeEquals("abc", "ab"));
  EXPECT_TRUE(ConstantTimeEquals("", ""));
}

}  // namespace
}  // namespace lbtrust::crypto
