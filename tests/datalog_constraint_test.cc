#include <string>

#include <gtest/gtest.h>

#include "datalog/workspace.h"

namespace lbtrust::datalog {
namespace {

TEST(ConstraintTest, FailFormViolation) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("access(alice,f,read).\n"
                      "fail() <- access(P,_,_), !principal(P).")
                  .ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
  ASSERT_FALSE(ws.violations().empty());
  EXPECT_NE(ws.violations()[0].find("alice"), std::string::npos);
}

TEST(ConstraintTest, FailFormSatisfied) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("principal(alice).\n"
                      "access(alice,f,read).\n"
                      "fail() <- access(P,_,_), !principal(P).")
                  .ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
}

TEST(ConstraintTest, ArrowFormTypesSatisfied) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("principal(alice). object(f). mode(read).\n"
                      "access(P,O,M) -> principal(P), object(O), mode(M).\n"
                      "access(alice,f,read).")
                  .ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  // Types recorded in the catalog.
  const PredicateInfo* info = ws.catalog().Find("access");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->arg_types,
            (std::vector<std::string>{"principal", "object", "mode"}));
}

TEST(ConstraintTest, ArrowFormViolation) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("principal(alice).\n"
                      "access(P,O,M) -> principal(P).\n"
                      "access(mallory,f,read).")
                  .ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
  EXPECT_NE(ws.violations()[0].find("mallory"), std::string::npos);
}

TEST(ConstraintTest, ViolationClearsAfterFix) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("access(P,O,M) -> principal(P).\n"
                      "access(mallory,f,read).")
                  .ok());
  EXPECT_FALSE(ws.Fixpoint().ok());
  ASSERT_TRUE(ws.AddFact("principal", {Value::Sym("mallory")}).ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  EXPECT_TRUE(ws.violations().empty());
}

TEST(ConstraintTest, EntityTypeDeclaration) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("file(F) ->.\nfile(f1). file(f2).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  const PredicateInfo* info = ws.catalog().Find("file");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->is_entity_type);
  EXPECT_EQ(*ws.Count("file(X)"), 2u);
}

TEST(ConstraintTest, BuiltinTypeChecks) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("age(A,N) -> string(A), int[64](N).\n"
                      "age(\"alice\",30).")
                  .ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  ASSERT_TRUE(ws.AddFact("age", {Value::Str("bob"), Value::Str("old")}).ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
}

TEST(ConstraintTest, RhsWithNegation) {
  // dd4-style: LHS -> !something.
  Workspace ws;
  ASSERT_TRUE(ws.Load("limitZero(P) -> !delegates(me,_,P).\n"
                      "delegates(me,bob,perm).")
                  .ok());
  ASSERT_TRUE(ws.Fixpoint().ok());  // no limitZero facts yet
  ASSERT_TRUE(ws.AddFact("limitZero", {Value::Sym("perm")}).ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
}

TEST(ConstraintTest, RhsWithExistential) {
  // exp3-style: existential S spans one literal; K spans two.
  Workspace ws;
  ASSERT_TRUE(ws.Load("said(U,R) -> sig(U,R,S), key(U,K), valid(R,S,K).\n"
                      "sig(alice,m1,s1). key(alice,k1). valid(m1,s1,k1).\n"
                      "said(alice,m1).")
                  .ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  // A said fact without a matching signature violates.
  ASSERT_TRUE(ws.AddFact("said", {Value::Sym("bob"), Value::Sym("m2")}).ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
}

TEST(ConstraintTest, RhsDisjunction) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("entry(X) -> vip(X) ; member(X).\n"
                      "vip(alice). member(bob).\n"
                      "entry(alice). entry(bob).")
                  .ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  ASSERT_TRUE(ws.AddFact("entry", {Value::Sym("mallory")}).ok());
  EXPECT_EQ(ws.Fixpoint().code(), util::StatusCode::kConstraintViolation);
}

TEST(ConstraintTest, ConstraintOverDerivedPredicate) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) <- q(X).\n"
                      "p(X) -> allowed(X).\n"
                      "q(a). allowed(a).")
                  .ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  ASSERT_TRUE(ws.AddFact("q", {Value::Sym("b")}).ok());
  EXPECT_EQ(ws.Fixpoint().code(), util::StatusCode::kConstraintViolation);
}

TEST(ConstraintTest, CheckingCanBeDisabled) {
  Workspace::Options opts;
  opts.check_constraints = false;
  Workspace ws(opts);
  ASSERT_TRUE(ws.Load("p(X) -> q(X). p(a).").ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
}

TEST(ConstraintTest, MetaConstraintOwnerMayRead) {
  // §3.3: a principal may only install rules reading predicates they may
  // read. (The paper's listing writes owner(U, [|...|]); its own
  // declaration is owner(R,P) with the rule first, which we follow.)
  Workspace::Options opts;
  opts.principal = "alice";
  Workspace ws(opts);
  ASSERT_TRUE(
      ws.Load("owner([| A <- P(T2*), A*. |], U) -> canRead(U,P).").ok());
  // alice installs a rule reading q: violation until canRead(alice,q).
  ASSERT_TRUE(ws.Load("p(X) <- q(X). q(1).").ok());
  auto st = ws.Fixpoint();
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation)
      << st.ToString();
  ASSERT_TRUE(
      ws.AddFact("canRead", {Value::Sym("alice"), Value::Sym("q")}).ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
}

TEST(ConstraintTest, ViolationMessageNamesConstraint) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) -> q(X). p(a).").ok());
  EXPECT_FALSE(ws.Fixpoint().ok());
  ASSERT_FALSE(ws.violations().empty());
  EXPECT_NE(ws.violations()[0].find("->"), std::string::npos);
}

}  // namespace
}  // namespace lbtrust::datalog
