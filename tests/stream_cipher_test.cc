#include "crypto/stream_cipher.h"

#include <string>

#include <gtest/gtest.h>

namespace lbtrust::crypto {
namespace {

TEST(StreamCipherTest, XorRoundTrip) {
  std::string pt = "permission(owner,alice,file1,read)";
  std::string ct = StreamXor("key", "nonce", pt);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(StreamXor("key", "nonce", ct), pt);
}

TEST(StreamCipherTest, KeyAndNonceMatter) {
  std::string pt(100, 'a');
  EXPECT_NE(StreamXor("k1", "n", pt), StreamXor("k2", "n", pt));
  EXPECT_NE(StreamXor("k", "n1", pt), StreamXor("k", "n2", pt));
}

TEST(StreamCipherTest, EmptyPlaintext) {
  EXPECT_EQ(StreamXor("k", "n", ""), "");
}

TEST(StreamCipherTest, LongMessageSpansBlocks) {
  std::string pt(1000, 'z');
  std::string ct = StreamXor("k", "n", pt);
  EXPECT_EQ(ct.size(), pt.size());
  EXPECT_EQ(StreamXor("k", "n", ct), pt);
}

TEST(SealedBoxTest, RoundTrip) {
  std::string sealed = SealedBox("secret", "nonce0", "delegates(a,b,perm)");
  std::string pt;
  ASSERT_TRUE(SealedOpen("secret", sealed, &pt));
  EXPECT_EQ(pt, "delegates(a,b,perm)");
}

TEST(SealedBoxTest, WrongKeyFails) {
  std::string sealed = SealedBox("secret", "n", "m");
  std::string pt;
  EXPECT_FALSE(SealedOpen("other", sealed, &pt));
}

TEST(SealedBoxTest, TamperFails) {
  std::string sealed = SealedBox("secret", "n", "message");
  std::string pt;
  for (size_t i = 0; i < sealed.size(); i += 5) {
    std::string bad = sealed;
    bad[i] = static_cast<char>(bad[i] ^ 0x80);
    EXPECT_FALSE(SealedOpen("secret", bad, &pt)) << i;
  }
}

TEST(SealedBoxTest, TruncationFails) {
  std::string sealed = SealedBox("secret", "n", "message");
  std::string pt;
  EXPECT_FALSE(SealedOpen("secret", sealed.substr(0, 10), &pt));
  EXPECT_FALSE(SealedOpen("secret", "", &pt));
}

}  // namespace
}  // namespace lbtrust::crypto
