#include "datalog/analysis.h"

#include <gtest/gtest.h>

#include "datalog/dump.h"
#include "datalog/parser.h"
#include "datalog/workspace.h"

namespace lbtrust::datalog {
namespace {

std::vector<Rule> ParseRules(const std::string& text) {
  auto clauses = ParseProgram(text);
  EXPECT_TRUE(clauses.ok());
  std::vector<Rule> out;
  for (const auto& clause : *clauses) {
    for (const Rule& r : clause.rules) out.push_back(CloneRule(r));
  }
  return out;
}

Stratification MustStratify(const std::string& text) {
  BuiltinRegistry builtins;
  RegisterStandardBuiltins(&builtins);
  static std::vector<Rule> storage;  // keep rules alive per call
  storage = ParseRules(text);
  std::vector<const Rule*> ptrs;
  for (const Rule& r : storage) ptrs.push_back(&r);
  auto strat = Stratify(ptrs, builtins);
  EXPECT_TRUE(strat.ok()) << strat.status().ToString();
  return strat.ok() ? *strat : Stratification{};
}

TEST(StratifyTest, MonotoneProgramIsOneStratum) {
  auto s = MustStratify("p(X) <- e(X). p(X) <- p(X).");
  EXPECT_EQ(s.level.at("p"), 0);
  EXPECT_EQ(s.strata.size(), 1u);
}

TEST(StratifyTest, NegationLiftsStratum) {
  auto s = MustStratify("q(X) <- e(X).\np(X) <- e(X), !q(X).");
  EXPECT_EQ(s.level.at("q"), 0);
  EXPECT_EQ(s.level.at("p"), 1);
}

TEST(StratifyTest, ChainsOfNegationStack) {
  auto s = MustStratify(
      "a(X) <- e(X).\n"
      "b(X) <- e(X), !a(X).\n"
      "c(X) <- e(X), !b(X).");
  EXPECT_EQ(s.level.at("a"), 0);
  EXPECT_EQ(s.level.at("b"), 1);
  EXPECT_EQ(s.level.at("c"), 2);
}

TEST(StratifyTest, AggregationActsLikeNegation) {
  auto s = MustStratify(
      "votes(C,N) <- agg<<N = count(U)>> vote(C,U).\n"
      "vote(C,U) <- raw(C,U).");
  EXPECT_LT(s.level.at("vote"), s.level.at("votes"));
}

TEST(StratifyTest, MutualRecursionSharesStratum) {
  auto s = MustStratify(
      "even(X) <- zero(X).\n"
      "even(X) <- succ(Y,X), odd(Y).\n"
      "odd(X) <- succ(Y,X), even(Y).");
  EXPECT_EQ(s.level.at("even"), s.level.at("odd"));
}

TEST(StratifyTest, RejectsNegativeCycle) {
  BuiltinRegistry builtins;
  RegisterStandardBuiltins(&builtins);
  auto rules = ParseRules("p(X) <- e(X), !q(X).\nq(X) <- e(X), !p(X).");
  std::vector<const Rule*> ptrs;
  for (const Rule& r : rules) ptrs.push_back(&r);
  auto strat = Stratify(ptrs, builtins);
  EXPECT_EQ(strat.status().code(), util::StatusCode::kNotStratifiable);
}

TEST(ValidateTest, RejectsMetaPatternsOutsideQuotes) {
  auto rule = ParseRuleText("p(X) <- q(X).");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(ValidateInstallableRule(*rule).ok());
  // A star variable in an installed rule position is rejected at load.
  Workspace ws;
  auto st = ws.Load("p(X) <- says(U,me,R), Q(X).");
  EXPECT_EQ(st.code(), util::StatusCode::kUnsafeProgram) << st.ToString();
}

TEST(DumpTest, RendersRulesAndRelations) {
  Workspace ws;
  ASSERT_TRUE(ws.Load("p(X) <- e(X). e(1). e(2).").ok());
  ASSERT_TRUE(ws.Fixpoint().ok());
  std::string dump = DumpWorkspace(ws);
  EXPECT_NE(dump.find("p(X) <- e(X)."), std::string::npos);
  EXPECT_NE(dump.find("e/1  (2 rows)"), std::string::npos);
  EXPECT_NE(dump.find("  p(1)"), std::string::npos);
}

TEST(DumpTest, TruncatesLargeRelations) {
  Workspace ws;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ws.AddFact("big", {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(ws.Fixpoint().ok());
  std::string dump = DumpRelation(ws, "big", 5);
  EXPECT_NE(dump.find("... 45 more"), std::string::npos);
  EXPECT_NE(DumpRelation(ws, "missing").find("<no relation>"),
            std::string::npos);
}

}  // namespace
}  // namespace lbtrust::datalog
