#include "datalog/parser.h"

#include <string>

#include <gtest/gtest.h>

#include "datalog/lexer.h"
#include "datalog/pretty.h"

namespace lbtrust::datalog {
namespace {

Rule MustParseRule(const std::string& text) {
  auto r = ParseRuleText(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : Rule();
}

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("p(X,42) <- q(\"s\"), !r(X).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "p");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[4].int_value, 42);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, QuoteTokens) {
  auto tokens = Tokenize("[| p(X). |]");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kQuoteOpen);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kQuoteClose);
}

TEST(LexerTest, ColonIdentifiers) {
  // message:id is one symbol; a label keeps its colon separate.
  auto tokens = Tokenize("m2: message:id(M,N)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "m2");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kColon);
  EXPECT_EQ((*tokens)[2].text, "message:id");
  auto key = Tokenize("pubkey(bob,rsa:3:c1ebab5d)");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ((*key)[4].text, "rsa:3:c1ebab5d");
}

TEST(LexerTest, ArrowsAndAggBrackets) {
  auto tokens = Tokenize("<- -> :- << >> <= >= < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kArrowLeft);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kArrowRight);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kColonDash);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kAggOpen);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kAggClose);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kGe);
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("p(a). // line\n/* block\nmore */ q(b).");
  ASSERT_TRUE(tokens.ok());
  size_t idents = 0;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kIdent) ++idents;
  }
  EXPECT_EQ(idents, 4u);  // p, a, q, b
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("p(a) /* unterminated").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("p | q").ok());
  EXPECT_FALSE(Tokenize("p(#)").ok());
}

TEST(ParserTest, FactAndRule) {
  Rule fact = MustParseRule("parent(alice,bob).");
  EXPECT_TRUE(fact.IsFact());
  EXPECT_EQ(fact.heads[0].predicate, "parent");
  Rule rule = MustParseRule("gp(X,Z) <- parent(X,Y), parent(Y,Z).");
  EXPECT_EQ(rule.body.size(), 2u);
}

TEST(ParserTest, LabelsAreKept) {
  Rule rule = MustParseRule("exp1: p(X) <- q(X).");
  EXPECT_EQ(rule.label, "exp1");
}

TEST(ParserTest, NegationAndAnonymous) {
  Rule rule = MustParseRule("p(X) <- q(X,_), !r(X).");
  EXPECT_FALSE(rule.body[0].negated);
  EXPECT_TRUE(rule.body[1].negated);
  EXPECT_TRUE(rule.body[0].atom.args[1].is_variable());
}

TEST(ParserTest, DnfSplitsDisjunction) {
  auto clauses = ParseProgram("p(X) <- q(X) ; r(X).");
  ASSERT_TRUE(clauses.ok());
  ASSERT_EQ((*clauses)[0].rules.size(), 2u);
}

TEST(ParserTest, NegatedGroupDeMorgan) {
  // !(a ; b) = !a, !b — one rule; !(a , b) = !a ; !b — two rules.
  auto conj = ParseProgram("p(X) <- q(X), !(r(X) ; s(X)).");
  ASSERT_TRUE(conj.ok());
  EXPECT_EQ((*conj)[0].rules.size(), 1u);
  EXPECT_EQ((*conj)[0].rules[0].body.size(), 3u);
  auto disj = ParseProgram("p(X) <- q(X), !(r(X), s(X)).");
  ASSERT_TRUE(disj.ok());
  EXPECT_EQ((*disj)[0].rules.size(), 2u);
}

TEST(ParserTest, Constraints) {
  auto clauses =
      ParseProgram("access(P,O,M) -> principal(P), object(O), mode(M).");
  ASSERT_TRUE(clauses.ok());
  ASSERT_EQ((*clauses)[0].kind, ParsedClause::Kind::kConstraint);
  const Constraint& c = (*clauses)[0].constraints[0];
  EXPECT_EQ(c.lhs.size(), 1u);
  ASSERT_EQ(c.rhs_dnf.size(), 1u);
  EXPECT_EQ(c.rhs_dnf[0].size(), 3u);
}

TEST(ParserTest, EmptyRhsDeclaration) {
  auto clauses = ParseProgram("rule(R) ->.");
  ASSERT_TRUE(clauses.ok());
  EXPECT_TRUE((*clauses)[0].constraints[0].rhs_dnf.empty());
}

TEST(ParserTest, QuotedFactNoDot) {
  Rule rule = MustParseRule(
      "access(P,O,read) <- says(bob,me,[|access(P,O,read)|]).");
  const Term& arg = rule.body[0].atom.args[2];
  ASSERT_TRUE(arg.is_constant());
  ASSERT_EQ(arg.value.kind(), ValueKind::kCode);
  EXPECT_EQ(arg.value.AsCode().what, CodeValue::What::kRule);
  EXPECT_TRUE(arg.value.AsCode().rule->IsFact());
}

TEST(ParserTest, QuotedRuleWithStarPatterns) {
  // §4.1's read-guard meta-constraint parses as written in the paper.
  auto clauses =
      ParseProgram("says(U,me,[| A <- P(T*), A*. |]) -> mayRead(U,P).");
  ASSERT_TRUE(clauses.ok()) << clauses.status().ToString();
  ASSERT_EQ((*clauses)[0].kind, ParsedClause::Kind::kConstraint);
}

TEST(ParserTest, QuotedPatternStructure) {
  auto term = ParseTermText("[| A <- P(T*), A*. |]");
  ASSERT_TRUE(term.ok());
  const Rule& quoted = *term->value.AsCode().rule;
  ASSERT_EQ(quoted.heads.size(), 1u);
  EXPECT_TRUE(quoted.heads[0].meta_atom);
  ASSERT_EQ(quoted.body.size(), 2u);
  EXPECT_TRUE(quoted.body[0].atom.meta_functor);
  EXPECT_EQ(quoted.body[0].atom.args[0].kind, Term::Kind::kStarVar);
  EXPECT_TRUE(quoted.body[1].atom.star);
}

TEST(ParserTest, NestedQuotes) {
  auto term = ParseTermText(
      "[| active(R) <- says(U2,me,R), R = [| P(T*) <- A*. |]. |]");
  ASSERT_TRUE(term.ok());
  const Rule& outer = *term->value.AsCode().rule;
  ASSERT_EQ(outer.body.size(), 2u);
  EXPECT_EQ(outer.body[1].atom.predicate, "=");
  const Term& inner = outer.body[1].atom.args[1];
  EXPECT_EQ(inner.value.kind(), ValueKind::kCode);
}

TEST(ParserTest, StarVsMultiplication) {
  Rule mult = MustParseRule("p(Z) <- q(X,Y), Z = X * Y.");
  const Term& rhs = mult.body[1].atom.args[1];
  EXPECT_EQ(rhs.kind, Term::Kind::kExpr);
  EXPECT_EQ(rhs.op, '*');
}

TEST(ParserTest, ArithmeticPrecedence) {
  Rule rule = MustParseRule("p(X+Y*Z) <- q(X,Y,Z).");
  const Term& head = rule.heads[0].args[0];
  ASSERT_EQ(head.kind, Term::Kind::kExpr);
  EXPECT_EQ(head.op, '+');
  EXPECT_EQ(head.rhs->op, '*');
}

TEST(ParserTest, NegativeNumbers) {
  Rule rule = MustParseRule("p(-5).");
  EXPECT_EQ(rule.heads[0].args[0].value, Value::Int(-5));
}

TEST(ParserTest, FloatLiterals) {
  Rule rule = MustParseRule("w(bureau1,0.5).");
  EXPECT_EQ(rule.heads[0].args[1].value.kind(), ValueKind::kDouble);
}

TEST(ParserTest, PartitionedAtomAndIntType) {
  Rule rule = MustParseRule("export[U2](me,R,S) <- says(me,U2,R).");
  ASSERT_NE(rule.heads[0].partition, nullptr);
  EXPECT_EQ(rule.heads[0].Arity(), 4u);
  // int[64] is a type name, not a partition.
  auto clauses = ParseProgram("delDepth(N) -> int[64](N).");
  ASSERT_TRUE(clauses.ok());
  EXPECT_EQ((*clauses)[0].constraints[0].rhs_dnf[0][0].atom.predicate,
            "int64");
}

TEST(ParserTest, AggregateSyntax) {
  Rule rule = MustParseRule(
      "creditOKCount(C,N) <- agg<<N = count(U)>> pringroup(U,creditBureau), "
      "says(U,me,[| creditOK(C). |]).");
  ASSERT_TRUE(rule.aggregate.has_value());
  EXPECT_EQ(rule.aggregate->fn, Aggregate::Fn::kCount);
  EXPECT_EQ(rule.aggregate->result_var, "N");
  EXPECT_EQ(rule.aggregate->input_var, "U");
}

TEST(ParserTest, MultiHeadRule) {
  auto clauses = ParseProgram("a(X), b(X) <- c(X).");
  ASSERT_TRUE(clauses.ok());
  ASSERT_EQ((*clauses)[0].rules.size(), 1u);
  EXPECT_EQ((*clauses)[0].rules[0].heads.size(), 2u);
}

TEST(ParserTest, MeKeyword) {
  Rule rule = MustParseRule("says(me,U,R) <- q(U,R).");
  EXPECT_EQ(rule.heads[0].args[0].kind, Term::Kind::kMe);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("p(X) <- q(X)").ok());        // missing dot
  EXPECT_FALSE(ParseProgram("p(X) <- .").ok());           // empty body
  EXPECT_FALSE(ParseProgram("!p(X) <- q(X).").ok());      // negated head
  EXPECT_FALSE(ParseProgram("p(X) <- q(X) r(X).").ok());  // missing comma
  EXPECT_FALSE(ParseRuleText("p(X) -> q(X).").ok());      // constraint
}

TEST(PrettyTest, RoundTripCanonicalForms) {
  const char* cases[] = {
      "p(a,b).",
      "p(X) <- q(X), !r(X,_G0).",
      "says(alice,bob,[| access(carol,f1,read). |]) <- grant(carol).",
      "export[U2](alice,R,S) <- says(alice,U2,R), rsasign(R,S,K).",
      "tally(C,N) <- agg<<N = count(U)>> vote(C,U).",
      "p((X+1)) <- q(X).",
  };
  for (const char* text : cases) {
    auto rule = ParseRuleText(text);
    ASSERT_TRUE(rule.ok()) << text;
    std::string printed = PrintRule(*rule);
    auto reparsed = ParseRuleText(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(PrintRule(*reparsed), printed) << text;
  }
}

TEST(PrettyTest, QuotedCodeCanonIsStable) {
  auto t1 = ParseTermText("[| p(X)  <-   q(X),r(X). |]");
  auto t2 = ParseTermText("[| p(X) <- q(X), r(X). |]");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1->value, t2->value);
  EXPECT_EQ(t1->value.AsCode().canon, "p(X) <- q(X), r(X).");
}

}  // namespace
}  // namespace lbtrust::datalog
