#include "datalog/magic.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "datalog/workspace.h"
#include "util/strings.h"

namespace lbtrust::datalog {
namespace {

// Loads `program` into a workspace, transforms its rules for `query`, and
// returns (answers via magic, answers via direct evaluation, derived tuple
// counts for both) for comparison.
struct MagicRun {
  std::vector<Tuple> magic_answers;
  std::vector<Tuple> direct_answers;
  size_t magic_derived = 0;
  size_t direct_derived = 0;
};

MagicRun RunBoth(const std::string& program, const std::string& facts,
                 const std::string& query_text,
                 const std::string& target_pred) {
  MagicRun out;

  // Direct evaluation.
  Workspace direct;
  EXPECT_TRUE(direct.Load(program).ok());
  EXPECT_TRUE(direct.AddFactText(facts).ok());
  EXPECT_TRUE(direct.Fixpoint().ok());
  auto direct_rows = direct.Query(query_text);
  EXPECT_TRUE(direct_rows.ok());
  out.direct_answers = *direct_rows;
  if (const Relation* rel = direct.GetRelation(target_pred)) {
    out.direct_derived = rel->size();
  }

  // Magic evaluation: EDB only + transformed rules + seed.
  auto clauses = ParseProgram(program);
  EXPECT_TRUE(clauses.ok());
  std::vector<Rule> storage;
  for (const auto& clause : *clauses) {
    for (const Rule& r : clause.rules) {
      if (!r.IsFact()) storage.push_back(CloneRule(r));
    }
  }
  std::vector<const Rule*> ptrs;
  for (const Rule& r : storage) ptrs.push_back(&r);
  auto query_atom = ParseAtomText(query_text);
  EXPECT_TRUE(query_atom.ok());
  auto magic = MagicSetTransform(ptrs, *query_atom);
  EXPECT_TRUE(magic.ok()) << magic.status().ToString();
  if (!magic.ok()) return out;

  Workspace ws;
  EXPECT_TRUE(ws.AddFactText(facts).ok());
  for (const Rule& r : magic->rules) {
    auto st = ws.AddRule(r);
    EXPECT_TRUE(st.ok()) << PrintRule(r) << " -> " << st.ToString();
  }
  EXPECT_TRUE(ws.AddFact(magic->seed_pred, magic->seed_args).ok());
  EXPECT_TRUE(ws.Fixpoint().ok());
  // Read answers from the adorned predicate with the original query shape.
  Atom adorned = CloneAtom(*query_atom);
  adorned.predicate = magic->answer_pred;
  auto rows = ws.Query(PrintAtom(adorned));
  EXPECT_TRUE(rows.ok());
  out.magic_answers = *rows;
  if (const Relation* rel = ws.GetRelation(magic->answer_pred)) {
    out.magic_derived = rel->size();
  }
  return out;
}

std::multiset<std::string> Render(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) out.insert(TupleToString(t));
  return out;
}

const char kChainTc[] =
    "path(X,Y) <- edge(X,Y).\n"
    "path(X,Z) <- edge(X,Y), path(Y,Z).";

std::string ChainFacts(int n) {
  std::string out;
  for (int i = 0; i + 1 < n; ++i) {
    out += util::StrCat("edge(n", i, ",n", i + 1, ").\n");
  }
  return out;
}

TEST(MagicTest, SameAnswersAsDirectEvaluation) {
  MagicRun run = RunBoth(kChainTc, ChainFacts(20), "path(n15,X)", "path");
  EXPECT_EQ(Render(run.magic_answers), Render(run.direct_answers));
  EXPECT_EQ(run.magic_answers.size(), 4u);  // n16..n19
}

TEST(MagicTest, DerivesFarFewerTuples) {
  // Direct evaluation derives all O(n^2) path pairs; demand-driven
  // evaluation explores only the suffix reachable from the seed.
  MagicRun run = RunBoth(kChainTc, ChainFacts(60), "path(n55,X)", "path");
  EXPECT_EQ(Render(run.magic_answers), Render(run.direct_answers));
  EXPECT_EQ(run.direct_derived, 59u * 60u / 2u);
  EXPECT_LE(run.magic_derived, 10u);
}

TEST(MagicTest, FullyFreeQueryDegradesToFull) {
  MagicRun run = RunBoth(kChainTc, ChainFacts(8), "path(X,Y)", "path");
  EXPECT_EQ(Render(run.magic_answers), Render(run.direct_answers));
  EXPECT_EQ(run.magic_answers.size(), 7u * 8u / 2u);
}

TEST(MagicTest, NonRecursiveJoin) {
  MagicRun run = RunBoth(
      "grandparent(X,Z) <- parent(X,Y), parent(Y,Z).",
      "parent(a,b). parent(b,c). parent(b,d). parent(x,y). parent(y,z).",
      "grandparent(a,X)", "grandparent");
  EXPECT_EQ(Render(run.magic_answers), Render(run.direct_answers));
  EXPECT_EQ(run.magic_answers.size(), 2u);  // c and d, not z
}

TEST(MagicTest, BoundSecondArgument) {
  MagicRun run =
      RunBoth(kChainTc, ChainFacts(12), "path(X,n11)", "path");
  EXPECT_EQ(Render(run.magic_answers), Render(run.direct_answers));
  EXPECT_EQ(run.magic_answers.size(), 11u);
}

TEST(MagicTest, NegationPassesThrough) {
  MagicRun run = RunBoth(
      "ok(X) <- node(X), !blocked(X).\n"
      "reach(X) <- ok(X), seedy(X).\n",
      "node(a). node(b). blocked(b). seedy(a). seedy(b).",
      "reach(a)", "reach");
  EXPECT_EQ(Render(run.magic_answers), Render(run.direct_answers));
  EXPECT_EQ(run.magic_answers.size(), 1u);
}

TEST(MagicTest, RejectsAggregates) {
  auto rule = ParseRuleText("c(G,N) <- agg<<N = count(U)>> v(G,U).");
  ASSERT_TRUE(rule.ok());
  std::vector<const Rule*> rules = {&*rule};
  auto query = ParseAtomText("c(g,N)");
  EXPECT_FALSE(MagicSetTransform(rules, *query).ok());
}

TEST(MagicTest, RejectsUnknownPredicate) {
  auto rule = ParseRuleText("p(X) <- q(X).");
  ASSERT_TRUE(rule.ok());
  std::vector<const Rule*> rules = {&*rule};
  auto query = ParseAtomText("nosuch(a)");
  EXPECT_FALSE(MagicSetTransform(rules, *query).ok());
}

}  // namespace
}  // namespace lbtrust::datalog
