#include "crypto/rsa.h"

#include <string>

#include <gtest/gtest.h>

namespace lbtrust::crypto {
namespace {

// A 512-bit key keeps the unit suite fast; 1024-bit generation is covered
// once below and used throughout the benchmarks.
RsaKeyPair TestKeyPair(uint64_t seed = 42, size_t bits = 512) {
  SecureRandom rng(seed);
  auto kp = RsaGenerateKeyPair(bits, &rng);
  EXPECT_TRUE(kp.ok()) << kp.status().ToString();
  return kp.value();
}

TEST(RsaTest, KeyGenerationProducesValidKey) {
  RsaKeyPair kp = TestKeyPair();
  EXPECT_EQ(kp.public_key.n.BitLength(), 512u);
  EXPECT_EQ(kp.public_key.e, BigInt(65537));
  EXPECT_EQ(kp.private_key.p * kp.private_key.q, kp.private_key.n);
  // e*d = 1 mod phi
  BigInt phi = (kp.private_key.p - BigInt(1)) * (kp.private_key.q - BigInt(1));
  auto prod = BigInt::Mod(kp.private_key.e * kp.private_key.d, phi);
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(*prod, BigInt(1));
}

TEST(RsaTest, KeyGenerationIsDeterministicPerSeed) {
  RsaKeyPair a = TestKeyPair(7);
  RsaKeyPair b = TestKeyPair(7);
  RsaKeyPair c = TestKeyPair(8);
  EXPECT_EQ(a.public_key.n, b.public_key.n);
  EXPECT_NE(a.public_key.n, c.public_key.n);
}

TEST(RsaTest, SignVerifyRoundTrip) {
  RsaKeyPair kp = TestKeyPair();
  std::string msg = "says(alice,bob,[|access(carol,file1,read).|])";
  auto sig = RsaSign(kp.private_key, msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->size(), 64u);  // 512-bit modulus
  EXPECT_TRUE(RsaVerify(kp.public_key, msg, *sig));
}

TEST(RsaTest, VerifyRejectsTamperedMessage) {
  RsaKeyPair kp = TestKeyPair();
  auto sig = RsaSign(kp.private_key, "access(alice,f,read)");
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(RsaVerify(kp.public_key, "access(mallory,f,read)", *sig));
}

TEST(RsaTest, VerifyRejectsTamperedSignature) {
  RsaKeyPair kp = TestKeyPair();
  std::string msg = "m";
  auto sig = RsaSign(kp.private_key, msg);
  ASSERT_TRUE(sig.ok());
  std::string bad = *sig;
  bad[10] = static_cast<char>(bad[10] ^ 0x40);
  EXPECT_FALSE(RsaVerify(kp.public_key, msg, bad));
  EXPECT_FALSE(RsaVerify(kp.public_key, msg, sig->substr(1)));  // bad length
}

TEST(RsaTest, VerifyRejectsWrongKey) {
  RsaKeyPair kp1 = TestKeyPair(1);
  RsaKeyPair kp2 = TestKeyPair(2);
  auto sig = RsaSign(kp1.private_key, "m");
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(RsaVerify(kp2.public_key, "m", *sig));
}

TEST(RsaTest, CrtMatchesPlainExponentiation) {
  RsaKeyPair kp = TestKeyPair();
  // Strip CRT components; PrivateOp falls back to plain d.
  RsaPrivateKey plain = kp.private_key;
  plain.p = BigInt();
  plain.q = BigInt();
  auto s1 = RsaSign(kp.private_key, "hello");
  auto s2 = RsaSign(plain, "hello");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(RsaTest, SerializeRoundTrip) {
  RsaKeyPair kp = TestKeyPair();
  auto pub = RsaPublicKey::Deserialize(kp.public_key.Serialize());
  ASSERT_TRUE(pub.ok());
  EXPECT_EQ(pub->n, kp.public_key.n);
  EXPECT_EQ(pub->e, kp.public_key.e);
  auto priv = RsaPrivateKey::Deserialize(kp.private_key.Serialize());
  ASSERT_TRUE(priv.ok());
  auto sig = RsaSign(*priv, "x");
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(RsaVerify(kp.public_key, "x", *sig));
}

TEST(RsaTest, DeserializeRejectsJunk) {
  EXPECT_FALSE(RsaPublicKey::Deserialize("onlyonefield").ok());
  EXPECT_FALSE(RsaPublicKey::Deserialize("xx:yy").ok());
  EXPECT_FALSE(RsaPrivateKey::Deserialize("a:b:c").ok());
}

TEST(RsaTest, EncryptDecryptRoundTrip) {
  RsaKeyPair kp = TestKeyPair();
  SecureRandom rng(uint64_t{11});
  std::string secret = "sharedsecret(alice,bob,k123)";
  auto ct = RsaEncrypt(kp.public_key, secret, &rng);
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecrypt(kp.private_key, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, secret);
}

TEST(RsaTest, DecryptRejectsCorruptedCiphertext) {
  RsaKeyPair kp = TestKeyPair();
  SecureRandom rng(uint64_t{12});
  auto ct = RsaEncrypt(kp.public_key, "msg", &rng);
  ASSERT_TRUE(ct.ok());
  std::string bad = *ct;
  bad[5] = static_cast<char>(bad[5] ^ 0x01);
  auto pt = RsaDecrypt(kp.private_key, bad);
  // Either padding failure or wrong plaintext; must not equal original.
  if (pt.ok()) {
    EXPECT_NE(*pt, "msg");
  }
}

TEST(RsaTest, EncryptRejectsOversizedPlaintext) {
  RsaKeyPair kp = TestKeyPair();
  SecureRandom rng(uint64_t{13});
  std::string big(100, 'x');  // > 64 - 11
  EXPECT_FALSE(RsaEncrypt(kp.public_key, big, &rng).ok());
}

TEST(RsaTest, Generate1024BitKey) {
  SecureRandom rng(uint64_t{2009});
  auto kp = RsaGenerateKeyPair(1024, &rng);
  ASSERT_TRUE(kp.ok()) << kp.status().ToString();
  EXPECT_EQ(kp->public_key.n.BitLength(), 1024u);
  auto sig = RsaSign(kp->private_key, "paper-figure-2");
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->size(), 128u);
  EXPECT_TRUE(RsaVerify(kp->public_key, "paper-figure-2", *sig));
}

TEST(RsaTest, RejectsBadKeySize) {
  SecureRandom rng(uint64_t{1});
  EXPECT_FALSE(RsaGenerateKeyPair(100, &rng).ok());  // not even/too small
  EXPECT_FALSE(RsaGenerateKeyPair(129, &rng).ok());
}

}  // namespace
}  // namespace lbtrust::crypto
