#ifndef LBTRUST_TESTS_GOLDEN_PROGRAMS_H_
#define LBTRUST_TESTS_GOLDEN_PROGRAMS_H_

// Program corpus for the representation-differential suite: every value
// kind, join shape and engine feature that the interned (ValueId) engine
// must evaluate observationally identically to the seed representation.
// tools/gen_goldens.cc runs this corpus through Workspace::Dump and emits
// tests/golden_dumps.inc; datalog_intern_differential_test.cc asserts the
// current engine reproduces those dumps byte-for-byte.
//
// The checked-in golden_dumps.inc was generated from the PRE-interning
// engine (PR 2 tree, commit b5501a4), so the suite is a true differential
// against the seed representation. Regenerate only when output semantics
// change intentionally.

namespace lbtrust::testing {

struct GoldenProgram {
  const char* name;
  const char* principal;
  const char* program;
};

inline constexpr GoldenProgram kGoldenPrograms[] = {
    {"binder_access", "alice",
     "b1: access(P,O,read) <- good(P), object(O).\n"
     "good(u1). good(u2). object(f1). object(f2).\n"},

    {"transitive_closure", "local",
     "path(X,Y) <- edge(X,Y).\n"
     "path(X,Z) <- path(X,Y), edge(Y,Z).\n"
     "edge(a,b). edge(b,c). edge(c,d). edge(d,a). edge(b,e).\n"},

    {"value_kinds", "local",
     "mixed(1, 2.5, \"text\", sym, true).\n"
     "mixed(-7, 0.125, \"two words\", other, false).\n"
     "big(4611686018427387904). big(-4611686018427387905).\n"
     "big(72057594037927936). big(-72057594037927937).\n"
     "dbl(3.14159265358979). dbl(123456789.125). dbl(-0.0001).\n"
     "copy(I, D) <- mixed(I, D, S, Y, B).\n"},

    {"arithmetic_compare", "local",
     "n(1). n(2). n(3). n(4).\n"
     "sum(X, Y, X + Y) <- n(X), n(Y), X < Y.\n"
     "scaled(X * 10) <- n(X).\n"
     "halved(X / 2.0) <- n(X).\n"},

    {"negation_wildcard", "local",
     "user(alice). user(bob). user(carol).\n"
     "banned(bob).\n"
     "welcome(U) <- user(U), !banned(U).\n"
     "lonely(U) <- user(U), !knows(U, V).\n"
     "knows(alice, carol).\n"},

    {"aggregates", "local",
     "vote(g1, u1). vote(g1, u2). vote(g1, u3).\n"
     "vote(g2, u1). vote(g2, u1). vote(g2, u4).\n"
     "weight(u1, 3). weight(u2, 5). weight(u3, 2). weight(u4, 5).\n"
     "tally(G, N) <- agg<<N = count(U)>> vote(G, U).\n"
     "mass(G, W) <- agg<<W = total(X)>> vote(G, U), weight(U, X).\n"
     "lightest(W) <- agg<<W = min(X)>> weight(U, X).\n"
     "heaviest(W) <- agg<<W = max(X)>> weight(U, X).\n"},

    {"says_code_values", "alice",
     "says(me, bob, [| grant(alice, db). |]) <- trigger().\n"
     "says(me, carol, [| access(P, O, read) <- good(P), object(O). |]) "
     "<- trigger().\n"
     "trigger().\n"
     "heard(U2, R) <- says(U1, U2, R).\n"},

    {"meta_codegen_activation", "local",
     "seed_rule(on).\n"
     "active([| derived(7). |]) <- seed_rule(on).\n"
     "active([| chain(X) <- derived(X). |]) <- seed_rule(on).\n"},

    {"partition_refs", "local",
     "loc(alice, n1). loc(bob, n2).\n"
     "predNode(export[P], N) <- loc(P, N).\n"
     "shipped(export[alice], payload1).\n"
     "shipped(export[bob], payload2).\n"},

    {"pattern_match_code", "alice",
     "policy([| access(P, O, read) <- good(P). |]).\n"
     "policy([| audit(E) <- event(E). |]).\n"
     "head_rule(R) <- policy(R), R = [| A <- B*. |].\n"
     "read_rule(R) <- policy(R), R = [| A <- good(P). |].\n"},

    {"constraint_pass", "local",
     "t(1). t(2). t(3).\n"
     "p(1, 2). p(2, 3).\n"
     "p(X, Y) -> t(X), t(Y).\n"},

    {"deep_recursion_strings", "local",
     "next(\"n00\", \"n01\"). next(\"n01\", \"n02\"). next(\"n02\", \"n03\").\n"
     "next(\"n03\", \"n04\"). next(\"n04\", \"n05\"). next(\"n05\", \"n06\").\n"
     "next(\"n06\", \"n07\"). next(\"n07\", \"n08\"). next(\"n08\", \"n09\").\n"
     "reach(X, Y) <- next(X, Y).\n"
     "reach(X, Z) <- reach(X, Y), next(Y, Z).\n"},

    {"equality_and_builtins", "local",
     "item(a, 10). item(b, 20). item(c, 10).\n"
     "pair(X, Y) <- item(X, N), item(Y, N), X != Y.\n"
     "ten(X) <- item(X, N), N = 10.\n"
     "typed(X) <- item(X, N), int(N).\n"},
};

inline constexpr size_t kNumGoldenPrograms =
    sizeof(kGoldenPrograms) / sizeof(kGoldenPrograms[0]);

}  // namespace lbtrust::testing

#endif  // LBTRUST_TESTS_GOLDEN_PROGRAMS_H_
