// §9 demonstration: a multi-principal file system with access control,
// delegation to an access manager (depth-limited), and threshold approval.
//
// As in the paper's demo, all principals share a single workspace on one
// machine; per-principal rules are installed with `me` bound to that
// principal (LoadAs), and communication is the shared says relation.
//
// Workflow (Figure 3): requester -> fileStore -> fileOwner (-> managers).
#include <cstdio>

#include "datalog/workspace.h"
#include "trust/delegation.h"
#include "util/strings.h"

using lbtrust::datalog::Transaction;
using lbtrust::datalog::Value;
using lbtrust::datalog::Workspace;

namespace {

void Check(const lbtrust::util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

size_t Count(Workspace* ws, const std::string& query) {
  auto n = ws->Count(query);
  return n.ok() ? *n : 0;
}

}  // namespace

int main() {
  Workspace ws;
  // Principals and the file/message schema (f1-f6 of §9, trimmed to the
  // used attributes).
  Check(ws.Load("prin(alice). prin(bob). prin(store1). prin(owner1). "
                "prin(mgr1). prin(mgr2). prin(mgr3).\n"
                "file(F) ->.\n"
                "filename(F,S) -> file(F), string(S).\n"
                "filedata(F,S) -> file(F), string(S).\n"
                "fileowner(F,O) -> file(F), prin(O).\n"
                "filestore(F,P) -> file(F), prin(P).\n"
                "permission(P,X,F,M) -> prin(P), prin(X), file(F), mode(M).\n"
                "mode(read). mode(write)."),
        "schema");

  // The file base: two files stored at store1, owned by owner1.
  Check(ws.Load("file(f1). filename(f1,\"plan.txt\"). "
                "filedata(f1,\"Q3 plan\"). fileowner(f1,owner1). "
                "filestore(f1,store1).\n"
                "file(f2). filename(f2,\"budget.txt\"). "
                "filedata(f2,\"$42\"). fileowner(f2,owner1). "
                "filestore(f2,store1)."),
        "files");

  // Every principal activates what is said to them (shared-workspace says).
  for (const char* p :
       {"alice", "store1", "owner1", "mgr1", "mgr2", "mgr3"}) {
    Check(ws.LoadAs(p, "active(R) <- says(_,me,R)."), "says activation");
  }

  // Requesters: ask the store for the file. (bob joins in scenario 3.)
  for (const char* requester : {"alice", "bob"}) {
    Check(ws.LoadAs(requester,
                    "r1: says(me,S,[| readreq(me,F). |]) <- want(me,F), "
                    "filestore(F,S)."),
          "requester");
  }

  // FileStore: consult the owner, serve once granted (dfs2's enforcement:
  // respond only to authorized requests).
  Check(ws.LoadAs(
            "store1",
            "fs1: says(me,O,[| permq(R,F). |]) <- readreq(R,F), "
            "filestore(F,me), fileowner(F,O).\n"
            "fs2: granted(R,F) <- says(O,me,[| permok(R,F). |]), "
            "fileowner(F,O).\n"
            "fs3: says(me,R,[| filecontent(F,D). |]) <- readreq(R,F), "
            "granted(R,F), filestore(F,me), filedata(F,D).\n"
            // dfs2-style constraint: no content leaves without permission.
            "dfs2: says(me,R,[| filecontent(F,D). |]) -> granted(R,F)."),
        "file store");

  // FileOwner: answer permission queries from the permission table.
  Check(ws.LoadAs("owner1",
                  "fo1: says(me,S,[| permok(R,F). |]) <- "
                  "says(S,me,[| permq(R,F). |]), permission(me,R,F,read)."),
        "file owner");

  // --- Scenario 1: direct permission ------------------------------------
  // Both principals' facts land in one transaction: one apply, one
  // fixpoint (and an EDB-only batch like this takes the delta path).
  {
    Transaction txn = ws.Begin();
    txn.AddFactTextAs("owner1", "permission(me,alice,f1,read).")
        .AddFactTextAs("alice", "want(me,f1).");
    Check(txn.Commit(), "fixpoint 1");
  }
  std::printf("[1] direct permission: alice received f1 content: %zu\n",
              Count(&ws, "says(store1,alice,[| filecontent(f1,\"Q3 plan\"). "
                         "|])"));

  // --- Scenario 2: delegation to the access managers ---------------------
  // owner1 delegates the permission predicate to mgr1 with depth 0 (mgr1
  // may decide but not re-delegate), per §4.2.1.
  Check(ws.LoadAs("owner1", lbtrust::trust::DelegationRules()), "del rules");
  for (const char* p : {"owner1", "mgr1"}) {
    Check(ws.LoadAs(p, lbtrust::trust::DelegationDepthRules()), "dd rules");
  }
  {
    Transaction txn = ws.Begin();
    txn.AddFactTextAs("owner1",
                      "delegates(me,mgr1,permission). "
                      "delDepth(me,mgr1,permission,0).")
        // mgr1 grants alice read on f2 on owner1's behalf.
        .AddFactTextAs(
            "mgr1",
            "says(me,owner1,[| permission(owner1,alice,f2,read). |]).")
        .AddFactTextAs("alice", "want(me,f2).");
    Check(txn.Commit(), "fixpoint 2");
  }
  std::printf("[2] delegated permission: alice received f2 content: %zu\n",
              Count(&ws, "says(store1,alice,[| filecontent(f2,\"$42\"). |])"));

  // Depth enforcement: mgr1 re-delegating violates dd4.
  Check(ws.AddFactTextAs("mgr1", "delegates(me,mgr2,permission)."),
        "redelegate");
  auto st = ws.Fixpoint();
  std::printf("[3] re-delegation under depth 0 rejected: %s\n",
              st.code() == lbtrust::util::StatusCode::kConstraintViolation
                  ? "yes"
                  : "NO (unexpected)");
  if (!ws.violations().empty()) {
    std::printf("    %s\n", ws.violations()[0].c_str());
  }
  Check(ws.RemoveFact("delegates", {Value::Sym("mgr1"), Value::Sym("mgr2"),
                                    Value::Sym("permission")}),
        "retract");

  // --- Scenario 3: threshold approval ------------------------------------
  // owner1 requires 2-of-3 managers to confirm before granting f1 to bob.
  Check(ws.Load("pringroup(mgr1,managers). pringroup(mgr2,managers). "
                "pringroup(mgr3,managers)."),
        "managers");
  Check(ws.LoadAs("bob", "active(R) <- says(_,me,R)."), "bob says");
  // Managers say identity-carrying permit facts; activation lands them in
  // the permit relation, and the owner aggregates that relation. (The
  // paper's wd2 aggregates says directly, which is stratifiable only when
  // says is not itself derived — here the owner's replies derive says, so
  // the count runs over the activated facts instead; see DESIGN.md.)
  Check(ws.LoadAs(
            "owner1",
            "tc1: permitCount(R,F,N) <- agg<<N = count(U)>> "
            "pringroup(U,managers), permit(U,R,F).\n"
            "tc2: permission(me,R,F,read) <- permitCount(R,F,N), N >= 2."),
        "threshold");
  {
    Transaction txn = ws.Begin();
    txn.AddFactTextAs("bob", "want(me,f1).")
        .AddFactTextAs("mgr1", "says(me,owner1,[| permit(me,bob,f1). |]).");
    Check(txn.Commit(), "fixpoint 3");
  }
  std::printf("[4] one confirmation (need 2): bob has content: %zu\n",
              Count(&ws, "says(store1,bob,[| filecontent(f1,\"Q3 plan\"). "
                         "|])"));
  Check(ws.AddFactTextAs("mgr3",
                         "says(me,owner1,[| permit(me,bob,f1). |])."),
        "mgr3 permit");
  Check(ws.Fixpoint(), "fixpoint 4");
  std::printf("[5] two confirmations: bob has content: %zu\n",
              Count(&ws, "says(store1,bob,[| filecontent(f1,\"Q3 plan\"). "
                         "|])"));

  std::printf("\npermission table:\n");
  auto rows = ws.Query("permission(O,P,F,M)");
  for (const auto& row : *rows) {
    std::printf("  permission%s\n",
                lbtrust::datalog::TupleToString(row).c_str());
  }
  return 0;
}
