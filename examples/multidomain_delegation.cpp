// Multi-domain federation with linked credentials: three administrative
// domains exchange signed, content-addressed evidence instead of raw
// tuples.
//
//   hq      — issues a base credential naming store managers, plus a
//             linked policy credential delegating discount approval.
//   store   — imports hq's linked set, then issues its own credential
//             (linking hq's, SAFE-style) approving a discount.
//   auditor — imports store's bundle; because credentials are linkable,
//             the single import carries the WHOLE chain of evidence
//             (hq's facts + policy + store's approval) and the auditor's
//             local rules can derive the end-to-end decision.
//
// Along the way the example prints verification-cache statistics: the
// auditor re-imports a bundle it has already seen, and the second import
// performs zero RSA operations.
#include <cstdio>
#include <string>

#include "cred/store.h"
#include "net/cluster.h"
#include "trust/trust_runtime.h"

using lbtrust::net::Cluster;
using lbtrust::trust::TrustRuntime;

namespace {

void Check(const lbtrust::util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Take(lbtrust::util::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  Cluster::Options copts;
  copts.scheme = "";  // evidence travels as credentials, not scheme exports
  copts.default_placement = false;
  Cluster cluster(copts);
  TrustRuntime::Options ropts;
  ropts.rsa_bits = 512;
  for (const char* n : {"hq", "store", "auditor"}) {
    if (!cluster.AddNode(n, ropts).ok()) return 1;
  }
  Check(cluster.Connect(), "connect");

  TrustRuntime* hq = cluster.node("hq");
  TrustRuntime* store = cluster.node("store");
  TrustRuntime* auditor = cluster.node("auditor");

  // hq: base facts and, linked on top, the delegation policy.
  std::string base = Take(hq->Issue("manager(dana,store)."), "issue base");
  std::string policy = Take(
      hq->Issue("mayApprove(M,discount) <- manager(M,store).", {base}),
      "issue policy");

  // Ship hq -> store; the store learns who may approve.
  Check(cluster.ShipCredential("hq", "store", policy), "ship hq->store");
  Check(cluster.Run().status(), "run 1");
  std::printf("store knows mayApprove(dana,discount): %zu\n",
              *store->workspace()->Count("mayApprove(dana,discount)"));

  // store: issues its own approval, LINKING hq's policy chain — one
  // content address now names the complete evidence set.
  std::string approval = Take(
      store->Issue("approved(order17,discount,dana).", {policy}),
      "issue approval");
  Check(cluster.ShipCredential("store", "auditor", approval),
        "ship store->auditor");

  // The auditor trusts hq facts relayed through store's bundle only
  // because each credential is signed by ITS OWN issuer.
  Check(auditor->Load(
            "validDiscount(O) <- approved(O,discount,M), "
            "mayApprove(M,discount)."),
        "auditor policy");
  Check(cluster.Run().status(), "run 2");
  std::printf("auditor derives validDiscount(order17): %zu\n",
              *auditor->workspace()->Count("validDiscount(order17)"));

  // Re-import the same bundle: content-addressed dedup + memoized
  // verification -> zero additional RSA verifies.
  const auto& stats_before = auditor->credentials()->stats();
  size_t rsa_before = stats_before.rsa_verifies;
  std::string bundle =
      Take(store->ExportCredential(approval), "re-export");
  Check(auditor->ImportCredentials(bundle).status(), "re-import");
  const auto& stats_after = auditor->credentials()->stats();
  std::printf(
      "re-import: rsa_verifies %zu -> %zu (cache hits %zu) — no new RSA\n",
      rsa_before, stats_after.rsa_verifies, stats_after.verify_cache_hits);

  return stats_after.rsa_verifies == rsa_before ? 0 : 1;
}
