// Quickstart: the paper's §2.2 Binder policy on one principal, written
// against the session API.
//
//   b1: access(P,O,read) :- good(P), object(O).
//   b2: access(P,O,read) :- bob says access(P,O,read).
//
// Demonstrates loading a policy, batching mutations in a Transaction
// (including a received `says` statement), committing with a single
// fixpoint, and serving reads through a PreparedQuery handle.
#include <cstdio>

#include "binder/binder.h"
#include "datalog/pretty.h"
#include "meta/codegen.h"
#include "trust/trust_runtime.h"

using lbtrust::datalog::PreparedQuery;
using lbtrust::datalog::Transaction;
using lbtrust::datalog::TupleToString;
using lbtrust::datalog::Value;
using lbtrust::trust::TrustRuntime;

int main() {
  // alice's context.
  TrustRuntime::Options opts;
  opts.principal = "alice";
  auto alice_or = TrustRuntime::Create(opts);
  if (!alice_or.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 alice_or.status().ToString().c_str());
    return 1;
  }
  TrustRuntime& alice = **alice_or;

  // bob is a known peer (in a deployment his key arrives out of band; here
  // we mint one deterministically).
  TrustRuntime::Options bopts;
  bopts.principal = "bob";
  auto bob_or = TrustRuntime::Create(bopts);
  if (!bob_or.ok()) return 1;
  if (auto st = alice.AddPeer("bob", (*bob_or)->keypair().public_key);
      !st.ok()) {
    std::fprintf(stderr, "peer: %s\n", st.ToString().c_str());
    return 1;
  }

  // The Binder policy, compiled onto the LBTrust core.
  auto st = lbtrust::binder::LoadBinder(
      &alice,
      "b1: access(P,O,read) :- good(P), object(O).\n"
      "b2: access(P,O,read) :- bob says access(P,O,read).");
  if (!st.ok()) {
    std::fprintf(stderr, "policy: %s\n", st.ToString().c_str());
    return 1;
  }

  // Batch the workload: local facts plus bob's statement (transport and
  // signature verification are exercised by the cluster examples; here the
  // says fact is injected directly). One Commit() = one fixpoint.
  Transaction txn = alice.Begin();
  txn.AddFactText("good(carol). object(file1).")
      .AddFact("says", {Value::Sym("bob"), Value::Sym("alice"),
                        *lbtrust::meta::QuoteRuleText(
                            "access(dave,file1,read).")});
  if (auto cs = txn.Commit(); !cs.ok()) {
    std::fprintf(stderr, "commit: %s\n", cs.ToString().c_str());
    return 1;
  }

  // The read path: prepare once, evaluate per request with no parsing.
  auto all_access = alice.Prepare("access(P,O,M)");
  auto dave_probe = alice.Prepare("access(dave,file1,read)");
  if (!all_access.ok() || !dave_probe.ok()) return 1;

  std::printf("access facts at alice:\n");
  auto rows = all_access->Run();
  for (const auto& row : *rows) {
    std::printf("  access%s\n", TupleToString(row).c_str());
  }
  std::printf("\nmay dave read file1? %s\n",
              *dave_probe->Exists() ? "yes" : "no");
  std::printf("\ninstalled rules:\n");
  for (const auto* rule : alice.workspace()->rules()) {
    std::printf("  %s\n", lbtrust::datalog::PrintRule(*rule).c_str());
  }
  return 0;
}
