// Quickstart: the paper's §2.2 Binder policy on one principal.
//
//   b1: access(P,O,read) :- good(P), object(O).
//   b2: access(P,O,read) :- bob says access(P,O,read).
//
// Demonstrates loading a policy, receiving an authenticated statement
// through `says`, running the fixpoint, and querying.
#include <cstdio>

#include "binder/binder.h"
#include "datalog/pretty.h"
#include "meta/codegen.h"
#include "trust/trust_runtime.h"

using lbtrust::datalog::TupleToString;
using lbtrust::datalog::Value;
using lbtrust::trust::TrustRuntime;

int main() {
  // alice's context.
  TrustRuntime::Options opts;
  opts.principal = "alice";
  auto alice_or = TrustRuntime::Create(opts);
  if (!alice_or.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 alice_or.status().ToString().c_str());
    return 1;
  }
  TrustRuntime& alice = **alice_or;

  // bob is a known peer (in a deployment his key arrives out of band; here
  // we mint one deterministically).
  TrustRuntime::Options bopts;
  bopts.principal = "bob";
  auto bob_or = TrustRuntime::Create(bopts);
  if (!bob_or.ok()) return 1;
  if (auto st = alice.AddPeer("bob", (*bob_or)->keypair().public_key);
      !st.ok()) {
    std::fprintf(stderr, "peer: %s\n", st.ToString().c_str());
    return 1;
  }

  // The Binder policy, compiled onto the LBTrust core.
  auto st = lbtrust::binder::LoadBinder(
      &alice,
      "b1: access(P,O,read) :- good(P), object(O).\n"
      "b2: access(P,O,read) :- bob says access(P,O,read).");
  if (!st.ok()) {
    std::fprintf(stderr, "policy: %s\n", st.ToString().c_str());
    return 1;
  }
  (void)alice.workspace()->AddFactText("good(carol). object(file1).");

  // bob's statement arrives (transport + signature verification are
  // exercised by the cluster examples; here we inject the says fact).
  auto code = lbtrust::meta::QuoteRuleText("access(dave,file1,read).");
  (void)alice.workspace()->AddFact(
      "says", {Value::Sym("bob"), Value::Sym("alice"), *code});

  if (auto fp = alice.Fixpoint(); !fp.ok()) {
    std::fprintf(stderr, "fixpoint: %s\n", fp.ToString().c_str());
    return 1;
  }

  auto rows = alice.workspace()->Query("access(P,O,M)");
  std::printf("access facts at alice:\n");
  for (const auto& row : *rows) {
    std::printf("  access%s\n", TupleToString(row).c_str());
  }
  std::printf("\ninstalled rules:\n");
  for (const auto* rule : alice.workspace()->rules()) {
    std::printf("  %s\n", lbtrust::datalog::PrintRule(*rule).c_str());
  }
  return 0;
}
