// §4.2.2 delegation thresholds: a bank accepts a customer's credit if
// (a) at least 3 of its credit bureaus concur (unweighted, wd0-wd2), or
// (b) the reliability-weighted vote reaches a bar (weighted variant).
#include <cstdio>

#include "meta/codegen.h"
#include "trust/delegation.h"
#include "trust/trust_runtime.h"

using lbtrust::datalog::Value;
using lbtrust::trust::TrustRuntime;

namespace {

void Check(const lbtrust::util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

// Stages "bureau says <statement> to bank" on a transaction (the speaker
// is the bureau, so this is an AddFact rather than a Say on bank's own
// behalf).
void StageCreditOK(lbtrust::datalog::Transaction* txn, const char* bureau,
                   const char* statement) {
  auto code = lbtrust::meta::QuoteRuleText(statement);
  Check(code.status(), "quote");
  txn->AddFact("says", {Value::Sym(bureau), Value::Sym("bank"), *code});
}

}  // namespace

int main() {
  TrustRuntime::Options opts;
  opts.principal = "bank";
  opts.rsa_bits = 512;
  opts.trusting_activation = false;  // only thresholds grant authority
  auto bank_or = TrustRuntime::Create(opts);
  if (!bank_or.ok()) return 1;
  TrustRuntime& bank = **bank_or;

  // Five bureaus with reliability weights.
  struct Bureau {
    const char* name;
    double weight;
  } bureaus[] = {{"equifax", 0.5},
                 {"experian", 0.4},
                 {"transunion", 0.4},
                 {"innovis", 0.2},
                 {"clarity", 0.1}};
  lbtrust::datalog::Transaction setup = bank.Begin();
  for (const auto& b : bureaus) {
    TrustRuntime::Options bo;
    bo.principal = b.name;
    bo.rsa_bits = 512;
    auto bureau = TrustRuntime::Create(bo);
    Check(bank.AddPeer(b.name, (*bureau)->keypair().public_key), "peer");
    setup
        .AddFact("pringroup",
                 {Value::Sym(b.name), Value::Sym("creditBureau")})
        .AddFact("prinweight",
                 {Value::Sym(b.name), Value::Sym("creditBureau"),
                  Value::Double(b.weight)});
  }
  Check(setup.Commit(), "bureau setup");

  // wd1/wd2: 3-of-n unweighted threshold, plus a 0.8 weighted bar.
  Check(bank.Load(lbtrust::trust::ThresholdRules("creditOK", "creditBureau",
                                                 3)),
        "threshold");
  Check(bank.Load(lbtrust::trust::WeightedThresholdRules(
            "loanOK", "creditBureau", 0.8)),
        "weighted threshold");

  // Decision queries, prepared once and re-evaluated after every commit.
  auto credit_q = bank.Prepare("creditOK(carol)");
  auto loan_q = bank.Prepare("loanOK(carol)");
  Check(credit_q.status(), "prepare");
  Check(loan_q.status(), "prepare");

  std::printf("-- customer 'carol': equifax + experian say creditOK --\n");
  {
    lbtrust::datalog::Transaction txn = bank.Begin();
    StageCreditOK(&txn, "equifax", "creditOK(carol).");
    StageCreditOK(&txn, "experian", "creditOK(carol).");
    Check(txn.Commit(), "fixpoint");
  }
  std::printf("creditOK(carol): %zu (needs 3 bureaus)\n", *credit_q->Count());

  std::printf("\n-- transunion joins --\n");
  {
    lbtrust::datalog::Transaction txn = bank.Begin();
    StageCreditOK(&txn, "transunion", "creditOK(carol).");
    Check(txn.Commit(), "fixpoint");
  }
  std::printf("creditOK(carol): %zu\n", *credit_q->Count());

  std::printf("\n-- weighted vote for a loan: equifax(0.5) says loanOK --\n");
  {
    lbtrust::datalog::Transaction txn = bank.Begin();
    StageCreditOK(&txn, "equifax", "loanOK(carol).");
    Check(txn.Commit(), "fixpoint");
  }
  std::printf("loanOK(carol): %zu (weight 0.5 < 0.8)\n", *loan_q->Count());

  std::printf("\n-- experian(0.4) joins: 0.9 >= 0.8 --\n");
  {
    lbtrust::datalog::Transaction txn = bank.Begin();
    StageCreditOK(&txn, "experian", "loanOK(carol).");
    Check(txn.Commit(), "fixpoint");
  }
  std::printf("loanOK(carol): %zu\n", *loan_q->Count());

  auto scores = bank.workspace()->Query("loanOKScore(C,N)");
  for (const auto& row : *scores) {
    std::printf("\nweighted score for %s: %s\n", row[0].AsText().c_str(),
                row[1].ToString().c_str());
  }
  return 0;
}
