// §5.2 SeNDlog: authenticated declarative networking on a simulated
// cluster. Two protocols:
//
//   1. reachability — the paper's s1/s2 (plus the bootstrap export s0);
//   2. an authenticated distance-vector variant: nodes exchange signed
//      cost claims; each node aggregates the minimum (bounded hop count
//      keeps the claim space finite).
//
// Every inter-node claim travels through `says`, i.e. it is signed by the
// sender and verified by the receiver under the configured scheme.
#include <cstdio>
#include <map>
#include <string>

#include "net/cluster.h"
#include "sendlog/sendlog.h"
#include "util/strings.h"

using lbtrust::datalog::Value;
using lbtrust::net::Cluster;

namespace {

void Check(const lbtrust::util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // Topology: n0 - n1 - n2 - n3 - n4 in a line plus a chord n1 - n3.
  Cluster::Options copts;
  copts.scheme = "rsa";
  copts.max_rounds = 64;
  Cluster cluster(copts);
  lbtrust::trust::TrustRuntime::Options ropts;
  ropts.rsa_bits = 512;
  const char* names[] = {"n0", "n1", "n2", "n3", "n4"};
  for (const char* n : names) {
    if (!cluster.AddNode(n, ropts).ok()) return 1;
  }
  Check(cluster.Connect(), "connect");

  Check(lbtrust::sendlog::LoadSendlogOnCluster(
            &cluster,
            "At S:\n"
            "s1: reachable(S,D) :- neighbor(S,D).\n"
            "s0: reachable(Z,D)@Z :- neighbor(S,Z), reachable(S,D).\n"
            "s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).\n"
            // Distance vector: cost claims, bounded at 6 hops, minimized
            // locally (aggregation is stratified above the claims).
            "c1: cost(S,D,1) :- neighbor(S,D).\n"
            "c2: cost(Z,D,C+1)@Z :- neighbor(S,Z), cost(S,D,C), C < 6, "
            "Z != D.\n"
            "c3: bestcost(S,D,N) :- agg<<N = min(C)>> cost(S,D,C)."),
        "program");

  // Stage each node's adjacency as one batch; fixpoints run in
  // Cluster::Run.
  std::map<std::string, lbtrust::datalog::Transaction> txns;
  auto add_edge = [&](const char* a, const char* b) {
    auto stage = [&](const char* at, const char* s, const char* d) {
      auto it = txns.find(at);
      if (it == txns.end()) {
        it = txns.emplace(at, cluster.node(at)->Begin()).first;
      }
      it->second.AddFact("neighbor", {Value::Sym(s), Value::Sym(d)});
    };
    stage(a, a, b);
    stage(b, b, a);
  };
  add_edge("n0", "n1");
  add_edge("n1", "n2");
  add_edge("n2", "n3");
  add_edge("n3", "n4");
  add_edge("n1", "n3");
  for (auto& [name, txn] : txns) Check(txn.CommitNoFixpoint(), "edges");

  auto stats = cluster.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "run: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("converged in %zu rounds, %zu authenticated messages "
              "(%zu bytes)\n\n",
              stats->rounds, stats->messages, stats->bytes);

  std::printf("node  reachable-set\n");
  for (const char* n : names) {
    auto rows = cluster.node(n)->workspace()->Query("reachable(S,D)");
    std::string line;
    for (const auto& t : *rows) {
      if (t[0].AsText() != n) continue;
      if (!line.empty()) line += " ";
      line += t[1].AsText();
    }
    std::printf("%-5s %s\n", n, line.c_str());
  }

  std::printf("\nshortest path costs from n0 (distance vector):\n");
  auto rows = cluster.node("n0")->workspace()->Query("bestcost(n0,D,C)");
  for (const auto& t : *rows) {
    std::printf("  n0 -> %s : %lld hop(s)\n", t[1].AsText().c_str(),
                static_cast<long long>(t[2].AsInt()));
  }

  // Crypto work that the exchange actually performed.
  size_t signs = 0, verifies = 0;
  for (const char* n : names) {
    signs += cluster.node(n)->crypto_stats().rsa_signs;
    verifies += cluster.node(n)->crypto_stats().rsa_verifies;
  }
  std::printf("\nRSA signatures: %zu, verifications: %zu\n", signs, verifies);
  return 0;
}
