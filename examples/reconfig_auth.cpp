// §4.1 reconfigurable authentication: the same policy and workload run
// under plaintext, HMAC-SHA1 and RSA-1024 `says`, switching schemes by
// swapping two clauses (exp1/exp3) — the paper's headline flexibility
// claim, with the measured cost of each choice.
#include <chrono>
#include <cstdio>

#include "net/cluster.h"
#include "trust/auth_scheme.h"

using lbtrust::net::Cluster;
using lbtrust::trust::AuthScheme;

namespace {

double RunExchange(const char* scheme, int messages, size_t* out_messages) {
  Cluster::Options copts;
  copts.scheme = scheme;
  Cluster cluster(copts);
  lbtrust::trust::TrustRuntime::Options ropts;
  ropts.rsa_bits = 1024;
  (void)cluster.AddNode("alice", ropts);
  (void)cluster.AddNode("bob", ropts);
  if (!cluster.Connect().ok()) std::exit(1);
  if (!cluster.node("alice")
           ->Load("says(me,bob,[| reading(N). |]) <- sensor(N).")
           .ok()) {
    std::exit(1);
  }
  // Stage the whole sensor batch and apply it in one shot (the fixpoint
  // happens inside Cluster::Run).
  lbtrust::datalog::Transaction txn = cluster.node("alice")->Begin();
  for (int i = 0; i < messages; ++i) {
    txn.AddFact("sensor", {lbtrust::datalog::Value::Int(i)});
  }
  if (!txn.CommitNoFixpoint().ok()) std::exit(1);
  auto start = std::chrono::steady_clock::now();
  auto stats = cluster.Run();
  auto end = std::chrono::steady_clock::now();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    std::exit(1);
  }
  *out_messages = stats->messages;
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  const int kMessages = 500;

  // What changes between schemes? Exactly the export/import clauses.
  lbtrust::trust::RsaScheme rsa;
  lbtrust::trust::HmacScheme hmac;
  lbtrust::trust::PlaintextScheme plaintext;
  std::printf("clauses that differ between schemes:\n");
  std::printf("  rsa  vs hmac:      %d (exp1, exp3)\n",
              AuthScheme::CountDifferingRules(rsa, hmac));
  std::printf("  rsa  vs plaintext: %d\n",
              AuthScheme::CountDifferingRules(rsa, plaintext));
  std::printf("  hmac vs plaintext: %d\n\n",
              AuthScheme::CountDifferingRules(hmac, plaintext));

  std::printf("the RSA export rule (exp1):\n  %s\n",
              "export[U2](me,R,S) <- says(me,U2,R), rsaprivkey(me,K), "
              "rsasign(R,S,K).");
  std::printf("the HMAC export rule (exp1'):\n  %s\n\n",
              "export[U2](me,R,S) <- says(me,U2,R), sharedsecret(me,U2,K), "
              "hmacsign(R,K,S).");

  // Same policy, three transports.
  std::printf("%d-message exchange, identical policy:\n", kMessages);
  std::printf("scheme     seconds   ms/message\n");
  for (const char* scheme : {"plaintext", "hmac", "rsa"}) {
    size_t shipped = 0;
    double secs = RunExchange(scheme, kMessages, &shipped);
    std::printf("%-9s  %7.3f   %8.4f   (%zu messages)\n", scheme, secs,
                secs / kMessages * 1000.0, shipped);
  }
  std::printf("\nsecurity/efficiency tradeoff (§2.2): plaintext saves the "
              "crypto,\nHMAC needs pairwise secrets, RSA pays public-key "
              "cost per message.\n");
  return 0;
}
