// Multi-process driver for the socket-backed distributed runtime.
//
// Two modes sharing one scenario library, so a shell script can run the
// differential check the in-process tests run with threads:
//
//   lbtrust_node --mode=sim --scenario=delegation --outdir=DIR
//       Runs the scenario on the simulated (in-memory) Cluster and writes
//       one canonical dump per node to DIR/<node>.dump.
//
//   lbtrust_node --mode=node --self=a --scenario=delegation
//       --port=47101 --peers=b=127.0.0.1:47102,c=127.0.0.1:47103
//       --out=DIR/a.dump   (one command line)
//       Runs ONE DistributedCluster node in this process, converges with
//       the mesh over TCP, and writes this node's canonical dump.
//
// Dumps are written with sort_rules=true on both paths; a converged socket
// mesh must produce byte-identical files to the sim run (tools/dist_smoke.sh
// diffs them).
//
// Scenarios:
//   delegation  two-hop re-export chain a -> b -> c under the rsa scheme
//   linked      linked-credential shipping a -> b, relay to c, under the
//               plaintext scheme (the rsa/hmac import constraints demand a
//               signed export tuple per says fact, which credential-imported
//               facts do not have)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "datalog/dump.h"
#include "net/cluster.h"
#include "net/distributed.h"
#include "net/event_loop.h"
#include "obs/http_exporter.h"
#include "obs/trace.h"
#include "trust/trust_runtime.h"
#include "util/log.h"
#include "util/status.h"
#include "util/strings.h"

namespace {

using lbtrust::net::Cluster;
using lbtrust::net::DistributedCluster;
using lbtrust::trust::TrustRuntime;
using lbtrust::util::Result;
using lbtrust::util::Status;

constexpr const char* kNodes[] = {"a", "b", "c"};

/// Set by the SIGUSR1 handler; the run loop's on_tick drains it by writing
/// a fresh metrics dump (async-signal-safe: the handler only flips a flag).
volatile std::sig_atomic_t g_dump_requested = 0;

void OnDumpSignal(int) { g_dump_requested = 1; }

/// Flipped by the /quitquitquit handler (which runs on the loop thread, so
/// a plain bool suffices); ends the post-convergence HTTP serve window.
bool g_quit_requested = false;

struct Args {
  std::string mode;         // "sim" | "node"
  std::string scenario;     // "delegation" | "linked"
  std::string self;         // node mode: this node's name
  std::string peers;        // node mode: name=host:port,name=host:port
  std::string out;          // node mode: dump file
  std::string outdir;       // sim mode: dump directory
  std::string metrics_out;  // node mode: Prometheus-text metrics dump file
  std::string trace_out;    // Chrome trace-event JSON export file
  uint16_t port = 0;        // node mode: listen port
  int http_port = -1;       // node mode: introspection server (-1 = off)
  int timeout_ms = 30000;   // node mode: convergence deadline
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto take = [&](const char* key, std::string* out) {
      std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    if (take("mode", &args->mode) || take("scenario", &args->scenario) ||
        take("self", &args->self) || take("peers", &args->peers) ||
        take("out", &args->out) || take("outdir", &args->outdir) ||
        take("metrics-out", &args->metrics_out) ||
        take("trace-out", &args->trace_out)) {
      continue;
    }
    if (take("port", &value)) {
      args->port = static_cast<uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
      continue;
    }
    if (take("http-port", &value)) {
      args->http_port = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      continue;
    }
    if (take("timeout-ms", &value)) {
      args->timeout_ms = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    return false;
  }
  return true;
}

std::string SchemeFor(const std::string& scenario) {
  return scenario == "linked" ? "plaintext" : "rsa";
}

// Per-node program load; identical for the sim and socket paths.
Status SetupNode(const std::string& scenario, const std::string& name,
                 TrustRuntime* rt) {
  if (scenario == "delegation") {
    if (name == "a") {
      LB_RETURN_IF_ERROR(rt->Load("says(me,b,[| token(N). |]) <- go(N)."));
      return rt->workspace()->AddFactText("go(1). go(2).");
    }
    if (name == "b") {
      return rt->Load("says(me,c,[| token(N). |]) <- token(N).");
    }
    return lbtrust::util::OkStatus();
  }
  if (scenario == "linked") {
    if (name == "b") {
      return rt->Load("says(me,c,[| holds(P,F). |]) <- canread(P,F).");
    }
    return lbtrust::util::OkStatus();
  }
  return lbtrust::util::InvalidArgument(
      lbtrust::util::StrCat("unknown scenario '", scenario, "'"));
}

// Linked scenario only: node a issues the grant + linked policy rule and
// returns the root hash to ship to b.
Result<std::string> IssueLinked(TrustRuntime* a) {
  LB_ASSIGN_OR_RETURN(std::string base, a->Issue("grant(carol,file1,read)."));
  return a->Issue("canread(P,F) <- grant(P,F,read).", {base});
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return lbtrust::util::Internal(
        lbtrust::util::StrCat("cannot open '", path, "' for writing"));
  }
  out << content;
  out.close();
  if (!out) {
    return lbtrust::util::Internal(
        lbtrust::util::StrCat("short write to '", path, "'"));
  }
  return lbtrust::util::OkStatus();
}

Status RunSim(const Args& args) {
  if (args.outdir.empty()) {
    return lbtrust::util::InvalidArgument("--mode=sim needs --outdir=DIR");
  }
  Cluster::Options copts;
  copts.scheme = SchemeFor(args.scenario);
  Cluster cluster(copts);
  TrustRuntime::Options small;
  small.rsa_bits = 512;
  for (const char* n : kNodes) {
    LB_RETURN_IF_ERROR(cluster.AddNode(n, small).status());
  }
  LB_RETURN_IF_ERROR(cluster.Connect());
  // One tracer across all sim nodes: everything runs on this thread, so
  // fixpoint/stratum/rule spans from the three workspaces nest in one
  // per-thread buffer.
  lbtrust::obs::Tracer tracer;
  if (!args.trace_out.empty()) {
    for (const char* n : kNodes) {
      cluster.node(n)->workspace()->SetTracer(&tracer);
    }
  }
  for (const char* n : kNodes) {
    LB_RETURN_IF_ERROR(SetupNode(args.scenario, n, cluster.node(n)));
  }
  if (args.scenario == "linked") {
    LB_ASSIGN_OR_RETURN(std::string hash, IssueLinked(cluster.node("a")));
    LB_RETURN_IF_ERROR(cluster.ShipCredential("a", "b", hash));
  }
  LB_ASSIGN_OR_RETURN(Cluster::RunStats stats, cluster.Run());
  for (const char* n : kNodes) {
    std::string dump = lbtrust::datalog::DumpWorkspace(
        *cluster.node(n)->workspace(), /*max_rows=*/0, /*sort_rules=*/true);
    LB_RETURN_IF_ERROR(
        WriteFile(lbtrust::util::StrCat(args.outdir, "/", n, ".dump"), dump));
    // The oracle half of dist_smoke.sh's counter reconciliation: same
    // lbtrust_node_* names the socket nodes dump via --metrics-out.
    LB_RETURN_IF_ERROR(
        WriteFile(lbtrust::util::StrCat(args.outdir, "/", n, ".metrics"),
                  cluster.node(n)->DumpMetrics()));
  }
  if (!args.trace_out.empty()) {
    LB_RETURN_IF_ERROR(WriteFile(args.trace_out, tracer.ExportJson()));
  }
  std::fprintf(stderr,
               "sim: rounds=%zu messages=%zu tuples=%zu tuple_bytes=%zu "
               "credential_bytes=%zu\n",
               stats.rounds, stats.messages, stats.tuples, stats.tuple_bytes,
               stats.credential_bytes);
  return lbtrust::util::OkStatus();
}

Status RunNode(const Args& args) {
  if (args.self.empty() || args.out.empty() || args.port == 0) {
    return lbtrust::util::InvalidArgument(
        "--mode=node needs --self=NAME --port=PORT --out=FILE");
  }
  // Tag every log line with the node name: interleaved stderr from the
  // three dist_smoke processes stays attributable.
  lbtrust::util::SetLogNodeTag(args.self);
  DistributedCluster::Options opts;
  opts.self = args.self;
  opts.nodes = {"a", "b", "c"};
  opts.listen_port = args.port;
  opts.http_port = args.http_port;
  opts.scheme = SchemeFor(args.scenario);
  opts.runtime.rsa_bits = 512;
  opts.convergence_timeout_ms = args.timeout_ms;
  opts.poll_interval_ms = 2;
  opts.status_heartbeat_ms = 20;
  opts.transport.reconnect_backoff_min_ms = 5;
  LB_ASSIGN_OR_RETURN(std::unique_ptr<DistributedCluster> node,
                      DistributedCluster::Create(std::move(opts)));
  DistributedCluster* node_ptr = node.get();
  if (node->http() != nullptr) {
    // Ends the post-convergence serve window below; dist_smoke.sh hits it
    // on every node once it has scraped /metrics.
    node->http()->Handle("/quitquitquit", [] {
      g_quit_requested = true;
      lbtrust::obs::HttpExporter::Response r;
      r.body = "bye\n";
      return r;
    });
    std::fprintf(stderr, "node %s: http on port %u\n", args.self.c_str(),
                 node->http_port());
  }
  lbtrust::obs::Tracer tracer;
  if (!args.trace_out.empty()) {
    node->runtime()->workspace()->SetTracer(&tracer);
  }
  if (!args.metrics_out.empty()) {
    // SIGUSR1 requests a mid-run metrics dump; the handler only flips a
    // flag and the run loop's tick callback does the actual write.
    std::signal(SIGUSR1, OnDumpSignal);
    node->set_on_tick([node_ptr, &args]() {
      if (g_dump_requested == 0) return;
      g_dump_requested = 0;
      Status st = WriteFile(args.metrics_out, node_ptr->DumpMetrics());
      if (!st.ok()) {
        std::fprintf(stderr, "metrics dump failed: %s\n",
                     st.ToString().c_str());
      }
    });
  }

  // --peers=b=127.0.0.1:47102,c=127.0.0.1:47103
  for (const std::string& spec : lbtrust::util::Split(args.peers, ',')) {
    if (spec.empty()) continue;
    size_t eq = spec.find('=');
    size_t colon = spec.rfind(':');
    if (eq == std::string::npos || colon == std::string::npos || colon < eq) {
      return lbtrust::util::InvalidArgument(
          lbtrust::util::StrCat("malformed peer spec '", spec, "'"));
    }
    std::string name = spec.substr(0, eq);
    std::string host = spec.substr(eq + 1, colon - eq - 1);
    uint16_t port = static_cast<uint16_t>(
        std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
    LB_RETURN_IF_ERROR(node->AddPeer(name, host, port));
  }

  LB_RETURN_IF_ERROR(SetupNode(args.scenario, args.self, node->runtime()));
  if (args.scenario == "linked" && args.self == "a") {
    LB_ASSIGN_OR_RETURN(std::string hash, IssueLinked(node->runtime()));
    LB_RETURN_IF_ERROR(node->ShipCredential("b", hash));
  }

  LB_ASSIGN_OR_RETURN(DistributedCluster::RunStats stats,
                      node->RunToConvergence());
  std::string dump = lbtrust::datalog::DumpWorkspace(
      *node->runtime()->workspace(), /*max_rows=*/0, /*sort_rules=*/true);
  LB_RETURN_IF_ERROR(WriteFile(args.out, dump));
  if (!args.metrics_out.empty()) {
    LB_RETURN_IF_ERROR(WriteFile(args.metrics_out, node->DumpMetrics()));
  }
  if (!args.trace_out.empty()) {
    LB_RETURN_IF_ERROR(WriteFile(args.trace_out, tracer.ExportJson()));
  }
  std::fprintf(stderr,
               "node %s: fixpoints=%zu tuples_in=%zu tuples_out=%zu "
               "bytes_in=%llu bytes_out=%llu frames_in=%llu frames_out=%llu "
               "retries=%llu reconnects=%llu\n",
               args.self.c_str(), stats.fixpoints, stats.tuples_in,
               stats.tuples_out,
               static_cast<unsigned long long>(stats.transport.bytes_in),
               static_cast<unsigned long long>(stats.transport.bytes_out),
               static_cast<unsigned long long>(stats.transport.frames_in),
               static_cast<unsigned long long>(stats.transport.frames_out),
               static_cast<unsigned long long>(stats.transport.retries),
               static_cast<unsigned long long>(stats.transport.reconnects));
  if (node_ptr->http() != nullptr) {
    // Post-convergence serve window: the dump/metrics files above are the
    // script's readiness signal, after which it scrapes /metrics (and
    // friends) over HTTP and finally requests /quitquitquit. The exporter
    // shares the transport's loop, so polling it here drives the server.
    const int64_t deadline =
        lbtrust::net::EventLoop::NowMs() + args.timeout_ms;
    while (!g_quit_requested &&
           lbtrust::net::EventLoop::NowMs() < deadline) {
      node_ptr->transport()->loop()->PollOnce(20);
      node_ptr->http()->Housekeep();
    }
  }
  return lbtrust::util::OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.scenario != "delegation" && args.scenario != "linked") {
    std::fprintf(stderr, "--scenario must be 'delegation' or 'linked'\n");
    return 2;
  }
  Status st = args.mode == "sim"   ? RunSim(args)
              : args.mode == "node" ? RunNode(args)
                                    : lbtrust::util::InvalidArgument(
                                          "--mode must be 'sim' or 'node'");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
