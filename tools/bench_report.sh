#!/usr/bin/env bash
# Runs the engine/relation/distributed/observability benchmarks and merges
# the results into one machine-readable "name -> ns/op" JSON, so the
# performance trajectory is diffable across PRs (BENCH_PR9.json is the
# current capture — it adds the live-introspection series
# BM_FixpointWithHttpExporter/{64,128}: the instrumented TC fixpoint with
# an idle HTTP exporter attached and polled per wave, gating that the
# /metrics endpoint is free when nobody scrapes; the sharded-merge grid
# BM_ParallelMergeScaling/{1,2,4}/{1,2,4,8} and the
# BM_TransitiveClosureSemiNaive/128/{1,2,4} trajectory carry forward;
# CI regenerates the report on every push and uploads it as an artifact).
#
# Usage: tools/bench_report.sh [build-dir] [out-json]
#   build-dir  defaults to build-bench (configured Release + benches if it
#              does not exist yet; an existing build dir is reused as-is,
#              so you can point it at a RelWithDebInfo tree for
#              apples-to-apples before/after runs)
#   out-json   defaults to BENCH_PR9.json in the repo root
# Environment:
#   BENCH_BUILD_TYPE   CMake build type for a fresh build dir (Release)
#   BENCH_TARGETS      space-separated bench binaries (bench_engine
#                      bench_relation bench_dist bench_obs)
#   BENCH_MIN_TIME     --benchmark_min_time per bench (0.2)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OUT="${2:-BENCH_PR9.json}"
TARGETS=(${BENCH_TARGETS:-bench_engine bench_relation bench_dist bench_obs})
MIN_TIME="${BENCH_MIN_TIME:-0.2}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE="${BENCH_BUILD_TYPE:-Release}" \
    -DLBTRUST_BENCH=ON \
    -DLBTRUST_TESTS=OFF \
    -DLBTRUST_EXAMPLES=OFF
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${TARGETS[@]}"

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT
for bench in "${TARGETS[@]}"; do
  echo "== ${bench} =="
  "${BUILD_DIR}/${bench}" \
    --benchmark_format=json \
    --benchmark_min_time="${MIN_TIME}" > "${TMP}/${bench}.json"
done

python3 - "${OUT}" "${BUILD_DIR}" "${TMP}"/*.json <<'EOF'
import json
import sys

out_path, build_dir = sys.argv[1], sys.argv[2]
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
merged = {}
for path in sys.argv[3:]:
    with open(path) as f:
        report = json.load(f)
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        ns = bench["real_time"] * scale[bench.get("time_unit", "ns")]
        merged[bench["name"]] = round(ns, 1)

build_type = ""
with open(f"{build_dir}/CMakeCache.txt") as f:
    for line in f:
        if line.startswith("CMAKE_BUILD_TYPE:"):
            build_type = line.split("=", 1)[1].strip()
out = {
    "unit": "ns/op",
    "build_type": build_type or "RelWithDebInfo (default)",
    "benchmarks": merged,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(merged)} benchmarks)")
EOF
