#!/usr/bin/env bash
# Multi-process distributed smoke: runs each scenario on a real 3-node
# localhost socket mesh (one lbtrust_node process per node) and diffs every
# node's converged workspace dump against the simulated in-memory cluster.
# Any byte of divergence fails the script.
#
# Each node (sim and socket) also dumps its metrics registry
# (Prometheus text via Workspace::DumpMetrics), and the script reconciles
# the per-node counters: tuples_out must match the sim oracle exactly
# (per-destination dedup makes shipping deterministic), while inbound-side
# counters may exceed it only by transport-level duplicates, which are
# themselves counted.
#
# Live introspection (ISSUE 9): socket nodes serve HTTP on port+3..port+5
# and keep serving after convergence until /quitquitquit. The script
# scrapes every node's /metrics over HTTP and diffs it against the file
# dump (identical modulo uptime and the scrape's own lbtrust_http_*
# counters), sanity-checks /statusz, /explainz and /lintz (must parse;
# lint must be error-free — scenario programs are vetted), then merges
# the per-node Chrome
# traces into ${BUILD_DIR}/dist_smoke_trace_<scenario>.json and asserts at
# least one sender-fixpoint -> receiver-import flow link crossed nodes.
#
# Usage: tools/dist_smoke.sh [build-dir]
#   build-dir  must contain the lbtrust_node binary (defaults to build-ci,
#              matching tools/ci.sh)
# Environment:
#   DIST_SMOKE_BASE_PORT   first listen port (default 46100; each scenario
#                          uses six consecutive ports from there: three
#                          transport, three HTTP)
#   DIST_SMOKE_TIMEOUT_MS  per-node convergence deadline (default 30000)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"
NODE_BIN="${BUILD_DIR}/lbtrust_node"
BASE_PORT="${DIST_SMOKE_BASE_PORT:-46100}"
TIMEOUT_MS="${DIST_SMOKE_TIMEOUT_MS:-30000}"

if [[ ! -x "${NODE_BIN}" ]]; then
  echo "dist_smoke: ${NODE_BIN} not found (build the lbtrust_node target first)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
NODE_PIDS=()
trap 'kill "${NODE_PIDS[@]}" 2>/dev/null || true; rm -rf "${WORK}"' EXIT

run_scenario() {
  local scenario="$1" port="$2"
  local sim="${WORK}/${scenario}/sim" dist="${WORK}/${scenario}/dist"
  mkdir -p "${sim}" "${dist}"

  echo "== dist_smoke: ${scenario} (ports ${port}-$((port + 5)))"
  "${NODE_BIN}" --mode=sim --scenario="${scenario}" --outdir="${sim}"

  local pa=$port pb=$((port + 1)) pc=$((port + 2))
  local ha=$((port + 3)) hb=$((port + 4)) hc=$((port + 5))
  "${NODE_BIN}" --mode=node --self=a --scenario="${scenario}" --port="${pa}" \
    --peers="b=127.0.0.1:${pb},c=127.0.0.1:${pc}" \
    --out="${dist}/a.dump" --metrics-out="${dist}/a.metrics" \
    --http-port="${ha}" --trace-out="${dist}/a.trace.json" \
    --timeout-ms="${TIMEOUT_MS}" &
  local pid_a=$!
  "${NODE_BIN}" --mode=node --self=b --scenario="${scenario}" --port="${pb}" \
    --peers="a=127.0.0.1:${pa},c=127.0.0.1:${pc}" \
    --out="${dist}/b.dump" --metrics-out="${dist}/b.metrics" \
    --http-port="${hb}" --trace-out="${dist}/b.trace.json" \
    --timeout-ms="${TIMEOUT_MS}" &
  local pid_b=$!
  "${NODE_BIN}" --mode=node --self=c --scenario="${scenario}" --port="${pc}" \
    --peers="a=127.0.0.1:${pa},b=127.0.0.1:${pb}" \
    --out="${dist}/c.dump" --metrics-out="${dist}/c.metrics" \
    --http-port="${hc}" --trace-out="${dist}/c.trace.json" \
    --timeout-ms="${TIMEOUT_MS}" &
  local pid_c=$!
  NODE_PIDS+=("${pid_a}" "${pid_b}" "${pid_c}")

  # A converged node writes dump -> metrics -> trace, then serves HTTP
  # until /quitquitquit. The trace file is written last, so its presence
  # means every other file of that node is complete.
  local deadline=$(($(date +%s) + TIMEOUT_MS / 1000 + 10))
  for n in a b c; do
    while [[ ! -s "${dist}/${n}.trace.json" ]]; do
      if (($(date +%s) > deadline)); then
        echo "dist_smoke: ${scenario}: node ${n} did not converge in time" >&2
        return 1
      fi
      sleep 0.1
    done
  done

  # Scrape every node's live /metrics and diff against its file dump:
  # identical except uptime and the scrape's own lbtrust_http_* counters.
  # /statusz must be valid JSON naming the node and both peers. Finally
  # ask each node to quit.
  python3 - "${dist}" "${ha}" "${hb}" "${hc}" <<'EOF'
import json
import sys
import urllib.request

dist_dir = sys.argv[1]
ports = dict(zip("abc", map(int, sys.argv[2:5])))

def get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10) as resp:
        return resp.read().decode()

def stable(page):
    return [line for line in page.splitlines()
            if "lbtrust_uptime_seconds" not in line
            and "lbtrust_http_" not in line]

failed = False
for n, port in ports.items():
    scraped = get(port, "/metrics")
    with open(f"{dist_dir}/{n}.metrics") as f:
        dumped = f.read()
    if stable(scraped) != stable(dumped):
        import difflib
        print(f"dist_smoke: node {n}: /metrics scrape != file dump:",
              file=sys.stderr)
        sys.stderr.writelines(difflib.unified_diff(
            stable(dumped), stable(scraped), "file", "scrape", lineterm=""))
        failed = True
    status = json.loads(get(port, "/statusz"))
    if status["node"] != n or len(status["peers"]) != 2:
        print(f"dist_smoke: node {n}: bad /statusz: {status}",
              file=sys.stderr)
        failed = True
    json.loads(get(port, "/explainz"))  # must parse
    lint = json.loads(get(port, "/lintz"))  # must parse, and be clean:
    if lint["errors"] != 0:                 # scenario programs are vetted
        print(f"dist_smoke: node {n}: /lintz reports errors: {lint}",
              file=sys.stderr)
        failed = True
for n, port in ports.items():
    try:
        get(port, "/quitquitquit")
    except OSError:
        pass  # the node may close before the response is read
sys.exit(1 if failed else 0)
EOF
  echo "== dist_smoke: ${scenario}: live /metrics matches file dump on 3/3 nodes"

  local failed=0
  wait "${pid_a}" || failed=1
  wait "${pid_b}" || failed=1
  wait "${pid_c}" || failed=1
  if [[ "${failed}" -ne 0 ]]; then
    echo "dist_smoke: ${scenario}: a node failed to converge" >&2
    return 1
  fi

  for n in a b c; do
    if ! diff -u "${sim}/${n}.dump" "${dist}/${n}.dump"; then
      echo "dist_smoke: ${scenario}: node ${n} diverged from simulated" >&2
      return 1
    fi
  done
  echo "== dist_smoke: ${scenario}: 3/3 nodes byte-identical to simulated"

  # Counter reconciliation against the sim oracle, per node:
  #   - tuples_out is exact: both paths ship through the same
  #     per-destination dedup, so the count is a function of the converged
  #     store, which the dump diff above already proved identical.
  #   - tuples_in / credential_imports may exceed the oracle (a reconnect
  #     during startup can resend an unacked frame; delivery is idempotent
  #     but counted), never undershoot — and when the transport saw zero
  #     duplicate frames they must be exact too.
  #   - relation cardinality gauges must match exactly.
  python3 - "${sim}" "${dist}" <<'EOF'
import sys

sim_dir, dist_dir = sys.argv[1], sys.argv[2]

def scrape(path):
    metrics = {}
    with open(path) as f:
        for line in f:
            if line.startswith("#") or not line.strip():
                continue
            name, value = line.rsplit(None, 1)
            metrics[name] = int(float(value))
    return metrics

failed = False
def check(node, label, ok, sim_v, dist_v):
    global failed
    if not ok:
        print(f"dist_smoke: node {node}: {label}: sim={sim_v} dist={dist_v}",
              file=sys.stderr)
        failed = True

for n in "abc":
    sim = scrape(f"{sim_dir}/{n}.metrics")
    dist = scrape(f"{dist_dir}/{n}.metrics")
    exact = "lbtrust_node_tuples_out_total"
    check(n, exact, sim[exact] == dist[exact], sim[exact], dist[exact])
    dups = dist.get("lbtrust_transport_duplicate_frames_in_total", 0)
    for counter in ("lbtrust_node_tuples_in_total",
                    "lbtrust_node_credential_imports_total"):
        if dups == 0:
            check(n, counter, sim[counter] == dist[counter], sim[counter],
                  dist[counter])
        else:
            check(n, f"{counter} (>=, {dups} dup frames)",
                  dist[counter] >= sim[counter], sim[counter], dist[counter])
    for name in sim:
        if name.startswith("lbtrust_relation_rows{"):
            check(n, name, sim[name] == dist.get(name), sim[name],
                  dist.get(name))

sys.exit(1 if failed else 0)
EOF
  echo "== dist_smoke: ${scenario}: per-node counters reconcile with sim"

  # Cross-node trace correlation: merge the three per-node Chrome traces
  # into one file (pid = node), keyed so a sender's ship flow ('s', id
  # "node:wave:seq", stamped on the wire frame) binds to the receiver's
  # stage/import flow ('f', same id) in another process. At least one flow
  # must actually cross nodes, or the correlation plane is dead.
  python3 - "${dist}" "${BUILD_DIR}/dist_smoke_trace_${scenario}.json" <<'EOF'
import json
import sys

dist_dir, out_path = sys.argv[1], sys.argv[2]
merged = []
for pid, node in enumerate("abc", start=1):
    with open(f"{dist_dir}/{node}.trace.json") as f:
        events = json.load(f)["traceEvents"]
    for e in events:
        e["pid"] = pid
    merged.extend(events)
    merged.append({"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                   "args": {"name": f"node {node}"}})

flows = {}
for e in merged:
    if e.get("ph") in ("s", "f"):
        flows.setdefault(e["id"], {}).setdefault(e["ph"], set()).add(e["pid"])
cross = [fid for fid, sides in flows.items()
         if sides.get("s") and sides.get("f")
         and sides["s"] != sides["f"]]
if not cross:
    sys.exit(f"dist_smoke: no cross-node flow link in {len(flows)} flows")

with open(out_path, "w") as f:
    json.dump({"traceEvents": merged}, f)
print(f"dist_smoke: merged trace -> {out_path} "
      f"({len(merged)} events, {len(cross)} cross-node flows)")
EOF
}

run_scenario delegation "${BASE_PORT}"
run_scenario linked "$((BASE_PORT + 10))"
echo "dist_smoke: OK"
