#!/usr/bin/env bash
# Multi-process distributed smoke: runs each scenario on a real 3-node
# localhost socket mesh (one lbtrust_node process per node) and diffs every
# node's converged workspace dump against the simulated in-memory cluster.
# Any byte of divergence fails the script.
#
# Usage: tools/dist_smoke.sh [build-dir]
#   build-dir  must contain the lbtrust_node binary (defaults to build-ci,
#              matching tools/ci.sh)
# Environment:
#   DIST_SMOKE_BASE_PORT   first listen port (default 46100; each scenario
#                          uses three consecutive ports from there)
#   DIST_SMOKE_TIMEOUT_MS  per-node convergence deadline (default 30000)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"
NODE_BIN="${BUILD_DIR}/lbtrust_node"
BASE_PORT="${DIST_SMOKE_BASE_PORT:-46100}"
TIMEOUT_MS="${DIST_SMOKE_TIMEOUT_MS:-30000}"

if [[ ! -x "${NODE_BIN}" ]]; then
  echo "dist_smoke: ${NODE_BIN} not found (build the lbtrust_node target first)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
NODE_PIDS=()
trap 'kill "${NODE_PIDS[@]}" 2>/dev/null || true; rm -rf "${WORK}"' EXIT

run_scenario() {
  local scenario="$1" port="$2"
  local sim="${WORK}/${scenario}/sim" dist="${WORK}/${scenario}/dist"
  mkdir -p "${sim}" "${dist}"

  echo "== dist_smoke: ${scenario} (ports ${port}-$((port + 2)))"
  "${NODE_BIN}" --mode=sim --scenario="${scenario}" --outdir="${sim}"

  local pa=$port pb=$((port + 1)) pc=$((port + 2))
  "${NODE_BIN}" --mode=node --self=a --scenario="${scenario}" --port="${pa}" \
    --peers="b=127.0.0.1:${pb},c=127.0.0.1:${pc}" \
    --out="${dist}/a.dump" --timeout-ms="${TIMEOUT_MS}" &
  local pid_a=$!
  "${NODE_BIN}" --mode=node --self=b --scenario="${scenario}" --port="${pb}" \
    --peers="a=127.0.0.1:${pa},c=127.0.0.1:${pc}" \
    --out="${dist}/b.dump" --timeout-ms="${TIMEOUT_MS}" &
  local pid_b=$!
  "${NODE_BIN}" --mode=node --self=c --scenario="${scenario}" --port="${pc}" \
    --peers="a=127.0.0.1:${pa},b=127.0.0.1:${pb}" \
    --out="${dist}/c.dump" --timeout-ms="${TIMEOUT_MS}" &
  local pid_c=$!
  NODE_PIDS+=("${pid_a}" "${pid_b}" "${pid_c}")

  local failed=0
  wait "${pid_a}" || failed=1
  wait "${pid_b}" || failed=1
  wait "${pid_c}" || failed=1
  if [[ "${failed}" -ne 0 ]]; then
    echo "dist_smoke: ${scenario}: a node failed to converge" >&2
    return 1
  fi

  for n in a b c; do
    if ! diff -u "${sim}/${n}.dump" "${dist}/${n}.dump"; then
      echo "dist_smoke: ${scenario}: node ${n} diverged from simulated" >&2
      return 1
    fi
  done
  echo "== dist_smoke: ${scenario}: 3/3 nodes byte-identical to simulated"
}

run_scenario delegation "${BASE_PORT}"
run_scenario linked "$((BASE_PORT + 10))"
echo "dist_smoke: OK"
