// lbtrust_lint — offline policy vetting: run the static analyzer over
// Datalog / SeNDlog program files (or stdin) and report diagnostics as
// text or JSON. Nonzero exit when findings reach the --fail-on threshold,
// so the tool gates CI (tools/ci.sh lints examples/ and the golden corpus
// with it).
//
// Usage:
//   lbtrust_lint [flags] file.lb [file2.lb ...]      lint program files
//   lbtrust_lint [flags] -                           lint stdin
//   lbtrust_lint --corpus                            lint the golden corpus
//
// Flags:
//   --json                 machine-readable output (one object per input)
//   --sendlog              inputs are SeNDlog surface programs (lowered
//                          through CompileSendlog before analysis)
//   --principal=P          principal `me` resolves to (default "local")
//   --exports=a,b,c        queryable predicates: dead-code roots, and
//                          enables derived-but-never-read (L021)
//   --says-check           enable says-attribution checks (L060)
//   --fail-on=error|warning|none   exit-1 threshold (default error)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "datalog/builtins.h"
#include "datalog/eval.h"
#include "datalog/lint.h"
#include "datalog/parser.h"
#include "obs/metrics.h"
#include "sendlog/sendlog.h"
#include "golden_programs.h"

namespace {

using lbtrust::datalog::Diagnostic;
using lbtrust::datalog::LintOptions;
using lbtrust::datalog::LintReport;
using lbtrust::datalog::LintSeverity;
using lbtrust::datalog::LintSeverityName;

struct Flags {
  bool json = false;
  bool sendlog = false;
  bool says_check = false;
  bool corpus = false;
  std::string principal = "local";
  std::vector<std::string> exports;
  std::string fail_on = "error";
  std::vector<std::string> inputs;
};

void SplitCsv(const std::string& csv, std::vector<std::string>* out) {
  std::string piece;
  std::stringstream ss(csv);
  while (std::getline(ss, piece, ',')) {
    if (!piece.empty()) out->push_back(piece);
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: lbtrust_lint [--json] [--sendlog] [--says-check]\n"
      "                    [--principal=P] [--exports=a,b]\n"
      "                    [--fail-on=error|warning|none] <file.lb ...|->\n"
      "       lbtrust_lint --corpus   (lint the built-in golden corpus)\n");
  return 2;
}

/// Appends L050 join-order findings using static fact counts from the
/// program text itself — the offline stand-in for live store
/// cardinalities (Workspace::LintRules uses the real ones).
void AddJoinOrderFindings(const std::string& text,
                          const std::string& principal, LintReport* report) {
  auto clauses = lbtrust::datalog::ParseProgram(text);
  if (!clauses.ok()) return;  // L000 already reported
  std::map<std::string, size_t> fact_counts;
  std::vector<lbtrust::datalog::Rule> rules;
  for (lbtrust::datalog::ParsedClause& clause : *clauses) {
    if (clause.kind != lbtrust::datalog::ParsedClause::Kind::kRule) continue;
    for (lbtrust::datalog::Rule& rule : clause.rules) {
      lbtrust::datalog::Rule resolved =
          lbtrust::datalog::ResolveMeRule(rule, principal);
      if (resolved.IsFact()) {
        for (const lbtrust::datalog::Atom& h : resolved.heads) {
          std::vector<std::string> vars;
          lbtrust::datalog::CollectAtomVars(h, &vars);
          if (vars.empty()) ++fact_counts[h.predicate];
        }
        continue;
      }
      for (const lbtrust::datalog::Atom& head : resolved.heads) {
        lbtrust::datalog::Rule single;
        single.label = resolved.label;
        single.heads = {lbtrust::datalog::CloneAtom(head)};
        single.body = resolved.body;
        single.aggregate = resolved.aggregate;
        rules.push_back(std::move(single));
      }
    }
  }
  lbtrust::datalog::BuiltinRegistry builtins;
  lbtrust::datalog::RegisterStandardBuiltins(&builtins);
  auto rows = [&fact_counts](const std::string& pred) -> size_t {
    auto it = fact_counts.find(pred);
    return it == fact_counts.end() ? lbtrust::datalog::kUnknownRows
                                   : it->second;
  };
  for (size_t i = 0; i < rules.size(); ++i) {
    auto compiled = lbtrust::datalog::CompileRule(rules[i], builtins);
    if (!compiled.ok()) continue;  // safety errors already reported
    lbtrust::datalog::LintJoinOrder(**compiled, static_cast<int>(i), rows,
                                    &report->diagnostics);
  }
}

LintReport LintOne(const std::string& text, const Flags& flags) {
  if (flags.sendlog) {
    LintReport report;
    auto core = lbtrust::sendlog::CompileSendlog(text, &report);
    if (!core.ok() && report.diagnostics.empty()) {
      // Surface-level failure (parse, constant contexts): report as L000.
      Diagnostic d;
      d.severity = LintSeverity::kError;
      d.code = "L000";
      d.message = core.status().message();
      report.diagnostics.push_back(std::move(d));
    }
    return report;
  }
  LintOptions opts;
  opts.says_check = flags.says_check;
  opts.says_principal = flags.principal;
  opts.exports = flags.exports;
  LintReport report =
      lbtrust::datalog::LintProgram(text, flags.principal, opts);
  AddJoinOrderFindings(text, flags.principal, &report);
  return report;
}

bool Fails(const LintReport& report, const std::string& fail_on) {
  if (fail_on == "none") return false;
  if (fail_on == "warning") {
    return report.errors() + report.warnings() > 0;
  }
  return report.has_errors();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      flags.json = true;
    } else if (arg == "--sendlog") {
      flags.sendlog = true;
    } else if (arg == "--says-check") {
      flags.says_check = true;
    } else if (arg == "--corpus") {
      flags.corpus = true;
    } else if (arg.rfind("--principal=", 0) == 0) {
      flags.principal = arg.substr(std::strlen("--principal="));
    } else if (arg.rfind("--exports=", 0) == 0) {
      SplitCsv(arg.substr(std::strlen("--exports=")), &flags.exports);
    } else if (arg.rfind("--fail-on=", 0) == 0) {
      flags.fail_on = arg.substr(std::strlen("--fail-on="));
      if (flags.fail_on != "error" && flags.fail_on != "warning" &&
          flags.fail_on != "none") {
        return Usage();
      }
    } else if (arg == "-" || arg[0] != '-') {
      flags.inputs.push_back(arg);
    } else {
      return Usage();
    }
  }
  if (flags.corpus != flags.inputs.empty()) return Usage();

  struct Input {
    std::string name;
    std::string text;
    std::string principal;  ///< corpus entries carry their own
  };
  std::vector<Input> inputs;
  if (flags.corpus) {
    for (size_t i = 0; i < lbtrust::testing::kNumGoldenPrograms; ++i) {
      const auto& gp = lbtrust::testing::kGoldenPrograms[i];
      inputs.push_back({std::string("corpus:") + gp.name, gp.program,
                        gp.principal});
    }
  } else {
    for (const std::string& path : flags.inputs) {
      Input input;
      input.name = path;
      input.principal = flags.principal;
      if (path == "-") {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        input.text = ss.str();
        input.name = "<stdin>";
      } else {
        std::ifstream f(path);
        if (!f) {
          std::fprintf(stderr, "lbtrust_lint: cannot read %s\n",
                       path.c_str());
          return 2;
        }
        std::stringstream ss;
        ss << f.rdbuf();
        input.text = ss.str();
      }
      inputs.push_back(std::move(input));
    }
  }

  bool failed = false;
  std::string json_out = "[";
  for (size_t i = 0; i < inputs.size(); ++i) {
    Flags per = flags;
    per.principal = inputs[i].principal;
    LintReport report = LintOne(inputs[i].text, per);
    if (Fails(report, flags.fail_on)) failed = true;
    if (flags.json) {
      if (i != 0) json_out.push_back(',');
      json_out += "{\"file\":\"";
      json_out += lbtrust::obs::LabelEscape(inputs[i].name);
      json_out += "\",\"report\":";
      json_out += report.ToJson();
      json_out.push_back('}');
    } else if (!report.diagnostics.empty()) {
      std::printf("%s:\n", inputs[i].name.c_str());
      for (const Diagnostic& d : report.diagnostics) {
        std::printf("  %s %s: %s\n", d.code.c_str(),
                    LintSeverityName(d.severity), d.message.c_str());
      }
    }
  }
  if (flags.json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  } else if (!failed) {
    std::printf("lbtrust_lint: %zu input(s) clean at --fail-on=%s\n",
                inputs.size(), flags.fail_on.c_str());
  }
  return failed ? 1 : 0;
}
