#!/usr/bin/env bash
# Tier-1 verification: configure, build every target with
# -Wall -Wextra -Werror on the library code, and run the test suite.
#
# Usage: tools/ci.sh [build-dir] [mode]
#   build-dir  defaults to build-ci (build-asan / build-tsan in the
#              sanitizer modes, build-tidy in tidy mode)
#   mode       "tidy" runs the curated clang-tidy profile (.clang-tidy)
#              over the library and tool sources against an exported
#              compilation database; skips gracefully (exit 0 with a
#              notice) when clang-tidy is not installed, so the mode is
#              safe to invoke from environments without LLVM tooling.
#              "tsan" rebuilds with ThreadSanitizer and runs the full
#              ctest suite (the parallel-evaluation tests run the worker
#              pool at threads 2-4, so lazy-index or merge races surface
#              here), then re-runs the parallel-eval suite with
#              LBTRUST_TEST_SHARDS=4 so the per-shard parallel merge path
#              is exercised under TSan too; any other non-empty second
#              argument (or SANITIZE=1
#              in the environment) rebuilds with ASan+UBSan. Benches are
#              skipped under sanitizers: sanitizer + benchmark timing is
#              noise.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${2:-${SANITIZE:-}}"
if [[ "${MODE}" == "tidy" ]]; then
  TIDY="$(command -v clang-tidy || true)"
  if [[ -z "${TIDY}" ]]; then
    echo "ci: clang-tidy not installed; skipping tidy mode" >&2
    exit 0
  fi
  BUILD_DIR="${1:-build-tidy}"
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DLBTRUST_BENCH=OFF \
    -DLBTRUST_EXAMPLES=OFF \
    -DLBTRUST_TESTS=OFF
  # The curated profile lives in .clang-tidy; findings are errors here so
  # the CI job fails on regressions, not just prints them.
  mapfile -t TIDY_SOURCES < <(find src tools -name '*.cc' | sort)
  "${TIDY}" -p "${BUILD_DIR}" --warnings-as-errors='*' "${TIDY_SOURCES[@]}"
  echo "ci: clang-tidy clean over ${#TIDY_SOURCES[@]} sources"
  exit 0
fi
if [[ "${MODE}" == "tsan" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "${BUILD_DIR}" -S . \
    -DLBTRUST_WERROR=ON \
    -DLBTRUST_SANITIZE_THREAD=ON \
    -DLBTRUST_BENCH=OFF \
    -DLBTRUST_EXAMPLES=ON
  cmake --build "${BUILD_DIR}" -j "$(nproc)"
  TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
    -j "$(nproc)"
  # Second pass over the parallel-evaluation suite with sharded storage:
  # every fixed-shard test above ran the classic single-partition layout;
  # shards=4 drives the same workloads through the per-shard parallel
  # merge (disjoint worker-owned shard ranges), which is where insert/
  # append races would live.
  TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  LBTRUST_TEST_SHARDS=4 \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
    -R "datalog_parallel_eval_test" -j "$(nproc)"
  exit 0
fi
if [[ -n "${MODE}" ]]; then
  BUILD_DIR="${1:-build-asan}"
  cmake -B "${BUILD_DIR}" -S . \
    -DLBTRUST_WERROR=ON \
    -DLBTRUST_SANITIZE=ON \
    -DLBTRUST_BENCH=OFF \
    -DLBTRUST_EXAMPLES=ON
  cmake --build "${BUILD_DIR}" -j "$(nproc)"
  ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
    -j "$(nproc)"
  exit 0
fi

BUILD_DIR="${1:-build-ci}"
cmake -B "${BUILD_DIR}" -S . \
  -DLBTRUST_WERROR=ON \
  -DLBTRUST_BENCH=ON \
  -DLBTRUST_EXAMPLES=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error -j "$(nproc)"

# Program-lint gates: the static analyzer must (a) pass the golden test
# corpus and the example policies with zero findings, and (b) flag every
# seeded-bad fixture with its expected diagnostic code and a nonzero exit.
LINT="${BUILD_DIR}/lbtrust_lint"
"${LINT}" --corpus --fail-on=warning
"${LINT}" --fail-on=warning examples/policies/*.lb
"${LINT}" --sendlog --fail-on=warning examples/policies/*.sdl
for fixture in tests/lint_fixtures/bad_*.lb; do
  code="$(basename "${fixture}" | sed -E 's/^bad_(L[0-9]+)_.*/\1/')"
  extra=""
  case "${code}" in
    L020|L021) extra="--exports=goal" ;;  # dead-code checks need roots
    L060) extra="--says-check" ;;         # says checks are opt-in
  esac
  # shellcheck disable=SC2086
  if out="$("${LINT}" --fail-on=warning ${extra} "${fixture}")"; then
    echo "ci: lint fixture ${fixture} unexpectedly clean" >&2
    exit 1
  fi
  if ! grep -q "${code}" <<<"${out}"; then
    echo "ci: lint fixture ${fixture} did not produce ${code}:" >&2
    echo "${out}" >&2
    exit 1
  fi
done
echo "ci: lint gates OK (corpus + examples clean, $(ls tests/lint_fixtures/bad_*.lb | wc -l) bad fixtures flagged)"

# Multi-process distributed smoke: a real 3-node localhost socket mesh per
# scenario, every converged dump diffed against the simulated cluster, and
# every node's metrics dump reconciled against the sim oracle's counters.
tools/dist_smoke.sh "${BUILD_DIR}"

# Trace export validity: run a sim scenario with the span tracer attached,
# then check the Chrome trace-event JSON parses and spans nest properly
# (same-thread spans are RAII scopes, so sorted by start time each span's
# [ts, ts+dur] interval must nest within — never straddle — open ancestors).
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "${TRACE_TMP}"' EXIT
"${BUILD_DIR}/lbtrust_node" --mode=sim --scenario=delegation \
  --outdir="${TRACE_TMP}" --trace-out="${TRACE_TMP}/trace.json"
python3 - "${TRACE_TMP}/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace is empty"
names = {e["name"] for e in events}
for expected in ("fixpoint", "stratum", "rule"):
    assert expected in names, f"no '{expected}' span in {sorted(names)}"

by_tid = {}
for e in events:
    assert e["ph"] == "X", e
    by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))
for tid, spans in by_tid.items():
    spans.sort(key=lambda s: (s[0], -s[1]))
    stack = []
    for start, end in spans:
        while stack and start >= stack[-1]:
            stack.pop()
        if stack and end > stack[-1]:
            sys.exit(f"tid {tid}: span [{start},{end}] straddles "
                     f"enclosing span ending at {stack[-1]}")
        stack.append(end)
print(f"ci: trace OK ({len(events)} spans, {len(by_tid)} threads)")
EOF

# Cross-node trace validity: dist_smoke merged each scenario's three
# per-node traces (pid = node) into one Chrome trace. Check the merged
# files are well-formed — X spans still nest per (pid, tid), every flow
# event is a complete s/f pair joining two different nodes, and the
# shipping spans that anchor the flows are present.
for scenario in delegation linked; do
  python3 - "${BUILD_DIR}/dist_smoke_trace_${scenario}.json" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    events = json.load(f)["traceEvents"]
assert events, f"{path}: empty merged trace"

names = {e["name"] for e in events if e.get("ph") == "X"}
for expected in ("fixpoint", "ship", "stage"):
    assert expected in names, f"{path}: no '{expected}' span in {sorted(names)}"

spans_by_lane = {}
flows = {}
for e in events:
    ph = e.get("ph")
    if ph == "X":
        lane = (e["pid"], e["tid"])
        spans_by_lane.setdefault(lane, []).append((e["ts"], e["ts"] + e["dur"]))
    elif ph in ("s", "f"):
        assert e.get("cat") == "flow" and e.get("id"), e
        flows.setdefault(e["id"], {}).setdefault(ph, set()).add(e["pid"])
    else:
        assert ph == "M", f"{path}: unexpected phase {e}"

for lane, spans in spans_by_lane.items():
    spans.sort(key=lambda s: (s[0], -s[1]))
    stack = []
    for start, end in spans:
        while stack and start >= stack[-1]:
            stack.pop()
        if stack and end > stack[-1]:
            sys.exit(f"{path}: lane {lane}: span [{start},{end}] straddles "
                     f"enclosing span ending at {stack[-1]}")
        stack.append(end)

cross = 0
for fid, sides in flows.items():
    assert sides.get("s"), f"{path}: flow {fid} has no start"
    if sides.get("f") and sides["s"] != sides["f"]:
        cross += 1
assert cross, f"{path}: no flow joins two nodes"
print(f"ci: merged {path.rsplit('/', 1)[-1]} OK "
      f"({len(events)} events, {cross} cross-node flows)")
EOF
done
