#!/usr/bin/env bash
# Tier-1 verification: configure, build every target with
# -Wall -Wextra -Werror on the library code, and run the test suite.
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

cmake -B "${BUILD_DIR}" -S . \
  -DLBTRUST_WERROR=ON \
  -DLBTRUST_BENCH=ON \
  -DLBTRUST_EXAMPLES=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error -j "$(nproc)"
