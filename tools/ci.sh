#!/usr/bin/env bash
# Tier-1 verification: configure, build every target with
# -Wall -Wextra -Werror on the library code, and run the test suite.
#
# Usage: tools/ci.sh [build-dir] [sanitize]
#   build-dir  defaults to build-ci (build-asan in sanitize mode)
#   sanitize   any second argument (or SANITIZE=1 in the environment)
#              rebuilds with ASan+UBSan and runs the full ctest suite
#              under the sanitizers (benches skipped: ASan + benchmark
#              timing is noise).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${2:-${SANITIZE:-}}"
if [[ -n "${MODE}" ]]; then
  BUILD_DIR="${1:-build-asan}"
  cmake -B "${BUILD_DIR}" -S . \
    -DLBTRUST_WERROR=ON \
    -DLBTRUST_SANITIZE=ON \
    -DLBTRUST_BENCH=OFF \
    -DLBTRUST_EXAMPLES=ON
  cmake --build "${BUILD_DIR}" -j "$(nproc)"
  ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
    -j "$(nproc)"
  exit 0
fi

BUILD_DIR="${1:-build-ci}"
cmake -B "${BUILD_DIR}" -S . \
  -DLBTRUST_WERROR=ON \
  -DLBTRUST_BENCH=ON \
  -DLBTRUST_EXAMPLES=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error -j "$(nproc)"
