#ifndef LBTRUST_UTIL_LOG_H_
#define LBTRUST_UTIL_LOG_H_

#include <functional>
#include <string_view>

namespace lbtrust::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// True when `level` is at or below the active threshold. The threshold
/// initializes once from the environment: `LBTRUST_LOG` =
/// error|warn|info|debug (default: warn), with `LBTRUST_DIST_DEBUG=1`
/// accepted as a back-compat alias for debug. Cheap enough to guard
/// format-argument evaluation (one relaxed atomic load).
bool LogEnabled(LogLevel level);

/// Overrides the threshold at runtime (tests; tools with -v flags).
void SetLogLevel(LogLevel level);

/// Re-reads `LBTRUST_LOG` / `LBTRUST_DIST_DEBUG` and resets the threshold,
/// re-arming the one-shot unrecognized-value warning. Test-only: the
/// production threshold initializes exactly once per process.
void ReinitLogLevelFromEnvForTest();

/// Sets the node tag included in every log line (see LogMessage). The tag
/// initializes once from the environment (`LBTRUST_LOG_NODE`); tools that
/// know their node name (lbtrust_node --self) call this so interleaved
/// multi-process logs are attributable without env plumbing. An explicit
/// env setting wins over the runtime call (operators overriding a tool).
/// Empty = no tag.
void SetLogNodeTag(std::string_view tag);

/// Formats printf-style and emits exactly one sink call (one stderr write)
/// per message: `[lbtrust <seconds>.<millis> [<node> ]E] message\n`, where
/// the timestamp is monotonic seconds since process start (steady clock),
/// so interleaved multi-process smoke logs can be ordered per process and
/// correlated by eye or by script, and `<node>` is the optional node tag
/// (`LBTRUST_LOG_NODE` / SetLogNodeTag). Concurrent callers never
/// interleave within a line. No-op when the level is disabled.
void LogMessage(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Replaces the output sink (default: single fwrite of the full line,
/// trailing newline included, to stderr). Pass nullptr to restore the
/// default. The sink runs under the log mutex — keep it fast.
using LogSink = std::function<void(LogLevel level, std::string_view line)>;
void SetLogSink(LogSink sink);

}  // namespace lbtrust::util

/// Call-site macro: arguments are not evaluated when the level is off.
#define LBTRUST_LOG(level, ...)                                      \
  do {                                                               \
    if (::lbtrust::util::LogEnabled(level)) {                        \
      ::lbtrust::util::LogMessage(level, __VA_ARGS__);               \
    }                                                                \
  } while (0)

#endif  // LBTRUST_UTIL_LOG_H_
