#include "util/strings.h"

#include <charconv>

namespace lbtrust::util {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const std::string& bytes) {
  return HexEncode(reinterpret_cast<const uint8_t*>(bytes.data()),
                   bytes.size());
}

bool HexDecode(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string EscapeQuoted(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void AppendLengthPrefixed(std::string* out, std::string_view bytes) {
  out->append(std::to_string(bytes.size()));
  out->push_back(':');
  out->append(bytes);
}

bool ReadLengthPrefixed(std::string_view* text, std::string_view* out) {
  size_t sep = text->find(':');
  // A length prefix longer than 19 digits cannot fit in size_t and is
  // certainly hostile; reject before from_chars sees it.
  if (sep == std::string_view::npos || sep == 0 || sep > 19) return false;
  size_t len = 0;
  auto [ptr, ec] = std::from_chars(text->data(), text->data() + sep, len);
  if (ec != std::errc() || ptr != text->data() + sep) return false;
  // Subtraction form so an oversized len cannot wrap the bounds check.
  if (text->size() - sep - 1 < len) return false;
  *out = text->substr(sep + 1, len);
  text->remove_prefix(sep + 1 + len);
  return true;
}

bool ReadDecimalCount(std::string_view* text, size_t* out, int max_digits) {
  size_t sep = text->find(':');
  if (sep == std::string_view::npos || sep == 0 ||
      sep > static_cast<size_t>(max_digits)) {
    return false;
  }
  auto [ptr, ec] = std::from_chars(text->data(), text->data() + sep, *out);
  if (ec != std::errc() || ptr != text->data() + sep) return false;
  text->remove_prefix(sep + 1);
  return true;
}

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace lbtrust::util
