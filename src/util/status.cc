#include "util/status.h"

namespace lbtrust::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kTypeError:
      return "TYPE_ERROR";
    case StatusCode::kUnsafeProgram:
      return "UNSAFE_PROGRAM";
    case StatusCode::kNotStratifiable:
      return "NOT_STRATIFIABLE";
    case StatusCode::kConstraintViolation:
      return "CONSTRAINT_VIOLATION";
    case StatusCode::kCryptoError:
      return "CRYPTO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lbtrust::util
