#ifndef LBTRUST_UTIL_STRINGS_H_
#define LBTRUST_UTIL_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace lbtrust::util {

namespace internal_strings {
inline void AppendPieces(std::ostringstream&) {}
template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& os, const T& first, Rest&&... rest) {
  os << first;
  AppendPieces(os, std::forward<Rest>(rest)...);
}
}  // namespace internal_strings

/// Concatenates streamable pieces into one string (tiny StrCat stand-in;
/// std::format is unavailable on the toolchain we target).
template <typename... Pieces>
std::string StrCat(Pieces&&... pieces) {
  std::ostringstream os;
  internal_strings::AppendPieces(os, std::forward<Pieces>(pieces)...);
  return os.str();
}

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Lowercase hex encoding of raw bytes.
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const std::string& bytes);

/// Inverse of HexEncode; returns false on odd length or non-hex digits.
bool HexDecode(std::string_view hex, std::string* out);

/// True if `text` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Escapes a string for inclusion in double quotes ("a\"b" style).
std::string EscapeQuoted(std::string_view raw);

/// Length-prefixed field framing ("<decimal-byte-length>:<bytes>") shared
/// by the net wire format and credential serialization. ReadLengthPrefixed
/// consumes one field off the front of *text into *out; it validates the
/// length against the remaining input BEFORE any allocation (length
/// prefixes over 19 digits, overflow, and truncation all return false), so
/// hostile prefixes cannot trigger over-reads or runaway reserves.
void AppendLengthPrefixed(std::string* out, std::string_view bytes);
bool ReadLengthPrefixed(std::string_view* text, std::string_view* out);

/// Consumes a "<decimal>:" count off the front of `*text` (shared by the
/// net wire and credential-bundle framing). Rejects empty counts, counts
/// longer than `max_digits`, partial parses and overflow — all before any
/// allocation, so hostile counts cannot trigger runaway reserves.
bool ReadDecimalCount(std::string_view* text, size_t* out, int max_digits);

/// 64-bit FNV-1a hash, used to combine hashes across the engine.
uint64_t Fnv1a(std::string_view data);
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  // Boost-style mix with 64-bit golden ratio.
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace lbtrust::util

#endif  // LBTRUST_UTIL_STRINGS_H_
