#ifndef LBTRUST_UTIL_STATUS_H_
#define LBTRUST_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace lbtrust::util {

/// Canonical error space for the whole library. The project is built without
/// exceptions; every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kParseError,
  kTypeError,
  kUnsafeProgram,        ///< Range-restriction / negation-safety violation.
  kNotStratifiable,      ///< Negation or aggregation through recursion.
  kConstraintViolation,  ///< A schema constraint derived fail().
  kCryptoError,          ///< Signature/MAC verification or key failure.
  kInternal,
};

/// Returns a stable human-readable name ("OK", "PARSE_ERROR", ...).
const char* StatusCodeName(StatusCode code);

/// Value-type status carrying a code and a message. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "PARSE_ERROR: unexpected token ')' at line 3".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status TypeError(std::string msg) {
  return Status(StatusCode::kTypeError, std::move(msg));
}
inline Status UnsafeProgram(std::string msg) {
  return Status(StatusCode::kUnsafeProgram, std::move(msg));
}
inline Status NotStratifiable(std::string msg) {
  return Status(StatusCode::kNotStratifiable, std::move(msg));
}
inline Status ConstraintViolation(std::string msg) {
  return Status(StatusCode::kConstraintViolation, std::move(msg));
}
inline Status CryptoError(std::string msg) {
  return Status(StatusCode::kCryptoError, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// Either a T or an error Status. Mirrors absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error status, so call sites can
  /// `return value;` or `return InvalidArgument(...)`.
  Result(T value) : rep_(std::move(value)) {}             // NOLINT
  Result(Status status) : rep_(std::move(status)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(rep_);
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace lbtrust::util

/// Propagates a non-OK Status from the evaluated expression.
#define LB_RETURN_IF_ERROR(expr)                        \
  do {                                                  \
    ::lbtrust::util::Status lb_status_ = (expr);        \
    if (!lb_status_.ok()) return lb_status_;            \
  } while (0)

/// Evaluates a Result expression; on success binds the value to `lhs`,
/// otherwise propagates its Status.
#define LB_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto LB_CONCAT_(lb_result_, __LINE__) = (expr);       \
  if (!LB_CONCAT_(lb_result_, __LINE__).ok())           \
    return LB_CONCAT_(lb_result_, __LINE__).status();   \
  lhs = std::move(LB_CONCAT_(lb_result_, __LINE__)).value()

#define LB_CONCAT_INNER_(a, b) a##b
#define LB_CONCAT_(a, b) LB_CONCAT_INNER_(a, b)

#endif  // LBTRUST_UTIL_STATUS_H_
