#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>

namespace lbtrust::util {

namespace {

/// A non-empty `LBTRUST_LOG` value that matched no known level. Recorded
/// during threshold initialization (which may run inside a static
/// initializer — too early to emit anything) and surfaced exactly once by
/// the next LogMessage call, so a typo like `LBTRUST_LOG=vebose` is named
/// instead of silently falling back to the default.
struct BadLevelSpec {
  std::atomic<bool> pending{false};
  std::mutex mu;
  std::string value;
};

BadLevelSpec& BadSpec() {
  static BadLevelSpec state;
  return state;
}

int LevelFromEnv() {
  const char* spec = std::getenv("LBTRUST_LOG");
  if (spec != nullptr) {
    if (std::strcmp(spec, "error") == 0) return 0;
    if (std::strcmp(spec, "warn") == 0) return 1;
    if (std::strcmp(spec, "info") == 0) return 2;
    if (std::strcmp(spec, "debug") == 0) return 3;
    if (spec[0] != '\0') {
      BadLevelSpec& bad = BadSpec();
      std::lock_guard<std::mutex> lock(bad.mu);
      bad.value = spec;
      bad.pending.store(true, std::memory_order_release);
    }
  }
  // Back-compat: the old ad-hoc tracing flag maps to debug.
  const char* dist = std::getenv("LBTRUST_DIST_DEBUG");
  if (dist != nullptr && dist[0] != '\0' && dist[0] != '0') return 3;
  return 1;  // warn
}

/// One-shot: warn about an unrecognized LBTRUST_LOG value the first time a
/// message is actually logged. The pending flag is cleared before the
/// nested LogMessage call, so the recursion terminates after one level.
void WarnBadLevelSpecOnce() {
  BadLevelSpec& bad = BadSpec();
  if (!bad.pending.load(std::memory_order_acquire)) return;
  std::string value;
  {
    std::lock_guard<std::mutex> lock(bad.mu);
    if (!bad.pending.exchange(false, std::memory_order_acq_rel)) return;
    value = bad.value;
  }
  LogMessage(LogLevel::kWarn,
             "unrecognized LBTRUST_LOG value '%s' (accepted: error, warn, "
             "info, debug); using default 'warn'",
             value.c_str());
}

std::atomic<int>& ActiveLevel() {
  static std::atomic<int> level{LevelFromEnv()};
  return level;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& ActiveSink() {
  static LogSink sink;
  return sink;
}

/// Epoch for the per-line monotonic timestamp. Initialized on the first
/// log-related call of the process, so timestamps across one process are
/// comparable (cross-process ordering needs the node tag + merge script).
int64_t EpochUs() {
  static const int64_t epoch =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return epoch;
}

/// Node tag storage. Env wins over SetLogNodeTag (operator override); both
/// are read/written under the sink mutex — tag changes are rare (startup).
struct NodeTagState {
  bool env_set = false;
  std::string tag;
};

NodeTagState& NodeTag() {
  static NodeTagState state = [] {
    NodeTagState s;
    const char* env = std::getenv("LBTRUST_LOG_NODE");
    if (env != nullptr && env[0] != '\0') {
      s.env_set = true;
      s.tag = env;
    }
    return s;
  }();
  return state;
}

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return 'E';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kInfo:
      return 'I';
    default:
      return 'D';
  }
}

}  // namespace

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <=
         ActiveLevel().load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  ActiveLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

void ReinitLogLevelFromEnvForTest() {
  ActiveLevel().store(LevelFromEnv(), std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  ActiveSink() = std::move(sink);
}

void SetLogNodeTag(std::string_view tag) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  NodeTagState& state = NodeTag();
  if (state.env_set) return;  // explicit LBTRUST_LOG_NODE wins
  state.tag.assign(tag.data(), tag.size());
}

void LogMessage(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) return;
  WarnBadLevelSpecOnce();
  const int64_t elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count() -
      EpochUs();
  char stack_buf[512];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (n < 0) return;
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[lbtrust %lld.%03lld ",
                static_cast<long long>(elapsed_us / 1000000),
                static_cast<long long>((elapsed_us / 1000) % 1000));
  std::string line = prefix;
  {
    // The tag is read under the sink mutex (it may be set concurrently at
    // startup); the format buffer above was built lock-free.
    std::lock_guard<std::mutex> lock(SinkMutex());
    const std::string& tag = NodeTag().tag;
    if (!tag.empty()) {
      line.append(tag);
      line.push_back(' ');
    }
  }
  line.push_back(LevelTag(level));
  line.append("] ");
  if (static_cast<size_t>(n) < sizeof(stack_buf)) {
    line.append(stack_buf, static_cast<size_t>(n));
  } else {
    std::string big(static_cast<size_t>(n) + 1, '\0');
    va_start(args, fmt);
    std::vsnprintf(&big[0], big.size(), fmt, args);
    va_end(args);
    big.resize(static_cast<size_t>(n));
    line.append(big);
  }
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (ActiveSink()) {
    ActiveSink()(level, line);
  } else {
    // One fwrite per line: concurrent writers do not interleave.
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace lbtrust::util
