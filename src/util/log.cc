#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>

namespace lbtrust::util {

namespace {

int LevelFromEnv() {
  const char* spec = std::getenv("LBTRUST_LOG");
  if (spec != nullptr) {
    if (std::strcmp(spec, "error") == 0) return 0;
    if (std::strcmp(spec, "warn") == 0) return 1;
    if (std::strcmp(spec, "info") == 0) return 2;
    if (std::strcmp(spec, "debug") == 0) return 3;
  }
  // Back-compat: the old ad-hoc tracing flag maps to debug.
  const char* dist = std::getenv("LBTRUST_DIST_DEBUG");
  if (dist != nullptr && dist[0] != '\0' && dist[0] != '0') return 3;
  return 1;  // warn
}

std::atomic<int>& ActiveLevel() {
  static std::atomic<int> level{LevelFromEnv()};
  return level;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& ActiveSink() {
  static LogSink sink;
  return sink;
}

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return 'E';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kInfo:
      return 'I';
    default:
      return 'D';
  }
}

}  // namespace

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <=
         ActiveLevel().load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  ActiveLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  ActiveSink() = std::move(sink);
}

void LogMessage(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) return;
  char stack_buf[512];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (n < 0) return;
  std::string line = "[lbtrust ";
  line.push_back(LevelTag(level));
  line.append("] ");
  if (static_cast<size_t>(n) < sizeof(stack_buf)) {
    line.append(stack_buf, static_cast<size_t>(n));
  } else {
    std::string big(static_cast<size_t>(n) + 1, '\0');
    va_start(args, fmt);
    std::vsnprintf(&big[0], big.size(), fmt, args);
    va_end(args);
    big.resize(static_cast<size_t>(n));
    line.append(big);
  }
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (ActiveSink()) {
    ActiveSink()(level, line);
  } else {
    // One fwrite per line: concurrent writers do not interleave.
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace lbtrust::util
