#include "sendlog/sendlog.h"

#include <map>
#include <memory>

#include "datalog/lint.h"
#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::sendlog {

using datalog::Atom;
using datalog::CodeValue;
using datalog::Literal;
using datalog::Rule;
using datalog::SurfaceUnit;
using datalog::Term;
using datalog::Value;
using datalog::ValueKind;
using util::Result;
using util::Status;

namespace {

Term SubstContextTerm(const Term& t, const std::string& context_var);

Atom SubstContextAtom(const Atom& a, const std::string& context_var) {
  Atom out = datalog::CloneAtom(a);
  if (out.partition) {
    out.partition = std::make_shared<Term>(
        SubstContextTerm(*out.partition, context_var));
  }
  for (Term& arg : out.args) arg = SubstContextTerm(arg, context_var);
  return out;
}

Rule SubstContextRule(const Rule& r, const std::string& context_var) {
  Rule out;
  out.label = r.label;
  out.aggregate = r.aggregate;
  for (const Atom& h : r.heads) {
    out.heads.push_back(SubstContextAtom(h, context_var));
  }
  for (const Literal& l : r.body) {
    out.body.push_back(
        Literal{SubstContextAtom(l.atom, context_var), l.negated});
  }
  return out;
}

Term SubstContextTerm(const Term& t, const std::string& context_var) {
  switch (t.kind) {
    case Term::Kind::kVariable:
      if (t.var == context_var) return Term::Me();
      return t;
    case Term::Kind::kExpr:
      return Term::Expr(t.op, SubstContextTerm(*t.lhs, context_var),
                        SubstContextTerm(*t.rhs, context_var));
    case Term::Kind::kPartRef:
      return Term::PartRef(t.part_pred,
                           SubstContextTerm(*t.part_key, context_var));
    case Term::Kind::kConstant:
      if (t.value.kind() == ValueKind::kCode) {
        const CodeValue& code = t.value.AsCode();
        if (code.what == CodeValue::What::kRule) {
          return Term::Constant(Value::CodeRule(std::make_shared<const Rule>(
              SubstContextRule(*code.rule, context_var))));
        }
      }
      return t;
    default:
      return t;
  }
}

std::string UnitToText(const SurfaceUnit& unit) {
  std::string out;
  for (const Rule& rule : unit.rules) {
    Rule lowered = unit.context_is_variable
                       ? SubstContextRule(rule, unit.context)
                       : datalog::CloneRule(rule);
    out += datalog::PrintRule(lowered);
    out += "\n";
  }
  return out;
}

/// Lints one lowered core text. SeNDlog's translation makes the local
/// context `me`, so the says-context checks run against a placeholder
/// self principal: a unit attributing speech to anyone but its own
/// context is an error the paper's semantics never produce.
datalog::LintReport LintLoweredCore(const std::string& core) {
  datalog::LintOptions opts;
  opts.says_check = true;
  opts.says_principal = "local";
  return datalog::LintProgram(core, "local", opts);
}

}  // namespace

Result<std::string> CompileSendlog(std::string_view sendlog_program,
                                   datalog::LintReport* lint) {
  LB_ASSIGN_OR_RETURN(std::vector<SurfaceUnit> units,
                      datalog::ParseSurfaceProgram(sendlog_program));
  std::string out;
  for (const SurfaceUnit& unit : units) {
    if (!unit.context.empty() && !unit.context_is_variable) {
      return util::InvalidArgument(
          "constant 'At' contexts require a cluster "
          "(use LoadSendlogOnCluster)");
    }
    out += UnitToText(unit);
  }
  datalog::LintReport report = LintLoweredCore(out);
  if (lint != nullptr) *lint = report;
  if (report.has_errors()) return report.ToStatus();
  return out;
}

Status LoadSendlogOnCluster(net::Cluster* cluster,
                            std::string_view sendlog_program) {
  LB_ASSIGN_OR_RETURN(std::vector<SurfaceUnit> units,
                      datalog::ParseSurfaceProgram(sendlog_program));
  // Collect each node's clauses first, then install them through one
  // batched transaction per node (a multi-unit program mutates every
  // workspace once instead of once per unit). Fixpoints are deferred to
  // the caller (typically Cluster::Run), as before.
  std::map<std::string, std::string> per_node;
  for (const SurfaceUnit& unit : units) {
    std::string text = UnitToText(unit);
    if (text.empty()) continue;
    if (!unit.context.empty() && !unit.context_is_variable) {
      if (cluster->node(unit.context) == nullptr) {
        return util::NotFound(util::StrCat("no cluster node named '",
                                           unit.context, "'"));
      }
      per_node[unit.context] += text;
      continue;
    }
    for (const std::string& name : cluster->node_names()) {
      per_node[name] += text;
    }
  }
  // Lint every node's lowered clauses before the first transaction
  // commits, so a bad unit rejects the whole program with zero mutation
  // on any node.
  for (const auto& [name, text] : per_node) {
    datalog::LintReport report = LintLoweredCore(text);
    if (report.has_errors()) {
      util::Status status = report.ToStatus();
      return util::Status(status.code(),
                          util::StrCat("SeNDlog program for node '", name,
                                       "': ", status.message()));
    }
  }
  for (const auto& [name, text] : per_node) {
    datalog::Transaction txn = cluster->node(name)->Begin();
    txn.AddProgram(text);
    LB_RETURN_IF_ERROR(txn.CommitNoFixpoint());
  }
  return util::OkStatus();
}

Result<std::string> IssueSendlogCredential(trust::TrustRuntime* runtime,
                                           std::string_view sendlog_program,
                                           std::vector<std::string> links,
                                           int64_t not_before,
                                           int64_t not_after) {
  LB_ASSIGN_OR_RETURN(std::string core, CompileSendlog(sendlog_program));
  return runtime->Issue(core, std::move(links), not_before, not_after);
}

}  // namespace lbtrust::sendlog
