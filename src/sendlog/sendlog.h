#ifndef LBTRUST_SENDLOG_SENDLOG_H_
#define LBTRUST_SENDLOG_SENDLOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "net/cluster.h"
#include "util/status.h"

namespace lbtrust::sendlog {

/// SeNDlog front-end (§5.2): Secure Network Datalog programs —
///
///   At S:
///   s1: reachable(S,D) :- neighbor(S,D).
///   s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
///
/// — compile to the core exactly as the paper's ls1/ls2 translation: the
/// context variable S becomes `me`, `p(...)@Z` heads become
/// says(me,Z,[| p(...). |]) exports, and `W says p(...)` body literals
/// become says(W,me,[| p(...). |]) imports.
///
/// Returns core program text (one clause per line) for a unit with a
/// variable context; units with constant contexts are returned per node by
/// CompileSendlogPerNode.
util::Result<std::string> CompileSendlog(std::string_view sendlog_program);

/// Loads a SeNDlog program onto every node of a cluster (variable-context
/// units go everywhere, constant-context units only to the named node).
util::Status LoadSendlogOnCluster(net::Cluster* cluster,
                                  std::string_view sendlog_program);

}  // namespace lbtrust::sendlog

#endif  // LBTRUST_SENDLOG_SENDLOG_H_
