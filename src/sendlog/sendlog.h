#ifndef LBTRUST_SENDLOG_SENDLOG_H_
#define LBTRUST_SENDLOG_SENDLOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/lint.h"
#include "net/cluster.h"
#include "util/status.h"

namespace lbtrust::sendlog {

/// SeNDlog front-end (§5.2): Secure Network Datalog programs —
///
///   At S:
///   s1: reachable(S,D) :- neighbor(S,D).
///   s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
///
/// — compile to the core exactly as the paper's ls1/ls2 translation: the
/// context variable S becomes `me`, `p(...)@Z` heads become
/// says(me,Z,[| p(...). |]) exports, and `W says p(...)` body literals
/// become says(W,me,[| p(...). |]) imports.
///
/// Returns core program text (one clause per line) for a unit with a
/// variable context; units with constant contexts are returned per node by
/// CompileSendlogPerNode.
///
/// The lowered core is statically analyzed (says-context checks on: a
/// SeNDlog unit may only attribute speech to its own context) — lint
/// *errors* fail the compile with the diagnostic as the status message.
/// Pass `lint` to also receive the full report (warnings included).
util::Result<std::string> CompileSendlog(std::string_view sendlog_program,
                                         datalog::LintReport* lint = nullptr);

/// Loads a SeNDlog program onto every node of a cluster (variable-context
/// units go everywhere, constant-context units only to the named node).
/// Each node's lowered clauses are linted before any node's transaction
/// commits; lint errors reject the whole program untouched.
util::Status LoadSendlogOnCluster(net::Cluster* cluster,
                                  std::string_view sendlog_program);

/// Compiles a SeNDlog surface program (variable contexts only) to core
/// clauses and issues the result as a signed credential from `runtime`'s
/// principal — SeNDlog policy fragments become portable, linkable evidence
/// (see src/cred). Returns the credential's content hash.
util::Result<std::string> IssueSendlogCredential(
    trust::TrustRuntime* runtime, std::string_view sendlog_program,
    std::vector<std::string> links = {}, int64_t not_before = 0,
    int64_t not_after = 0);

}  // namespace lbtrust::sendlog

#endif  // LBTRUST_SENDLOG_SENDLOG_H_
