#ifndef LBTRUST_D1LP_D1LP_H_
#define LBTRUST_D1LP_D1LP_H_

#include <string>
#include <string_view>

#include "trust/trust_runtime.h"
#include "util/status.h"

namespace lbtrust::d1lp {

/// D1LP front-end (the paper's third case study, per its abstract): Li,
/// Grosof & Feigenbaum's Delegation Logic restricted to the constructs the
/// paper exercises — direct statements, restricted delegation with integer
/// depth, speaks-for, and k-of-n threshold structures. Statements compile
/// onto the §4.2 delegation library (delegates/delDepth/thresholds).
///
/// Surface syntax (one statement per line, '.' terminated):
///
///   alice says access(carol,f1).
///       principal alice supports the fact (compiles to a says assertion).
///
///   alice delegates access^2 to bob.
///       bob may derive `access` on alice's behalf; the delegation chain
///       may extend at most 2 further hops (depth, §4.2.1). `^*` means
///       unbounded depth.
///
///   bob speaks-for alice.
///       unrestricted speaks-for (§4.2): alice activates everything bob
///       says.
///
///   alice trusts threshold(2, b1, b2, b3) on credit.
///       k-of-n structure (§4.2.2): alice derives credit(...) facts when
///       at least 2 of {b1,b2,b3} say them.
///
/// All statements execute in the context of `runtime`'s principal where
/// the paper's semantics require a local context (delegations and
/// thresholds are the local principal's policy; `X says` statements are
/// incoming assertions from X).
util::Status LoadD1lp(trust::TrustRuntime* runtime, std::string_view program);

/// Compiles without installing: returns the core program text plus the
/// says-assertion list, for inspection/tests.
struct CompiledD1lp {
  std::string core_rules;  ///< rules/constraints to Load()
  /// (speaker, quoted fact text) pairs to assert as says facts.
  std::vector<std::pair<std::string, std::string>> assertions;
};
util::Result<CompiledD1lp> CompileD1lp(const std::string& local_principal,
                                       std::string_view program);

}  // namespace lbtrust::d1lp

#endif  // LBTRUST_D1LP_D1LP_H_
