#include "d1lp/d1lp.h"

#include <set>

#include "datalog/lexer.h"
#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "meta/codegen.h"
#include "trust/delegation.h"
#include "util/strings.h"

namespace lbtrust::d1lp {

using datalog::Token;
using datalog::TokenKind;
using util::ParseError;
using util::Result;
using util::Status;

namespace {

class D1lpParser {
 public:
  D1lpParser(std::string local, std::vector<Token> tokens)
      : local_(std::move(local)), tokens_(std::move(tokens)) {}

  Result<CompiledD1lp> Run() {
    while (!At(TokenKind::kEnd)) {
      LB_RETURN_IF_ERROR(ParseStatement());
    }
    CompiledD1lp compiled;
    if (need_delegation_lib_) {
      compiled.core_rules += trust::DelegationRules();
      compiled.core_rules += trust::DelegationDepthRules();
    }
    compiled.core_rules += rules_;
    compiled.assertions = std::move(assertions_);
    return compiled;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  bool AtIdent(const char* text) const {
    return At(TokenKind::kIdent) && Cur().text == text;
  }
  void Next() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  Status Error(const std::string& msg) const {
    return ParseError(util::StrCat("D1LP: ", msg, " at line ", Cur().line));
  }
  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Error(util::StrCat("expected ", datalog::TokenKindName(kind)));
    }
    Next();
    return util::OkStatus();
  }
  Result<std::string> ExpectIdent() {
    if (!At(TokenKind::kIdent)) return Error("expected a name");
    std::string out = Cur().text;
    Next();
    return out;
  }

  void AddPrin(const std::string& name) {
    if (prins_.insert(name).second) {
      rules_ += util::StrCat("prin(", name, ").\n");
    }
  }

  Status ParseStatement() {
    LB_ASSIGN_OR_RETURN(std::string subject, ExpectIdent());
    if (AtIdent("says")) return ParseSays(subject);
    if (AtIdent("delegates")) return ParseDelegates(subject);
    if (AtIdent("speaks")) return ParseSpeaksFor(subject);
    if (AtIdent("trusts")) return ParseThreshold(subject);
    return Error(util::StrCat("unknown statement after '", subject, "'"));
  }

  // X says fact(...).
  Status ParseSays(const std::string& speaker) {
    Next();  // says
    // Capture the atom by re-printing the parsed form.
    if (!At(TokenKind::kIdent)) return Error("expected a fact after says");
    std::string pred = Cur().text;
    Next();
    LB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::vector<std::string> args;
    if (!At(TokenKind::kRParen)) {
      while (true) {
        if (At(TokenKind::kIdent)) {
          args.push_back(Cur().text);
          Next();
        } else if (At(TokenKind::kInt)) {
          args.push_back(std::to_string(Cur().int_value));
          Next();
        } else if (At(TokenKind::kString)) {
          args.push_back(util::StrCat("\"", util::EscapeQuoted(Cur().text),
                                      "\""));
          Next();
        } else {
          return Error("D1LP facts take constant arguments");
        }
        if (!At(TokenKind::kComma)) break;
        Next();
      }
    }
    LB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    LB_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    AddPrin(speaker);
    assertions_.emplace_back(
        speaker,
        util::StrCat(pred, "(", util::Join(args, ","), ")."));
    return util::OkStatus();
  }

  // U1 delegates pred[^depth] to U2.
  Status ParseDelegates(const std::string& delegator) {
    Next();  // delegates
    if (delegator != local_) {
      return Error(util::StrCat(
          "delegations execute in their issuer's context; load this "
          "statement into '", delegator, "' (local principal is '", local_,
          "')"));
    }
    LB_ASSIGN_OR_RETURN(std::string pred, ExpectIdent());
    bool bounded = false;
    int64_t depth = 0;
    if (At(TokenKind::kCaret)) {
      Next();
      if (At(TokenKind::kStar)) {
        Next();  // unbounded
      } else if (At(TokenKind::kInt)) {
        bounded = true;
        depth = Cur().int_value;
        if (depth < 0) return Error("delegation depth must be >= 0");
        Next();
      } else {
        return Error("expected a depth or '*' after '^'");
      }
    }
    if (!AtIdent("to")) return Error("expected 'to'");
    Next();
    LB_ASSIGN_OR_RETURN(std::string delegatee, ExpectIdent());
    LB_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    need_delegation_lib_ = true;
    AddPrin(delegator);
    AddPrin(delegatee);
    rules_ += util::StrCat("delegates(me,", delegatee, ",", pred, ").\n");
    if (bounded) {
      rules_ += util::StrCat("delDepth(me,", delegatee, ",", pred, ",",
                             depth, ").\n");
    }
    return util::OkStatus();
  }

  // X speaks-for Y.
  Status ParseSpeaksFor(const std::string& speaker) {
    Next();  // speaks
    LB_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
    if (!AtIdent("for")) return Error("expected 'for' after 'speaks-'");
    Next();
    LB_ASSIGN_OR_RETURN(std::string principal, ExpectIdent());
    LB_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    if (principal != local_) {
      return Error(util::StrCat("'speaks-for ", principal,
                                "' must be loaded into '", principal, "'"));
    }
    AddPrin(speaker);
    rules_ += trust::SpeaksForRule(speaker);
    return util::OkStatus();
  }

  // L trusts threshold(k, p1, p2, ...) on pred.
  Status ParseThreshold(const std::string& subject) {
    Next();  // trusts
    if (subject != local_) {
      return Error(util::StrCat("threshold policies must be loaded into '",
                                subject, "'"));
    }
    if (!AtIdent("threshold")) return Error("expected 'threshold'");
    Next();
    LB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!At(TokenKind::kInt)) return Error("expected the threshold k");
    int64_t k = Cur().int_value;
    Next();
    std::vector<std::string> members;
    while (At(TokenKind::kComma)) {
      Next();
      LB_ASSIGN_OR_RETURN(std::string member, ExpectIdent());
      members.push_back(std::move(member));
    }
    LB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (!AtIdent("on")) return Error("expected 'on'");
    Next();
    LB_ASSIGN_OR_RETURN(std::string pred, ExpectIdent());
    LB_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    if (k <= 0 || static_cast<size_t>(k) > members.size()) {
      return Error("threshold k must be within 1..n");
    }
    std::string group = util::StrCat("thrgrp_", pred);
    for (const std::string& member : members) {
      AddPrin(member);
      rules_ += util::StrCat("pringroup(", member, ",", group, ").\n");
    }
    rules_ += trust::ThresholdRules(pred, group, static_cast<int>(k));
    return util::OkStatus();
  }

  std::string local_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string rules_;
  std::vector<std::pair<std::string, std::string>> assertions_;
  std::set<std::string> prins_;
  bool need_delegation_lib_ = false;
};

}  // namespace

Result<CompiledD1lp> CompileD1lp(const std::string& local_principal,
                                 std::string_view program) {
  LB_ASSIGN_OR_RETURN(std::vector<Token> tokens, datalog::Tokenize(program));
  return D1lpParser(local_principal, std::move(tokens)).Run();
}

Status LoadD1lp(trust::TrustRuntime* runtime, std::string_view program) {
  LB_ASSIGN_OR_RETURN(CompiledD1lp compiled,
                      CompileD1lp(runtime->principal(), program));
  LB_RETURN_IF_ERROR(runtime->Load(compiled.core_rules));
  for (const auto& [speaker, fact] : compiled.assertions) {
    LB_ASSIGN_OR_RETURN(datalog::Value code, meta::QuoteRuleText(fact));
    LB_RETURN_IF_ERROR(runtime->workspace()->AddFact(
        "says", {datalog::Value::Sym(speaker),
                 datalog::Value::Sym(runtime->principal()), code}));
  }
  return util::OkStatus();
}

}  // namespace lbtrust::d1lp
