#ifndef LBTRUST_OBS_METRICS_H_
#define LBTRUST_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace lbtrust::obs {

/// Monotone counter. Handles are registered once (mutex-guarded) and then
/// updated lock-free: Add() is a single relaxed atomic add, cheap enough
/// for per-probe hot paths. Set() exists for the mirror-on-dump pattern —
/// subsystems that already keep plain-struct stats (TransportStats,
/// CredentialStore::Stats, CryptoStats) copy them into registry handles at
/// exposition time instead of double-counting on their hot paths.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (relation cardinalities, queue depths).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log-scaled histogram: bucket i counts observations with
/// bit_width(v) == i, i.e. upper bounds 0, 1, 3, 7, ..., 2^k - 1. No
/// per-histogram configuration, no allocation after registration; Observe()
/// is two relaxed adds plus a bit scan. Covers the full latency range the
/// engine cares about (ns prepared probes through multi-second commits)
/// with ~2x resolution per bucket.
class Histogram {
 public:
  /// Buckets 0..kBuckets-2 are finite (le = 2^i - 1); the last is +Inf.
  static constexpr size_t kBuckets = 40;

  void Observe(uint64_t v) {
    size_t b = BucketIndex(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static size_t BucketIndex(uint64_t v) {
    size_t width = 0;
    while (v != 0) {
      ++width;
      v >>= 1;
    }
    return width < kBuckets - 1 ? width : kBuckets - 1;
  }
  /// Inclusive upper bound of finite bucket i (2^i - 1).
  static uint64_t BucketUpper(size_t i) { return (uint64_t{1} << i) - 1; }

  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t count() const {
    uint64_t total = 0;
    for (size_t i = 0; i < kBuckets; ++i) total += bucket(i);
    return total;
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Name + label-keyed registry of the three instrument kinds, with
/// Prometheus-style text exposition. Registration (GetCounter / GetGauge /
/// GetHistogram) takes a mutex and deduplicates on (name, labels), so
/// callers fetch handles once — at compile/setup time or memoized per
/// evaluation — and hot paths touch only the returned handle. Handles live
/// in deques and stay valid for the registry's lifetime.
///
/// `labels` is a pre-formatted Prometheus label body without braces, e.g.
/// `rule="3"` or `relation="edge"` (see LabelEscape for values that may
/// contain quotes or backslashes). Empty means no labels.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view labels = "");
  Gauge* GetGauge(std::string_view name, std::string_view labels = "");
  Histogram* GetHistogram(std::string_view name, std::string_view labels = "");

  /// Renders every registered instrument in Prometheus text format:
  /// `# TYPE` line per family, one sample line per label set, histogram
  /// expansion into cumulative `_bucket{le=...}` / `_sum` / `_count`.
  /// Families and label sets render in lexicographic order, so output is
  /// deterministic and diffable.
  std::string RenderText() const;

 private:
  /// Label body -> index into the matching deque. A family may hold only
  /// one kind in practice; keeping per-kind maps makes an accidental
  /// name collision across kinds safe (two families render) instead of a
  /// wrong-deque dereference.
  struct Family {
    std::map<std::string, size_t> counters;
    std::map<std::string, size_t> gauges;
    std::map<std::string, size_t> histograms;
  };

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// Escapes a label value for use inside `key="..."` (backslash, quote,
/// newline).
std::string LabelEscape(std::string_view value);

}  // namespace lbtrust::obs

#endif  // LBTRUST_OBS_METRICS_H_
