#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace lbtrust::obs {

namespace {

/// Appends one exposition sample line: `name{labels,extra="..."} value`.
/// `extra_label` (used for histogram `le`) may be null.
void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, const char* extra_label,
                  bool extra_is_inf, uint64_t extra_value, long long value) {
  out->append(name);
  if (!labels.empty() || extra_label != nullptr) {
    out->push_back('{');
    out->append(labels);
    if (extra_label != nullptr) {
      if (!labels.empty()) out->push_back(',');
      out->append(extra_label);
      out->append("=\"");
      if (extra_is_inf) {
        out->append("+Inf");
      } else {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, extra_value);
        out->append(buf);
      }
      out->append("\"");
    }
    out->push_back('}');
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %lld\n", value);
  out->append(buf);
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[std::string(name)];
  auto [it, inserted] = fam.counters.emplace(labels, counters_.size());
  if (inserted) counters_.emplace_back();
  return &counters_[it->second];
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[std::string(name)];
  auto [it, inserted] = fam.gauges.emplace(labels, gauges_.size());
  if (inserted) gauges_.emplace_back();
  return &gauges_[it->second];
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[std::string(name)];
  auto [it, inserted] = fam.histograms.emplace(labels, histograms_.size());
  if (inserted) histograms_.emplace_back();
  return &histograms_[it->second];
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    if (!fam.counters.empty()) {
      out.append("# TYPE ").append(name).append(" counter\n");
      for (const auto& [labels, idx] : fam.counters) {
        AppendSample(&out, name, labels, nullptr, false, 0,
                     static_cast<long long>(counters_[idx].value()));
      }
    }
    if (!fam.gauges.empty()) {
      out.append("# TYPE ").append(name).append(" gauge\n");
      for (const auto& [labels, idx] : fam.gauges) {
        AppendSample(&out, name, labels, nullptr, false, 0,
                     static_cast<long long>(gauges_[idx].value()));
      }
    }
    if (!fam.histograms.empty()) {
      out.append("# TYPE ").append(name).append(" histogram\n");
      for (const auto& [labels, idx] : fam.histograms) {
        const Histogram& h = histograms_[idx];
        uint64_t cumulative = 0;
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          cumulative += h.bucket(b);
          bool inf = b == Histogram::kBuckets - 1;
          AppendSample(&out, name + "_bucket", labels, "le", inf,
                       Histogram::BucketUpper(b),
                       static_cast<long long>(cumulative));
        }
        AppendSample(&out, name + "_sum", labels, nullptr, false, 0,
                     static_cast<long long>(h.sum()));
        AppendSample(&out, name + "_count", labels, nullptr, false, 0,
                     static_cast<long long>(cumulative));
      }
    }
  }
  return out;
}

std::string LabelEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace lbtrust::obs
