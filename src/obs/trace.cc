#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace lbtrust::obs {

namespace {
uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Tracer::Tracer() : id_(NextTracerId()), epoch_us_(NowMicros()) {}

uint64_t Tracer::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Buffer* Tracer::ThreadBuffer() {
  // One cached (tracer id, buffer) pair per thread: the common case is a
  // single live tracer, so repeat lookups are an integer compare. A thread
  // alternating between tracers re-registers, which only costs the mutex.
  // Keying on the never-reused id (not `this`) means a tracer allocated
  // at a destroyed tracer's address can never hit a stale entry.
  thread_local uint64_t cached_owner = 0;
  thread_local Buffer* cached_buffer = nullptr;
  if (cached_owner == id_) return cached_buffer;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buf = buffers_.back().get();
  buf->tid = static_cast<uint32_t>(buffers_.size());
  cached_owner = id_;
  cached_buffer = buf;
  return buf;
}

void Tracer::Record(const char* name, uint64_t start_us, uint64_t dur_us,
                    std::string args_json) {
  Buffer* buf = ThreadBuffer();
  Event event;
  event.name = name;
  event.ts_us = start_us;
  event.dur_us = dur_us;
  event.args = std::move(args_json);
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->events.push_back(std::move(event));
}

void Tracer::RecordFlow(const char* name, char ph, std::string flow_id,
                        uint64_t ts_us) {
  Buffer* buf = ThreadBuffer();
  Event event;
  event.name = name;
  event.ts_us = ts_us;
  event.ph = ph;
  event.flow_id = std::move(flow_id);
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->events.push_back(std::move(event));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->events.size();
  }
  return total;
}

/// Renders one event; `ts` is already rebased to the tracer epoch.
void Tracer::AppendEventJson(std::string* out, const Buffer& buffer,
                             const Event& event, uint64_t ts) {
  char buf[160];
  if (event.ph == 'X') {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",\"name\":\"",
                  buffer.tid, ts, event.dur_us);
    out->append(buf);
    out->append(LabelEscape(event.name));
    out->push_back('"');
    if (!event.args.empty()) {
      out->append(",\"args\":{");
      out->append(event.args);
      out->push_back('}');
    }
    out->push_back('}');
    return;
  }
  // Flow event: "s" starts a flow inside the enclosing slice; "f" with
  // "bp":"e" binds the finish to the enclosing slice on the receiver.
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"%c\",%s\"cat\":\"flow\",\"pid\":1,\"tid\":%" PRIu32
                ",\"ts\":%" PRIu64 ",\"name\":\"",
                event.ph, event.ph == 'f' ? "\"bp\":\"e\"," : "", buffer.tid,
                ts);
  out->append(buf);
  out->append(LabelEscape(event.name));
  out->append("\",\"id\":\"");
  out->append(LabelEscape(event.flow_id));
  out->append("\"}");
}

std::string Tracer::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    for (const Event& event : buffer->events) {
      if (!first) out.push_back(',');
      first = false;
      uint64_t ts = event.ts_us >= epoch_us_ ? event.ts_us - epoch_us_ : 0;
      AppendEventJson(&out, *buffer, event, ts);
    }
  }
  out.append("]}");
  return out;
}

std::string Tracer::DrainJson() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    for (const Event& event : buffer->events) {
      if (!first) out.push_back(',');
      first = false;
      uint64_t ts = event.ts_us >= epoch_us_ ? event.ts_us - epoch_us_ : 0;
      AppendEventJson(&out, *buffer, event, ts);
    }
    buffer->events.clear();
  }
  out.append("]}");
  return out;
}

}  // namespace lbtrust::obs
