#ifndef LBTRUST_OBS_TRACE_H_
#define LBTRUST_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lbtrust::obs {

/// Span tracer: named timed events recorded into per-thread buffers
/// (registration takes the tracer mutex once per thread; every Record()
/// after that appends to the calling thread's own vector with no
/// synchronization), exported as Chrome trace-event JSON — load the file
/// in chrome://tracing or Perfetto. Tracing is opt-in: instrumented code
/// holds a `Tracer*` that is null by default, and ScopedSpan is a no-op
/// on a null tracer.
///
/// Spans recorded on one thread nest properly by construction (RAII:
/// inner spans destruct first), which tools/ci.sh asserts on exported
/// traces.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records one complete ("ph":"X") event on the calling thread's buffer.
  /// `args_json` is either empty or a JSON object body, e.g.
  /// `"tuples":12,"rounds":3`.
  void Record(const char* name, uint64_t start_us, uint64_t dur_us,
              std::string args_json = "");

  /// Records a flow event linking spans across threads or (after the
  /// dist_smoke merge rewrites pids) across processes. `ph` is 's' for the
  /// flow start — emit it inside the sending span — or 'f' for the finish,
  /// emitted inside the receiving span ("bp":"e" binds it to the enclosing
  /// slice). `flow_id` is the correlation key; both ends must use the same
  /// string (we use "node:wave:seq" for shipped deltas).
  void RecordFlow(const char* name, char ph, std::string flow_id,
                  uint64_t ts_us);

  /// Monotonic microseconds (steady clock).
  static uint64_t NowMicros();

  /// Renders `{"traceEvents":[...]}` with ts rebased to the tracer's
  /// construction time. Safe to call while other threads keep recording
  /// (buffers are snapshotted under the mutex), though callers normally
  /// export after the traced work quiesced.
  std::string ExportJson() const;

  /// ExportJson + clears every buffer: each event is returned exactly once
  /// across repeated drains, so a live `/trace` endpoint can be scraped
  /// periodically without re-serving history. Thread-safe against
  /// concurrent Record().
  std::string DrainJson();

  /// Total events recorded so far (tests).
  size_t event_count() const;

 private:
  struct Event {
    std::string name;
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;
    char ph = 'X';
    std::string flow_id;  ///< only for ph 's'/'f'
    std::string args;
  };
  struct Buffer {
    uint32_t tid = 0;
    std::vector<Event> events;
    std::mutex mu;  ///< export-vs-record only; uncontended on the hot path
  };

  Buffer* ThreadBuffer();
  static void AppendEventJson(std::string* out, const Buffer& buffer,
                              const Event& event, uint64_t ts);

  /// Process-unique, never reused: the per-thread buffer cache keys on
  /// this rather than `this`, so a new tracer allocated at a destroyed
  /// tracer's address cannot hit a stale cache entry (use-after-free).
  const uint64_t id_;
  uint64_t epoch_us_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII span: measures construction-to-destruction and records it on the
/// tracer (no-op when `tracer` is null). Args can be attached before the
/// scope closes.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name)
      : tracer_(tracer), name_(name),
        start_us_(tracer != nullptr ? Tracer::NowMicros() : 0) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, start_us_, Tracer::NowMicros() - start_us_,
                      std::move(args_));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool enabled() const { return tracer_ != nullptr; }
  /// Sets the span's JSON args body (e.g. `"tuples":12`).
  void set_args(std::string args_json) { args_ = std::move(args_json); }

 private:
  Tracer* tracer_;
  const char* name_;
  uint64_t start_us_;
  std::string args_;
};

}  // namespace lbtrust::obs

#endif  // LBTRUST_OBS_TRACE_H_
