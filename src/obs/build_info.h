#ifndef LBTRUST_OBS_BUILD_INFO_H_
#define LBTRUST_OBS_BUILD_INFO_H_

namespace lbtrust::obs {

/// Build identity surfaced through `lbtrust_build_info` and /statusz. The
/// version is the PR-stacked repo's coarse line — bump when the wire or
/// dump formats change shape, not per commit.
inline constexpr const char* kBuildVersion = "0.9.0";

/// Compiler tag, e.g. "14.2.0 20240910" (from the predefined macro so the
/// exporter reports what actually built the binary).
inline const char* BuildCompiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__VERSION__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace lbtrust::obs

#endif  // LBTRUST_OBS_BUILD_INFO_H_
