#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "util/log.h"
#include "util/strings.h"

namespace lbtrust::obs {

using util::LogLevel;
using util::Status;

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    default: return "Error";
  }
}

}  // namespace

HttpExporter::HttpExporter(net::EventLoop* loop)
    : HttpExporter(loop, Options()) {}

HttpExporter::HttpExporter(net::EventLoop* loop, Options options)
    : loop_(loop), options_(options) {
  if (loop_ == nullptr) {
    owned_loop_ = std::make_unique<net::EventLoop>();
    loop_ = owned_loop_.get();
  }
}

HttpExporter::~HttpExporter() { Shutdown(); }

void HttpExporter::Shutdown() {
  while (!conns_.empty()) CloseConn(conns_.begin()->first);
  if (listen_fd_ >= 0) {
    loop_->Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpExporter::Listen(const std::string& host, uint16_t port) {
  if (listen_fd_ >= 0) return util::FailedPrecondition("already listening");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::InvalidArgument(util::StrCat("bad listen host '", host, "'"));
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return util::Internal(util::StrCat("socket: ", std::strerror(errno)));
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return util::Internal(util::StrCat("bind: ", std::strerror(errno)));
  }
  if (listen(fd, 16) != 0) {
    close(fd);
    return util::Internal(util::StrCat("listen: ", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  Status status = loop_->Add(fd, EPOLLIN, [this](uint32_t) {
    OnListenerReadable();
  });
  if (!status.ok()) {
    close(fd);
    listen_fd_ = -1;
    return status;
  }
  return util::OkStatus();
}

Status HttpExporter::Poll(int timeout_ms) {
  Housekeep();
  util::Result<int> polled = loop_->PollOnce(timeout_ms);
  if (!polled.ok()) return polled.status();
  return util::OkStatus();
}

void HttpExporter::Housekeep() {
  const int64_t now = net::EventLoop::NowMs();
  std::vector<int> stalled;
  for (const auto& [fd, conn] : conns_) {
    if (!conn.responding &&
        now - conn.opened_ms >= options_.read_deadline_ms) {
      stalled.push_back(fd);
    }
  }
  for (int fd : stalled) {
    ++stats_.deadline_closes;
    LBTRUST_LOG(LogLevel::kDebug, "http: closing stalled connection fd=%d",
                fd);
    CloseConn(fd);
  }
}

void HttpExporter::OnListenerReadable() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept error: try next poll
    Conn conn;
    conn.fd = fd;
    conn.opened_ms = net::EventLoop::NowMs();
    Status status = loop_->Add(fd, EPOLLIN, [this, fd](uint32_t events) {
      if ((events & EPOLLOUT) != 0) {
        OnConnWritable(fd);
        return;
      }
      OnConnReadable(fd);
    });
    if (!status.ok()) {
      close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
  }
}

void HttpExporter::OnConnReadable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = &it->second;
  char buf[4096];
  while (true) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      if (conn->responding) continue;  // drain and ignore pipelined extras
      // Reject before buffering past the cap: a header-flooding client
      // costs at most max_request_bytes + one read() chunk of memory.
      if (conn->in.size() + static_cast<size_t>(n) >
          options_.max_request_bytes) {
        ++stats_.oversize_rejects;
        StageResponse(fd, conn, Response{431, "text/plain; charset=utf-8",
                                         "request headers too large\n"});
        return;
      }
      conn->in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(fd);  // EOF or hard error before a response was sent
    return;
  }
  MaybeRespond(fd, conn);
}

void HttpExporter::MaybeRespond(int fd, Conn* conn) {
  if (conn->responding) return;
  // Wait for the end of the header block; tolerate bare-LF clients.
  size_t end = conn->in.find("\r\n\r\n");
  if (end == std::string::npos) end = conn->in.find("\n\n");
  if (end == std::string::npos) return;
  ++stats_.requests;
  std::string_view head(conn->in.data(), end);
  size_t eol = head.find('\n');
  std::string_view request_line =
      eol == std::string_view::npos ? head : head.substr(0, eol);
  while (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  // METHOD SP TARGET SP HTTP/1.x — anything else is a 400.
  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      request_line.substr(sp2 + 1).rfind("HTTP/1.", 0) != 0) {
    StageResponse(fd, conn, Response{400, "text/plain; charset=utf-8",
                                     "malformed request line\n"});
    return;
  }
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    StageResponse(fd, conn, Response{405, "text/plain; charset=utf-8",
                                     "only GET is supported\n"});
    return;
  }
  std::string path(target.substr(0, target.find('?')));
  auto handler = handlers_.find(path);
  if (handler == handlers_.end()) {
    StageResponse(fd, conn, Response{404, "text/plain; charset=utf-8",
                                     "unknown path\n"});
    return;
  }
  StageResponse(fd, conn, handler->second());
}

void HttpExporter::StageResponse(int fd, Conn* conn,
                                 const Response& response) {
  conn->responding = true;
  if (response.status == 200) {
    ++stats_.responses_ok;
  } else {
    ++stats_.responses_error;
  }
  std::string out = util::StrCat("HTTP/1.1 ", response.status, " ",
                                 ReasonPhrase(response.status), "\r\n");
  out += util::StrCat("Content-Type: ", response.content_type, "\r\n");
  out += util::StrCat("Content-Length: ", response.body.size(), "\r\n");
  out += "Connection: close\r\n\r\n";
  out += response.body;
  conn->out = std::move(out);
  conn->out_off = 0;
  loop_->Modify(fd, EPOLLIN | EPOLLOUT);
  OnConnWritable(fd);  // common case: the whole response fits the buffer
}

void HttpExporter::OnConnWritable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = &it->second;
  while (conn->out_off < conn->out.size()) {
    ssize_t n = write(fd, conn->out.data() + conn->out_off,
                      conn->out.size() - conn->out_off);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(fd);
    return;
  }
  CloseConn(fd);  // response fully flushed: Connection: close
}

void HttpExporter::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  loop_->Remove(fd);
  // Drain unread request bytes (e.g. the tail of an oversized request)
  // so close() sends FIN rather than RST — an RST could destroy the error
  // response before the client reads it.
  char buf[4096];
  while (read(fd, buf, sizeof(buf)) > 0) {
  }
  close(fd);
  conns_.erase(it);
}

void HttpExporter::SyncMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetCounter("lbtrust_http_requests_total")->Set(stats_.requests);
  registry->GetCounter("lbtrust_http_responses_total", "code=\"200\"")
      ->Set(stats_.responses_ok);
  registry->GetCounter("lbtrust_http_responses_total", "code=\"error\"")
      ->Set(stats_.responses_error);
  registry->GetCounter("lbtrust_http_deadline_closes_total")
      ->Set(stats_.deadline_closes);
  registry->GetCounter("lbtrust_http_oversize_rejects_total")
      ->Set(stats_.oversize_rejects);
}

}  // namespace lbtrust::obs
