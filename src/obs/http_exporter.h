#ifndef LBTRUST_OBS_HTTP_EXPORTER_H_
#define LBTRUST_OBS_HTTP_EXPORTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/event_loop.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace lbtrust::obs {

/// Minimal non-blocking HTTP/1.1 server for live introspection: GET-only,
/// one response per connection (`Connection: close`), handlers render the
/// whole body up front. Built on net::EventLoop with the same hardening
/// discipline as the transport: the request buffer is capped (oversized
/// headers are rejected with 431 before further buffering) and a client
/// stalled mid-request past the read deadline is closed (slow-loris).
///
/// Threading matches the rest of src/net: everything — accepts, parsing,
/// handler calls, writes — runs on the thread driving the loop. In the
/// distributed runtime that is the fixpoint thread itself, so a handler
/// like `/metrics` reads engine state between waves with no locks; slow
/// scrapers only delay their own response (the kernel buffers the request
/// until the next poll).
///
/// Construction picks the loop mode:
///  - external loop (`loop != nullptr`): fds register on the caller's loop
///    and the caller's own poll drives this server; call Housekeep()
///    periodically for deadline enforcement. Used by DistributedCluster,
///    which passes its transport's loop.
///  - owned loop (`loop == nullptr`): the exporter makes its own loop and
///    the owner drives it with Poll(). Used by standalone tools and tests.
class HttpExporter {
 public:
  struct Options {
    /// Cap on buffered request bytes (request line + headers). A request
    /// exceeding it gets `431 Request Header Fields Too Large` and the
    /// connection is closed without buffering the rest.
    size_t max_request_bytes = 8 << 10;
    /// A connection with an incomplete request older than this is closed
    /// by the next Housekeep()/Poll().
    int read_deadline_ms = 5000;
  };

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Renders the response for one GET. Runs on the loop thread; keep it
  /// bounded — the server is unavailable while a handler runs.
  using Handler = std::function<Response()>;

  explicit HttpExporter(net::EventLoop* loop);
  HttpExporter(net::EventLoop* loop, Options options);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Registers `handler` for exact-match `path` (query strings are
  /// stripped before matching). Unknown paths get 404.
  void Handle(std::string path, Handler handler);

  /// Binds and listens (port 0 picks an ephemeral port; see listen_port()).
  util::Status Listen(const std::string& host, uint16_t port);
  uint16_t listen_port() const { return listen_port_; }

  /// Owned-loop mode: housekeeping + one loop poll of up to `timeout_ms`.
  /// (External-loop mode: the owner's poll already dispatches this
  /// server's fds — call Housekeep() instead.)
  util::Status Poll(int timeout_ms);

  /// Closes connections stalled past the read deadline. Cheap; call once
  /// per owner loop iteration.
  void Housekeep();

  struct Stats {
    uint64_t requests = 0;        ///< complete requests parsed
    uint64_t responses_ok = 0;    ///< 200s served
    uint64_t responses_error = 0; ///< 4xx/5xx served
    uint64_t deadline_closes = 0; ///< slow-loris closes
    uint64_t oversize_rejects = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Mirrors stats into `registry` as `lbtrust_http_*` counters (no-op on
  /// null), same mirror-on-dump pattern as SyncTransportMetrics.
  void SyncMetrics(MetricsRegistry* registry) const;

  /// Open request/response connections (tests).
  size_t open_connections() const { return conns_.size(); }

  /// Closes every connection and the listener (idempotent).
  void Shutdown();

 private:
  struct Conn {
    int fd = -1;
    std::string in;          ///< buffered request bytes
    std::string out;         ///< encoded response; close when drained
    size_t out_off = 0;      ///< bytes of `out` already written
    bool responding = false; ///< request parsed, response staged
    int64_t opened_ms = 0;   ///< accept time (read-deadline base)
  };

  void OnListenerReadable();
  void OnConnReadable(int fd);
  void OnConnWritable(int fd);
  /// Parses the buffered request once complete; stages the response.
  void MaybeRespond(int fd, Conn* conn);
  void StageResponse(int fd, Conn* conn, const Response& response);
  void CloseConn(int fd);

  net::EventLoop* loop_;  ///< the loop fds register on (owned or external)
  std::unique_ptr<net::EventLoop> owned_loop_;
  Options options_;
  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  std::map<int, Conn> conns_;
  Stats stats_;
};

}  // namespace lbtrust::obs

#endif  // LBTRUST_OBS_HTTP_EXPORTER_H_
