#ifndef LBTRUST_BINDER_BINDER_H_
#define LBTRUST_BINDER_BINDER_H_

#include <string>
#include <string_view>

#include "datalog/workspace.h"
#include "trust/trust_runtime.h"
#include "util/status.h"

namespace lbtrust::binder {

/// Binder front-end (§5.1): Binder's surface syntax —
///
///   access(P,O,read) :- good(P).
///   access(P,O,read) :- bob says access(P,O,read).
///
/// — compiles onto the LBTrust core: `X says a(...)` body literals become
/// `says(X,me,[| a(...). |])` pattern matches, rules keep their shape
/// otherwise. Certificates are the signed export tuples of the configured
/// authentication scheme (Binder specifies RSA; any scheme works — that is
/// the paper's reconfigurability point).
util::Result<std::string> CompileBinder(std::string_view binder_program);

/// Loads a Binder program into a principal's runtime.
util::Status LoadBinder(trust::TrustRuntime* runtime,
                        std::string_view binder_program);

/// Installs the §5.1 top-down-to-bottom-up rewrite:
///
///   pull0 (verbatim): any active rule importing `says(X,me,R)` dispatches
///          says(me,X,[| request(R). |]) to X;
///   a per-predicate responder answers a request pattern with the matching
///          local facts:
///          says(me,X,[| p(V1..Vn). |]) <-
///              says(X,me,[| request([| p(V1..Vn) |]). |]), p(V1..Vn).
///
/// Call InstallPullResponder at the data owner for each predicate it is
/// willing to answer queries about.
util::Status InstallPullRequester(datalog::Workspace* workspace);
util::Status InstallPullResponder(datalog::Workspace* workspace,
                                  const std::string& predicate, size_t arity);

}  // namespace lbtrust::binder

#endif  // LBTRUST_BINDER_BINDER_H_
