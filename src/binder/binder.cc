#include "binder/binder.h"

#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::binder {

using datalog::Rule;
using datalog::SurfaceUnit;
using util::Result;
using util::Status;

Result<std::string> CompileBinder(std::string_view binder_program) {
  LB_ASSIGN_OR_RETURN(std::vector<SurfaceUnit> units,
                      datalog::ParseSurfaceProgram(binder_program));
  std::string out;
  for (const SurfaceUnit& unit : units) {
    if (!unit.context.empty()) {
      return util::InvalidArgument(
          "Binder programs have no 'At' headers; each principal loads its "
          "own program (use the SeNDlog front-end for contexts)");
    }
    for (const Rule& rule : unit.rules) {
      out += datalog::PrintRule(rule);
      out += "\n";
    }
  }
  return out;
}

Status LoadBinder(trust::TrustRuntime* runtime,
                  std::string_view binder_program) {
  LB_ASSIGN_OR_RETURN(std::string core, CompileBinder(binder_program));
  return runtime->Load(core);
}

Status InstallPullRequester(datalog::Workspace* workspace) {
  return workspace->Load(
      "pull0: says(me,X,[| request(R). |]) <- "
      "active([| A <- says(X,me,R), A*. |]), X != me.");
}

Status InstallPullResponder(datalog::Workspace* workspace,
                            const std::string& predicate, size_t arity) {
  std::vector<std::string> vars;
  for (size_t i = 0; i < arity; ++i) {
    vars.push_back(util::StrCat("V", i + 1));
  }
  std::string args = util::Join(vars, ",");
  std::string atom = util::StrCat(predicate, "(", args, ")");
  return workspace->Load(util::StrCat(
      "says(me,X,[| ", atom, ". |]) <- "
      "says(X,me,[| request([| ", atom, ". |]). |]), ", atom, ", X != me."));
}

}  // namespace lbtrust::binder
