#include "meta/reflect.h"

#include <memory>

#include "datalog/pretty.h"

namespace lbtrust::meta {

using datalog::Atom;
using datalog::CloneAtom;
using datalog::CloneRule;
using datalog::CloneTerm;
using datalog::Literal;
using datalog::Rule;
using datalog::Term;
using datalog::Tuple;
using datalog::Value;
using datalog::ValueKind;
using datalog::Workspace;
using util::Status;

Value RuleEntity(const Rule& rule) {
  return Value::CodeRule(std::make_shared<const Rule>(CloneRule(rule)));
}

Value AtomEntity(const Atom& atom) {
  return Value::CodeAtom(std::make_shared<const Atom>(CloneAtom(atom)));
}

Value TermEntity(const Term& term) {
  if (term.is_constant()) return term.value;
  return Value::CodeTerm(std::make_shared<const Term>(CloneTerm(term)));
}

Value PredicateEntity(const std::string& name) { return Value::Sym(name); }

namespace {

enum class Mode { kAssert, kRetract };

Status Apply(Workspace* ws, Mode mode, const std::string& pred, Tuple t) {
  if (mode == Mode::kAssert) return ws->AddFact(pred, std::move(t));
  Status st = ws->RemoveFact(pred, t);
  // Attribute facts may be shared with other (structurally equal) rules;
  // missing facts on retract are not an error.
  if (st.code() == util::StatusCode::kNotFound) return util::OkStatus();
  return st;
}

Status ReflectAtom(Workspace* ws, Mode mode, const Value& rule_entity,
                   const std::string& link, const Literal& lit) {
  const Atom& atom = lit.atom;
  Value atom_entity = AtomEntity(atom);
  LB_RETURN_IF_ERROR(Apply(ws, mode, link, {rule_entity, atom_entity}));
  if (lit.negated) {
    LB_RETURN_IF_ERROR(Apply(ws, mode, "negated", {atom_entity}));
  }
  if (mode == Mode::kRetract) return util::OkStatus();
  // Attribute facts (assert only; see UnreflectRule).
  if (!atom.meta_atom) {
    LB_RETURN_IF_ERROR(Apply(ws, mode, "functor",
                             {atom_entity, PredicateEntity(atom.predicate)}));
    int64_t index = 1;
    auto reflect_term = [&](const Term& t) -> Status {
      Value term_entity = TermEntity(t);
      LB_RETURN_IF_ERROR(Apply(ws, mode, "arg",
                               {atom_entity, Value::Int(index), term_entity}));
      ++index;
      if (t.is_variable()) {
        LB_RETURN_IF_ERROR(
            Apply(ws, mode, "vname", {term_entity, Value::Str(t.var)}));
      } else if (t.is_constant()) {
        LB_RETURN_IF_ERROR(Apply(
            ws, mode, "value",
            {term_entity, Value::Str(t.value.ToString())}));
      }
      return util::OkStatus();
    };
    if (atom.partition) LB_RETURN_IF_ERROR(reflect_term(*atom.partition));
    for (const Term& t : atom.args) LB_RETURN_IF_ERROR(reflect_term(t));
  }
  return util::OkStatus();
}

Status ReflectImpl(Workspace* ws, Mode mode, const Rule& rule) {
  Value rule_entity = RuleEntity(rule);
  for (const Atom& head : rule.heads) {
    LB_RETURN_IF_ERROR(
        ReflectAtom(ws, mode, rule_entity, "head", Literal{head, false}));
  }
  for (const Literal& lit : rule.body) {
    LB_RETURN_IF_ERROR(ReflectAtom(ws, mode, rule_entity, "body", lit));
  }
  return util::OkStatus();
}

}  // namespace

Status ReflectRule(Workspace* ws, const Rule& rule) {
  return ReflectImpl(ws, Mode::kAssert, rule);
}

Status UnreflectRule(Workspace* ws, const Rule& rule) {
  // Only the rule-level links are retracted; atom/term attribute facts may
  // be shared with structurally equal atoms of other rules and stay.
  return ReflectImpl(ws, Mode::kRetract, rule);
}

}  // namespace lbtrust::meta
