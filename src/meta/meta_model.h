#ifndef LBTRUST_META_META_MODEL_H_
#define LBTRUST_META_META_MODEL_H_

#include "datalog/workspace.h"
#include "util/status.h"

namespace lbtrust::meta {

/// Enables the paper's meta-model (Figure 1) on a workspace:
///
///  * declares the enumerable meta relations — `head(R,A)`, `body(R,A)`,
///    `functor(A,P)`, `arg(A,I,T)`, `negated(A)`, `vname(X,N)`,
///    `value(C,V)` — alongside the workspace-maintained `active(R)`,
///    `owner(R,U)` and `pname(P,N)`;
///  * installs a reflection hook so every rule installed from now on is
///    translated into meta-model facts (see reflect.h for the entity
///    scheme);
///  * the entity *types* of Figure 1 (`rule`, `atom`, `term`, `variable`,
///    `constant`, `predicate`) are kind-check builtins registered by the
///    engine (see datalog/builtins.h).
///
/// Call before loading programs; rules already installed are reflected
/// retroactively.
util::Status EnableMetaModel(datalog::Workspace* workspace);

}  // namespace lbtrust::meta

#endif  // LBTRUST_META_META_MODEL_H_
