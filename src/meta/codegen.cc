#include "meta/codegen.h"

#include <memory>

#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::meta {

using datalog::Atom;
using datalog::CodeValue;
using datalog::Constraint;
using datalog::Literal;
using datalog::ParsedClause;
using datalog::Rule;
using datalog::Term;
using datalog::Value;
using datalog::ValueKind;
using datalog::Workspace;
using util::Result;
using util::Status;

Status ActivateRuleText(Workspace* ws, std::string_view rule_text) {
  LB_ASSIGN_OR_RETURN(Value code, QuoteRuleText(rule_text));
  return ws->AddFact("active", {code});
}

Result<Value> QuoteRuleText(std::string_view rule_text) {
  LB_ASSIGN_OR_RETURN(Rule rule, datalog::ParseRuleText(rule_text));
  return Value::CodeRule(std::make_shared<const Rule>(std::move(rule)));
}

namespace {

// True if `quoted` is the §3.3 shape: head is a bare meta-atom, body is a
// meta-functor atom with a trailing star followed by a starred meta-atom.
bool IsSection33Pattern(const Rule& quoted, std::string* functor_var) {
  if (quoted.heads.size() != 1 || !quoted.heads[0].meta_atom) return false;
  if (quoted.body.size() != 2) return false;
  const Atom& first = quoted.body[0].atom;
  if (!first.meta_functor || first.args.size() != 1 ||
      first.args[0].kind != Term::Kind::kStarVar) {
    return false;
  }
  if (!quoted.body[1].atom.star) return false;
  *functor_var = first.predicate;
  return true;
}

}  // namespace

Result<std::string> TranslatePatternConstraint(
    std::string_view constraint_text) {
  LB_ASSIGN_OR_RETURN(std::vector<ParsedClause> clauses,
                      datalog::ParseProgram(constraint_text));
  if (clauses.size() != 1 ||
      clauses[0].kind != ParsedClause::Kind::kConstraint ||
      clauses[0].constraints.size() != 1) {
    return util::InvalidArgument("expected a single constraint");
  }
  const Constraint& c = clauses[0].constraints[0];

  std::vector<std::string> lhs_parts;
  int fresh = 1;
  bool translated_any = false;
  for (const Literal& lit : c.lhs) {
    bool handled = false;
    if (!lit.negated && !lit.atom.meta_atom && !lit.atom.meta_functor) {
      // Look for a quoted §3.3 pattern among the arguments.
      for (size_t i = 0; i < lit.atom.args.size(); ++i) {
        const Term& t = lit.atom.args[i];
        if (!t.is_constant() || t.value.kind() != ValueKind::kCode) continue;
        const CodeValue& code = t.value.AsCode();
        if (code.what != CodeValue::What::kRule) continue;
        std::string functor_var;
        if (!IsSection33Pattern(*code.rule, &functor_var)) continue;
        // Replace the pattern argument with a fresh rule variable R<n> and
        // emit the meta-model join of the paper's worked example.
        std::string rule_var = util::StrCat("R", fresh);
        std::string atom_var = util::StrCat("A", fresh);
        ++fresh;
        Atom rewritten = datalog::CloneAtom(lit.atom);
        rewritten.args[i] = Term::Variable(rule_var);
        lhs_parts.push_back(datalog::PrintAtom(rewritten));
        lhs_parts.push_back(util::StrCat("rule(", rule_var, ")"));
        lhs_parts.push_back(
            util::StrCat("body(", rule_var, ",", atom_var, ")"));
        lhs_parts.push_back(util::StrCat("atom(", atom_var, ")"));
        lhs_parts.push_back(
            util::StrCat("functor(", atom_var, ",", functor_var, ")"));
        handled = true;
        translated_any = true;
        break;
      }
    }
    if (!handled) lhs_parts.push_back(datalog::PrintLiteral(lit));
  }
  if (!translated_any) {
    return util::InvalidArgument(
        "no §3.3-shaped quoted pattern found in constraint LHS");
  }

  std::string rhs;
  for (size_t alt = 0; alt < c.rhs_dnf.size(); ++alt) {
    if (alt > 0) rhs += "; ";
    for (size_t i = 0; i < c.rhs_dnf[alt].size(); ++i) {
      if (i > 0) rhs += ", ";
      rhs += datalog::PrintLiteral(c.rhs_dnf[alt][i]);
    }
  }
  return util::StrCat(util::Join(lhs_parts, ", "), " -> ", rhs, ".");
}

}  // namespace lbtrust::meta
