#ifndef LBTRUST_META_CODEGEN_H_
#define LBTRUST_META_CODEGEN_H_

#include <string>
#include <string_view>

#include "datalog/ast.h"
#include "datalog/workspace.h"
#include "util/status.h"

namespace lbtrust::meta {

/// Programmatic counterpart of deriving into `active`: parses `rule_text`
/// and asserts `active(R)` so the next Fixpoint() installs it. This is how
/// host applications inject generated rules without going through a
/// meta-rule.
util::Status ActivateRuleText(datalog::Workspace* workspace,
                              std::string_view rule_text);

/// Builds the quoted-code value for a rule ("[| ... |]" term), convenient
/// for asserting says/export facts from C++.
util::Result<datalog::Value> QuoteRuleText(std::string_view rule_text);

/// Translates a quoted-pattern constraint LHS into the meta-model join the
/// paper shows in §3.3 (owner + rule/body/atom/functor), demonstrating that
/// the two formulations are interchangeable. Only the shapes used in the
/// paper are supported: a pattern of the form `[| A <- P(T*), A*. |]`
/// appearing as an argument of an LHS literal. Returns the rewritten
/// constraint text.
util::Result<std::string> TranslatePatternConstraint(
    std::string_view constraint_text);

}  // namespace lbtrust::meta

#endif  // LBTRUST_META_CODEGEN_H_
