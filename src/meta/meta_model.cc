#include "meta/meta_model.h"

#include "meta/reflect.h"

namespace lbtrust::meta {

using datalog::Rule;
using datalog::Workspace;
using util::Status;

Status EnableMetaModel(Workspace* ws) {
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("head", 2));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("body", 2));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("functor", 2));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("arg", 3));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("negated", 1));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("vname", 2));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("value", 2));

  // Reflect rules installed before the meta-model was enabled.
  for (const Rule* rule : ws->rules()) {
    LB_RETURN_IF_ERROR(ReflectRule(ws, *rule));
  }

  ws->SetInstallHook([ws](const Rule& rule, int /*rule_id*/) {
    (void)ReflectRule(ws, rule);
  });
  ws->SetRemoveHook([ws](const Rule& rule) {
    (void)UnreflectRule(ws, rule);
  });
  return util::OkStatus();
}

}  // namespace lbtrust::meta
