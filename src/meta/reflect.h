#ifndef LBTRUST_META_REFLECT_H_
#define LBTRUST_META_REFLECT_H_

#include "datalog/ast.h"
#include "datalog/value.h"
#include "datalog/workspace.h"
#include "util/status.h"

namespace lbtrust::meta {

/// Entity scheme for reflection (§3.3, Figure 1):
///
///  * a rule's entity is its kCode rule value (canonical-form identity, so
///    a rule that travelled through the network maps to the same entity);
///  * an atom's entity is its kCode atom value;
///  * a term's entity is the constant's value itself for constants (so
///    meta joins meet ordinary joins) and a kCode term value for
///    variables/expressions;
///  * a predicate's entity is its name symbol.
///
/// Structurally identical fragments therefore share entities — a deliberate
/// deviation from LogicBlox's occurrence-unique ids, recorded in DESIGN.md.
datalog::Value RuleEntity(const datalog::Rule& rule);
datalog::Value AtomEntity(const datalog::Atom& atom);
datalog::Value TermEntity(const datalog::Term& term);
datalog::Value PredicateEntity(const std::string& name);

/// Asserts the meta-model facts describing `rule` into the workspace EDB.
util::Status ReflectRule(datalog::Workspace* workspace,
                         const datalog::Rule& rule);

/// Retracts them (used when a rule is removed).
util::Status UnreflectRule(datalog::Workspace* workspace,
                           const datalog::Rule& rule);

}  // namespace lbtrust::meta

#endif  // LBTRUST_META_REFLECT_H_
