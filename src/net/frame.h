#ifndef LBTRUST_NET_FRAME_H_
#define LBTRUST_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace lbtrust::net {

/// One transport frame — the socket-layer envelope around the existing
/// payload formats (SerializeTupleBlock "B:" blocks, LBCB2 credential
/// bundles) plus the control traffic the distributed runtime needs
/// (acks for at-least-once delivery, status/confirm for termination
/// detection).
///
/// Stream encoding (all-text, same length-prefixed framing as the wire
/// and credential codecs):
///
///   stream frame := <decimal-body-length> ':' body
///   body         := <kind-char> ':' <seq-decimal> ':'
///                   lp(from) lp(relation) lp(payload) [lp(trace)]
///   lp(x)        := <decimal-byte-length> ':' <bytes>   (util framing)
///
/// The trailing lp(trace) is optional: it is emitted only when the frame
/// carries a trace-correlation id (sender "node:wave:seq"), and decoders
/// accept both the 3-field and 4-field body, so traced and untraced nodes
/// interoperate on one mesh.
///
/// The outer decimal length lets a receiver learn the full frame size —
/// and reject oversize frames — before buffering or allocating for the
/// body (see FrameParser).
struct Frame {
  enum class Kind : char {
    kHello = 'H',       ///< first frame on a connection; from = sender node
    kData = 'D',        ///< payload = SerializeTupleBlock for `relation`
    kCredential = 'C',  ///< payload = cred::SerializeBundle output
    kAck = 'A',         ///< seq = acknowledged data/credential frame seq
    kStatus = 'S',      ///< termination protocol: payload = version:quiet
    kConfirm = 'K',     ///< termination protocol: payload = snapshot hash
  };

  Kind kind = Kind::kData;
  /// Per-peer sender sequence number for kData/kCredential (at-least-once
  /// bookkeeping); the acknowledged sequence for kAck; 0 otherwise.
  uint64_t seq = 0;
  std::string from;      ///< sender node name
  std::string relation;  ///< target relation for kData ("" otherwise)
  std::string payload;
  /// Trace-correlation id ("node:wave:seq") stamped on outbound
  /// kData/kCredential frames when the sender traces; "" = untraced.
  std::string trace;

  /// True for frame kinds that are acked, retained until acknowledged, and
  /// retransmitted after a reconnect.
  bool reliable() const { return kind == Kind::kData || kind == Kind::kCredential; }
};

/// Serializes `frame` into its stream encoding (outer length included).
std::string EncodeFrame(const Frame& frame);

/// Parses one frame body (the bytes after the outer length prefix).
util::Result<Frame> DecodeFrameBody(std::string_view body);

/// Incremental frame reader for one connection. Feed raw socket bytes with
/// Append(); pull complete frames with Next(). Enforces `max_frame_bytes`
/// on the declared body length BEFORE the body is buffered or allocated,
/// and caps the header itself (a peer streaming garbage without ever
/// completing a length prefix is rejected after ~20 bytes, not buffered
/// forever). Any error is sticky: the connection must be closed.
class FrameParser {
 public:
  explicit FrameParser(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes. Returns false (sticky) if the declared frame size
  /// exceeds the cap or the header is malformed.
  bool Append(std::string_view bytes);

  /// Extracts the next complete frame: a frame, std::nullopt when more
  /// bytes are needed, or a (sticky) error for a malformed body.
  util::Result<std::optional<Frame>> Next();

  /// True if a partially received frame (or header) is pending — the
  /// slow-loris read-deadline trigger.
  bool mid_frame() const { return !buffer_.empty(); }

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  /// Body length parsed from the outer prefix; 0 = still reading header.
  size_t expected_ = 0;
  size_t header_len_ = 0;  ///< bytes of outer prefix (for trimming)
  bool failed_ = false;
  std::string error_;
};

}  // namespace lbtrust::net

#endif  // LBTRUST_NET_FRAME_H_
