#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/log.h"
#include "util/strings.h"

namespace lbtrust::net {

using util::LogLevel;
using util::Status;

namespace {

Status Errno(const char* what) {
  return util::Internal(util::StrCat(what, ": ", std::strerror(errno)));
}

bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

Transport::Transport(std::string self, Options options)
    : self_(std::move(self)), options_(std::move(options)) {}

Transport::~Transport() { Shutdown(); }

void Transport::Shutdown() {
  while (!conns_.empty()) {
    int fd = conns_.begin()->first;
    loop_.Remove(fd);
    close(fd);
    conns_.erase(fd);
  }
  for (auto& [name, peer] : peers_) peer.fd = -1;
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

Status Transport::Listen(const std::string& host, uint16_t port) {
  if (listen_fd_ >= 0) return util::FailedPrecondition("already listening");
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) {
    return util::InvalidArgument(util::StrCat("bad listen host '", host, "'"));
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Errno("bind");
  }
  if (listen(fd, 64) != 0) {
    close(fd);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd);
    return Errno("getsockname");
  }
  listen_port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  return loop_.Add(fd, EPOLLIN, [this](uint32_t) { OnListenerReadable(); });
}

void Transport::AddPeer(const std::string& name, const std::string& host,
                        uint16_t port) {
  Peer& peer = peers_[name];
  peer.host = host;
  peer.port = port;
  peer.backoff_ms = options_.reconnect_backoff_min_ms;
  peer.next_connect_ms = 0;  // connect on the next Poll
}

std::vector<std::string> Transport::peer_names() const {
  std::vector<std::string> out;
  out.reserve(peers_.size());
  for (const auto& [name, peer] : peers_) out.push_back(name);
  return out;
}

std::vector<Transport::PeerState> Transport::peer_states() const {
  std::vector<PeerState> out;
  out.reserve(peers_.size());
  for (const auto& [name, peer] : peers_) {
    PeerState state;
    state.name = name;
    state.host = peer.host;
    state.port = peer.port;
    if (peer.fd != -1) {
      auto it = conns_.find(peer.fd);
      state.connected = it != conns_.end() && it->second.connected;
    }
    state.ever_connected = peer.ever_connected;
    state.unacked = peer.unacked.size();
    out.push_back(std::move(state));
  }
  return out;
}

Transport::Conn* Transport::FindConn(int fd) {
  auto it = conns_.find(fd);
  return it == conns_.end() ? nullptr : &it->second;
}

void Transport::UpdateMask(Conn* conn, uint32_t mask) {
  if (conn->mask == mask) return;
  conn->mask = mask;
  loop_.Modify(conn->fd, mask).ok();  // fd may be racing a close; best-effort
}

void Transport::StartConnect(const std::string& name, Peer* peer) {
  sockaddr_in addr;
  if (!FillAddr(peer->host, peer->port, &addr)) {
    deferred_error_ = util::InvalidArgument(
        util::StrCat("bad peer host '", peer->host, "'"));
    return;
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return;  // fd exhaustion: retry after backoff
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    peer->next_connect_ms = EventLoop::NowMs() + peer->backoff_ms;
    peer->backoff_ms = std::min(peer->backoff_ms * 2,
                                options_.reconnect_backoff_max_ms);
    return;
  }
  Conn conn;
  conn.fd = fd;
  conn.peer = name;
  conn.outbound = true;
  conn.connected = (rc == 0);
  conn.parser = std::make_unique<FrameParser>(options_.max_frame_bytes);
  conn.mask = conn.connected ? EPOLLIN : (EPOLLIN | EPOLLOUT);
  conns_.emplace(fd, std::move(conn));
  peer->fd = fd;
  Status st = loop_.Add(fd, conns_[fd].mask, [this, fd](uint32_t events) {
    Conn* c = FindConn(fd);
    if (c == nullptr) return;
    if (!c->connected) {
      OnConnectWritable(fd);
      return;
    }
    if (events & (EPOLLHUP | EPOLLERR)) {
      CloseConn(fd, /*schedule_reconnect=*/true);
      return;
    }
    if (events & EPOLLIN) OnConnReadable(fd);
    if (FindConn(fd) != nullptr && (events & EPOLLOUT)) FlushConn(fd);
  });
  if (!st.ok()) {
    conns_.erase(fd);
    close(fd);
    peer->fd = -1;
    return;
  }
  if (conns_[fd].connected) OnConnectWritable(fd);
}

void Transport::OnConnectWritable(int fd) {
  Conn* conn = FindConn(fd);
  if (conn == nullptr) return;
  Peer& peer = peers_[conn->peer];
  if (!conn->connected) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      CloseConn(fd, /*schedule_reconnect=*/true);
      return;
    }
    conn->connected = true;
    UpdateMask(conn, EPOLLIN);
  }
  if (peer.ever_connected) ++stats_.reconnects;
  peer.ever_connected = true;
  peer.backoff_ms = options_.reconnect_backoff_min_ms;
  // Handshake: identify ourselves, then mark every retained reliable frame
  // for (re)transmission — the at-least-once resend path.
  Frame hello;
  hello.kind = Frame::Kind::kHello;
  hello.from = self_;
  conn->out += EncodeFrame(hello);
  ++stats_.frames_out;
  size_t resent = 0;
  peer.pending_bytes = 0;
  for (auto& [seq, entry] : peer.unacked) {
    if (entry.transmitted) ++resent;
    entry.transmitted = false;
    peer.pending_bytes += entry.bytes.size();
  }
  stats_.retries += resent;
  if (on_connect_) on_connect_(conn->peer);
  FlushStaged(conn->peer, &peer);
  FlushConn(fd);
}

void Transport::OnListenerReadable() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next event
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conn.outbound = false;
    conn.connected = true;
    conn.parser = std::make_unique<FrameParser>(options_.max_frame_bytes);
    conn.mask = EPOLLIN;
    conns_.emplace(fd, std::move(conn));
    Status st = loop_.Add(fd, EPOLLIN, [this, fd](uint32_t events) {
      if (events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(fd, /*schedule_reconnect=*/false);
        return;
      }
      if (events & EPOLLIN) OnConnReadable(fd);
      if (FindConn(fd) != nullptr && (events & EPOLLOUT)) FlushConn(fd);
    });
    if (!st.ok()) {
      conns_.erase(fd);
      close(fd);
    }
  }
}

void Transport::CloseConn(int fd, bool schedule_reconnect) {
  Conn* conn = FindConn(fd);
  if (conn == nullptr) return;
  std::string peer_name = conn->peer;
  bool outbound = conn->outbound;
  loop_.Remove(fd);
  close(fd);
  conns_.erase(fd);
  if (outbound) {
    auto it = peers_.find(peer_name);
    if (it != peers_.end()) {
      it->second.fd = -1;
      if (schedule_reconnect) {
        it->second.next_connect_ms =
            EventLoop::NowMs() + it->second.backoff_ms;
        it->second.backoff_ms = std::min(
            it->second.backoff_ms * 2, options_.reconnect_backoff_max_ms);
      }
    }
  }
}

bool Transport::Send(const std::string& peer_name, Frame frame) {
  auto it = peers_.find(peer_name);
  if (it == peers_.end()) return false;
  Peer& peer = it->second;
  frame.from = self_;
  if (!frame.reliable()) {
    // Best-effort control traffic: drop while disconnected.
    Conn* conn = peer.fd >= 0 ? FindConn(peer.fd) : nullptr;
    if (conn == nullptr || !conn->connected) {
      LBTRUST_LOG(LogLevel::kDebug, "[%s] drop kind=%c to %s (disconnected)",
                  self_.c_str(), static_cast<char>(frame.kind),
                  peer_name.c_str());
      return true;
    }
    conn->out += EncodeFrame(frame);
    ++stats_.frames_out;
    return true;
  }
  std::string encoded_probe = EncodeFrame(frame);  // seq 0 sizing probe
  size_t queued = peer.pending_bytes;
  Conn* conn = peer.fd >= 0 ? FindConn(peer.fd) : nullptr;
  if (conn != nullptr) queued += conn->out.size();
  if (queued + encoded_probe.size() > options_.send_queue_limit_bytes) {
    return false;  // backpressure: caller retries after the next Poll
  }
  frame.seq = peer.next_seq++;
  // Logical payload accounting (once per frame, not per retransmission).
  if (frame.kind == Frame::Kind::kData) {
    stats_.tuple_bytes_out += frame.payload.size();
  } else {
    stats_.credential_bytes_out += frame.payload.size();
  }
  Unacked entry;
  entry.bytes = EncodeFrame(frame);
  peer.pending_bytes += entry.bytes.size();
  peer.unacked.emplace(frame.seq, std::move(entry));
  ++reliable_frames_queued_;
  if (!drop_done_ && options_.drop_connection_after_data_frames != 0 &&
      reliable_frames_queued_ >= options_.drop_connection_after_data_frames &&
      drop_pending_peer_.empty()) {
    // Arm the forced drop: the connection carrying this frame is closed
    // once its buffer has flushed, losing any acks in flight — the
    // reconnect must resend every unacked frame.
    drop_pending_peer_ = peer_name;
  }
  return true;
}

void Transport::Broadcast(const Frame& frame) {
  for (auto& [name, peer] : peers_) {
    Frame copy = frame;
    Send(name, std::move(copy));
  }
}

void Transport::KickReconnects() {
  for (auto& [name, peer] : peers_) {
    if (peer.fd < 0) {
      peer.next_connect_ms = 0;
      peer.backoff_ms = options_.reconnect_backoff_min_ms;
    }
  }
}

bool Transport::AllAcked() const {
  for (const auto& [name, peer] : peers_) {
    if (!peer.unacked.empty()) return false;
  }
  return true;
}

bool Transport::SendQueuesEmpty() const {
  for (const auto& [fd, conn] : conns_) {
    if (!conn.out.empty()) return false;
  }
  for (const auto& [name, peer] : peers_) {
    if (peer.pending_bytes != 0) return false;
  }
  return true;
}

void Transport::FlushStaged(const std::string& name, Peer* peer) {
  if (peer->fd < 0) return;
  Conn* conn = FindConn(peer->fd);
  if (conn == nullptr || !conn->connected) return;
  // Gather untransmitted reliable frames in seq order; the fault knobs
  // reorder/duplicate the batch here, at real transmission granularity.
  std::vector<const std::string*> batch;
  for (auto& [seq, entry] : peer->unacked) {
    if (entry.transmitted) continue;
    batch.push_back(&entry.bytes);
    entry.transmitted = true;
  }
  if (batch.empty()) return;
  if (options_.reorder_flush) std::reverse(batch.begin(), batch.end());
  for (const std::string* bytes : batch) {
    int copies = options_.duplicate_data_frames ? 2 : 1;
    for (int i = 0; i < copies; ++i) {
      conn->out += *bytes;
      ++stats_.frames_out;
      ++stats_.data_frames_out;
    }
  }
  peer->pending_bytes = 0;
  (void)name;
}

void Transport::FlushConn(int fd) {
  Conn* conn = FindConn(fd);
  if (conn == nullptr || !conn->connected) return;
  while (!conn->out.empty()) {
    ssize_t n = send(fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_out += static_cast<uint64_t>(n);
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(fd, /*schedule_reconnect=*/conn->outbound);
    return;
  }
  UpdateMask(conn, conn->out.empty() ? EPOLLIN : (EPOLLIN | EPOLLOUT));
}

void Transport::OnConnReadable(int fd) {
  Conn* conn = FindConn(fd);
  if (conn == nullptr) return;
  char chunk[65536];
  for (;;) {
    ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      stats_.bytes_in += static_cast<uint64_t>(n);
      if (!conn->parser->Append(std::string_view(chunk,
                                                 static_cast<size_t>(n)))) {
        // Oversize or malformed header: cut the peer off before any body
        // allocation happened.
        if (conn->parser->error().find("exceeds cap") != std::string::npos) {
          ++stats_.oversize_rejects;
        }
        CloseConn(fd, /*schedule_reconnect=*/conn->outbound);
        return;
      }
      continue;
    }
    if (n == 0) {  // EOF
      CloseConn(fd, /*schedule_reconnect=*/conn->outbound);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(fd, /*schedule_reconnect=*/conn->outbound);
    return;
  }
  for (;;) {
    util::Result<std::optional<Frame>> next = conn->parser->Next();
    if (!next.ok()) {
      CloseConn(fd, /*schedule_reconnect=*/conn->outbound);
      return;
    }
    if (!next->has_value()) break;
    Status st = HandleFrame(fd, std::move(**next));
    if (!st.ok()) {
      // Fatal for the node (e.g. a rejected credential bundle): stop
      // delivering and surface the error from Poll().
      if (deferred_error_.ok()) deferred_error_ = st;
      return;
    }
    conn = FindConn(fd);  // the handler may have torn the connection down
    if (conn == nullptr) return;
  }
  if (conn->parser->mid_frame()) {
    if (conn->stalled_since_ms < 0) {
      conn->stalled_since_ms = EventLoop::NowMs();
    }
  } else {
    conn->stalled_since_ms = -1;
  }
}

util::Status Transport::HandleFrame(int fd, Frame frame) {
  Conn* conn = FindConn(fd);
  if (conn == nullptr) return util::OkStatus();
  ++stats_.frames_in;
  switch (frame.kind) {
    case Frame::Kind::kHello:
      conn->peer = frame.from;
      // Forwarded to the handler: the runtime pushes its protocol status
      // to a freshly (re)connected peer.
      if (handler_) return handler_(frame);
      return util::OkStatus();
    case Frame::Kind::kAck: {
      ++stats_.acks_in;
      auto it = peers_.find(frame.from.empty() ? conn->peer : frame.from);
      if (it != peers_.end()) {
        auto entry = it->second.unacked.find(frame.seq);
        if (entry != it->second.unacked.end()) {
          if (!entry->second.transmitted) {
            it->second.pending_bytes -= entry->second.bytes.size();
          }
          it->second.unacked.erase(entry);
        }
      }
      return util::OkStatus();
    }
    case Frame::Kind::kData:
    case Frame::Kind::kCredential: {
      ++stats_.data_frames_in;
      if (frame.kind == Frame::Kind::kData) {
        stats_.tuple_bytes_in += frame.payload.size();
      } else {
        stats_.credential_bytes_in += frame.payload.size();
      }
      if (!delivered_in_[frame.from].insert(frame.seq).second) {
        ++stats_.duplicate_frames_in;
      }
      if (handler_) {
        // Ack only after the handler staged the payload: an ack therefore
        // implies the tuples/credentials are durable at the receiver.
        LB_RETURN_IF_ERROR(handler_(frame));
      }
      Frame ack;
      ack.kind = Frame::Kind::kAck;
      ack.seq = frame.seq;
      ack.from = self_;
      conn = FindConn(fd);
      if (conn != nullptr) {
        conn->out += EncodeFrame(ack);
        ++stats_.frames_out;
        ++stats_.acks_out;
        FlushConn(fd);
      }
      return util::OkStatus();
    }
    case Frame::Kind::kStatus:
    case Frame::Kind::kConfirm:
      if (handler_) return handler_(frame);
      return util::OkStatus();
  }
  return util::OkStatus();
}

void Transport::HousekeepConnections() {
  int64_t now = EventLoop::NowMs();
  // (Re)connect peers whose backoff expired.
  for (auto& [name, peer] : peers_) {
    if (peer.fd < 0 && now >= peer.next_connect_ms) {
      StartConnect(name, &peer);
    }
  }
  // Ship any untransmitted reliable frames and drain buffers.
  for (auto& [name, peer] : peers_) {
    FlushStaged(name, &peer);
    if (peer.fd >= 0) FlushConn(peer.fd);
  }
  // Forced-drop knob: once the armed connection has fully flushed, close
  // it (acks in flight are lost; the reconnect resends unacked frames).
  if (!drop_pending_peer_.empty()) {
    auto it = peers_.find(drop_pending_peer_);
    if (it != peers_.end() && it->second.fd >= 0) {
      Conn* conn = FindConn(it->second.fd);
      if (conn != nullptr && conn->connected && conn->out.empty() &&
          it->second.pending_bytes == 0) {
        CloseConn(it->second.fd, /*schedule_reconnect=*/true);
        drop_pending_peer_.clear();
        drop_done_ = true;
      }
    }
  }
  // Slow-loris defense: connections stalled mid-frame past the deadline.
  std::vector<int> stalled;
  for (auto& [fd, conn] : conns_) {
    if (conn.stalled_since_ms >= 0 &&
        now - conn.stalled_since_ms > options_.read_deadline_ms) {
      stalled.push_back(fd);
    }
  }
  for (int fd : stalled) {
    ++stats_.deadline_closes;
    Conn* conn = FindConn(fd);
    CloseConn(fd, /*schedule_reconnect=*/conn != nullptr && conn->outbound);
  }
}

Status Transport::Poll(int timeout_ms) {
  HousekeepConnections();
  LB_RETURN_IF_ERROR(loop_.PollOnce(timeout_ms).status());
  HousekeepConnections();
  if (!deferred_error_.ok()) {
    Status st = deferred_error_;
    deferred_error_ = util::OkStatus();
    return st;
  }
  return util::OkStatus();
}

void SyncTransportMetrics(const TransportStats& stats,
                          obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  auto set = [registry](const char* name, const char* labels,
                        uint64_t value) {
    registry->GetCounter(name, labels)->Set(value);
  };
  set("lbtrust_transport_bytes_total", "direction=\"out\"", stats.bytes_out);
  set("lbtrust_transport_bytes_total", "direction=\"in\"", stats.bytes_in);
  set("lbtrust_transport_frames_total", "direction=\"out\"",
      stats.frames_out);
  set("lbtrust_transport_frames_total", "direction=\"in\"", stats.frames_in);
  set("lbtrust_transport_data_frames_total", "direction=\"out\"",
      stats.data_frames_out);
  set("lbtrust_transport_data_frames_total", "direction=\"in\"",
      stats.data_frames_in);
  set("lbtrust_transport_tuple_bytes_total", "direction=\"out\"",
      stats.tuple_bytes_out);
  set("lbtrust_transport_tuple_bytes_total", "direction=\"in\"",
      stats.tuple_bytes_in);
  set("lbtrust_transport_credential_bytes_total", "direction=\"out\"",
      stats.credential_bytes_out);
  set("lbtrust_transport_credential_bytes_total", "direction=\"in\"",
      stats.credential_bytes_in);
  set("lbtrust_transport_acks_total", "direction=\"out\"", stats.acks_out);
  set("lbtrust_transport_acks_total", "direction=\"in\"", stats.acks_in);
  set("lbtrust_transport_retries_total", "", stats.retries);
  set("lbtrust_transport_reconnects_total", "", stats.reconnects);
  set("lbtrust_transport_duplicate_frames_in_total", "",
      stats.duplicate_frames_in);
  set("lbtrust_transport_oversize_rejects_total", "", stats.oversize_rejects);
  set("lbtrust_transport_deadline_closes_total", "", stats.deadline_closes);
}

}  // namespace lbtrust::net
