#include "net/distributed.h"

#include <algorithm>
#include <cstdlib>

#include "net/wire.h"
#include "obs/build_info.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace lbtrust::net {

using trust::TrustRuntime;
using util::Result;
using util::Status;

Result<std::unique_ptr<DistributedCluster>> DistributedCluster::Create(
    Options options) {
  if (options.self.empty()) {
    return util::InvalidArgument("self node name must not be empty");
  }
  std::vector<std::string> nodes = options.nodes;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  if (!std::binary_search(nodes.begin(), nodes.end(), options.self)) {
    return util::InvalidArgument(
        util::StrCat("self '", options.self, "' is not in the mesh"));
  }
  std::unique_ptr<DistributedCluster> dc(
      new DistributedCluster(std::move(options)));
  dc->options_.nodes = nodes;  // sorted + deduped: termination counts on it
  dc->options_.runtime.principal = dc->options_.self;
  LB_ASSIGN_OR_RETURN(dc->runtime_,
                      TrustRuntime::Create(dc->options_.runtime));

  // Peer public keys are derived from peer names with the same seed rule
  // Create() used for our own pair — no key exchange, and the resulting
  // per-node state matches the simulated cluster's Connect() exactly.
  std::vector<std::pair<std::string, crypto::RsaPublicKey>> mesh;
  mesh.reserve(nodes.size());
  for (const std::string& name : nodes) {
    if (name == dc->options_.self) {
      mesh.emplace_back(name, dc->runtime_->keypair().public_key);
      continue;
    }
    LB_ASSIGN_OR_RETURN(
        crypto::RsaKeyPair pair,
        TrustRuntime::DeriveKeyPair(name, dc->options_.runtime.key_seed,
                                    dc->options_.runtime.rsa_bits));
    mesh.emplace_back(name, pair.public_key);
  }
  LB_RETURN_IF_ERROR(ConfigureMeshNode(dc->runtime_.get(), mesh,
                                       dc->options_.scheme,
                                       dc->options_.default_placement));

  DistributedCluster* self = dc.get();
  dc->transport_.set_handler(
      [self](const Frame& frame) { return self->OnFrame(frame); });
  // A (re)connect may have lost our last status/confirm broadcast; resend
  // both so the peer's termination state converges without waiting for the
  // heartbeat (a dropped CONFIRM is otherwise never retransmitted).
  dc->transport_.set_on_connect([self](const std::string& peer) {
    self->SendStatus(peer);
    self->SendConfirm(peer);
  });
  LB_RETURN_IF_ERROR(dc->transport_.Listen(dc->options_.listen_host,
                                           dc->options_.listen_port));
  dc->node_status_[dc->options_.self] = {0, false};
  dc->start_ms_ = EventLoop::NowMs();
  LB_RETURN_IF_ERROR(dc->StartHttp());
  return dc;
}

Status DistributedCluster::StartHttp() {
  if (options_.http_port < 0) return util::OkStatus();
  // Share the transport's loop: every page renders on the fixpoint thread
  // between waves, so handlers read engine state with no synchronization.
  http_ = std::make_unique<obs::HttpExporter>(transport_.loop());
  http_->Handle("/metrics", [this] {
    obs::HttpExporter::Response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = DumpMetrics();
    return r;
  });
  http_->Handle("/statusz", [this] {
    obs::HttpExporter::Response r;
    r.content_type = "application/json";
    r.body = StatusJson();
    return r;
  });
  http_->Handle("/explainz", [this] {
    obs::HttpExporter::Response r;
    r.content_type = "application/json";
    r.body = runtime_->workspace()->ExplainRules(datalog::ExplainFormat::kJson);
    return r;
  });
  http_->Handle("/explainz.txt", [this] {
    obs::HttpExporter::Response r;
    r.body = runtime_->workspace()->ExplainRules(datalog::ExplainFormat::kText);
    return r;
  });
  http_->Handle("/lintz", [this] {
    obs::HttpExporter::Response r;
    r.content_type = "application/json";
    r.body = runtime_->workspace()->LintRules().ToJson();
    return r;
  });
  http_->Handle("/lintz.txt", [this] {
    obs::HttpExporter::Response r;
    datalog::LintReport report = runtime_->workspace()->LintRules();
    r.body = report.diagnostics.empty() ? "no diagnostics\n"
                                        : report.ToText();
    return r;
  });
  http_->Handle("/trace", [this] {
    obs::HttpExporter::Response r;
    r.content_type = "application/json";
    obs::Tracer* tracer = runtime_->workspace()->tracer();
    r.body = tracer != nullptr ? tracer->DrainJson()
                               : std::string("{\"traceEvents\":[]}");
    return r;
  });
  return http_->Listen(options_.listen_host,
                       static_cast<uint16_t>(options_.http_port));
}

std::string DistributedCluster::StatusJson() {
  const int64_t uptime_ms = EventLoop::NowMs() - start_ms_;
  std::string out = util::StrCat(
      "{\"node\":\"", obs::LabelEscape(options_.self), "\",\"version\":\"",
      obs::kBuildVersion, "\",\"compiler\":\"",
      obs::LabelEscape(obs::BuildCompiler()), "\",\"uptime_seconds\":",
      uptime_ms / 1000, ".", (uptime_ms / 100) % 10,
      ",\"fixpoints\":", stats_.fixpoints, ",\"tuples_in\":", stats_.tuples_in,
      ",\"tuples_out\":", stats_.tuples_out, ",\"peers\":[");
  bool first = true;
  for (const Transport::PeerState& peer : transport_.peer_states()) {
    if (!first) out.push_back(',');
    first = false;
    out += util::StrCat(
        "{\"name\":\"", obs::LabelEscape(peer.name), "\",\"address\":\"",
        obs::LabelEscape(peer.host), ":", peer.port, "\",\"state\":\"",
        peer.connected ? "connected"
                       : (peer.ever_connected ? "reconnecting" : "pending"),
        "\",\"unacked\":", peer.unacked, "}");
  }
  out += "],\"relations\":[";
  first = true;
  for (const auto& [name, rows] :
       runtime_->workspace()->RelationRowCounts()) {
    if (!first) out.push_back(',');
    first = false;
    out += util::StrCat("{\"relation\":\"", obs::LabelEscape(name),
                        "\",\"rows\":", rows, "}");
  }
  out += "]}";
  return out;
}

Status DistributedCluster::AddPeer(const std::string& name,
                                   const std::string& host, uint16_t port) {
  if (std::find(options_.nodes.begin(), options_.nodes.end(), name) ==
      options_.nodes.end()) {
    return util::NotFound(util::StrCat("node '", name, "' is not in the mesh"));
  }
  if (name == options_.self) {
    return util::InvalidArgument("cannot peer with self");
  }
  transport_.AddPeer(name, host, port);
  return util::OkStatus();
}

Status DistributedCluster::ShipCredential(const std::string& to_node,
                                          const std::string& hash) {
  if (std::find(options_.nodes.begin(), options_.nodes.end(), to_node) ==
      options_.nodes.end()) {
    return util::NotFound(
        util::StrCat("node '", to_node, "' is not in the mesh"));
  }
  Frame frame;
  frame.kind = Frame::Kind::kCredential;
  frame.from = options_.self;
  frame.relation = "credential";
  LB_ASSIGN_OR_RETURN(frame.payload, runtime_->ExportCredential(hash));
  if (obs::Tracer* tracer = runtime_->workspace()->tracer()) {
    frame.trace = util::StrCat(options_.self, ":", stats_.fixpoints, ":",
                               ++flow_seq_);
    const uint64_t now_us = obs::Tracer::NowMicros();
    obs::ScopedSpan ship(tracer, "ship");
    ship.set_args(util::StrCat("\"credential\":\"", obs::LabelEscape(hash),
                               "\",\"dest\":\"", obs::LabelEscape(to_node),
                               "\",\"trace\":\"",
                               obs::LabelEscape(frame.trace), "\""));
    tracer->RecordFlow("credential", 's', frame.trace, now_us);
  }
  SendReliable(to_node, std::move(frame));
  return util::OkStatus();
}

Status DistributedCluster::OnFrame(const Frame& frame) {
  switch (frame.kind) {
    case Frame::Kind::kHello:
      // Peer (re)connected to us; push our status and latest confirm so
      // its termination state fills without waiting for the heartbeat.
      SendStatus(frame.from);
      SendConfirm(frame.from);
      return util::OkStatus();
    case Frame::Kind::kData: {
      obs::Tracer* tracer = runtime_->workspace()->tracer();
      obs::ScopedSpan stage(tracer, "stage");
      if (tracer != nullptr && !frame.trace.empty()) {
        // Close the sender's flow inside this staging slice ("bp":"e"
        // binds the arrow to the enclosing span in the merged trace).
        tracer->RecordFlow("delta", 'f', frame.trace,
                           obs::Tracer::NowMicros());
      }
      LB_ASSIGN_OR_RETURN(std::vector<datalog::Tuple> tuples,
                          DeserializeTupleBlock(frame.payload));
      stats_.tuples_in += tuples.size();
      if (stage.enabled()) {
        stage.set_args(util::StrCat(
            "\"relation\":\"", obs::LabelEscape(frame.relation),
            "\",\"from\":\"", obs::LabelEscape(frame.from),
            "\",\"tuples\":", tuples.size(), ",\"trace\":\"",
            obs::LabelEscape(frame.trace), "\""));
      }
      // Stage only: frames arriving in one poll commit as one batch with a
      // single fixpoint. The inbox keeps us non-quiet until committed, so
      // acking here (the transport acks after we return OK) is safe for
      // the termination protocol.
      LB_RETURN_IF_ERROR(
          runtime_->StageTuples(frame.relation, std::move(tuples)));
      dirty_ = true;
      return util::OkStatus();
    }
    case Frame::Kind::kCredential: {
      obs::Tracer* tracer = runtime_->workspace()->tracer();
      obs::ScopedSpan import_span(tracer, "import");
      if (tracer != nullptr && !frame.trace.empty()) {
        tracer->RecordFlow("credential", 'f', frame.trace,
                           obs::Tracer::NowMicros());
      }
      // Import runs its own transaction + fixpoint; flush the inbox first
      // so the two never interleave. Final state is order-independent
      // (facts are sets, the credential store is content-addressed).
      LB_RETURN_IF_ERROR(runtime_->CommitInbox());
      LB_RETURN_IF_ERROR(
          runtime_->ImportCredentials(frame.payload, options_.credential_now)
              .status());
      ++stats_.credential_imports;
      ++version_;
      dirty_ = true;
      return util::OkStatus();
    }
    case Frame::Kind::kAck:
      return util::OkStatus();  // consumed by the transport
    case Frame::Kind::kStatus: {
      size_t colon = frame.payload.find(':');
      if (colon == std::string::npos) {
        return util::InvalidArgument(
            util::StrCat("malformed status payload '", frame.payload, "'"));
      }
      uint64_t version = std::strtoull(frame.payload.c_str(), nullptr, 10);
      bool quiet = frame.payload.compare(colon + 1, std::string::npos,
                                         "1") == 0;
      node_status_[frame.from] = {version, quiet};
      return util::OkStatus();
    }
    case Frame::Kind::kConfirm:
      confirms_[frame.from] = frame.payload;
      return util::OkStatus();
  }
  return util::InvalidArgument("unknown frame kind");
}

void DistributedCluster::ShipPlaced() {
  obs::Tracer* tracer = runtime_->workspace()->tracer();
  for (PlacedBatch& batch :
       CollectPlacedBatches(runtime_->workspace(), options_.self, &sent_)) {
    Frame frame;
    frame.kind = Frame::Kind::kData;
    frame.from = options_.self;
    frame.relation = std::move(batch.relation);
    frame.payload = SerializeTupleBlock(batch.tuples);
    stats_.tuples_out += batch.tuples.size();
    if (tracer != nullptr) {
      // Stamp the frame with a mesh-unique correlation id and open the
      // flow inside a "ship" span: after dist_smoke merges the per-node
      // trace files, this links the sender's fixpoint wave to the
      // receiver's import slice. The wave number is stats_.fixpoints
      // (incremented just before ShipPlaced runs).
      frame.trace = util::StrCat(options_.self, ":", stats_.fixpoints, ":",
                                 ++flow_seq_);
      const uint64_t now_us = obs::Tracer::NowMicros();
      obs::ScopedSpan ship(tracer, "ship");
      ship.set_args(util::StrCat(
          "\"relation\":\"", obs::LabelEscape(frame.relation),
          "\",\"dest\":\"", obs::LabelEscape(batch.dest), "\",\"trace\":\"",
          obs::LabelEscape(frame.trace), "\""));
      tracer->RecordFlow("delta", 's', frame.trace, now_us);
    }
    SendReliable(batch.dest, std::move(frame));
  }
}

void DistributedCluster::SendReliable(const std::string& dest, Frame frame) {
  // Bounded send queues: a full queue defers the frame (never drops it);
  // RetryDeferred() retries after the next poll drained the queue.
  if (!transport_.Send(dest, frame)) {
    ++stats_.deferred_sends;
    deferred_.emplace_back(dest, std::move(frame));
  }
}

void DistributedCluster::RetryDeferred() {
  if (deferred_.empty()) return;
  std::vector<std::pair<std::string, Frame>> retry;
  retry.swap(deferred_);
  for (auto& [dest, frame] : retry) {
    SendReliable(dest, std::move(frame));
  }
}

bool DistributedCluster::IsQuiet() const {
  return !dirty_ && !runtime_->HasInbox() && deferred_.empty() &&
         transport_.AllAcked() && transport_.SendQueuesEmpty();
}

std::string DistributedCluster::SnapshotHash() const {
  // Every mesh node must have reported; a missing entry means "not quiet".
  std::string snapshot;
  for (const auto& [name, status] : node_status_) {
    snapshot += util::StrCat(name, "=", std::to_string(status.first), ":",
                             status.second ? "1" : "0", ";");
  }
  return std::to_string(util::Fnv1a(snapshot));
}

void DistributedCluster::SendConfirm(const std::string& peer_or_empty) {
  auto self_confirm = confirms_.find(options_.self);
  if (self_confirm == confirms_.end()) return;
  Frame frame;
  frame.kind = Frame::Kind::kConfirm;
  frame.from = options_.self;
  frame.payload = self_confirm->second;
  if (peer_or_empty.empty()) {
    transport_.Broadcast(frame);
  } else {
    transport_.Send(peer_or_empty, std::move(frame));
  }
}

void DistributedCluster::SendStatus(const std::string& peer_or_empty) {
  auto self_status = node_status_.find(options_.self);
  if (self_status == node_status_.end()) return;
  Frame frame;
  frame.kind = Frame::Kind::kStatus;
  frame.from = options_.self;
  frame.payload =
      util::StrCat(std::to_string(self_status->second.first), ":",
                   self_status->second.second ? "1" : "0");
  if (peer_or_empty.empty()) {
    transport_.Broadcast(frame);
  } else {
    transport_.Send(peer_or_empty, std::move(frame));
  }
}

Result<DistributedCluster::RunStats> DistributedCluster::RunToConvergence() {
  const int64_t deadline =
      EventLoop::NowMs() + options_.convergence_timeout_ms;
  dirty_ = true;  // local changes since the last run get a first fixpoint
  std::string last_status_payload;
  int64_t last_status_ms = 0;
  while (true) {
    RetryDeferred();
    if (dirty_ || runtime_->HasInbox()) {
      dirty_ = false;
      Status st = runtime_->HasInbox() ? runtime_->CommitInbox()
                                       : runtime_->Fixpoint();
      if (!st.ok()) {
        return Status(st.code(), util::StrCat("node '", options_.self,
                                              "': ", st.message()));
      }
      ++version_;
      ++stats_.fixpoints;
      ShipPlaced();
    }

    // --- Termination protocol -------------------------------------------
    const bool quiet = IsQuiet();
    node_status_[options_.self] = {version_, quiet};
    std::string status_payload =
        util::StrCat(std::to_string(version_), ":", quiet ? "1" : "0");
    int64_t now = EventLoop::NowMs();
    if (status_payload != last_status_payload ||
        now - last_status_ms >= options_.status_heartbeat_ms) {
      SendStatus("");
      SendConfirm("");  // best-effort frame: heartbeat doubles as resend
      last_status_payload = status_payload;
      last_status_ms = now;
    }
    if (quiet && node_status_.size() == options_.nodes.size()) {
      bool all_quiet = true;
      for (const auto& [name, status] : node_status_) {
        if (!status.second) all_quiet = false;
      }
      if (all_quiet) {
        std::string hash = SnapshotHash();
        if (confirms_[options_.self] != hash) {
          confirms_[options_.self] = hash;
          SendConfirm("");
        }
        bool unanimous = confirms_.size() == options_.nodes.size();
        for (const auto& [name, confirmed] : confirms_) {
          if (confirmed != hash) unanimous = false;
        }
        // Unanimous confirmation of one identical snapshot: every node was
        // quiet with these exact versions, so nothing is in flight
        // anywhere and no node can become dirty again.
        if (unanimous) break;
      }
    }

    // Debug-level tracing of the termination protocol (~2 lines/sec per
    // node; LBTRUST_LOG=debug or the legacy LBTRUST_DIST_DEBUG=1) — the
    // first thing to reach for when a mesh hangs instead of converging.
    if (util::LogEnabled(util::LogLevel::kDebug)) {
      static thread_local int64_t last_debug_ms = 0;
      int64_t debug_now = EventLoop::NowMs();
      if (debug_now - last_debug_ms >= 500) {
        last_debug_ms = debug_now;
        std::string table;
        for (const auto& [name, status] : node_status_) {
          table += util::StrCat(name, "=", std::to_string(status.first), ":",
                                status.second ? "1" : "0", " ");
        }
        std::string confirm_table;
        for (const auto& [name, confirmed] : confirms_) {
          confirm_table += util::StrCat(name, "=", confirmed, " ");
        }
        util::LogMessage(
            util::LogLevel::kDebug,
            "[%s] quiet=%d dirty=%d inbox=%d deferred=%zu acked=%d "
            "queues_empty=%d status{%s} confirms{%s} hash=%s",
            options_.self.c_str(), quiet ? 1 : 0, dirty_ ? 1 : 0,
            runtime_->HasInbox() ? 1 : 0, deferred_.size(),
            transport_.AllAcked() ? 1 : 0,
            transport_.SendQueuesEmpty() ? 1 : 0, table.c_str(),
            confirm_table.c_str(), SnapshotHash().c_str());
      }
    }

    if (options_.on_tick) options_.on_tick();
    // The HTTP fds live on the transport's loop, so the poll below serves
    // any buffered scrape between waves; only deadline enforcement needs
    // an explicit nudge.
    if (http_ != nullptr) http_->Housekeep();

    Status st = transport_.Poll(options_.poll_interval_ms);
    if (!st.ok()) {
      return Status(st.code(), util::StrCat("node '", options_.self,
                                            "': ", st.message()));
    }
    if (EventLoop::NowMs() > deadline) {
      return util::Internal(util::StrCat(
          "node '", options_.self, "': no convergence within ",
          std::to_string(options_.convergence_timeout_ms), "ms"));
    }
  }
  // Linger so peers still deciding receive our CONFIRM: flush buffered
  // frames, and — the critical case — retry links that were down when we
  // broadcast it, since on_connect is the only resend path a departed
  // node still has. Kick the backoff first so a link refused during peer
  // startup retries now instead of seconds from now.
  transport_.KickReconnects();
  const int64_t linger_end = EventLoop::NowMs() + options_.linger_ms;
  while (EventLoop::NowMs() < linger_end) {
    Status st = transport_.Poll(5);
    if (!st.ok()) break;  // peers tearing down concurrently is expected
  }
  stats_.transport = transport_.stats();
  return stats_;
}

void DistributedCluster::SyncMetrics() {
  obs::MetricsRegistry* reg = runtime_->workspace()->metrics();
  if (reg == nullptr) return;
  auto set = [reg](const char* name, size_t value) {
    reg->GetCounter(name)->Set(static_cast<uint64_t>(value));
  };
  set("lbtrust_node_fixpoints_total", stats_.fixpoints);
  set("lbtrust_node_tuples_in_total", stats_.tuples_in);
  set("lbtrust_node_tuples_out_total", stats_.tuples_out);
  set("lbtrust_node_credential_imports_total", stats_.credential_imports);
  set("lbtrust_node_deferred_sends_total", stats_.deferred_sends);
  // Build identity + uptime: the two gauges every scraper alerts on.
  reg->GetGauge("lbtrust_build_info",
                util::StrCat("version=\"", obs::kBuildVersion,
                             "\",compiler=\"",
                             obs::LabelEscape(obs::BuildCompiler()), "\""))
      ->Set(1);
  reg->GetGauge("lbtrust_uptime_seconds")
      ->Set((EventLoop::NowMs() - start_ms_) / 1000);
  SyncTransportMetrics(transport_.stats(), reg);
  if (http_ != nullptr) http_->SyncMetrics(reg);
  runtime_->SyncMetrics();
}

std::string DistributedCluster::DumpMetrics() {
  SyncMetrics();
  return runtime_->workspace()->DumpMetrics();
}

}  // namespace lbtrust::net
