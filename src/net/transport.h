#ifndef LBTRUST_NET_TRANSPORT_H_
#define LBTRUST_NET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace lbtrust::net {

/// Wire-level counters, exposed verbatim through DistributedCluster's
/// RunStats so benches can report wire efficiency (bytes/tuple etc.).
struct TransportStats {
  uint64_t bytes_out = 0, bytes_in = 0;    ///< raw socket bytes
  uint64_t frames_out = 0, frames_in = 0;  ///< all frame kinds
  uint64_t data_frames_out = 0, data_frames_in = 0;
  uint64_t tuple_bytes_out = 0, tuple_bytes_in = 0;  ///< kData payloads
  uint64_t credential_bytes_out = 0, credential_bytes_in = 0;
  uint64_t acks_out = 0, acks_in = 0;
  /// Reliable frames re-enqueued after a reconnect (at-least-once resend).
  uint64_t retries = 0;
  /// Successful connection re-establishments (beyond each peer's first).
  uint64_t reconnects = 0;
  /// Reliable frames received more than once (same peer, same seq) —
  /// harmless by construction: the engine's per-tuple cross-round dedup
  /// and the content-addressed credential store are idempotent.
  uint64_t duplicate_frames_in = 0;
  uint64_t oversize_rejects = 0;  ///< connections dropped for oversize frames
  uint64_t deadline_closes = 0;   ///< connections dropped for read stalls
};

/// Mirrors `stats` into `registry` as `lbtrust_transport_*` counters
/// (mirror-on-dump: the transport keeps its plain struct on the hot path
/// and this copies it into registry handles at exposition time). No-op on
/// a null registry. DistributedCluster and the sim-vs-socket tooling call
/// this so every deployment exposes the same metric names.
void SyncTransportMetrics(const TransportStats& stats,
                          obs::MetricsRegistry* registry);

/// Async socket transport for one node: a non-blocking TCP listener plus
/// one outbound connection per peer, multiplexed on an epoll EventLoop and
/// driven by the owner's thread via Poll().
///
///  - Outbound frames batch per peer into one contiguous write buffer, so
///    a round's worth of frames for a peer flushes in O(1) syscalls.
///  - Send queues are bounded (`send_queue_limit_bytes`); a full queue
///    makes Send() return false — backpressure the caller absorbs by
///    retrying after the next Poll().
///  - Reliable frames (kData/kCredential) carry per-peer sequence numbers,
///    are retained until the peer acks them, and are retransmitted after a
///    reconnect: at-least-once delivery. Receivers ack AFTER the handler
///    accepts the frame, so an ack implies the payload was staged.
///  - Outbound connections reconnect with exponential backoff.
///  - Inbound hardening: the declared frame length is checked against
///    `max_frame_bytes` before body bytes are buffered, and a connection
///    stalled mid-frame longer than `read_deadline_ms` is closed
///    (slow-loris defense).
///
/// Single-threaded: every method (including handler callbacks, which fire
/// inside Poll()) runs on the owner's thread.
class Transport {
 public:
  struct Options {
    size_t max_frame_bytes = 16u << 20;
    size_t send_queue_limit_bytes = 4u << 20;  ///< per peer
    int read_deadline_ms = 5000;
    int reconnect_backoff_min_ms = 10;
    int reconnect_backoff_max_ms = 1000;
    // --- Fault-injection knobs (tests only) -------------------------------
    /// Transmit every reliable frame twice (same seq): injected duplicate
    /// delivery, exercising end-to-end idempotency.
    bool duplicate_data_frames = false;
    /// Reverse the order of frames staged within one flush: injected
    /// reordering across relations/batches.
    bool reorder_flush = false;
    /// After this many reliable frames have been queued, drop the carrying
    /// connection once (unflushed bytes are lost) to force a reconnect and
    /// at-least-once resend. 0 = never.
    uint64_t drop_connection_after_data_frames = 0;
  };

  /// Handler for inbound kHello/kData/kCredential/kStatus/kConfirm frames.
  /// Returning non-OK is fatal for the node (the error is surfaced from
  /// Poll()); reliable frames are acked only after an OK return.
  using FrameHandler = std::function<util::Status(const Frame& frame)>;
  /// Fired when an outbound connection (re)establishes, after unacked
  /// frames were re-queued — the runtime rebroadcasts its protocol status.
  using ConnectHandler = std::function<void(const std::string& peer)>;

  Transport(std::string self, Options options);
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  void set_handler(FrameHandler handler) { handler_ = std::move(handler); }
  void set_on_connect(ConnectHandler handler) {
    on_connect_ = std::move(handler);
  }

  /// Binds and listens (port 0 picks an ephemeral port; see listen_port()).
  util::Status Listen(const std::string& host, uint16_t port);
  uint16_t listen_port() const { return listen_port_; }

  /// Registers a peer; the first Poll() starts connecting.
  void AddPeer(const std::string& name, const std::string& host,
               uint16_t port);
  std::vector<std::string> peer_names() const;

  /// Point-in-time connection state per registered peer (for /statusz).
  struct PeerState {
    std::string name;
    std::string host;
    uint16_t port = 0;
    bool connected = false;       ///< outbound link currently up
    bool ever_connected = false;  ///< handshake completed at least once
    size_t unacked = 0;           ///< reliable frames awaiting ack
  };
  std::vector<PeerState> peer_states() const;

  /// The epoll loop every transport fd is registered on. Exposed so
  /// same-thread companions (the HTTP exporter) can share the one
  /// Poll() call instead of running a second loop.
  EventLoop* loop() { return &loop_; }

  /// Queues `frame` for `peer`. Reliable frames get a sequence number and
  /// at-least-once retention; unreliable frames (status/confirm/hello) are
  /// sent best-effort and dropped while disconnected. Returns false only
  /// for reliable frames when the peer's send queue is full.
  bool Send(const std::string& peer, Frame frame);

  /// Best-effort send of an unreliable frame to every peer.
  void Broadcast(const Frame& frame);

  /// True when every reliable frame ever sent has been acked.
  bool AllAcked() const;
  /// True when no queued bytes remain unflushed (all peers).
  bool SendQueuesEmpty() const;

  /// Clears the reconnect backoff of every disconnected peer so the next
  /// Poll() retries immediately. Used by the termination protocol: a node
  /// about to exit must get its final status/confirm onto links that were
  /// still backing off, or peers wait for a resend that never comes.
  void KickReconnects();

  /// Runs connection housekeeping (reconnects, deadlines, fault knobs),
  /// polls the event loop once for up to `timeout_ms`, and dispatches
  /// inbound frames to the handler. Returns the first fatal error a
  /// handler reported, or a socket-layer internal error.
  util::Status Poll(int timeout_ms);

  const TransportStats& stats() const { return stats_; }

  /// Closes every connection and the listener (idempotent).
  void Shutdown();

 private:
  struct Conn {
    int fd = -1;
    std::string peer;  ///< outbound: target; inbound: set by kHello
    bool outbound = false;
    bool connected = false;  ///< outbound: TCP handshake completed
    std::string out;         ///< flush buffer (encoded frames)
    std::unique_ptr<FrameParser> parser;
    int64_t stalled_since_ms = -1;  ///< mid-frame since (read deadline)
    uint32_t mask = 0;              ///< current epoll interest
  };

  struct Unacked {
    std::string bytes;        ///< encoded frame
    bool transmitted = false; ///< handed to the socket at least once
  };

  struct Peer {
    std::string host;
    uint16_t port = 0;
    int fd = -1;  ///< current outbound connection (-1 = down)
    uint64_t next_seq = 1;
    /// Reliable frames retained until acked (seq order). Untransmitted
    /// entries are the outbound batch the next flush ships; a reconnect
    /// marks every entry untransmitted again (at-least-once resend).
    std::map<uint64_t, Unacked> unacked;
    size_t pending_bytes = 0;  ///< bytes of untransmitted unacked frames
    int backoff_ms = 0;
    int64_t next_connect_ms = 0;
    bool ever_connected = false;
  };

  void StartConnect(const std::string& name, Peer* peer);
  void OnConnectWritable(int fd);
  void OnListenerReadable();
  void OnConnReadable(int fd);
  void FlushConn(int fd);
  void CloseConn(int fd, bool schedule_reconnect);
  void UpdateMask(Conn* conn, uint32_t mask);
  void FlushStaged(const std::string& name, Peer* peer);
  void HousekeepConnections();
  util::Status HandleFrame(int fd, Frame frame);
  Conn* FindConn(int fd);

  std::string self_;
  Options options_;
  EventLoop loop_;
  FrameHandler handler_;
  ConnectHandler on_connect_;
  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  std::map<std::string, Peer> peers_;
  std::map<int, Conn> conns_;
  /// Sequence numbers already delivered per sending peer (duplicate
  /// detection for stats; duplicates are still delivered to the handler to
  /// exercise end-to-end idempotency).
  std::map<std::string, std::unordered_set<uint64_t>> delivered_in_;
  TransportStats stats_;
  util::Status deferred_error_;
  uint64_t reliable_frames_queued_ = 0;  ///< for the forced-drop knob
  std::string drop_pending_peer_;        ///< armed forced drop (knob)
  bool drop_done_ = false;
};

}  // namespace lbtrust::net

#endif  // LBTRUST_NET_TRANSPORT_H_
