#ifndef LBTRUST_NET_DISTRIBUTED_H_
#define LBTRUST_NET_DISTRIBUTED_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.h"
#include "net/transport.h"
#include "obs/http_exporter.h"
#include "trust/trust_runtime.h"
#include "util/status.h"

namespace lbtrust::net {

/// One node of a socket-backed distributed deployment: hosts a single
/// TrustRuntime and drives the semi-naive exchange loop across processes —
/// local fixpoints, delta shipping per the node's own predNode placement
/// relation, and coordinator-free termination detection.
///
/// Mesh setup mirrors the simulated Cluster exactly (ConfigureMeshNode):
/// peer public keys are derived deterministically from peer names
/// (TrustRuntime::DeriveKeyPair), so no key exchange is needed and a
/// converged node's Workspace dump is byte-identical to the corresponding
/// simulated node's (compare with DumpWorkspace(..., sort_rules=true);
/// rule arrival order differs across deployments, tuples are sorted by the
/// dump itself).
///
/// Delivery is at-least-once (transport-level seq/ack + resend after
/// reconnect) and made idempotent by the engine: tuple facts are sets and
/// the per-node `sent` dedup never re-ships, credential bundles are
/// content-addressed. Duplicated or reordered frames therefore converge to
/// the same store as single, in-order delivery.
///
/// Termination (GEM-style, no coordinator): a node is *quiet* when it has
/// no dirty work, no staged inbox, no deferred sends, empty transport
/// queues, and every reliable frame it ever sent is acked. Nodes broadcast
/// STATUS(version, quiet); when a node sees every node quiet it broadcasts
/// CONFIRM(hash of the full status snapshot). Unanimous confirmation of an
/// identical snapshot hash terminates the run: an in-flight frame keeps
/// its sender non-quiet (unacked), and an acked frame was staged at the
/// receiver, keeping the receiver non-quiet until the commit bumps its
/// version — which changes the snapshot hash and voids stale confirms.
class DistributedCluster {
 public:
  struct Options {
    /// This node's principal name; must appear in `nodes`.
    std::string self;
    /// Every node of the mesh (self included), in any order. Placement
    /// facts, peer keys, and shared secrets are configured for all of
    /// them, identically to Cluster::Connect().
    std::vector<std::string> nodes;
    std::string listen_host = "127.0.0.1";
    /// 0 picks an ephemeral port (see listen_port()); peers then need
    /// AddPeer() calls with the actual ports.
    uint16_t listen_port = 0;
    /// Port for the live-introspection HTTP server (/metrics, /statusz,
    /// /explainz, /trace), bound on `listen_host`. -1 disables it; 0 picks
    /// an ephemeral port (see http_port()). The server shares the
    /// transport's epoll loop, so pages render on the fixpoint thread
    /// between waves — no locking against the engine.
    int http_port = -1;
    /// Authentication scheme installed on every node ("plaintext", "rsa",
    /// "hmac", or "" to skip).
    std::string scheme = "rsa";
    bool default_placement = true;
    /// Wall-clock seconds for credential validity checks at import.
    int64_t credential_now = 0;
    /// Abort RunToConvergence() after this much wall time.
    int64_t convergence_timeout_ms = 30000;
    /// Event-loop poll granularity inside RunToConvergence().
    int poll_interval_ms = 10;
    /// Re-broadcast the node's status at least this often (covers status
    /// frames dropped while a connection was down).
    int status_heartbeat_ms = 100;
    /// How long a terminating node keeps polling after its own decision.
    /// Status/confirm frames are best-effort: a peer whose link was down
    /// when we broadcast the final CONFIRM only gets it via the
    /// resend-on-reconnect path, which needs this window to run.
    int linger_ms = 300;
    trust::TrustRuntime::Options runtime;
    Transport::Options transport;
    /// Invoked once per RunToConvergence() loop iteration, on the driving
    /// thread. tools/lbtrust_node uses it to honor SIGUSR1 metric dumps
    /// while a run is in flight.
    std::function<void()> on_tick;
  };

  struct RunStats {
    size_t fixpoints = 0;
    size_t tuples_in = 0;   ///< tuples delivered to this node
    size_t tuples_out = 0;  ///< tuples shipped from this node
    size_t credential_imports = 0;
    /// Reliable sends refused by the bounded queue and retried later.
    size_t deferred_sends = 0;
    /// Wire-level counters (bytes/frames in+out, retries, reconnects,
    /// duplicates) — satellite 1's byte accounting for the socket path.
    TransportStats transport;
  };

  /// Creates the node: builds the runtime, configures the full mesh with
  /// deterministically derived peer keys, and starts listening.
  static util::Result<std::unique_ptr<DistributedCluster>> Create(
      Options options);

  ~DistributedCluster() { transport_.Shutdown(); }

  trust::TrustRuntime* runtime() { return runtime_.get(); }
  Transport* transport() { return &transport_; }
  uint16_t listen_port() const { return transport_.listen_port(); }

  /// The introspection server, or nullptr when Options::http_port is -1.
  obs::HttpExporter* http() { return http_.get(); }
  uint16_t http_port() const {
    return http_ != nullptr ? http_->listen_port() : 0;
  }

  /// The /statusz JSON document (node id, uptime, build info, rounds,
  /// peers + connection states, per-relation row counts). Public so tools
  /// can dump it without going through a socket.
  std::string StatusJson();

  /// Installs the per-iteration tick callback after construction (callers
  /// usually need the constructed node in the closure, which rules out the
  /// Options field).
  void set_on_tick(std::function<void()> cb) {
    options_.on_tick = std::move(cb);
  }

  /// Registers a peer's transport address (`name` must be in the mesh).
  util::Status AddPeer(const std::string& name, const std::string& host,
                       uint16_t port);

  /// Queues credential `hash` (and its link closure) from this node's
  /// store as a reliable frame to `to_node`; shipped by the next
  /// RunToConvergence() (or retried under backpressure).
  util::Status ShipCredential(const std::string& to_node,
                              const std::string& hash);

  /// Drives the node until the whole mesh terminates: alternates local
  /// fixpoints + delta shipping with transport polling, then runs the
  /// status/confirm termination protocol. Every node of the mesh must be
  /// inside RunToConvergence() concurrently for the run to terminate.
  util::Result<RunStats> RunToConvergence();

  const RunStats& stats() const { return stats_; }

  /// Mirrors this node's run counters (lbtrust_node_*), its transport's
  /// wire counters (lbtrust_transport_*), and the trust runtime's
  /// credential/crypto counters into the node's workspace metrics registry.
  /// No-op when the runtime's workspace has metrics disabled.
  void SyncMetrics();

  /// SyncMetrics() + the workspace exposition: the full per-node metrics
  /// page a scraper (or SIGUSR1 dump) sees. Socket nodes and the simulated
  /// cluster expose identical metric names, so dist_smoke.sh can diff them.
  std::string DumpMetrics();

 private:
  explicit DistributedCluster(Options options)
      : options_(std::move(options)),
        transport_(options_.self, options_.transport) {}

  util::Status OnFrame(const Frame& frame);
  /// Ships not-yet-sent placed tuples as kData frames (deferred under
  /// backpressure).
  void ShipPlaced();
  void SendReliable(const std::string& dest, Frame frame);
  void RetryDeferred();
  bool IsQuiet() const;
  /// Hash of the full sorted (node, version, quiet) status table; the
  /// termination protocol's confirmation subject.
  std::string SnapshotHash() const;
  void SendStatus(const std::string& peer_or_empty);
  /// Resends this node's latest CONFIRM (no-op before the first one).
  /// Confirms are best-effort frames, so every path that revives a link
  /// (reconnect, hello, heartbeat) pushes the current one again.
  void SendConfirm(const std::string& peer_or_empty);

  /// Registers the /metrics, /statusz, /explainz and /trace handlers and
  /// starts listening on options_.http_port (no-op when -1).
  util::Status StartHttp();

  Options options_;
  std::unique_ptr<trust::TrustRuntime> runtime_;
  Transport transport_;
  /// Declared after transport_: the exporter's fds live on the
  /// transport's loop, so it must shut down first.
  std::unique_ptr<obs::HttpExporter> http_;
  int64_t start_ms_ = 0;  ///< construction time (uptime base)
  /// Per-node sequence for trace-correlation ids ("self:wave:seq").
  uint64_t flow_seq_ = 0;
  /// Cross-round dedup of shipped tuples (interned row ids), same as the
  /// simulated cluster's per-node `sent`.
  std::set<std::string> sent_;
  /// Reliable frames that hit send-queue backpressure, retried each loop.
  std::vector<std::pair<std::string, Frame>> deferred_;
  bool dirty_ = true;
  /// Bumped on every commit that may have changed node state; part of the
  /// broadcast status, so stale CONFIRMs never match a changed snapshot.
  uint64_t version_ = 0;
  /// Last known (version, quiet) per node, self included.
  std::map<std::string, std::pair<uint64_t, bool>> node_status_;
  /// Latest CONFIRM hash per node, self included.
  std::map<std::string, std::string> confirms_;
  RunStats stats_;
};

}  // namespace lbtrust::net

#endif  // LBTRUST_NET_DISTRIBUTED_H_
