#include "net/cluster.h"

#include <algorithm>
#include <iterator>

#include "util/strings.h"

namespace lbtrust::net {

using datalog::Relation;
using datalog::Tuple;
using datalog::Value;
using datalog::ValueKind;
using trust::TrustRuntime;
using util::Result;
using util::Status;

Status ConfigureMeshNode(
    TrustRuntime* runtime,
    const std::vector<std::pair<std::string, crypto::RsaPublicKey>>&
        nodes_sorted,
    const std::string& scheme, bool default_placement) {
  const std::string& name = runtime->principal();
  datalog::Workspace* ws = runtime->workspace();
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("node", 1));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("loc", 2));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("predNode", 2));
  for (const auto& [peer, key] : nodes_sorted) {
    if (peer != name) {
      LB_RETURN_IF_ERROR(runtime->AddPeer(peer, key));
      // Pairwise HMAC secret, identical on both endpoints.
      const std::string& lo = std::min(name, peer);
      const std::string& hi = std::max(name, peer);
      LB_RETURN_IF_ERROR(
          runtime->AddSharedSecret(peer, util::StrCat("secret:", lo, ":", hi)));
    }
    if (default_placement) {
      LB_RETURN_IF_ERROR(ws->AddFact("node", {Value::Sym(peer)}));
      LB_RETURN_IF_ERROR(
          ws->AddFact("loc", {Value::Sym(peer), Value::Sym(peer)}));
    }
  }
  if (default_placement) {
    LB_RETURN_IF_ERROR(ws->Load("ld2: predNode(export[P],N) <- loc(P,N)."));
  }
  if (!scheme.empty()) {
    std::unique_ptr<trust::AuthScheme> auth = trust::MakeScheme(scheme);
    if (auth == nullptr) {
      return util::InvalidArgument(
          util::StrCat("unknown scheme '", scheme, "'"));
    }
    LB_RETURN_IF_ERROR(runtime->UseScheme(*auth).status());
  }
  return util::OkStatus();
}

std::vector<PlacedBatch> CollectPlacedBatches(datalog::Workspace* ws,
                                              const std::string& self,
                                              std::set<std::string>* sent) {
  // Placement map computed by the node's own rules: predNode(part, node).
  const Relation* pred_node = ws->GetRelation("predNode");
  std::map<std::pair<std::string, std::string>, std::string> placement;
  if (pred_node != nullptr && pred_node->arity() == 2) {
    for (uint32_t i : pred_node->Rows()) {
      Tuple t = pred_node->RowTuple(i);
      if (t[0].kind() != ValueKind::kPart ||
          t[1].kind() != ValueKind::kSymbol) {
        continue;
      }
      const datalog::PartValue& part = t[0].AsPart();
      placement[{part.predicate, part.key->ToString()}] = t[1].AsText();
    }
  }
  if (placement.empty()) return {};

  // Batch per (destination, relation): one dictionary-framed block per
  // group, so a round's worth of tuples for a peer shares one payload and
  // repeated principals/predicates ship once (per-tuple dedup across
  // rounds is `sent`, keyed on the row's interned ids).
  std::map<std::pair<std::string, std::string>, std::vector<Tuple>> batches;
  for (const auto& [pred_name, info] : ws->catalog().predicates()) {
    if (!info.partitioned) continue;
    const Relation* rel = ws->GetRelation(pred_name);
    if (rel == nullptr || rel->arity() == 0) continue;
    for (uint32_t ri : rel->Rows()) {
      auto it = placement.find({pred_name, rel->ValueAt(ri, 0).ToString()});
      if (it == placement.end() || it->second == self) continue;
      // Dedup on the row's interned ids: stable for the workspace's
      // lifetime (the pool only grows), unique per value, and far cheaper
      // than serializing the tuple a second time just for the key.
      std::string dedup_key = util::StrCat(pred_name, "|", it->second);
      const datalog::ValueId* ids = rel->RowIds(ri);
      for (size_t c = 0; c < rel->arity(); ++c) {
        dedup_key.push_back('#');
        dedup_key.append(std::to_string(ids[c].bits()));
      }
      if (!sent->insert(dedup_key).second) continue;
      batches[{it->second, pred_name}].push_back(rel->RowTuple(ri));
    }
  }
  std::vector<PlacedBatch> out;
  out.reserve(batches.size());
  for (auto& [key, tuples] : batches) {
    out.push_back(PlacedBatch{key.first, key.second, std::move(tuples)});
  }
  return out;
}

Result<TrustRuntime*> Cluster::AddNode(
    const std::string& name, trust::TrustRuntime::Options runtime_options) {
  if (nodes_.count(name) > 0) {
    return util::AlreadyExists(util::StrCat("node '", name, "' exists"));
  }
  runtime_options.principal = name;
  LB_ASSIGN_OR_RETURN(std::unique_ptr<TrustRuntime> runtime,
                      TrustRuntime::Create(runtime_options));
  NodeState state;
  state.runtime = std::move(runtime);
  auto [it, inserted] = nodes_.emplace(name, std::move(state));
  return it->second.runtime.get();
}

TrustRuntime* Cluster::node(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second.runtime.get();
}

std::vector<std::string> Cluster::node_names() const {
  std::vector<std::string> out;
  for (const auto& [name, state] : nodes_) out.push_back(name);
  return out;
}

Status Cluster::Connect() {
  // nodes_ is name-sorted; ConfigureMeshNode preserves that order, which
  // the distributed runtime replays so per-node state matches exactly.
  std::vector<std::pair<std::string, crypto::RsaPublicKey>> mesh;
  mesh.reserve(nodes_.size());
  for (auto& [name, state] : nodes_) {
    mesh.emplace_back(name, state.runtime->keypair().public_key);
  }
  for (auto& [name, state] : nodes_) {
    LB_RETURN_IF_ERROR(ConfigureMeshNode(state.runtime.get(), mesh,
                                         options_.scheme,
                                         options_.default_placement));
  }
  return util::OkStatus();
}

void Cluster::InjectTamper(const std::string& relation,
                           std::function<void(std::string*)> mutate) {
  tamper_relation_ = relation;
  tamper_ = std::move(mutate);
}

Status Cluster::ShipFrom(const std::string& name, NodeState* state,
                         std::vector<Message>* outbox) {
  const size_t nshards = options_.ship_shards > 1 ? options_.ship_shards : 1;
  for (PlacedBatch& batch : CollectPlacedBatches(
           state->runtime->workspace(), name, &state->sent)) {
    for (size_t shard = 0; shard < nshards; ++shard) {
      size_t rows = 0;
      std::string payload =
          SerializeTupleBlock(batch.tuples, shard, shard + 1, nshards, &rows);
      if (rows == 0) continue;  // empty shard range: nothing to ship
      Message msg;
      msg.kind = Message::Kind::kTupleBlock;
      msg.from_node = name;
      msg.to_node = batch.dest;
      msg.relation = batch.relation;
      msg.payload = std::move(payload);
      state->tuples_out += rows;
      outbox->push_back(std::move(msg));
    }
  }
  return util::OkStatus();
}

Status Cluster::ShipCredential(const std::string& from_node,
                               const std::string& to_node,
                               const std::string& hash) {
  auto from = nodes_.find(from_node);
  if (from == nodes_.end()) {
    return util::NotFound(util::StrCat("unknown node '", from_node, "'"));
  }
  if (nodes_.count(to_node) == 0) {
    return util::NotFound(util::StrCat("unknown node '", to_node, "'"));
  }
  Message msg;
  msg.kind = Message::Kind::kCredential;
  msg.from_node = from_node;
  msg.to_node = to_node;
  msg.relation = "credential";
  LB_ASSIGN_OR_RETURN(msg.payload,
                      from->second.runtime->ExportCredential(hash));
  pending_credentials_.push_back(std::move(msg));
  return util::OkStatus();
}

Status Cluster::Deliver(const Message& message, RunStats* stats) {
  auto it = nodes_.find(message.to_node);
  if (it == nodes_.end()) {
    return util::NotFound(
        util::StrCat("message for unknown node '", message.to_node, "'"));
  }
  std::string payload = message.payload;
  if (tamper_ && message.relation == tamper_relation_) {
    tamper_(&payload);
    tamper_ = nullptr;  // one-shot
  }
  if (message.kind == Message::Kind::kCredential) {
    LB_RETURN_IF_ERROR(it->second.runtime
                           ->ImportCredentials(payload,
                                               options_.credential_now)
                           .status());
    ++it->second.credential_imports;
    it->second.dirty = true;
    return util::OkStatus();
  }
  std::vector<Tuple> tuples;
  if (message.kind == Message::Kind::kTupleBlock) {
    LB_ASSIGN_OR_RETURN(tuples, DeserializeTupleBlock(payload));
  } else {
    LB_ASSIGN_OR_RETURN(Tuple tuple, DeserializeTuple(payload));
    tuples.push_back(std::move(tuple));
  }
  if (stats != nullptr) stats->tuples += tuples.size();
  it->second.tuples_in += tuples.size();
  // Stage into the node's inbox (the same async-import hooks the socket
  // transport uses); all messages delivered to this node in the round
  // commit as one batch with a single fixpoint.
  LB_RETURN_IF_ERROR(
      it->second.runtime->StageTuples(message.relation, std::move(tuples)));
  it->second.dirty = true;
  return util::OkStatus();
}

Result<Cluster::RunStats> Cluster::Run() {
  RunStats stats;
  // Credential bundles queued since the last Run() deliver first, so the
  // imported says-facts participate in the first fixpoint round.
  std::vector<Message> credentials = std::move(pending_credentials_);
  pending_credentials_.clear();
  for (size_t i = 0; i < credentials.size(); ++i) {
    ++stats.messages;
    ++stats.credential_messages;
    stats.bytes += credentials[i].ByteSize();
    stats.credential_bytes += credentials[i].payload.size();
    Status st = Deliver(credentials[i], &stats);
    if (!st.ok()) {
      // The rejected bundle is dropped (retrying it would fail forever),
      // but bundles not yet attempted stay queued for the next Run().
      pending_credentials_.assign(
          std::make_move_iterator(credentials.begin() + i + 1),
          std::make_move_iterator(credentials.end()));
      return Status(st.code(),
                    util::StrCat("node '", credentials[i].to_node,
                                 "': ", st.message()));
    }
  }
  // Every Run() starts from local changes possibly made since the last one.
  for (auto& [name, state] : nodes_) state.dirty = true;
  for (stats.rounds = 0; stats.rounds < options_.max_rounds; ++stats.rounds) {
    bool any_dirty = false;
    std::vector<Message> outbox;
    for (auto& [name, state] : nodes_) {
      if (!state.dirty) continue;
      any_dirty = true;
      state.dirty = false;
      // Inbound batch: apply every staged tuple, then fixpoint once.
      Status st = state.runtime->HasInbox() ? state.runtime->CommitInbox()
                                            : state.runtime->Fixpoint();
      ++stats.fixpoints;
      ++state.fixpoints;
      if (!st.ok()) {
        return Status(st.code(),
                      util::StrCat("node '", name, "': ", st.message()));
      }
      LB_RETURN_IF_ERROR(ShipFrom(name, &state, &outbox));
    }
    if (!any_dirty && outbox.empty()) break;
    for (const Message& msg : outbox) {
      ++stats.messages;
      stats.bytes += msg.ByteSize();
      stats.tuple_bytes += msg.payload.size();
      LB_RETURN_IF_ERROR(Deliver(msg, &stats));
    }
    if (outbox.empty() && !any_dirty) break;
  }
  // Round budget exhausted with deliveries still staged: apply them to the
  // nodes' EDBs (no fixpoint) so the tuples are durable — as immediate
  // delivery made them — and surface at the node's next fixpoint.
  for (auto& [name, state] : nodes_) {
    if (!state.runtime->HasInbox()) continue;
    Status st = state.runtime->CommitInboxNoFixpoint();
    if (!st.ok()) {
      return Status(st.code(),
                    util::StrCat("node '", name, "': ", st.message()));
    }
  }
  last_stats_ = stats;
  SyncMetrics();
  return stats;
}

void Cluster::SyncMetrics() {
  for (auto& [name, state] : nodes_) {
    obs::MetricsRegistry* reg = state.runtime->workspace()->metrics();
    if (reg == nullptr) continue;
    auto set = [reg](const char* counter, size_t value) {
      reg->GetCounter(counter)->Set(static_cast<uint64_t>(value));
    };
    set("lbtrust_node_fixpoints_total", state.fixpoints);
    set("lbtrust_node_tuples_in_total", state.tuples_in);
    set("lbtrust_node_tuples_out_total", state.tuples_out);
    set("lbtrust_node_credential_imports_total", state.credential_imports);
    set("lbtrust_node_deferred_sends_total", 0);
    state.runtime->SyncMetrics();
  }
}

}  // namespace lbtrust::net
