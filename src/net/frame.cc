#include "net/frame.h"

#include "util/strings.h"

namespace lbtrust::net {

namespace {

bool ValidKind(char c) {
  switch (static_cast<Frame::Kind>(c)) {
    case Frame::Kind::kHello:
    case Frame::Kind::kData:
    case Frame::Kind::kCredential:
    case Frame::Kind::kAck:
    case Frame::Kind::kStatus:
    case Frame::Kind::kConfirm:
      return true;
  }
  return false;
}

/// Longest well-formed outer prefix: 19 decimal digits (the size_t cap the
/// shared codecs use) plus the ':' terminator.
constexpr size_t kMaxHeaderBytes = 20;

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string body(1, static_cast<char>(frame.kind));
  body.push_back(':');
  body += std::to_string(frame.seq);
  body.push_back(':');
  util::AppendLengthPrefixed(&body, frame.from);
  util::AppendLengthPrefixed(&body, frame.relation);
  util::AppendLengthPrefixed(&body, frame.payload);
  // Optional 4th field: byte layout is unchanged for untraced frames.
  if (!frame.trace.empty()) {
    util::AppendLengthPrefixed(&body, frame.trace);
  }
  std::string out = std::to_string(body.size());
  out.push_back(':');
  out += body;
  return out;
}

util::Result<Frame> DecodeFrameBody(std::string_view body) {
  if (body.size() < 2 || body[1] != ':') {
    return util::ParseError("frame: truncated kind");
  }
  if (!ValidKind(body[0])) {
    return util::ParseError(
        util::StrCat("frame: unknown kind '", body[0], "'"));
  }
  Frame frame;
  frame.kind = static_cast<Frame::Kind>(body[0]);
  body.remove_prefix(2);
  size_t seq = 0;
  if (!util::ReadDecimalCount(&body, &seq, 19)) {
    return util::ParseError("frame: bad sequence number");
  }
  frame.seq = seq;
  std::string_view from, relation, payload;
  if (!util::ReadLengthPrefixed(&body, &from) ||
      !util::ReadLengthPrefixed(&body, &relation) ||
      !util::ReadLengthPrefixed(&body, &payload)) {
    return util::ParseError("frame: truncated field");
  }
  std::string_view trace;
  if (!body.empty() && !util::ReadLengthPrefixed(&body, &trace)) {
    return util::ParseError("frame: truncated trace field");
  }
  if (!body.empty()) {
    return util::ParseError("frame: trailing bytes");
  }
  frame.from = std::string(from);
  frame.relation = std::string(relation);
  frame.payload = std::string(payload);
  frame.trace = std::string(trace);
  return frame;
}

bool FrameParser::Append(std::string_view bytes) {
  if (failed_) return false;
  // While reading the header, scan incrementally so a peer streaming
  // digits (or junk) forever is cut off at kMaxHeaderBytes — and an
  // oversize declared length is rejected before `buffer_` ever holds body
  // bytes beyond what already arrived in this chunk.
  buffer_.append(bytes.data(), bytes.size());
  if (expected_ == 0) {
    size_t colon = buffer_.find(':');
    if (colon == std::string::npos) {
      if (buffer_.size() > kMaxHeaderBytes) {
        failed_ = true;
        error_ = "frame header missing length delimiter";
      }
      return !failed_;
    }
    std::string_view view(buffer_);
    size_t len = 0;
    if (!util::ReadDecimalCount(&view, &len, 19) || len == 0) {
      failed_ = true;
      error_ = "malformed frame length prefix";
      return false;
    }
    if (len > max_frame_bytes_) {
      failed_ = true;
      error_ = util::StrCat("frame of ", len, " bytes exceeds cap ",
                            max_frame_bytes_);
      return false;
    }
    expected_ = len;
    header_len_ = colon + 1;
  }
  return true;
}

util::Result<std::optional<Frame>> FrameParser::Next() {
  if (failed_) return util::ParseError(error_);
  if (expected_ == 0 || buffer_.size() < header_len_ + expected_) {
    return std::optional<Frame>(std::nullopt);
  }
  std::string_view body(buffer_.data() + header_len_, expected_);
  util::Result<Frame> frame = DecodeFrameBody(body);
  if (!frame.ok()) {
    failed_ = true;
    error_ = frame.status().message();
    return frame.status();
  }
  Frame out = std::move(*frame);
  buffer_.erase(0, header_len_ + expected_);
  expected_ = 0;
  header_len_ = 0;
  // The next frame's header may already be buffered; re-run the header
  // scan so mid_frame()/caps stay accurate without waiting for new bytes.
  if (!buffer_.empty()) {
    std::string pending;
    pending.swap(buffer_);
    if (!Append(pending)) return util::ParseError(error_);
  }
  return std::optional<Frame>(std::move(out));
}

}  // namespace lbtrust::net
