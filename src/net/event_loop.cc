#include "net/event_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "util/strings.h"

namespace lbtrust::net {

EventLoop::EventLoop() { epoll_fd_ = epoll_create1(EPOLL_CLOEXEC); }

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

util::Status EventLoop::Add(int fd, uint32_t events, Callback cb) {
  if (!valid()) return util::Internal("event loop not initialized");
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return util::Internal(
        util::StrCat("epoll_ctl(ADD) fd ", fd, ": ", std::strerror(errno)));
  }
  callbacks_[fd] = std::move(cb);
  return util::OkStatus();
}

util::Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return util::Internal(
        util::StrCat("epoll_ctl(MOD) fd ", fd, ": ", std::strerror(errno)));
  }
  return util::OkStatus();
}

void EventLoop::Remove(int fd) {
  // The kernel auto-deregisters closed fds; EPOLL_CTL_DEL on one returns
  // EBADF/ENOENT, which is fine either way.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

util::Result<int> EventLoop::PollOnce(int timeout_ms) {
  if (!valid()) return util::Internal("event loop not initialized");
  struct epoll_event ready[64];
  int n = epoll_wait(epoll_fd_, ready, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    return util::Internal(util::StrCat("epoll_wait: ", std::strerror(errno)));
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    int fd = ready[i].data.fd;
    // A callback earlier in this batch may have closed/removed this fd
    // (e.g. a peer connection torn down while processing another); look it
    // up fresh each time instead of holding an iterator.
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    Callback cb = it->second;  // copy: callback may Remove(fd) itself
    cb(ready[i].events);
    ++dispatched;
  }
  return dispatched;
}

int64_t EventLoop::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace lbtrust::net
