#ifndef LBTRUST_NET_EVENT_LOOP_H_
#define LBTRUST_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>

#include "util/status.h"

namespace lbtrust::net {

/// Thin non-blocking epoll wrapper: register file descriptors with an
/// interest mask and a callback, then drive the loop with PollOnce().
/// Single-threaded by design — the distributed node runtime drives its
/// transport (and therefore this loop) from its own run loop, so no
/// callback ever races another. Timers are the caller's job (PollOnce
/// takes a timeout; the transport computes its own deadlines).
class EventLoop {
 public:
  using Callback = std::function<void(uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool valid() const { return epoll_fd_ >= 0; }

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...); `cb` fires from
  /// PollOnce with the ready mask. The loop does NOT own the fd.
  util::Status Add(int fd, uint32_t events, Callback cb);
  /// Replaces the interest mask for a registered fd.
  util::Status Modify(int fd, uint32_t events);
  /// Deregisters; safe to call for fds the kernel already dropped.
  void Remove(int fd);

  /// Waits up to `timeout_ms` (0 = non-blocking poll, <0 = block) and
  /// dispatches ready callbacks. Returns the number of fds dispatched.
  /// Callbacks may Add/Remove fds (including their own) re-entrantly.
  util::Result<int> PollOnce(int timeout_ms);

  size_t watched() const { return callbacks_.size(); }

  /// Monotonic clock in milliseconds (steady_clock), shared so transport
  /// deadlines and backoff schedules use one time base.
  static int64_t NowMs();

 private:
  int epoll_fd_ = -1;
  std::map<int, Callback> callbacks_;
};

}  // namespace lbtrust::net

#endif  // LBTRUST_NET_EVENT_LOOP_H_
