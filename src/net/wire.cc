#include "net/wire.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/parser.h"
#include "util/strings.h"

namespace lbtrust::net {

using datalog::CodeValue;
using datalog::Tuple;
using datalog::Value;
using datalog::ValueKind;
using util::Result;

namespace {

char KindTag(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNil: return 'n';
    case ValueKind::kBool: return 'b';
    case ValueKind::kInt: return 'i';
    case ValueKind::kDouble: return 'd';
    case ValueKind::kString: return 's';
    case ValueKind::kSymbol: return 'y';
    case ValueKind::kCode: return 'c';
    case ValueKind::kPart: return 'p';
  }
  return '?';
}

char CodeTag(CodeValue::What what) {
  switch (what) {
    case CodeValue::What::kRule: return 'R';
    case CodeValue::What::kAtom: return 'A';
    case CodeValue::What::kTerm: return 'T';
    case CodeValue::What::kLiteralList: return 'L';
    case CodeValue::What::kTermList: return 'M';
  }
  return '?';
}

std::string Payload(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNil:
      return "";
    case ValueKind::kBool:
      return v.AsBool() ? "1" : "0";
    case ValueKind::kInt:
      return std::to_string(v.AsInt());
    case ValueKind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return buf;
    }
    case ValueKind::kString:
    case ValueKind::kSymbol:
      return v.AsText();
    case ValueKind::kCode:
      return util::StrCat(std::string(1, CodeTag(v.AsCode().what)), ":",
                          v.AsCode().canon);
    case ValueKind::kPart:
      return util::StrCat(v.AsPart().predicate, ":",
                          SerializeValue(*v.AsPart().key));
  }
  return "";
}

Result<Value> ParseCodePayload(std::string_view payload) {
  if (payload.size() < 2 || payload[1] != ':') {
    return util::ParseError("malformed code payload");
  }
  char tag = payload[0];
  std::string canon(payload.substr(2));
  switch (tag) {
    case 'R': {
      LB_ASSIGN_OR_RETURN(
          datalog::Term term,
          datalog::ParseTermText(util::StrCat("[| ", canon, " |]")));
      if (!term.is_constant() || term.value.kind() != ValueKind::kCode) {
        return util::ParseError("code payload did not parse to code");
      }
      return term.value;
    }
    case 'A': {
      LB_ASSIGN_OR_RETURN(datalog::Atom atom, datalog::ParseAtomText(canon));
      return Value::CodeAtom(
          std::make_shared<const datalog::Atom>(std::move(atom)));
    }
    case 'T': {
      LB_ASSIGN_OR_RETURN(datalog::Term term, datalog::ParseTermText(canon));
      if (term.is_constant()) return term.value;
      return Value::CodeTerm(
          std::make_shared<const datalog::Term>(std::move(term)));
    }
    case 'L': {
      if (canon.empty()) return Value::CodeLiteralList({});
      LB_ASSIGN_OR_RETURN(
          datalog::Rule rule,
          datalog::ParseRuleText(util::StrCat("wirelist() <- ", canon, ".")));
      return Value::CodeLiteralList(std::move(rule.body));
    }
    case 'M': {
      if (canon.empty()) return Value::CodeTermList({});
      LB_ASSIGN_OR_RETURN(
          datalog::Atom atom,
          datalog::ParseAtomText(util::StrCat("wirelist(", canon, ")")));
      return Value::CodeTermList(std::move(atom.args));
    }
    default:
      return util::ParseError("unknown code payload tag");
  }
}

}  // namespace

std::string SerializeValue(const Value& v) {
  std::string payload = Payload(v);
  std::string out(1, KindTag(v));
  out.push_back(':');
  util::AppendLengthPrefixed(&out, payload);
  return out;
}

namespace {

/// Nested part values ('p' payloads contain a serialized value) recurse;
/// hostile input must not be able to exhaust the stack.
constexpr int kMaxValueDepth = 32;

Result<Value> DeserializeValueDepth(std::string_view text, size_t* consumed,
                                    int depth) {
  if (depth > kMaxValueDepth) {
    return util::ParseError("wire value nesting too deep");
  }
  if (text.size() < 4 || text[1] != ':') {
    return util::ParseError("truncated wire value");
  }
  char kind = text[0];
  // "<len>:<payload>" after the kind tag is the shared length-prefixed
  // framing; the helper validates the length (19-digit cap, overflow,
  // truncation) before any allocation.
  std::string_view rest = text.substr(2);
  std::string_view payload;
  if (!util::ReadLengthPrefixed(&rest, &payload)) {
    return util::ParseError("malformed wire length prefix");
  }
  *consumed = text.size() - rest.size();

  switch (kind) {
    case 'n':
      if (!payload.empty()) return util::ParseError("bad nil payload");
      return Value();
    case 'b':
      if (payload != "1" && payload != "0") {
        return util::ParseError("bad bool payload");
      }
      return Value::Bool(payload == "1");
    case 'i': {
      int64_t v = 0;
      auto [p2, ec2] =
          std::from_chars(payload.data(), payload.data() + payload.size(), v);
      if (ec2 != std::errc() || p2 != payload.data() + payload.size()) {
        return util::ParseError("bad int payload");
      }
      return Value::Int(v);
    }
    case 'd': {
      // std::from_chars for doubles is missing on some libstdc++ targets;
      // strtod on a bounded copy with full-consumption + range checks.
      std::string buf(payload);
      if (buf.empty()) return util::ParseError("bad double payload");
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(buf.c_str(), &end);
      if (end != buf.c_str() + buf.size() || errno == ERANGE) {
        return util::ParseError("bad double payload");
      }
      return Value::Double(v);
    }
    case 's':
      return Value::Str(std::string(payload));
    case 'y':
      return Value::Sym(std::string(payload));
    case 'c':
      return ParseCodePayload(payload);
    case 'p': {
      size_t sep = payload.find(':');
      if (sep == std::string_view::npos) {
        return util::ParseError("malformed part payload");
      }
      size_t inner_consumed = 0;
      LB_ASSIGN_OR_RETURN(
          Value key, DeserializeValueDepth(payload.substr(sep + 1),
                                           &inner_consumed, depth + 1));
      if (inner_consumed != payload.size() - sep - 1) {
        return util::ParseError("trailing bytes in part payload");
      }
      return Value::Part(std::string(payload.substr(0, sep)), std::move(key));
    }
    default:
      return util::ParseError(util::StrCat("unknown wire kind '", kind, "'"));
  }
}

}  // namespace

Result<Value> DeserializeValue(std::string_view text, size_t* consumed) {
  return DeserializeValueDepth(text, consumed, 0);
}

std::string SerializeTuple(const Tuple& tuple) {
  std::string out = util::StrCat(tuple.size(), ":");
  for (const Value& v : tuple) out += SerializeValue(v);
  return out;
}

namespace {

/// Shared "<decimal>:" framing (see util::ReadDecimalCount); 19 digits is
/// the size_t cap.
bool ReadCount(std::string_view* text, size_t* out) {
  return util::ReadDecimalCount(text, out, 19);
}

}  // namespace

Result<Tuple> DeserializeTuple(std::string_view text) {
  size_t count = 0;
  if (!ReadCount(&text, &count)) {
    return util::ParseError("missing tuple count");
  }
  // Every serialized value is at least 4 bytes ("n:0:"), so a count larger
  // than the remaining input is forged; reject before reserving memory.
  if (count > text.size()) {
    return util::ParseError("tuple count exceeds input size");
  }
  Tuple out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t consumed = 0;
    LB_ASSIGN_OR_RETURN(Value v, DeserializeValue(text, &consumed));
    out.push_back(std::move(v));
    text.remove_prefix(consumed);
  }
  if (!text.empty()) return util::ParseError("trailing wire bytes");
  return out;
}

size_t WireTupleShard(const Tuple& tuple, size_t shard_count) {
  if (shard_count <= 1) return 0;
  // Seed and combiner match the relation's row hash shape, but over the
  // wire codec's value bytes: serialized form is the only identity both
  // peers share (ids are pool-local).
  uint64_t h = 0x811C9DC5ULL;
  for (const Value& v : tuple) {
    h = util::HashCombine(h, std::hash<std::string>{}(SerializeValue(v)));
  }
  return static_cast<size_t>(h % shard_count);
}

std::string SerializeTupleBlock(const std::vector<Tuple>& tuples,
                                size_t shard_begin, size_t shard_end,
                                size_t shard_count, size_t* rows_out) {
  // Dictionary: first occurrence wins; identity is the serialized form
  // (exactly the per-value wire codec, so nothing new to trust).
  const bool filtered = shard_count > 1;
  std::vector<std::string> dict;
  std::unordered_map<std::string, size_t> index;
  std::string rows;
  size_t row_count = 0;
  for (const Tuple& tuple : tuples) {
    if (filtered) {
      const size_t shard = WireTupleShard(tuple, shard_count);
      if (shard < shard_begin || shard >= shard_end) continue;
    }
    ++row_count;
    rows += std::to_string(tuple.size());
    rows.push_back(':');
    for (const Value& v : tuple) {
      std::string serialized = SerializeValue(v);
      auto [it, fresh] = index.try_emplace(std::move(serialized), dict.size());
      if (fresh) dict.push_back(it->first);
      rows += std::to_string(it->second);
      rows.push_back(':');
    }
  }
  if (rows_out != nullptr) *rows_out = row_count;
  std::string out = "B:";
  out += std::to_string(dict.size());
  out.push_back(':');
  for (const std::string& entry : dict) out += entry;
  out += std::to_string(row_count);
  out.push_back(':');
  out += rows;
  return out;
}

std::string SerializeTupleBlock(const std::vector<Tuple>& tuples) {
  return SerializeTupleBlock(tuples, 0, 1, 1);
}

Result<std::vector<Tuple>> DeserializeTupleBlock(std::string_view text) {
  if (text.size() < 2 || text[0] != 'B' || text[1] != ':') {
    return util::ParseError("not a tuple block");
  }
  text.remove_prefix(2);
  size_t dict_count = 0;
  if (!ReadCount(&text, &dict_count)) {
    return util::ParseError("block: missing dictionary count");
  }
  // Every serialized value is at least 4 bytes ("n:0:"); reject forged
  // counts before reserving memory.
  if (dict_count > text.size()) {
    return util::ParseError("block: dictionary count exceeds input size");
  }
  std::vector<Value> dict;
  dict.reserve(dict_count);
  for (size_t i = 0; i < dict_count; ++i) {
    size_t consumed = 0;
    LB_ASSIGN_OR_RETURN(Value v, DeserializeValue(text, &consumed));
    dict.push_back(std::move(v));
    text.remove_prefix(consumed);
  }
  size_t row_count = 0;
  if (!ReadCount(&text, &row_count)) {
    return util::ParseError("block: missing row count");
  }
  if (row_count > text.size()) {
    return util::ParseError("block: row count exceeds input size");
  }
  std::vector<Tuple> out;
  out.reserve(row_count);
  for (size_t r = 0; r < row_count; ++r) {
    size_t arity = 0;
    if (!ReadCount(&text, &arity) || arity > 64) {
      return util::ParseError("block: bad row arity");
    }
    Tuple tuple;
    tuple.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      size_t idx = 0;
      if (!ReadCount(&text, &idx)) {
        return util::ParseError("block: bad dictionary index");
      }
      if (idx >= dict.size()) {
        return util::ParseError("block: dictionary index out of range");
      }
      tuple.push_back(dict[idx]);
    }
    out.push_back(std::move(tuple));
  }
  if (!text.empty()) return util::ParseError("block: trailing bytes");
  return out;
}

}  // namespace lbtrust::net
