#ifndef LBTRUST_NET_WIRE_H_
#define LBTRUST_NET_WIRE_H_

#include <string>
#include <string_view>

#include "datalog/value.h"
#include "util/status.h"

namespace lbtrust::net {

/// Wire format for tuples shipped between simulated nodes. Values are
/// length-prefixed and kind-tagged; quoted code travels as its canonical
/// text and is re-parsed on arrival, which exercises the same code path a
/// real distributed deployment would (§3.5).
///
///   value := <kind-char> ':' <payload-length> ':' <payload>
///   tuple := <count> ':' value*
std::string SerializeValue(const datalog::Value& value);
util::Result<datalog::Value> DeserializeValue(std::string_view text,
                                              size_t* consumed);

std::string SerializeTuple(const datalog::Tuple& tuple);
util::Result<datalog::Tuple> DeserializeTuple(std::string_view text);

/// Dictionary-framed multi-tuple block — the batched counterpart of
/// SerializeTuple. Every distinct value in the batch is serialized exactly
/// once into a per-message dictionary; rows are lists of dictionary
/// indices, so repeated principals/predicates/payloads ship once per
/// message no matter how many tuples mention them.
///
///   block := 'B' ':' <dict-count> ':' value*
///                    <row-count> ':' row*
///   row   := <arity> ':' (<dict-index> ':')*
std::string SerializeTupleBlock(const std::vector<datalog::Tuple>& tuples);

/// Stable wire-level shard router: hashes the serialized form of every
/// value in the tuple, so both ends of a connection assign the same shard
/// without sharing a value pool (engine-side row ids are pool-local and
/// never cross the wire). Returns 0 when `shard_count` <= 1.
size_t WireTupleShard(const datalog::Tuple& tuple, size_t shard_count);

/// Shard-range-filtered variant of SerializeTupleBlock: serializes only
/// the tuples whose WireTupleShard with `shard_count` lands in
/// [shard_begin, shard_end), in their original order. Lets per-peer
/// batches be built one shard range at a time without a gather pass over
/// the batch; the full range [0, shard_count) is byte-identical to the
/// unfiltered form. `rows_out`, when non-null, receives the number of
/// tuples actually serialized (so callers can skip empty sub-blocks and
/// account shipped tuples without re-hashing).
std::string SerializeTupleBlock(const std::vector<datalog::Tuple>& tuples,
                                size_t shard_begin, size_t shard_end,
                                size_t shard_count,
                                size_t* rows_out = nullptr);

util::Result<std::vector<datalog::Tuple>> DeserializeTupleBlock(
    std::string_view text);

/// One simulated network message: tuples bound for `relation` at
/// `to_node`, or a credential bundle (src/cred wire format) the receiving
/// node verifies-and-imports.
struct Message {
  enum class Kind {
    kTuple,       ///< payload = SerializeTuple output for `relation`
    kTupleBlock,  ///< payload = SerializeTupleBlock output for `relation`
    kCredential,  ///< payload = cred::SerializeBundle output
  };

  Kind kind = Kind::kTuple;
  std::string from_node;
  std::string to_node;
  std::string relation;  ///< "credential" for Kind::kCredential (tamper hook)
  std::string payload;

  size_t ByteSize() const {
    return from_node.size() + to_node.size() + relation.size() +
           payload.size();
  }
};

}  // namespace lbtrust::net

#endif  // LBTRUST_NET_WIRE_H_
