#ifndef LBTRUST_NET_CLUSTER_H_
#define LBTRUST_NET_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "trust/trust_runtime.h"
#include "util/status.h"

namespace lbtrust::net {

/// Configures one node of a full mesh, exactly as the simulated cluster's
/// Connect() does: for every node (sorted by name, self included) register
/// peer public keys and pairwise HMAC secrets, add `node`/`loc` placement
/// facts when requested, then install the ld2 placement rule and the
/// authentication scheme. Shared by Cluster (which passes the real peer
/// keys) and DistributedCluster (which derives them deterministically), so
/// per-node state — and therefore converged dumps — are byte-identical
/// across the two deployments.
util::Status ConfigureMeshNode(
    trust::TrustRuntime* runtime,
    const std::vector<std::pair<std::string, crypto::RsaPublicKey>>&
        nodes_sorted,
    const std::string& scheme, bool default_placement);

/// One (destination, relation) batch of placed tuples ready to ship.
struct PlacedBatch {
  std::string dest;
  std::string relation;
  std::vector<datalog::Tuple> tuples;
};

/// Scans the node's partitioned relations against its own predNode
/// placement map and returns the not-yet-shipped tuples batched per
/// (destination, relation), in sorted order. Shipped tuples are recorded
/// in `sent` (keyed on interned row ids) — the engine-level cross-round
/// dedup that makes at-least-once delivery idempotent end-to-end.
std::vector<PlacedBatch> CollectPlacedBatches(datalog::Workspace* workspace,
                                              const std::string& self,
                                              std::set<std::string>* sent);

/// A simulated multi-node deployment (§3.5): each node hosts one
/// TrustRuntime (a principal's context); partitioned relations are shipped
/// between nodes according to the `predNode` placement relation computed by
/// each node's own placement rules (ld2-style: predNode(export[P],N) <-
/// loc(P,N)). Delivery is reliable and in-order; rounds of local fixpoints
/// alternate with message exchange until global quiescence.
class Cluster {
 public:
  struct Options {
    /// Safety cap on fixpoint/exchange rounds.
    size_t max_rounds = 64;
    /// Authentication scheme installed on every node by Connect()
    /// ("plaintext", "rsa", "hmac", or "" to skip).
    std::string scheme = "rsa";
    /// Have Connect() install default placement: node(N) and loc(P,N)
    /// facts for every node plus the ld2 placement rule.
    bool default_placement = true;
    /// Wall-clock seconds used when receiving nodes validity-check imported
    /// credentials (0 is fine for unbounded credentials; tests pin it).
    int64_t credential_now = 0;
    /// When > 1, each (destination, relation) batch ships as up to this
    /// many messages, one per wire-shard range (WireTupleShard routing),
    /// built with the shard-filtered SerializeTupleBlock — no gather pass
    /// over the batch. Receivers are unaffected: every message is an
    /// ordinary tuple block, and delivery stays in batch order. 1 (the
    /// default) keeps the classic one-message-per-batch wire behavior.
    size_t ship_shards = 1;
  };

  Cluster() : Cluster(Options()) {}
  explicit Cluster(Options options) : options_(std::move(options)) {}

  /// Creates a node hosting a principal of the same name.
  util::Result<trust::TrustRuntime*> AddNode(
      const std::string& name,
      trust::TrustRuntime::Options runtime_options = {});

  trust::TrustRuntime* node(const std::string& name);
  std::vector<std::string> node_names() const;

  /// Full-mesh peering: every node learns every other node's public key,
  /// pairwise HMAC secrets, placement facts (if default_placement), and
  /// the configured authentication scheme.
  util::Status Connect();

  struct RunStats {
    size_t rounds = 0;
    size_t messages = 0;  ///< network sends (a block message counts once)
    size_t tuples = 0;    ///< tuples delivered across all messages
    size_t bytes = 0;     ///< total wire bytes (tuple blocks + credentials)
    size_t fixpoints = 0;
    /// Per-kind byte accounting, so benches can report wire efficiency
    /// separately for fact traffic and credential-bundle traffic (the
    /// socket transport exposes the same split in TransportStats).
    size_t tuple_bytes = 0;
    size_t credential_messages = 0;
    size_t credential_bytes = 0;
  };

  /// Runs local fixpoints and ships placed partitions until no node is
  /// dirty. Constraint violations on any node abort the run with that
  /// node's status (message attribution included).
  util::Result<RunStats> Run();

  /// Queues credential `hash` (and its transitive link closure) from
  /// `from_node`'s store as a bundle message to `to_node`; the next Run()
  /// delivers it and the receiver verifies-and-imports before its first
  /// fixpoint round. Failures at the receiver abort that Run() with the
  /// node-attributed status.
  util::Status ShipCredential(const std::string& from_node,
                              const std::string& to_node,
                              const std::string& hash);

  /// Test hook: tamper with the next delivery matching `relation` by
  /// applying `mutate` to the serialized tuple payload.
  void InjectTamper(const std::string& relation,
                    std::function<void(std::string*)> mutate);

  /// Mirrors every node's per-node counters (fixpoints, tuples shipped and
  /// delivered, credential imports) plus its trust-runtime counters into
  /// that node's workspace metrics registry, under the same
  /// `lbtrust_node_*` names the socket deployment exposes — the oracle
  /// side of dist_smoke.sh's counter reconciliation. Run() calls this
  /// before returning; it is public for tools that dump between runs.
  void SyncMetrics();

 private:
  struct NodeState {
    std::unique_ptr<trust::TrustRuntime> runtime;
    bool dirty = true;
    /// Dedup of already-shipped tuples (interned row ids), shared with
    /// CollectPlacedBatches. Inbound tuples stage in the runtime's inbox
    /// (TrustRuntime::StageTuples), the same async-import hooks the socket
    /// transport uses.
    std::set<std::string> sent;
    /// Per-node counters mirroring DistributedCluster::RunStats, so sim
    /// and socket nodes expose identical lbtrust_node_* metrics.
    size_t fixpoints = 0;
    size_t tuples_in = 0;
    size_t tuples_out = 0;
    size_t credential_imports = 0;
  };

  util::Status ShipFrom(const std::string& name, NodeState* state,
                        std::vector<Message>* outbox);
  util::Status Deliver(const Message& message, RunStats* stats);

  Options options_;
  std::map<std::string, NodeState> nodes_;
  /// Credential bundles queued by ShipCredential(), delivered (and counted)
  /// at the start of the next Run().
  std::vector<Message> pending_credentials_;
  RunStats last_stats_;
  std::string tamper_relation_;
  std::function<void(std::string*)> tamper_;
};

}  // namespace lbtrust::net

#endif  // LBTRUST_NET_CLUSTER_H_
