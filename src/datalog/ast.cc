#include "datalog/ast.h"

#include <algorithm>

namespace lbtrust::datalog {

Term Term::Variable(std::string name) {
  Term t;
  t.kind = Kind::kVariable;
  t.var = std::move(name);
  return t;
}

Term Term::Constant(Value v) {
  Term t;
  t.kind = Kind::kConstant;
  t.value = std::move(v);
  return t;
}

Term Term::Me() {
  Term t;
  t.kind = Kind::kMe;
  return t;
}

Term Term::Expr(char op, Term lhs, Term rhs) {
  Term t;
  t.kind = Kind::kExpr;
  t.op = op;
  t.lhs = std::make_shared<Term>(std::move(lhs));
  t.rhs = std::make_shared<Term>(std::move(rhs));
  return t;
}

Term Term::PartRef(std::string pred, Term key) {
  Term t;
  t.kind = Kind::kPartRef;
  t.part_pred = std::move(pred);
  t.part_key = std::make_shared<Term>(std::move(key));
  return t;
}

Term Term::StarVar(std::string name) {
  Term t;
  t.kind = Kind::kStarVar;
  t.var = std::move(name);
  return t;
}

bool TermEquals(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Term::Kind::kVariable:
    case Term::Kind::kStarVar:
      return a.var == b.var;
    case Term::Kind::kConstant:
      return a.value == b.value;
    case Term::Kind::kMe:
      return true;
    case Term::Kind::kExpr:
      return a.op == b.op && TermEquals(*a.lhs, *b.lhs) &&
             TermEquals(*a.rhs, *b.rhs);
    case Term::Kind::kPartRef:
      return a.part_pred == b.part_pred &&
             TermEquals(*a.part_key, *b.part_key);
  }
  return false;
}

bool AtomEquals(const Atom& a, const Atom& b) {
  if (a.predicate != b.predicate || a.meta_functor != b.meta_functor ||
      a.meta_atom != b.meta_atom || a.star != b.star) {
    return false;
  }
  if ((a.partition == nullptr) != (b.partition == nullptr)) return false;
  if (a.partition && !TermEquals(*a.partition, *b.partition)) return false;
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!TermEquals(a.args[i], b.args[i])) return false;
  }
  return true;
}

bool RuleEquals(const Rule& a, const Rule& b) {
  if (a.heads.size() != b.heads.size() || a.body.size() != b.body.size()) {
    return false;
  }
  if (a.aggregate.has_value() != b.aggregate.has_value()) return false;
  if (a.aggregate.has_value()) {
    if (a.aggregate->fn != b.aggregate->fn ||
        a.aggregate->result_var != b.aggregate->result_var ||
        a.aggregate->input_var != b.aggregate->input_var) {
      return false;
    }
  }
  for (size_t i = 0; i < a.heads.size(); ++i) {
    if (!AtomEquals(a.heads[i], b.heads[i])) return false;
  }
  for (size_t i = 0; i < a.body.size(); ++i) {
    if (a.body[i].negated != b.body[i].negated ||
        !AtomEquals(a.body[i].atom, b.body[i].atom)) {
      return false;
    }
  }
  return true;
}

Term CloneTerm(const Term& t) {
  Term out = t;
  if (t.lhs) out.lhs = std::make_shared<Term>(CloneTerm(*t.lhs));
  if (t.rhs) out.rhs = std::make_shared<Term>(CloneTerm(*t.rhs));
  if (t.part_key) out.part_key = std::make_shared<Term>(CloneTerm(*t.part_key));
  return out;
}

Atom CloneAtom(const Atom& a) {
  Atom out = a;
  if (a.partition) {
    out.partition = std::make_shared<Term>(CloneTerm(*a.partition));
  }
  out.args.clear();
  out.args.reserve(a.args.size());
  for (const Term& t : a.args) out.args.push_back(CloneTerm(t));
  return out;
}

Rule CloneRule(const Rule& r) {
  Rule out;
  out.label = r.label;
  out.aggregate = r.aggregate;
  out.heads.reserve(r.heads.size());
  for (const Atom& h : r.heads) out.heads.push_back(CloneAtom(h));
  out.body.reserve(r.body.size());
  for (const Literal& l : r.body) {
    out.body.push_back(Literal{CloneAtom(l.atom), l.negated});
  }
  return out;
}

namespace {
void AddVar(const std::string& name, std::vector<std::string>* out) {
  if (std::find(out->begin(), out->end(), name) == out->end()) {
    out->push_back(name);
  }
}
}  // namespace

void CollectTermVars(const Term& t, std::vector<std::string>* out) {
  switch (t.kind) {
    case Term::Kind::kVariable:
    case Term::Kind::kStarVar:
      AddVar(t.var, out);
      break;
    case Term::Kind::kExpr:
      CollectTermVars(*t.lhs, out);
      CollectTermVars(*t.rhs, out);
      break;
    case Term::Kind::kPartRef:
      CollectTermVars(*t.part_key, out);
      break;
    default:
      break;  // constants (incl. quoted code) and `me` bind nothing here
  }
}

void CollectAtomVars(const Atom& a, std::vector<std::string>* out) {
  if (a.meta_atom) {
    AddVar(a.predicate, out);
    return;
  }
  if (a.meta_functor) AddVar(a.predicate, out);
  if (a.partition) CollectTermVars(*a.partition, out);
  for (const Term& t : a.args) CollectTermVars(t, out);
}

Term ResolveMeTerm(const Term& t, const std::string& principal) {
  switch (t.kind) {
    case Term::Kind::kMe:
      return Term::Constant(Value::Sym(principal));
    case Term::Kind::kExpr: {
      return Term::Expr(t.op, ResolveMeTerm(*t.lhs, principal),
                        ResolveMeTerm(*t.rhs, principal));
    }
    case Term::Kind::kPartRef:
      return Term::PartRef(t.part_pred, ResolveMeTerm(*t.part_key, principal));
    case Term::Kind::kConstant:
      if (t.value.kind() == ValueKind::kCode) {
        const CodeValue& code = t.value.AsCode();
        switch (code.what) {
          case CodeValue::What::kRule:
            return Term::Constant(Value::CodeRule(std::make_shared<const Rule>(
                ResolveMeRule(*code.rule, principal))));
          case CodeValue::What::kAtom:
            return Term::Constant(Value::CodeAtom(std::make_shared<const Atom>(
                ResolveMeAtom(*code.atom, principal))));
          case CodeValue::What::kTerm:
            return Term::Constant(Value::CodeTerm(std::make_shared<const Term>(
                ResolveMeTerm(*code.term, principal))));
          case CodeValue::What::kLiteralList:
          case CodeValue::What::kTermList:
            return t;  // list values only exist transiently during matching
        }
      }
      return t;
    default:
      return t;
  }
}

Atom ResolveMeAtom(const Atom& a, const std::string& principal) {
  Atom out = a;
  if (a.partition) {
    out.partition =
        std::make_shared<Term>(ResolveMeTerm(*a.partition, principal));
  }
  out.args.clear();
  out.args.reserve(a.args.size());
  for (const Term& t : a.args) out.args.push_back(ResolveMeTerm(t, principal));
  return out;
}

Rule ResolveMeRule(const Rule& r, const std::string& principal) {
  Rule out;
  out.label = r.label;
  out.aggregate = r.aggregate;
  out.heads.reserve(r.heads.size());
  for (const Atom& h : r.heads) out.heads.push_back(ResolveMeAtom(h, principal));
  out.body.reserve(r.body.size());
  for (const Literal& l : r.body) {
    out.body.push_back(Literal{ResolveMeAtom(l.atom, principal), l.negated});
  }
  return out;
}

}  // namespace lbtrust::datalog
