#ifndef LBTRUST_DATALOG_BUILTINS_H_
#define LBTRUST_DATALOG_BUILTINS_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"
#include "util/status.h"

namespace lbtrust::datalog {

/// Emits one solution tuple (all argument positions filled).
using EmitFn = std::function<void(const Tuple&)>;

/// A builtin receives the argument vector with bound positions engaged and
/// produces zero or more complete solutions via `emit`. Pure tests emit
/// their (fully bound) input once on success; functional builtins (e.g.
/// `rsasign`) fill output positions.
using BuiltinFn = std::function<util::Status(
    const std::vector<std::optional<Value>>& args, const EmitFn& emit)>;

/// Mode strings describe acceptable instantiation patterns, one character
/// per argument: 'b' = must be bound, 'f' = free (filled by the builtin).
/// Example: rsasign(R,S,K) has modes {"bfb", "bbb"}.
struct BuiltinDef {
  std::string name;
  size_t arity = 0;
  std::vector<std::string> modes;
  BuiltinFn fn;
};

/// Name-indexed registry; the trust layer registers the cryptographic
/// built-ins on top of the standard set.
class BuiltinRegistry {
 public:
  void Register(std::string name, size_t arity, std::vector<std::string> modes,
                BuiltinFn fn);
  const BuiltinDef* Find(const std::string& name) const;

 private:
  std::unordered_map<std::string, BuiltinDef> defs_;
};

/// Registers comparisons (<, <=, >, >=, !=) and the type-check predicates
/// the paper's declarations use:
///
///   int(X), int64(X), string(X), float(X), bool(X)   value-kind checks
///   rule(X), atom(X), term(X), variable(X),
///   constant(X), predicate(X)                        meta-model kind checks
///
/// The meta-model "types" are kind checks rather than enumerable relations
/// (the enumerable meta-model facts — head, body, functor, arg, pname, ... —
/// are real relations maintained by the reflector; see meta/meta_model.h).
void RegisterStandardBuiltins(BuiltinRegistry* registry);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_BUILTINS_H_
