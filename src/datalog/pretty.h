#ifndef LBTRUST_DATALOG_PRETTY_H_
#define LBTRUST_DATALOG_PRETTY_H_

#include <string>

#include "datalog/ast.h"

namespace lbtrust::datalog {

/// Canonical, re-parseable printing of AST nodes. Canonical forms are the
/// identity of quoted-code values, the byte string fed to the signature /
/// MAC built-ins, and the wire format between simulated nodes — so they are
/// deterministic: fixed spacing, no labels, no trailing whitespace.
std::string PrintTerm(const Term& t);
std::string PrintAtom(const Atom& a);
std::string PrintLiteral(const Literal& l);
/// "h1, h2 <- b1, !b2." — facts print as "h1." and aggregates as
/// "h <- agg<<N = count(U)>> b1, b2."
std::string PrintRule(const Rule& r);
std::string PrintConstraint(const Constraint& c);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_PRETTY_H_
