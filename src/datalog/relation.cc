#include "datalog/relation.h"

namespace lbtrust::datalog {

bool Relation::Insert(Tuple t) {
  auto [it, inserted] =
      primary_.try_emplace(std::move(t), static_cast<uint32_t>(rows_.size()));
  if (!inserted) return false;
  rows_.push_back(it->first);
  // Existing indexes are extended lazily at next lookup (built_upto).
  return true;
}

bool Relation::Contains(const Tuple& t) const { return primary_.count(t) > 0; }

bool Relation::Erase(const Tuple& t) {
  auto it = primary_.find(t);
  if (it == primary_.end()) return false;
  primary_.erase(it);
  // Rare path (retraction): rebuild rows and drop indexes.
  rows_.clear();
  rows_.reserve(primary_.size());
  for (auto& [tuple, idx] : primary_) {
    idx = static_cast<uint32_t>(rows_.size());
    rows_.push_back(tuple);
  }
  indexes_.clear();
  return true;
}

void Relation::Clear() {
  rows_.clear();
  primary_.clear();
  indexes_.clear();
}

Tuple Relation::Project(const Tuple& row, uint64_t mask) {
  Tuple key;
  key.reserve(static_cast<size_t>(__builtin_popcountll(mask)));
  for (size_t i = 0; i < row.size(); ++i) {
    if (mask & (uint64_t{1} << i)) key.push_back(row[i]);
  }
  return key;
}

void Relation::ExtendIndex(uint64_t mask, Index* index) const {
  for (size_t i = index->built_upto; i < rows_.size(); ++i) {
    index->map[Project(rows_[i], mask)].push_back(static_cast<uint32_t>(i));
  }
  index->built_upto = rows_.size();
}

const std::vector<uint32_t>& Relation::Lookup(uint64_t mask,
                                              const Tuple& key) const {
  static const std::vector<uint32_t> kEmpty;
  Index& index = indexes_[mask];
  ExtendIndex(mask, &index);
  auto it = index.map.find(key);
  return it == index.map.end() ? kEmpty : it->second;
}

bool Relation::Matches(uint64_t mask, const Tuple& key) const {
  if (mask == 0) return !rows_.empty();
  return !Lookup(mask, key).empty();
}

}  // namespace lbtrust::datalog
