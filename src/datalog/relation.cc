#include "datalog/relation.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/strings.h"

namespace lbtrust::datalog {

namespace {

/// Removes one occurrence of `value` from `ids` (swap-and-pop).
void RemoveId(std::vector<uint32_t>* ids, uint32_t value) {
  auto pos = std::find(ids->begin(), ids->end(), value);
  if (pos != ids->end()) {
    *pos = ids->back();
    ids->pop_back();
  }
}

#ifndef NDEBUG
/// RAII entry/exit marker for the lazy-probe single-thread contract.
class LazyProbeScope {
 public:
  explicit LazyProbeScope(std::atomic<int>* depth) : depth_(depth) {
    if (depth_->fetch_add(1, std::memory_order_acq_rel) != 0) {
      std::fprintf(stderr,
                   "lbtrust fatal: concurrent lazy index probes on one "
                   "Relation (BuildIndex + FreezeForRead before sharing it "
                   "across threads)\n");
      std::abort();
    }
  }
  ~LazyProbeScope() { depth_->fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::atomic<int>* depth_;
};
#endif

}  // namespace

void Relation::Fail(const char* msg) const {
  std::fprintf(stderr, "lbtrust fatal: %s (relation arity=%zu rows=%zu)\n",
               msg, arity_, num_rows_);
  std::abort();
}

Relation::Relation(size_t arity, ValuePool* pool)
    : arity_(arity), pool_(pool != nullptr ? pool : ValuePool::Default()) {
  if (arity_ > kMaxArity) {
    Fail("relation arity exceeds kMaxArity (64); callers must validate "
         "before construction");
  }
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      pool_(other.pool_),
      num_rows_(other.num_rows_),
      append_only_(other.append_only_),
      frozen_(other.frozen_),
      data_(std::move(other.data_)),
      primary_slots_(std::move(other.primary_slots_)),
      row_hash_(std::move(other.row_hash_)),
      primary_used_(other.primary_used_),
      indexes_(std::move(other.indexes_)) {
  other.num_rows_ = 0;
  other.primary_used_ = 0;
  other.append_only_ = false;
  other.frozen_ = false;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  arity_ = other.arity_;
  pool_ = other.pool_;
  num_rows_ = other.num_rows_;
  append_only_ = other.append_only_;
  frozen_ = other.frozen_;
  data_ = std::move(other.data_);
  primary_slots_ = std::move(other.primary_slots_);
  row_hash_ = std::move(other.row_hash_);
  primary_used_ = other.primary_used_;
  indexes_ = std::move(other.indexes_);
  other.num_rows_ = 0;
  other.primary_used_ = 0;
  other.append_only_ = false;
  other.frozen_ = false;
  return *this;
}

uint64_t Relation::HashRow(const ValueId* row) const {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < arity_; ++i) h = util::HashCombine(h, row[i].Hash());
  return h;
}

uint64_t Relation::HashProjected(const ValueId* row, uint64_t mask) const {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < arity_; ++i) {
    if (mask & (uint64_t{1} << i)) h = util::HashCombine(h, row[i].Hash());
  }
  return h;
}

uint64_t Relation::HashKeySpan(const ValueId* key, size_t n) {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < n; ++i) h = util::HashCombine(h, key[i].Hash());
  return h;
}

bool Relation::RowEquals(uint32_t row, const ValueId* ids) const {
  // arity 0: the empty row equals itself (and memcmp must not see null).
  if (arity_ == 0) return true;
  return std::memcmp(RowIds(row), ids, arity_ * sizeof(ValueId)) == 0;
}

bool Relation::RowMatchesKey(uint32_t row, uint64_t mask,
                             const ValueId* key) const {
  const ValueId* r = RowIds(row);
  size_t k = 0;
  for (size_t i = 0; i < arity_; ++i) {
    if (mask & (uint64_t{1} << i)) {
      if (r[i] != key[k++]) return false;
    }
  }
  return true;
}

// --- Primary set (open addressing) -----------------------------------------

void Relation::GrowPrimary(size_t min_capacity) {
  size_t cap = 16;
  while (cap < min_capacity * 2) cap <<= 1;
  primary_slots_.assign(cap, kEmptySlot);
  primary_used_ = 0;
  const size_t mask = cap - 1;
  for (size_t i = 0; i < num_rows_; ++i) {
    size_t slot = static_cast<size_t>(row_hash_[i]) & mask;
    while (primary_slots_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    primary_slots_[slot] = static_cast<uint32_t>(i);
    ++primary_used_;
  }
}

size_t Relation::FindPrimarySlot(uint32_t row_id) const {
  const size_t mask = primary_slots_.size() - 1;
  size_t slot = static_cast<size_t>(row_hash_[row_id]) & mask;
  while (primary_slots_[slot] != row_id) slot = (slot + 1) & mask;
  return slot;
}

bool Relation::InsertIds(const ValueId* row) {
  return InsertIdsHashed(row, HashRow(row));
}

bool Relation::InsertIdsHashed(const ValueId* row, uint64_t h) {
  if (frozen_) Fail("InsertIds on a frozen relation");
  if (append_only_) Fail("checked insert into an AppendUnchecked relation");
  if ((primary_used_ + 1) * 4 >= primary_slots_.size() * 3) {
    GrowPrimary(num_rows_ + 1);
  }
  const size_t mask = primary_slots_.size() - 1;
  size_t slot = static_cast<size_t>(h) & mask;
  size_t insert_at = SIZE_MAX;
  for (;;) {
    uint32_t occupant = primary_slots_[slot];
    if (occupant == kEmptySlot) break;
    if (occupant == kTombstone) {
      if (insert_at == SIZE_MAX) insert_at = slot;
    } else if (row_hash_[occupant] == h && RowEquals(occupant, row)) {
      return false;
    }
    slot = (slot + 1) & mask;
  }
  if (insert_at == SIZE_MAX) {
    insert_at = slot;
    ++primary_used_;  // consumed a fresh empty slot (tombstone reuse is free)
  }
  const uint32_t id = static_cast<uint32_t>(num_rows_++);
  primary_slots_[insert_at] = id;
  row_hash_.push_back(h);
  if (arity_ > 0) data_.insert(data_.end(), row, row + arity_);
  // Existing indexes are extended lazily at next lookup (built_upto).
  return true;
}

void Relation::AppendUnchecked(const ValueId* row) {
  if (frozen_) Fail("AppendUnchecked on a frozen relation");
  if (!append_only_ && !primary_slots_.empty()) {
    Fail("AppendUnchecked on a relation with checked rows (mixing breaks "
         "set semantics)");
  }
  append_only_ = true;
  ++num_rows_;
  row_hash_.push_back(0);  // never consulted: no primary entry exists
  if (arity_ > 0) data_.insert(data_.end(), row, row + arity_);
}

bool Relation::Insert(Tuple t) {
  if (t.size() != arity_) return false;  // boundary guard: no OOB stride
  IdTuple ids = InternTuple(pool_, t);
  return InsertIds(ids.data());
}

bool Relation::ContainsIds(const ValueId* row) const {
  return ContainsIdsHashed(row, HashRow(row));
}

bool Relation::ContainsIdsHashed(const ValueId* row, uint64_t h) const {
  if (primary_slots_.empty()) return false;
  const size_t mask = primary_slots_.size() - 1;
  size_t slot = static_cast<size_t>(h) & mask;
  for (;;) {
    uint32_t occupant = primary_slots_[slot];
    if (occupant == kEmptySlot) return false;
    if (occupant != kTombstone && row_hash_[occupant] == h &&
        RowEquals(occupant, row)) {
      return true;
    }
    slot = (slot + 1) & mask;
  }
}

bool Relation::Contains(const Tuple& t) const {
  if (t.size() != arity_) return false;
  IdTuple ids;
  if (!ProjectKey(t, &ids)) return false;
  return ContainsIds(ids.data());
}

bool Relation::EraseIds(const ValueId* row) {
  if (frozen_) Fail("EraseIds on a frozen relation");
  if (append_only_) Fail("checked erase from an AppendUnchecked relation");
  if (primary_slots_.empty()) return false;
  const uint64_t h = HashRow(row);
  const size_t pmask = primary_slots_.size() - 1;
  size_t slot = static_cast<size_t>(h) & pmask;
  uint32_t idx = kEmptySlot;
  for (;;) {
    uint32_t occupant = primary_slots_[slot];
    if (occupant == kEmptySlot) return false;
    if (occupant != kTombstone && row_hash_[occupant] == h &&
        RowEquals(occupant, row)) {
      idx = occupant;
      break;
    }
    slot = (slot + 1) & pmask;
  }

  const uint32_t last = static_cast<uint32_t>(num_rows_) - 1;
  const ValueId* moved = RowIds(last);
  // Patch every built index before touching row storage: remove the erased
  // row id and re-home the row that swap-and-pop moves from `last` to
  // `idx`. An index only knows rows below built_upto; rows at or above it
  // are picked up by the next ExtendIndex.
  for (auto& [imask, index] : indexes_) {
    const bool erased_indexed = index.built_upto > idx;
    const bool moved_indexed = index.built_upto > last;
    if (erased_indexed) {
      auto bucket = index.map.find(HashProjected(row, imask));
      if (bucket != index.map.end()) {
        RemoveId(&bucket->second, idx);
        if (bucket->second.empty()) index.map.erase(bucket);
      }
    }
    if (idx != last) {
      uint64_t mh = HashProjected(moved, imask);
      if (moved_indexed) {
        auto bucket = index.map.find(mh);
        if (bucket != index.map.end()) {
          auto pos =
              std::find(bucket->second.begin(), bucket->second.end(), last);
          if (pos != bucket->second.end()) *pos = idx;
        }
      } else if (erased_indexed) {
        // The moved row lands below built_upto without ever having been
        // indexed; index it now since ExtendIndex will not revisit idx.
        index.map[mh].push_back(idx);
      }
    }
    if (index.built_upto > last) index.built_upto = last;
  }

  primary_slots_[slot] = kTombstone;
  if (idx != last) {
    // Re-home `last` under its (unchanged) hash, then move its storage.
    primary_slots_[FindPrimarySlot(last)] = idx;
    row_hash_[idx] = row_hash_[last];
    if (arity_ > 0) {
      std::memcpy(data_.data() + size_t{idx} * arity_, moved,
                  arity_ * sizeof(ValueId));
    }
  }
  row_hash_.pop_back();
  data_.resize(data_.size() - arity_);
  --num_rows_;
  return true;
}

bool Relation::Erase(const Tuple& t) {
  if (t.size() != arity_) return false;
  IdTuple ids;
  if (!ProjectKey(t, &ids)) return false;
  return EraseIds(ids.data());
}

void Relation::Clear() {
  if (frozen_) Fail("Clear on a frozen relation");
  num_rows_ = 0;
  append_only_ = false;
  data_.clear();
  primary_slots_.clear();
  row_hash_.clear();
  primary_used_ = 0;
  indexes_.clear();
}

// --- Mask indexes -----------------------------------------------------------

void Relation::ExtendIndex(uint64_t mask, Index* index) const {
  for (size_t i = index->built_upto; i < num_rows_; ++i) {
    index->map[HashProjected(RowIds(i), mask)].push_back(
        static_cast<uint32_t>(i));
  }
  index->built_upto = num_rows_;
}

void Relation::BuildIndex(uint64_t mask) {
  if (frozen_) Fail("BuildIndex on a frozen relation (thaw first)");
  Index& index = indexes_[mask];
  if (index.built_upto < num_rows_) ExtendIndex(mask, &index);
}

const Relation::Index* Relation::FrozenIndex(uint64_t mask) const {
  auto it = indexes_.find(mask);
  if (it == indexes_.end() || it->second.built_upto != num_rows_) {
    Fail("index probe on a frozen relation without a pre-built index "
         "(call BuildIndex(mask) before FreezeForRead)");
  }
  return &it->second;
}

const Relation::Index* Relation::LazyIndex(uint64_t mask) const {
#ifndef NDEBUG
  LazyProbeScope scope(&lazy_probes_);
#endif
  Index& index = indexes_[mask];
  if (index.built_upto < num_rows_) ExtendIndex(mask, &index);
  return &index;
}

void Relation::LookupIds(uint64_t mask, const ValueId* key,
                         std::vector<uint32_t>* out) const {
  const Index* index = frozen_ ? FrozenIndex(mask) : LazyIndex(mask);
  auto it = index->map.find(
      HashKeySpan(key, static_cast<size_t>(__builtin_popcountll(mask))));
  if (it == index->map.end()) return;
  for (uint32_t id : it->second) {
    if (RowMatchesKey(id, mask, key)) out->push_back(id);
  }
}

bool Relation::MatchesIds(uint64_t mask, const ValueId* key) const {
  if (mask == 0) return num_rows_ > 0;
  const Index* index = frozen_ ? FrozenIndex(mask) : LazyIndex(mask);
  auto it = index->map.find(
      HashKeySpan(key, static_cast<size_t>(__builtin_popcountll(mask))));
  if (it == index->map.end()) return false;
  for (uint32_t id : it->second) {
    if (RowMatchesKey(id, mask, key)) return true;
  }
  return false;
}

bool Relation::ProjectKey(const Tuple& key, IdTuple* out) const {
  out->reserve(key.size());
  for (const Value& v : key) {
    ValueId id;
    if (!pool_->Find(v, &id)) return false;
    out->push_back(id);
  }
  return true;
}

std::vector<uint32_t> Relation::Lookup(uint64_t mask, const Tuple& key) const {
  std::vector<uint32_t> out;
  if (key.size() != static_cast<size_t>(__builtin_popcountll(mask))) {
    return out;  // boundary guard: key must cover exactly the bound columns
  }
  IdTuple ids;
  if (!ProjectKey(key, &ids)) return out;
  LookupIds(mask, ids.data(), &out);
  return out;
}

bool Relation::Matches(uint64_t mask, const Tuple& key) const {
  if (mask == 0) return num_rows_ > 0;
  if (key.size() != static_cast<size_t>(__builtin_popcountll(mask))) {
    return false;
  }
  IdTuple ids;
  if (!ProjectKey(key, &ids)) return false;
  return MatchesIds(mask, ids.data());
}

}  // namespace lbtrust::datalog
