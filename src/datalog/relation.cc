#include "datalog/relation.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/strings.h"

namespace lbtrust::datalog {

namespace {

/// Removes one occurrence of `value` from `ids` (swap-and-pop).
void RemoveId(std::vector<uint32_t>* ids, uint32_t value) {
  auto pos = std::find(ids->begin(), ids->end(), value);
  if (pos != ids->end()) {
    *pos = ids->back();
    ids->pop_back();
  }
}

#ifndef NDEBUG
/// RAII entry/exit marker for the lazy-probe single-thread contract.
class LazyProbeScope {
 public:
  explicit LazyProbeScope(std::atomic<int>* depth) : depth_(depth) {
    if (depth_->fetch_add(1, std::memory_order_acq_rel) != 0) {
      std::fprintf(stderr,
                   "lbtrust fatal: concurrent lazy index probes on one "
                   "Relation (BuildIndex + FreezeForRead before sharing it "
                   "across threads)\n");
      std::abort();
    }
  }
  ~LazyProbeScope() { depth_->fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::atomic<int>* depth_;
};
#endif

}  // namespace

void Relation::Fail(const char* msg) const {
  std::fprintf(stderr,
               "lbtrust fatal: %s (relation arity=%zu shards=%zu)\n", msg,
               arity_, shards_.size());
  std::abort();
}

Relation::Relation(size_t arity, ValuePool* pool, size_t shards)
    : arity_(arity), pool_(pool != nullptr ? pool : ValuePool::Default()) {
  if (arity_ > kMaxArity) {
    Fail("relation arity exceeds kMaxArity (64); callers must validate "
         "before construction");
  }
  size_t n = 1;
  uint32_t shift = 0;
  while (n < shards && n < kMaxShards) {
    n <<= 1;
    ++shift;
  }
  shards_.resize(n);
  shard_mask_ = static_cast<uint32_t>(n - 1);
  shard_shift_ = shift;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      pool_(other.pool_),
      shards_(std::move(other.shards_)),
      shard_mask_(other.shard_mask_),
      shard_shift_(other.shard_shift_),
      append_only_(other.append_only_.load(std::memory_order_relaxed)),
      frozen_(other.frozen_),
      frozen_rows_(other.frozen_rows_),
      indexes_(std::move(other.indexes_)) {
  other.shards_.clear();
  other.shards_.resize(size_t{other.shard_mask_} + 1);
  other.append_only_.store(false, std::memory_order_relaxed);
  other.frozen_ = false;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  arity_ = other.arity_;
  pool_ = other.pool_;
  shards_ = std::move(other.shards_);
  shard_mask_ = other.shard_mask_;
  shard_shift_ = other.shard_shift_;
  append_only_.store(other.append_only_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  frozen_ = other.frozen_;
  frozen_rows_ = other.frozen_rows_;
  indexes_ = std::move(other.indexes_);
  other.shards_.clear();
  other.shards_.resize(size_t{other.shard_mask_} + 1);
  other.append_only_.store(false, std::memory_order_relaxed);
  other.frozen_ = false;
  return *this;
}

uint64_t Relation::HashRow(const ValueId* row) const {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < arity_; ++i) h = util::HashCombine(h, row[i].Hash());
  return h;
}

uint64_t Relation::HashProjected(const ValueId* row, uint64_t mask) const {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < arity_; ++i) {
    if (mask & (uint64_t{1} << i)) h = util::HashCombine(h, row[i].Hash());
  }
  return h;
}

uint64_t Relation::HashKeySpan(const ValueId* key, size_t n) {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < n; ++i) h = util::HashCombine(h, key[i].Hash());
  return h;
}

bool Relation::LocalRowEquals(const Shard& s, uint32_t local,
                              const ValueId* ids) const {
  // arity 0: the empty row equals itself (and memcmp must not see null).
  if (arity_ == 0) return true;
  return std::memcmp(LocalRow(s, local), ids, arity_ * sizeof(ValueId)) == 0;
}

bool Relation::RowMatchesKey(uint32_t row, uint64_t mask,
                             const ValueId* key) const {
  const ValueId* r = RowIds(row);
  size_t k = 0;
  for (size_t i = 0; i < arity_; ++i) {
    if (mask & (uint64_t{1} << i)) {
      if (r[i] != key[k++]) return false;
    }
  }
  return true;
}

// --- Primary set (open addressing, per shard) -------------------------------

void Relation::GrowPrimary(Shard* s, size_t min_capacity) {
  size_t cap = 16;
  while (cap < min_capacity * 2) cap <<= 1;
  s->primary_slots.assign(cap, kEmptySlot);
  s->primary_used = 0;
  const size_t mask = cap - 1;
  const size_t nrows = s->row_hash.size();
  for (size_t i = 0; i < nrows; ++i) {
    size_t slot = static_cast<size_t>(s->row_hash[i]) & mask;
    while (s->primary_slots[slot] != kEmptySlot) slot = (slot + 1) & mask;
    s->primary_slots[slot] = static_cast<uint32_t>(i);
    ++s->primary_used;
  }
}

size_t Relation::FindPrimarySlot(const Shard& s, uint32_t local) const {
  const size_t mask = s.primary_slots.size() - 1;
  size_t slot = static_cast<size_t>(s.row_hash[local]) & mask;
  while (s.primary_slots[slot] != local) slot = (slot + 1) & mask;
  return slot;
}

bool Relation::InsertIds(const ValueId* row) {
  return InsertIdsHashed(row, HashRow(row));
}

bool Relation::InsertIdsHashed(const ValueId* row, uint64_t h) {
  if (frozen_) Fail("InsertIds on a frozen relation");
  if (append_only_.load(std::memory_order_relaxed)) {
    Fail("checked insert into an AppendUnchecked relation");
  }
  Shard& s = shards_[ShardOfHash(h)];
  if ((s.primary_used + 1) * 4 >= s.primary_slots.size() * 3) {
    GrowPrimary(&s, s.row_hash.size() + 1);
  }
  const size_t mask = s.primary_slots.size() - 1;
  size_t slot = static_cast<size_t>(h) & mask;
  size_t insert_at = SIZE_MAX;
  for (;;) {
    uint32_t occupant = s.primary_slots[slot];
    if (occupant == kEmptySlot) break;
    if (occupant == kTombstone) {
      if (insert_at == SIZE_MAX) insert_at = slot;
    } else if (s.row_hash[occupant] == h && LocalRowEquals(s, occupant, row)) {
      return false;
    }
    slot = (slot + 1) & mask;
  }
  if (insert_at == SIZE_MAX) {
    insert_at = slot;
    ++s.primary_used;  // consumed a fresh empty slot (tombstone reuse is free)
  }
  s.primary_slots[insert_at] = static_cast<uint32_t>(s.row_hash.size());
  s.row_hash.push_back(h);
  if (arity_ > 0) s.data.insert(s.data.end(), row, row + arity_);
  // Existing indexes are extended lazily at next lookup (built_upto).
  return true;
}

void Relation::AppendUnchecked(const ValueId* row) {
  // Single-shard relations skip the hash entirely (the classic layout);
  // sharded ones route by the row hash so placement matches the hashed
  // fast path regardless of which API appended the row.
  AppendUncheckedHashed(row, shard_mask_ == 0 ? 0 : HashRow(row));
}

void Relation::AppendUncheckedHashed(const ValueId* row, uint64_t h) {
  if (frozen_) Fail("AppendUnchecked on a frozen relation");
  Shard& s = shards_[ShardOfHash(h)];
  if (!append_only_.load(std::memory_order_relaxed)) {
    for (const Shard& sh : shards_) {
      if (!sh.primary_slots.empty()) {
        Fail("AppendUnchecked on a relation with checked rows (mixing breaks "
             "set semantics)");
      }
    }
    append_only_.store(true, std::memory_order_relaxed);
  }
  s.row_hash.push_back(0);  // never consulted: no primary entry exists
  if (arity_ > 0) s.data.insert(s.data.end(), row, row + arity_);
}

bool Relation::Insert(Tuple t) {
  if (t.size() != arity_) return false;  // boundary guard: no OOB stride
  IdTuple ids = InternTuple(pool_, t);
  return InsertIds(ids.data());
}

bool Relation::ContainsIds(const ValueId* row) const {
  return ContainsIdsHashed(row, HashRow(row));
}

bool Relation::ContainsIdsHashed(const ValueId* row, uint64_t h) const {
  const Shard& s = shards_[ShardOfHash(h)];
  if (s.primary_slots.empty()) return false;
  const size_t mask = s.primary_slots.size() - 1;
  size_t slot = static_cast<size_t>(h) & mask;
  for (;;) {
    uint32_t occupant = s.primary_slots[slot];
    if (occupant == kEmptySlot) return false;
    if (occupant != kTombstone && s.row_hash[occupant] == h &&
        LocalRowEquals(s, occupant, row)) {
      return true;
    }
    slot = (slot + 1) & mask;
  }
}

bool Relation::Contains(const Tuple& t) const {
  if (t.size() != arity_) return false;
  IdTuple ids;
  if (!ProjectKey(t, &ids)) return false;
  return ContainsIds(ids.data());
}

bool Relation::EraseIds(const ValueId* row) {
  if (frozen_) Fail("EraseIds on a frozen relation");
  if (append_only_.load(std::memory_order_relaxed)) {
    Fail("checked erase from an AppendUnchecked relation");
  }
  const uint64_t h = HashRow(row);
  const size_t shard = ShardOfHash(h);
  Shard& s = shards_[shard];
  if (s.primary_slots.empty()) return false;
  const size_t pmask = s.primary_slots.size() - 1;
  size_t slot = static_cast<size_t>(h) & pmask;
  uint32_t idx = kEmptySlot;
  for (;;) {
    uint32_t occupant = s.primary_slots[slot];
    if (occupant == kEmptySlot) return false;
    if (occupant != kTombstone && s.row_hash[occupant] == h &&
        LocalRowEquals(s, occupant, row)) {
      idx = occupant;
      break;
    }
    slot = (slot + 1) & pmask;
  }

  const uint32_t last = static_cast<uint32_t>(s.row_hash.size()) - 1;
  const ValueId* moved = LocalRow(s, last);
  const uint32_t idx_id = MakeRowId(shard, idx);
  const uint32_t last_id = MakeRowId(shard, last);
  // Patch every built index before touching row storage: remove the erased
  // row id and re-home the row that swap-and-pop moves from `last` to
  // `idx`. An index only knows this shard's rows below built_upto[shard];
  // rows at or above it are picked up by the next ExtendIndex.
  for (auto& [imask, index] : indexes_) {
    uint32_t upto =
        index.built_upto.empty() ? 0 : index.built_upto[shard];
    const bool erased_indexed = upto > idx;
    const bool moved_indexed = upto > last;
    if (erased_indexed) {
      auto bucket = index.map.find(HashProjected(row, imask));
      if (bucket != index.map.end()) {
        RemoveId(&bucket->second, idx_id);
        if (bucket->second.empty()) index.map.erase(bucket);
      }
    }
    if (idx != last) {
      uint64_t mh = HashProjected(moved, imask);
      if (moved_indexed) {
        auto bucket = index.map.find(mh);
        if (bucket != index.map.end()) {
          auto pos =
              std::find(bucket->second.begin(), bucket->second.end(), last_id);
          if (pos != bucket->second.end()) *pos = idx_id;
        }
      } else if (erased_indexed) {
        // The moved row lands below built_upto without ever having been
        // indexed; index it now since ExtendIndex will not revisit idx.
        index.map[mh].push_back(idx_id);
      }
    }
    if (upto > last) {
      index.built_rows -= upto - last;
      index.built_upto[shard] = last;
    }
  }

  s.primary_slots[slot] = kTombstone;
  if (idx != last) {
    // Re-home `last` under its (unchanged) hash, then move its storage.
    s.primary_slots[FindPrimarySlot(s, last)] = idx;
    s.row_hash[idx] = s.row_hash[last];
    if (arity_ > 0) {
      std::memcpy(s.data.data() + size_t{idx} * arity_, moved,
                  arity_ * sizeof(ValueId));
    }
  }
  s.row_hash.pop_back();
  s.data.resize(s.data.size() - arity_);
  return true;
}

bool Relation::Erase(const Tuple& t) {
  if (t.size() != arity_) return false;
  IdTuple ids;
  if (!ProjectKey(t, &ids)) return false;
  return EraseIds(ids.data());
}

void Relation::Clear() {
  if (frozen_) Fail("Clear on a frozen relation");
  append_only_.store(false, std::memory_order_relaxed);
  for (Shard& s : shards_) {
    s.data.clear();
    s.primary_slots.clear();
    s.row_hash.clear();
    s.primary_used = 0;
  }
  indexes_.clear();
}

// --- Mask indexes -----------------------------------------------------------

void Relation::ExtendIndex(uint64_t mask, Index* index) const {
  if (index->built_upto.empty()) index->built_upto.resize(shards_.size(), 0);
  if (index->map.empty()) {
    // First build (or rebuild after the map drained): reserve buckets from
    // the row count so freeze-prep on wide relations extends without
    // rehash churn.
    const size_t rows = size();
    if (rows > 0) index->map.reserve(rows);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    const size_t nrows = shards_[s].row_hash.size();
    for (size_t i = index->built_upto[s]; i < nrows; ++i) {
      index->map[HashProjected(LocalRow(shards_[s], i), mask)].push_back(
          MakeRowId(s, i));
    }
    index->built_rows += nrows - index->built_upto[s];
    index->built_upto[s] = static_cast<uint32_t>(nrows);
  }
}

void Relation::BuildIndex(uint64_t mask) {
  if (frozen_) Fail("BuildIndex on a frozen relation (thaw first)");
  Index& index = indexes_[mask];
  if (index.built_rows < size()) ExtendIndex(mask, &index);
}

const Relation::Index* Relation::FrozenIndex(uint64_t mask) const {
  auto it = indexes_.find(mask);
  if (it == indexes_.end() || it->second.built_rows != frozen_rows_) {
    Fail("index probe on a frozen relation without a pre-built index "
         "(call BuildIndex(mask) before FreezeForRead)");
  }
  return &it->second;
}

const Relation::Index* Relation::LazyIndex(uint64_t mask) const {
#ifndef NDEBUG
  LazyProbeScope scope(&lazy_probes_);
#endif
  Index& index = indexes_[mask];
  if (index.built_rows < size()) ExtendIndex(mask, &index);
  return &index;
}

void Relation::LookupIds(uint64_t mask, const ValueId* key,
                         std::vector<uint32_t>* out) const {
  const Index* index = frozen_ ? FrozenIndex(mask) : LazyIndex(mask);
  auto it = index->map.find(
      HashKeySpan(key, static_cast<size_t>(__builtin_popcountll(mask))));
  if (it == index->map.end()) return;
  for (uint32_t id : it->second) {
    if (RowMatchesKey(id, mask, key)) out->push_back(id);
  }
}

bool Relation::MatchesIds(uint64_t mask, const ValueId* key) const {
  if (mask == 0) return !empty();
  const Index* index = frozen_ ? FrozenIndex(mask) : LazyIndex(mask);
  auto it = index->map.find(
      HashKeySpan(key, static_cast<size_t>(__builtin_popcountll(mask))));
  if (it == index->map.end()) return false;
  for (uint32_t id : it->second) {
    if (RowMatchesKey(id, mask, key)) return true;
  }
  return false;
}

bool Relation::ProjectKey(const Tuple& key, IdTuple* out) const {
  out->reserve(key.size());
  for (const Value& v : key) {
    ValueId id;
    if (!pool_->Find(v, &id)) return false;
    out->push_back(id);
  }
  return true;
}

std::vector<uint32_t> Relation::Lookup(uint64_t mask, const Tuple& key) const {
  std::vector<uint32_t> out;
  if (key.size() != static_cast<size_t>(__builtin_popcountll(mask))) {
    return out;  // boundary guard: key must cover exactly the bound columns
  }
  IdTuple ids;
  if (!ProjectKey(key, &ids)) return out;
  LookupIds(mask, ids.data(), &out);
  return out;
}

bool Relation::Matches(uint64_t mask, const Tuple& key) const {
  if (mask == 0) return !empty();
  if (key.size() != static_cast<size_t>(__builtin_popcountll(mask))) {
    return false;
  }
  IdTuple ids;
  if (!ProjectKey(key, &ids)) return false;
  return MatchesIds(mask, ids.data());
}

}  // namespace lbtrust::datalog
