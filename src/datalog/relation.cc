#include "datalog/relation.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/strings.h"

namespace lbtrust::datalog {

namespace {

/// Removes one occurrence of `value` from `ids` (swap-and-pop).
void RemoveId(std::vector<uint32_t>* ids, uint32_t value) {
  auto pos = std::find(ids->begin(), ids->end(), value);
  if (pos != ids->end()) {
    *pos = ids->back();
    ids->pop_back();
  }
}

}  // namespace

uint64_t Relation::HashRow(const ValueId* row) const {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < arity_; ++i) h = util::HashCombine(h, row[i].Hash());
  return h;
}

uint64_t Relation::HashProjected(const ValueId* row, uint64_t mask) const {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < arity_; ++i) {
    if (mask & (uint64_t{1} << i)) h = util::HashCombine(h, row[i].Hash());
  }
  return h;
}

uint64_t Relation::HashKeySpan(const ValueId* key, size_t n) {
  uint64_t h = 0x811C9DC5ULL;
  for (size_t i = 0; i < n; ++i) h = util::HashCombine(h, key[i].Hash());
  return h;
}

bool Relation::RowEquals(uint32_t row, const ValueId* ids) const {
  // arity 0: the empty row equals itself (and memcmp must not see null).
  if (arity_ == 0) return true;
  return std::memcmp(RowIds(row), ids, arity_ * sizeof(ValueId)) == 0;
}

bool Relation::RowMatchesKey(uint32_t row, uint64_t mask,
                             const ValueId* key) const {
  const ValueId* r = RowIds(row);
  size_t k = 0;
  for (size_t i = 0; i < arity_; ++i) {
    if (mask & (uint64_t{1} << i)) {
      if (r[i] != key[k++]) return false;
    }
  }
  return true;
}

// --- Primary set (open addressing) -----------------------------------------

void Relation::GrowPrimary(size_t min_capacity) {
  size_t cap = 16;
  while (cap < min_capacity * 2) cap <<= 1;
  primary_slots_.assign(cap, kEmptySlot);
  primary_used_ = 0;
  const size_t mask = cap - 1;
  for (size_t i = 0; i < num_rows_; ++i) {
    size_t slot = static_cast<size_t>(row_hash_[i]) & mask;
    while (primary_slots_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    primary_slots_[slot] = static_cast<uint32_t>(i);
    ++primary_used_;
  }
}

size_t Relation::FindPrimarySlot(uint32_t row_id) const {
  const size_t mask = primary_slots_.size() - 1;
  size_t slot = static_cast<size_t>(row_hash_[row_id]) & mask;
  while (primary_slots_[slot] != row_id) slot = (slot + 1) & mask;
  return slot;
}

bool Relation::InsertIds(const ValueId* row) {
  assert(!append_only_ && "checked insert into an AppendUnchecked relation");
  if ((primary_used_ + 1) * 4 >= primary_slots_.size() * 3) {
    GrowPrimary(num_rows_ + 1);
  }
  const uint64_t h = HashRow(row);
  const size_t mask = primary_slots_.size() - 1;
  size_t slot = static_cast<size_t>(h) & mask;
  size_t insert_at = SIZE_MAX;
  for (;;) {
    uint32_t occupant = primary_slots_[slot];
    if (occupant == kEmptySlot) break;
    if (occupant == kTombstone) {
      if (insert_at == SIZE_MAX) insert_at = slot;
    } else if (row_hash_[occupant] == h && RowEquals(occupant, row)) {
      return false;
    }
    slot = (slot + 1) & mask;
  }
  if (insert_at == SIZE_MAX) {
    insert_at = slot;
    ++primary_used_;  // consumed a fresh empty slot (tombstone reuse is free)
  }
  const uint32_t id = static_cast<uint32_t>(num_rows_++);
  primary_slots_[insert_at] = id;
  row_hash_.push_back(h);
  if (arity_ > 0) data_.insert(data_.end(), row, row + arity_);
  // Existing indexes are extended lazily at next lookup (built_upto).
  return true;
}

void Relation::AppendUnchecked(const ValueId* row) {
  append_only_ = true;
  ++num_rows_;
  row_hash_.push_back(0);  // never consulted: no primary entry exists
  if (arity_ > 0) data_.insert(data_.end(), row, row + arity_);
}

bool Relation::Insert(Tuple t) {
  if (t.size() != arity_) return false;  // boundary guard: no OOB stride
  IdTuple ids = InternTuple(pool_, t);
  return InsertIds(ids.data());
}

bool Relation::ContainsIds(const ValueId* row) const {
  if (primary_slots_.empty()) return false;
  const uint64_t h = HashRow(row);
  const size_t mask = primary_slots_.size() - 1;
  size_t slot = static_cast<size_t>(h) & mask;
  for (;;) {
    uint32_t occupant = primary_slots_[slot];
    if (occupant == kEmptySlot) return false;
    if (occupant != kTombstone && row_hash_[occupant] == h &&
        RowEquals(occupant, row)) {
      return true;
    }
    slot = (slot + 1) & mask;
  }
}

bool Relation::Contains(const Tuple& t) const {
  if (t.size() != arity_) return false;
  IdTuple ids;
  if (!ProjectKey(t, &ids)) return false;
  return ContainsIds(ids.data());
}

bool Relation::EraseIds(const ValueId* row) {
  assert(!append_only_ && "checked erase from an AppendUnchecked relation");
  if (primary_slots_.empty()) return false;
  const uint64_t h = HashRow(row);
  const size_t pmask = primary_slots_.size() - 1;
  size_t slot = static_cast<size_t>(h) & pmask;
  uint32_t idx = kEmptySlot;
  for (;;) {
    uint32_t occupant = primary_slots_[slot];
    if (occupant == kEmptySlot) return false;
    if (occupant != kTombstone && row_hash_[occupant] == h &&
        RowEquals(occupant, row)) {
      idx = occupant;
      break;
    }
    slot = (slot + 1) & pmask;
  }

  const uint32_t last = static_cast<uint32_t>(num_rows_) - 1;
  const ValueId* moved = RowIds(last);
  // Patch every built index before touching row storage: remove the erased
  // row id and re-home the row that swap-and-pop moves from `last` to
  // `idx`. An index only knows rows below built_upto; rows at or above it
  // are picked up by the next ExtendIndex.
  for (auto& [imask, index] : indexes_) {
    const bool erased_indexed = index.built_upto > idx;
    const bool moved_indexed = index.built_upto > last;
    if (erased_indexed) {
      auto bucket = index.map.find(HashProjected(row, imask));
      if (bucket != index.map.end()) {
        RemoveId(&bucket->second, idx);
        if (bucket->second.empty()) index.map.erase(bucket);
      }
    }
    if (idx != last) {
      uint64_t mh = HashProjected(moved, imask);
      if (moved_indexed) {
        auto bucket = index.map.find(mh);
        if (bucket != index.map.end()) {
          auto pos =
              std::find(bucket->second.begin(), bucket->second.end(), last);
          if (pos != bucket->second.end()) *pos = idx;
        }
      } else if (erased_indexed) {
        // The moved row lands below built_upto without ever having been
        // indexed; index it now since ExtendIndex will not revisit idx.
        index.map[mh].push_back(idx);
      }
    }
    if (index.built_upto > last) index.built_upto = last;
  }

  primary_slots_[slot] = kTombstone;
  if (idx != last) {
    // Re-home `last` under its (unchanged) hash, then move its storage.
    primary_slots_[FindPrimarySlot(last)] = idx;
    row_hash_[idx] = row_hash_[last];
    if (arity_ > 0) {
      std::memcpy(data_.data() + size_t{idx} * arity_, moved,
                  arity_ * sizeof(ValueId));
    }
  }
  row_hash_.pop_back();
  data_.resize(data_.size() - arity_);
  --num_rows_;
  return true;
}

bool Relation::Erase(const Tuple& t) {
  if (t.size() != arity_) return false;
  IdTuple ids;
  if (!ProjectKey(t, &ids)) return false;
  return EraseIds(ids.data());
}

void Relation::Clear() {
  num_rows_ = 0;
  append_only_ = false;
  data_.clear();
  primary_slots_.clear();
  row_hash_.clear();
  primary_used_ = 0;
  indexes_.clear();
}

// --- Mask indexes -----------------------------------------------------------

void Relation::ExtendIndex(uint64_t mask, Index* index) const {
  for (size_t i = index->built_upto; i < num_rows_; ++i) {
    index->map[HashProjected(RowIds(i), mask)].push_back(
        static_cast<uint32_t>(i));
  }
  index->built_upto = num_rows_;
}

void Relation::LookupIds(uint64_t mask, const ValueId* key,
                         std::vector<uint32_t>* out) const {
  Index& index = indexes_[mask];
  ExtendIndex(mask, &index);
  auto it = index.map.find(
      HashKeySpan(key, static_cast<size_t>(__builtin_popcountll(mask))));
  if (it == index.map.end()) return;
  for (uint32_t id : it->second) {
    if (RowMatchesKey(id, mask, key)) out->push_back(id);
  }
}

bool Relation::MatchesIds(uint64_t mask, const ValueId* key) const {
  if (mask == 0) return num_rows_ > 0;
  Index& index = indexes_[mask];
  ExtendIndex(mask, &index);
  auto it = index.map.find(
      HashKeySpan(key, static_cast<size_t>(__builtin_popcountll(mask))));
  if (it == index.map.end()) return false;
  for (uint32_t id : it->second) {
    if (RowMatchesKey(id, mask, key)) return true;
  }
  return false;
}

bool Relation::ProjectKey(const Tuple& key, IdTuple* out) const {
  out->reserve(key.size());
  for (const Value& v : key) {
    ValueId id;
    if (!pool_->Find(v, &id)) return false;
    out->push_back(id);
  }
  return true;
}

std::vector<uint32_t> Relation::Lookup(uint64_t mask, const Tuple& key) const {
  std::vector<uint32_t> out;
  if (key.size() != static_cast<size_t>(__builtin_popcountll(mask))) {
    return out;  // boundary guard: key must cover exactly the bound columns
  }
  IdTuple ids;
  if (!ProjectKey(key, &ids)) return out;
  LookupIds(mask, ids.data(), &out);
  return out;
}

bool Relation::Matches(uint64_t mask, const Tuple& key) const {
  if (mask == 0) return num_rows_ > 0;
  if (key.size() != static_cast<size_t>(__builtin_popcountll(mask))) {
    return false;
  }
  IdTuple ids;
  if (!ProjectKey(key, &ids)) return false;
  return MatchesIds(mask, ids.data());
}

}  // namespace lbtrust::datalog
