#include "datalog/relation.h"

#include <algorithm>

namespace lbtrust::datalog {

bool Relation::Insert(Tuple t) {
  auto [it, inserted] =
      primary_.try_emplace(std::move(t), static_cast<uint32_t>(rows_.size()));
  if (!inserted) return false;
  rows_.push_back(it->first);
  // Existing indexes are extended lazily at next lookup (built_upto).
  return true;
}

bool Relation::Contains(const Tuple& t) const { return primary_.count(t) > 0; }

bool Relation::Erase(const Tuple& t) {
  auto it = primary_.find(t);
  if (it == primary_.end()) return false;
  const uint32_t idx = it->second;
  const uint32_t last = static_cast<uint32_t>(rows_.size()) - 1;
  // Patch every built index before touching rows_: remove the erased row id
  // and re-home the row that swap-and-pop moves from `last` to `idx`. An
  // index only knows rows below built_upto; rows at or above it are picked
  // up by the next ExtendIndex.
  for (auto& [mask, index] : indexes_) {
    const bool erased_indexed = index.built_upto > idx;
    const bool moved_indexed = index.built_upto > last;
    if (erased_indexed) {
      auto bucket = index.map.find(Project(t, mask));
      if (bucket != index.map.end()) {
        auto& ids = bucket->second;
        auto pos = std::find(ids.begin(), ids.end(), idx);
        if (pos != ids.end()) {
          *pos = ids.back();
          ids.pop_back();
        }
        if (ids.empty()) index.map.erase(bucket);
      }
    }
    if (idx != last) {
      const Tuple& moved = rows_[last];
      if (moved_indexed) {
        auto& ids = index.map[Project(moved, mask)];
        auto pos = std::find(ids.begin(), ids.end(), last);
        if (pos != ids.end()) *pos = idx;
      } else if (erased_indexed) {
        // The moved row lands below built_upto without ever having been
        // indexed; index it now since ExtendIndex will not revisit idx.
        index.map[Project(moved, mask)].push_back(idx);
      }
    }
    if (index.built_upto > rows_.size() - 1) {
      index.built_upto = rows_.size() - 1;
    }
  }
  primary_.erase(it);
  if (idx != last) {
    rows_[idx] = std::move(rows_[last]);
    primary_[rows_[idx]] = idx;
  }
  rows_.pop_back();
  return true;
}

void Relation::Clear() {
  rows_.clear();
  primary_.clear();
  indexes_.clear();
}

Tuple Relation::Project(const Tuple& row, uint64_t mask) {
  Tuple key;
  key.reserve(static_cast<size_t>(__builtin_popcountll(mask)));
  for (size_t i = 0; i < row.size(); ++i) {
    if (mask & (uint64_t{1} << i)) key.push_back(row[i]);
  }
  return key;
}

void Relation::ExtendIndex(uint64_t mask, Index* index) const {
  for (size_t i = index->built_upto; i < rows_.size(); ++i) {
    index->map[Project(rows_[i], mask)].push_back(static_cast<uint32_t>(i));
  }
  index->built_upto = rows_.size();
}

const std::vector<uint32_t>& Relation::Lookup(uint64_t mask,
                                              const Tuple& key) const {
  static const std::vector<uint32_t> kEmpty;
  Index& index = indexes_[mask];
  ExtendIndex(mask, &index);
  auto it = index.map.find(key);
  return it == index.map.end() ? kEmpty : it->second;
}

bool Relation::Matches(uint64_t mask, const Tuple& key) const {
  if (mask == 0) return !rows_.empty();
  return !Lookup(mask, key).empty();
}

}  // namespace lbtrust::datalog
