#include "datalog/unify.h"

#include "util/strings.h"

namespace lbtrust::datalog {

int VarTable::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  int slot = static_cast<int>(names_.size());
  names_.push_back(name);
  index_.emplace(name, slot);
  return slot;
}

int VarTable::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

void UndoTrail(const Trail& trail, Bindings* b) {
  for (int slot : trail) b->slots[slot] = ValueId();
}

Value ValueFromTerm(const Term& t) {
  if (t.is_constant()) return t.value;
  return Value::CodeTerm(std::make_shared<const Term>(CloneTerm(t)));
}

Term TermFromValue(const Value& v) {
  if (v.kind() == ValueKind::kCode) {
    const CodeValue& code = v.AsCode();
    if (code.what == CodeValue::What::kTerm) return CloneTerm(*code.term);
  }
  return Term::Constant(v);
}

namespace {

bool BindVar(const std::string& name, const Value& value, VarTable* vars,
             Bindings* b, Trail* trail) {
  int slot = vars->Intern(name);
  b->EnsureSize(vars->size());
  ValueId id = b->pool->Intern(value);
  if (b->IsBound(slot)) return b->slots[slot] == id;
  b->slots[slot] = id;
  trail->push_back(slot);
  return true;
}

// Matches a pattern literal sequence against a target sequence. A trailing
// starred meta-atom binds the remaining target literals.
bool UnifyLiteralList(const std::vector<Literal>& pattern,
                      const std::vector<Literal>& target, VarTable* vars,
                      Bindings* b, Trail* trail) {
  size_t pi = 0, ti = 0;
  for (; pi < pattern.size(); ++pi) {
    const Literal& pl = pattern[pi];
    if (pl.atom.star) {
      if (pi + 1 != pattern.size()) return false;  // star must be last
      std::vector<Literal> rest(target.begin() + static_cast<long>(ti),
                                target.end());
      return BindVar(StarKey(pl.atom.predicate),
                     Value::CodeLiteralList(std::move(rest)), vars, b, trail);
    }
    if (ti >= target.size()) return false;
    const Literal& tl = target[ti++];
    if (pl.negated != tl.negated) return false;
    if (!UnifyAtomPattern(pl.atom, tl.atom, vars, b, trail)) return false;
  }
  return ti == target.size();
}

std::vector<Literal> AtomsToLiterals(const std::vector<Atom>& atoms) {
  std::vector<Literal> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(Literal{a, false});
  return out;
}

}  // namespace

bool UnifyTermPattern(const Term& pattern, const Term& target, VarTable* vars,
                      Bindings* b, Trail* trail) {
  switch (pattern.kind) {
    case Term::Kind::kVariable:
      // A pattern variable facing a *variable* in the target code matches
      // without binding: the target variable stands for "anything", so the
      // pattern variable stays free for later body literals to enumerate.
      // This is what makes the paper's pull rewrite (§5.1) answer a shipped
      // query pattern with concrete facts.
      if (target.is_variable()) return true;
      return BindVar(pattern.var, ValueFromTerm(target), vars, b, trail);
    case Term::Kind::kConstant:
      if (!target.is_constant()) return false;
      if (pattern.value.kind() == ValueKind::kCode &&
          target.value.kind() == ValueKind::kCode) {
        return UnifyCodeValue(pattern.value.AsCode(), target.value.AsCode(),
                              vars, b, trail);
      }
      return pattern.value == target.value;
    case Term::Kind::kMe:
      return target.kind == Term::Kind::kMe;
    case Term::Kind::kExpr:
      return target.kind == Term::Kind::kExpr && pattern.op == target.op &&
             UnifyTermPattern(*pattern.lhs, *target.lhs, vars, b, trail) &&
             UnifyTermPattern(*pattern.rhs, *target.rhs, vars, b, trail);
    case Term::Kind::kPartRef:
      return target.kind == Term::Kind::kPartRef &&
             pattern.part_pred == target.part_pred &&
             UnifyTermPattern(*pattern.part_key, *target.part_key, vars, b,
                              trail);
    case Term::Kind::kStarVar:
      return false;  // handled by argument-list matching
  }
  return false;
}

bool UnifyAtomPattern(const Atom& pattern, const Atom& target, VarTable* vars,
                      Bindings* b, Trail* trail) {
  if (pattern.meta_atom && !pattern.star) {
    // Whole-atom meta-variable binds the target atom as a code value.
    return BindVar(pattern.predicate,
                   Value::CodeAtom(std::make_shared<const Atom>(
                       CloneAtom(target))),
                   vars, b, trail);
  }
  if (target.meta_atom) return false;
  if (pattern.meta_functor) {
    if (!BindVar(pattern.predicate, Value::Sym(target.predicate), vars, b,
                 trail)) {
      return false;
    }
  } else if (pattern.predicate != target.predicate) {
    return false;
  }
  // Partition keys.
  if ((pattern.partition == nullptr) != (target.partition == nullptr)) {
    return false;
  }
  if (pattern.partition &&
      !UnifyTermPattern(*pattern.partition, *target.partition, vars, b,
                        trail)) {
    return false;
  }
  // Arguments, with trailing T*.
  size_t pi = 0;
  for (; pi < pattern.args.size(); ++pi) {
    const Term& pt = pattern.args[pi];
    if (pt.kind == Term::Kind::kStarVar) {
      if (pi + 1 != pattern.args.size()) return false;
      std::vector<Term> rest;
      for (size_t ti = pi; ti < target.args.size(); ++ti) {
        rest.push_back(CloneTerm(target.args[ti]));
      }
      return BindVar(StarKey(pt.var), Value::CodeTermList(std::move(rest)),
                     vars, b, trail);
    }
    if (pi >= target.args.size()) return false;
    if (!UnifyTermPattern(pt, target.args[pi], vars, b, trail)) return false;
  }
  return pi == target.args.size();
}

bool UnifyRulePattern(const Rule& pattern, const Rule& target, VarTable* vars,
                      Bindings* b, Trail* trail) {
  // Aggregates must agree literally (no paper pattern quantifies over them).
  if (pattern.aggregate.has_value() != target.aggregate.has_value()) {
    return false;
  }
  if (pattern.aggregate.has_value()) {
    if (pattern.aggregate->fn != target.aggregate->fn ||
        pattern.aggregate->result_var != target.aggregate->result_var ||
        pattern.aggregate->input_var != target.aggregate->input_var) {
      return false;
    }
  }
  if (!UnifyLiteralList(AtomsToLiterals(pattern.heads),
                        AtomsToLiterals(target.heads), vars, b, trail)) {
    return false;
  }
  return UnifyLiteralList(pattern.body, target.body, vars, b, trail);
}

bool UnifyCodeValue(const CodeValue& pattern, const CodeValue& target,
                    VarTable* vars, Bindings* b, Trail* trail) {
  if (pattern.what != target.what) return false;
  switch (pattern.what) {
    case CodeValue::What::kRule:
      return UnifyRulePattern(*pattern.rule, *target.rule, vars, b, trail);
    case CodeValue::What::kAtom:
      return UnifyAtomPattern(*pattern.atom, *target.atom, vars, b, trail);
    case CodeValue::What::kTerm:
      return UnifyTermPattern(*pattern.term, *target.term, vars, b, trail);
    case CodeValue::What::kLiteralList:
    case CodeValue::What::kTermList:
      // List-vs-list: require identical canonical form (no nested stars).
      return pattern.canon == target.canon;
  }
  return false;
}

bool UnifyTermValue(const Term& pattern, const Value& value, VarTable* vars,
                    Bindings* b, Trail* trail) {
  switch (pattern.kind) {
    case Term::Kind::kVariable:
      return BindVar(pattern.var, value, vars, b, trail);
    case Term::Kind::kConstant:
      if (pattern.value.kind() == ValueKind::kCode &&
          value.kind() == ValueKind::kCode) {
        return UnifyCodeValue(pattern.value.AsCode(), value.AsCode(), vars, b,
                              trail);
      }
      return pattern.value == value;
    case Term::Kind::kPartRef: {
      if (value.kind() != ValueKind::kPart) return false;
      const PartValue& part = value.AsPart();
      if (part.predicate != pattern.part_pred) return false;
      return UnifyTermValue(*pattern.part_key, *part.key, vars, b, trail);
    }
    case Term::Kind::kExpr: {
      // An arithmetic pattern can only check, not invert: evaluate if ground.
      util::Result<Value> v = EvalGroundTerm(pattern, *vars, *b);
      return v.ok() && *v == value;
    }
    case Term::Kind::kMe:
    case Term::Kind::kStarVar:
      return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Substitution (code construction)
// ---------------------------------------------------------------------------

namespace {

util::Result<Value> EvalBinary(char op, const Value& a, const Value& c) {
  if (!a.IsNumeric() || !c.IsNumeric()) {
    return util::TypeError(util::StrCat("arithmetic on non-numeric values: ",
                                        a.ToString(), " ", op, " ",
                                        c.ToString()));
  }
  if (a.kind() == ValueKind::kInt && c.kind() == ValueKind::kInt) {
    int64_t x = a.AsInt(), y = c.AsInt();
    switch (op) {
      case '+': return Value::Int(x + y);
      case '-': return Value::Int(x - y);
      case '*': return Value::Int(x * y);
      case '/':
        if (y == 0) return util::InvalidArgument("division by zero");
        return Value::Int(x / y);
    }
  }
  double x = a.NumericValue(), y = c.NumericValue();
  switch (op) {
    case '+': return Value::Double(x + y);
    case '-': return Value::Double(x - y);
    case '*': return Value::Double(x * y);
    case '/':
      if (y == 0) return util::InvalidArgument("division by zero");
      return Value::Double(x / y);
  }
  return util::Internal("unknown operator");
}

}  // namespace

Term SubstituteTerm(const Term& t, const VarTable& vars, const Bindings& b) {
  switch (t.kind) {
    case Term::Kind::kVariable: {
      int slot = vars.Find(t.var);
      if (slot >= 0 && b.IsBound(slot)) return TermFromValue(b.Get(slot));
      return t;
    }
    case Term::Kind::kExpr: {
      Term lhs = SubstituteTerm(*t.lhs, vars, b);
      Term rhs = SubstituteTerm(*t.rhs, vars, b);
      if (lhs.is_constant() && rhs.is_constant()) {
        util::Result<Value> v = EvalBinary(t.op, lhs.value, rhs.value);
        if (v.ok()) return Term::Constant(std::move(*v));
      }
      return Term::Expr(t.op, std::move(lhs), std::move(rhs));
    }
    case Term::Kind::kPartRef:
      return Term::PartRef(t.part_pred, SubstituteTerm(*t.part_key, vars, b));
    case Term::Kind::kConstant:
      if (t.value.kind() == ValueKind::kCode) {
        const CodeValue& code = t.value.AsCode();
        switch (code.what) {
          case CodeValue::What::kRule:
            return Term::Constant(Value::CodeRule(std::make_shared<const Rule>(
                SubstituteRule(*code.rule, vars, b))));
          case CodeValue::What::kAtom:
            return Term::Constant(Value::CodeAtom(std::make_shared<const Atom>(
                SubstituteAtom(*code.atom, vars, b))));
          case CodeValue::What::kTerm:
            return Term::Constant(Value::CodeTerm(std::make_shared<const Term>(
                SubstituteTerm(*code.term, vars, b))));
          default:
            return t;
        }
      }
      return t;
    case Term::Kind::kMe:
    case Term::Kind::kStarVar:
      return t;
  }
  return t;
}

Atom SubstituteAtom(const Atom& a, const VarTable& vars, const Bindings& b) {
  Atom out;
  out.predicate = a.predicate;
  out.meta_functor = a.meta_functor;
  out.meta_atom = a.meta_atom;
  out.star = a.star;
  if (a.meta_atom && !a.star) {
    int slot = vars.Find(a.predicate);
    if (slot >= 0 && b.IsBound(slot)) {
      Value bound = b.Get(slot);
      if (bound.kind() == ValueKind::kCode) {
        const CodeValue& code = bound.AsCode();
        if (code.what == CodeValue::What::kAtom) return CloneAtom(*code.atom);
        if (code.what == CodeValue::What::kRule && code.rule->IsFact() &&
            code.rule->heads.size() == 1) {
          return CloneAtom(code.rule->heads[0]);
        }
      }
    }
    return out;  // unbound meta atom survives as-is
  }
  if (a.meta_functor) {
    int slot = vars.Find(a.predicate);
    if (slot >= 0 && b.IsBound(slot)) {
      Value bound = b.Get(slot);
      if (bound.kind() == ValueKind::kSymbol) {
        out.predicate = bound.AsText();
        out.meta_functor = false;
      }
    }
  }
  if (a.partition) {
    out.partition =
        std::make_shared<Term>(SubstituteTerm(*a.partition, vars, b));
  }
  for (const Term& t : a.args) {
    if (t.kind == Term::Kind::kStarVar) {
      int slot = vars.Find(StarKey(t.var));
      if (slot >= 0 && b.IsBound(slot)) {
        Value bound = b.Get(slot);
        if (bound.kind() == ValueKind::kCode &&
            bound.AsCode().what == CodeValue::What::kTermList) {
          for (const Term& spliced : *bound.AsCode().terms) {
            out.args.push_back(CloneTerm(spliced));
          }
          continue;
        }
      }
      out.args.push_back(t);
      continue;
    }
    out.args.push_back(SubstituteTerm(t, vars, b));
  }
  return out;
}

Rule SubstituteRule(const Rule& r, const VarTable& vars, const Bindings& b) {
  Rule out;
  out.label = r.label;
  out.aggregate = r.aggregate;
  for (const Atom& h : r.heads) out.heads.push_back(SubstituteAtom(h, vars, b));
  for (const Literal& l : r.body) {
    if (l.atom.star) {
      int slot = vars.Find(StarKey(l.atom.predicate));
      if (slot >= 0 && b.IsBound(slot)) {
        Value bound = b.Get(slot);
        if (bound.kind() == ValueKind::kCode &&
            bound.AsCode().what == CodeValue::What::kLiteralList) {
          for (const Literal& spliced : *bound.AsCode().literals) {
            out.body.push_back(
                Literal{CloneAtom(spliced.atom), spliced.negated});
          }
          continue;
        }
      }
    }
    out.body.push_back(Literal{SubstituteAtom(l.atom, vars, b), l.negated});
  }
  return out;
}

bool TermHasUnboundVars(const Term& t, const VarTable& vars,
                        const Bindings& b) {
  switch (t.kind) {
    case Term::Kind::kVariable:
    case Term::Kind::kStarVar: {
      int slot = vars.Find(t.kind == Term::Kind::kStarVar ? StarKey(t.var)
                                                          : t.var);
      return slot < 0 || !b.IsBound(slot);
    }
    case Term::Kind::kExpr:
      return TermHasUnboundVars(*t.lhs, vars, b) ||
             TermHasUnboundVars(*t.rhs, vars, b);
    case Term::Kind::kPartRef:
      return TermHasUnboundVars(*t.part_key, vars, b);
    default:
      return false;
  }
}

util::Result<Value> EvalGroundTerm(const Term& t, const VarTable& vars,
                                   const Bindings& b) {
  switch (t.kind) {
    case Term::Kind::kVariable: {
      int slot = vars.Find(t.var);
      if (slot < 0 || !b.IsBound(slot)) {
        return util::UnsafeProgram(
            util::StrCat("unbound variable '", t.var, "'"));
      }
      return b.Get(slot);
    }
    case Term::Kind::kConstant:
      if (t.value.kind() == ValueKind::kCode) {
        // Substitute bound meta-variables into the fragment; remaining
        // variables legitimately belong to the constructed code.
        Term substituted = SubstituteTerm(t, vars, b);
        return substituted.value;
      }
      return t.value;
    case Term::Kind::kExpr: {
      LB_ASSIGN_OR_RETURN(Value lhs, EvalGroundTerm(*t.lhs, vars, b));
      LB_ASSIGN_OR_RETURN(Value rhs, EvalGroundTerm(*t.rhs, vars, b));
      return EvalBinary(t.op, lhs, rhs);
    }
    case Term::Kind::kPartRef: {
      LB_ASSIGN_OR_RETURN(Value key, EvalGroundTerm(*t.part_key, vars, b));
      return Value::Part(t.part_pred, std::move(key));
    }
    case Term::Kind::kMe:
      return util::Internal("unresolved 'me' at evaluation time");
    case Term::Kind::kStarVar:
      return util::UnsafeProgram("star variable outside quoted code");
  }
  return util::Internal("unknown term kind");
}

}  // namespace lbtrust::datalog
