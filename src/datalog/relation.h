#ifndef LBTRUST_DATALOG_RELATION_H_
#define LBTRUST_DATALOG_RELATION_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"
#include "datalog/value_pool.h"

namespace lbtrust::datalog {

/// Set-semantics tuple store over interned values. Rows live in one flat,
/// arity-strided `ValueId` buffer; the primary set and the per-mask hash
/// indexes key on 64-bit hashes of id spans (candidates are verified with
/// id compares, so correctness never depends on hash collision freedom).
/// The evaluator asks for "all rows whose columns {i: mask bit i set} equal
/// this key"; by default the first such query builds the index lazily and
/// later inserts extend it on demand.
///
/// ## Threading model
///
/// A relation has two read modes:
///
///  - **Lazy (default).** `LookupIds`/`MatchesIds` build and extend
///    `indexes_` on demand. This mutates state from `const` methods and is
///    therefore strictly single-threaded: one thread at a time may touch
///    the relation (sequential hand-off between threads is fine). Debug
///    builds detect concurrent lazy probes and abort.
///  - **Frozen.** `BuildIndex(mask)` materializes an index explicitly;
///    `FreezeForRead()` then locks the relation: every mutation hard-fails
///    and probes require their index to be pre-built, so `LookupIds`,
///    `MatchesIds`, `ContainsIds` and row reads touch no mutable state and
///    are safe from any number of concurrent readers. `Thaw()` returns to
///    lazy mode. The parallel evaluator freezes every relation a worker
///    can reach for the duration of a round.
///
/// The `Tuple`-taking methods are the boundary API: they intern (inserts)
/// or probe the pool without inserting (lookups), so a lookup for a value
/// the pool has never seen is a guaranteed miss instead of pool growth.
/// The `...Ids` methods are the engine hot path; their ids MUST come from
/// this relation's pool.
class Relation {
 public:
  /// Hard cap on columns: probe masks and projection hashes pack "column i
  /// is bound" into bit i of a uint64_t, so column indexes beyond 63 would
  /// shift out of range (UB). Enforced with kInvalidArgument at the API
  /// boundaries (Workspace::EnsurePredicate, CompileRule) and as a hard
  /// failure here as the last line of defense.
  static constexpr size_t kMaxArity = 64;

  /// `pool == nullptr` uses the process-wide ValuePool::Default() (for
  /// standalone relations in tests and tools); the engine always passes a
  /// workspace-scoped pool so ids stay comparable across its relations.
  explicit Relation(size_t arity, ValuePool* pool = nullptr);

  /// Move-only: the debug concurrency guard is not copyable, and nothing
  /// in the engine copies relations.
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  ValuePool* pool() const { return pool_; }

  /// Returns true if the tuple was new.
  bool Insert(Tuple t);
  bool InsertIds(const ValueId* row);
  /// InsertIds with the row hash precomputed via RowHash() (the parallel
  /// merge path hashes rows on worker threads).
  bool InsertIdsHashed(const ValueId* row, uint64_t hash);
  /// Appends a row WITHOUT the duplicate check or primary-set bookkeeping.
  /// For delta/seed relations whose uniqueness the caller already
  /// guarantees (the evaluator only feeds them rows that were new in the
  /// full store). Contains/Erase are unreliable on such relations; scans
  /// and mask lookups (which read only row storage) work normally. Mixing
  /// with checked mutations hard-fails in every build mode: the relation
  /// must either be append-only from birth or never see AppendUnchecked.
  void AppendUnchecked(const ValueId* row);
  bool Contains(const Tuple& t) const;
  bool ContainsIds(const ValueId* row) const;
  /// ContainsIds with the row hash precomputed via RowHash().
  bool ContainsIdsHashed(const ValueId* row, uint64_t hash) const;
  /// Removes a tuple (swap-and-pop; built indexes are patched in place, so
  /// removal cost is O(indexes), not O(rows * indexes)). Returns true if
  /// present.
  bool Erase(const Tuple& t);
  bool EraseIds(const ValueId* row);
  void Clear();

  /// The primary-set hash of a row (what InsertIdsHashed/ContainsIdsHashed
  /// expect). Pure function of the ids; safe from any thread.
  uint64_t RowHash(const ValueId* row) const { return HashRow(row); }

  /// The ids of row `i` (arity() consecutive entries). Invalidated by
  /// Insert/Erase/Clear.
  const ValueId* RowIds(size_t i) const { return data_.data() + i * arity_; }
  /// Materializes row `i` as a boundary tuple.
  Tuple RowTuple(size_t i) const {
    return MaterializeTuple(*pool_, RowIds(i), arity_);
  }
  Value ValueAt(size_t row, size_t col) const {
    return pool_->Get(RowIds(row)[col]);
  }

  /// True if row `i`'s columns selected by `mask` equal `key` (bound
  /// columns only, in column order). Read-only; used by the parallel
  /// evaluator's partitioned first-literal scans.
  bool RowMatchesKey(uint32_t row, uint64_t mask, const ValueId* key) const;

  /// Appends the row indexes matching `key` on the columns set in `mask`
  /// (LSB = column 0) to `out`. `key` holds only the bound columns, in
  /// column order — callers keep a scratch buffer, so a probe allocates
  /// nothing beyond `out`'s growth. mask == 0 is invalid (scan instead).
  void LookupIds(uint64_t mask, const ValueId* key,
                 std::vector<uint32_t>* out) const;

  /// True if at least one row matches (wildcard semantics for negation).
  /// mask == 0 asks "any row at all?".
  bool MatchesIds(uint64_t mask, const ValueId* key) const;

  /// Builds (or incrementally extends) the index for `mask` so that a
  /// frozen relation can serve LookupIds/MatchesIds on it without
  /// mutating anything. Idempotent; must not be called while frozen.
  void BuildIndex(uint64_t mask);

  /// Enters frozen read-only mode: mutations hard-fail and index probes
  /// require a prior BuildIndex for their mask. Concurrent readers are
  /// then race-free by construction.
  void FreezeForRead() { frozen_ = true; }
  /// Leaves frozen mode (single-threaded again).
  void Thaw() { frozen_ = false; }
  bool frozen() const { return frozen_; }

  /// Boundary conveniences over the id probes (tests, tools).
  std::vector<uint32_t> Lookup(uint64_t mask, const Tuple& key) const;
  bool Matches(uint64_t mask, const Tuple& key) const;

 private:
  struct Index {
    /// key-span hash -> row ids whose projection hashes there.
    std::unordered_map<uint64_t, std::vector<uint32_t>> map;
    size_t built_upto = 0;
  };

  static constexpr uint32_t kEmptySlot = 0xFFFFFFFF;
  static constexpr uint32_t kTombstone = 0xFFFFFFFE;

  /// Always-on invariant failure: message to stderr, then abort. The
  /// append-only and frozen guards must hold in Release too — violating
  /// them silently corrupts set semantics.
  [[noreturn]] void Fail(const char* msg) const;

  uint64_t HashRow(const ValueId* row) const;
  uint64_t HashProjected(const ValueId* row, uint64_t mask) const;
  static uint64_t HashKeySpan(const ValueId* key, size_t n);
  bool RowEquals(uint32_t row, const ValueId* ids) const;
  void ExtendIndex(uint64_t mask, Index* index) const;
  /// Frozen-mode index fetch: hard-fails unless BuildIndex(mask) ran and
  /// covers every row.
  const Index* FrozenIndex(uint64_t mask) const;
  /// Lazy-mode get-or-build-and-extend (single-threaded contract).
  const Index* LazyIndex(uint64_t mask) const;
  /// Projects the boundary key into ids via pool Find; false when some key
  /// value was never interned (no row can match).
  bool ProjectKey(const Tuple& key, IdTuple* out) const;

  /// Open-addressing primary set helpers.
  void GrowPrimary(size_t min_capacity);
  /// Slot index holding `row_id` (which must be present), located via its
  /// cached hash.
  size_t FindPrimarySlot(uint32_t row_id) const;

  size_t arity_;
  ValuePool* pool_;
  size_t num_rows_ = 0;
  /// Set by the first AppendUnchecked: the relation has no primary-set
  /// bookkeeping and must never see checked mutations again (hard failure
  /// in InsertIds/EraseIds — mixing would silently break set semantics).
  bool append_only_ = false;
  /// FreezeForRead() mode: mutations hard-fail, probes are read-only.
  bool frozen_ = false;
  std::vector<ValueId> data_;  ///< arity-strided row storage
  /// Set membership: open-addressing table of row ids (linear probing,
  /// power-of-two capacity, tombstoned deletes) — one flat allocation, no
  /// per-row nodes. Empty for AppendUnchecked-only (delta) relations.
  std::vector<uint32_t> primary_slots_;
  std::vector<uint64_t> row_hash_;  ///< cached HashRow per row
  size_t primary_used_ = 0;         ///< occupied slots incl. tombstones
  mutable std::unordered_map<uint64_t, Index> indexes_;
#ifndef NDEBUG
  /// Debug detector for the lazy single-threaded contract: entered on
  /// every lazy (non-frozen) index acquisition; a second concurrent entry
  /// means two threads are racing the lazy build.
  mutable std::atomic<int> lazy_probes_{0};
#endif
};

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_RELATION_H_
