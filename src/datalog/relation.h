#ifndef LBTRUST_DATALOG_RELATION_H_
#define LBTRUST_DATALOG_RELATION_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"
#include "datalog/value_pool.h"

namespace lbtrust::datalog {

/// Set-semantics tuple store over interned values, partitioned into N
/// hash-disjoint shards. Each shard keeps the pre-sharding structures —
/// a flat, arity-strided `ValueId` row buffer, an open-addressing primary
/// set over cached row hashes — and a row is routed to its shard by its
/// full-row hash, so the per-shard fast paths are unchanged. The primary
/// set and the per-mask hash indexes key on 64-bit hashes of id spans
/// (candidates are verified with id compares, so correctness never depends
/// on hash collision freedom). The evaluator asks for "all rows whose
/// columns {i: mask bit i set} equal this key"; by default the first such
/// query builds the index lazily and later inserts extend it on demand.
///
/// ## Row ids and sharding
///
/// Shard counts are powers of two (1 = the classic single-partition
/// layout; every structure then matches the pre-sharding relation bit for
/// bit). A row id packs (local row, shard) as `local << shard_shift |
/// shard`, so ids stay stable under appends to ANY shard — an id handed
/// out by LookupIds remains valid while other shards grow. Ids are
/// therefore NOT dense in [0, size()): enumerate rows with Rows() (or the
/// ShardSize/MakeRowId accessors), never by counting to size().
///
/// Routing is a pure function of the row hash (ShardOfHash), which makes
/// disjoint-shard mutation safe: two threads may Insert/Append
/// *hash-routed* rows concurrently as long as no shard is touched by both
/// — the parallel merge in eval.cc partitions shards across workers this
/// way. The row SET stored is independent of the shard count; only
/// enumeration order changes (Workspace::Dump sorts, so dumps are
/// byte-identical at any shard count).
///
/// ## Threading model
///
/// A relation has two read modes:
///
///  - **Lazy (default).** `LookupIds`/`MatchesIds` build and extend
///    `indexes_` on demand. This mutates state from `const` methods and is
///    therefore strictly single-threaded: one thread at a time may touch
///    the relation (sequential hand-off between threads is fine). Debug
///    builds detect concurrent lazy probes and abort.
///  - **Frozen.** `BuildIndex(mask)` materializes an index explicitly;
///    `FreezeForRead()` then locks the relation: every mutation hard-fails
///    and probes require their index to be pre-built, so `LookupIds`,
///    `MatchesIds`, `ContainsIds` and row reads touch no mutable state and
///    are safe from any number of concurrent readers. `Thaw()` returns to
///    lazy mode. The parallel evaluator freezes every relation a worker
///    can reach for the duration of a round.
///
/// The `Tuple`-taking methods are the boundary API: they intern (inserts)
/// or probe the pool without inserting (lookups), so a lookup for a value
/// the pool has never seen is a guaranteed miss instead of pool growth.
/// The `...Ids` methods are the engine hot path; their ids MUST come from
/// this relation's pool.
class Relation {
 public:
  /// Hard cap on columns: probe masks and projection hashes pack "column i
  /// is bound" into bit i of a uint64_t, so column indexes beyond 63 would
  /// shift out of range (UB). Enforced with kInvalidArgument at the API
  /// boundaries (Workspace::EnsurePredicate, CompileRule) and as a hard
  /// failure here as the last line of defense.
  static constexpr size_t kMaxArity = 64;
  /// Cap on shards: keeps fixed-size per-shard scratch (snapshot arrays in
  /// the evaluator's scan loops) on the stack, and 64 partitions is far
  /// beyond any worker count the merge can use.
  static constexpr size_t kMaxShards = 64;

  /// `pool == nullptr` uses the process-wide ValuePool::Default() (for
  /// standalone relations in tests and tools); the engine always passes a
  /// workspace-scoped pool so ids stay comparable across its relations.
  /// `shards` is rounded up to a power of two and clamped to kMaxShards.
  explicit Relation(size_t arity, ValuePool* pool = nullptr,
                    size_t shards = 1);

  /// Move-only: the debug concurrency guard is not copyable, and nothing
  /// in the engine copies relations.
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  size_t arity() const { return arity_; }
  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) n += s.row_hash.size();
    return n;
  }
  bool empty() const {
    for (const Shard& s : shards_) {
      if (!s.row_hash.empty()) return false;
    }
    return true;
  }
  ValuePool* pool() const { return pool_; }

  // --- Shard topology -------------------------------------------------------

  size_t shard_count() const { return shards_.size(); }
  /// Rows currently stored in shard `s`.
  size_t ShardSize(size_t s) const { return shards_[s].row_hash.size(); }
  /// Base of shard `s`'s arity-strided row storage: local row `l` starts
  /// at ShardData(s) + l * arity(). Stable only while no append to shard
  /// `s` can reallocate — i.e. while the relation is frozen (the chunked
  /// scan loops in eval.cc hoist it per shard on that basis).
  const ValueId* ShardData(size_t s) const { return shards_[s].data.data(); }
  /// The shard a row with primary hash `h` routes to. Uses the high hash
  /// bits: the per-shard primary tables slot on the low bits, so low-bit
  /// routing would collapse every shard's slot space.
  size_t ShardOfHash(uint64_t h) const {
    return static_cast<size_t>(h >> 32) & shard_mask_;
  }
  /// Packs (shard, local row) into a row id.
  uint32_t MakeRowId(size_t s, size_t local) const {
    return static_cast<uint32_t>((local << shard_shift_) | s);
  }
  size_t RowShard(uint32_t id) const { return id & shard_mask_; }

  /// Returns true if the tuple was new.
  bool Insert(Tuple t);
  bool InsertIds(const ValueId* row);
  /// InsertIds with the row hash precomputed via RowHash() (the parallel
  /// merge path hashes rows on worker threads). Touches only the shard
  /// ShardOfHash(hash) routes to, so concurrent calls are race-free as
  /// long as each thread owns a disjoint set of shards.
  bool InsertIdsHashed(const ValueId* row, uint64_t hash);
  /// Appends a row WITHOUT the duplicate check or primary-set bookkeeping.
  /// For delta/seed relations whose uniqueness the caller already
  /// guarantees (the evaluator only feeds them rows that were new in the
  /// full store). Contains/Erase are unreliable on such relations; scans
  /// and mask lookups (which read only row storage) work normally. Mixing
  /// with checked mutations hard-fails in every build mode: the relation
  /// must either be append-only from birth or never see AppendUnchecked.
  void AppendUnchecked(const ValueId* row);
  /// AppendUnchecked routed by a precomputed RowHash() — the disjoint-shard
  /// contract of InsertIdsHashed applies, so the parallel merge can append
  /// to delta relations from several workers at once.
  void AppendUncheckedHashed(const ValueId* row, uint64_t hash);
  bool Contains(const Tuple& t) const;
  bool ContainsIds(const ValueId* row) const;
  /// ContainsIds with the row hash precomputed via RowHash().
  bool ContainsIdsHashed(const ValueId* row, uint64_t hash) const;
  /// Removes a tuple (swap-and-pop within its shard; built indexes are
  /// patched in place, so removal cost is O(indexes), not
  /// O(rows * indexes)). Returns true if present.
  bool Erase(const Tuple& t);
  bool EraseIds(const ValueId* row);
  void Clear();

  /// The primary-set hash of a row (what InsertIdsHashed/ContainsIdsHashed
  /// expect). Pure function of the ids; safe from any thread.
  uint64_t RowHash(const ValueId* row) const { return HashRow(row); }

  /// The ids of the row with id `i` (arity() consecutive entries). Row ids
  /// come from LookupIds/Rows/MakeRowId; they are NOT dense positions.
  /// Invalidated by Insert/Erase/Clear on the row's shard.
  const ValueId* RowIds(size_t i) const {
    const Shard& s = shards_[i & shard_mask_];
    return s.data.data() + (i >> shard_shift_) * arity_;
  }
  /// Materializes the row with id `i` as a boundary tuple.
  Tuple RowTuple(size_t i) const {
    return MaterializeTuple(*pool_, RowIds(i), arity_);
  }
  Value ValueAt(size_t row, size_t col) const {
    return pool_->Get(RowIds(row)[col]);
  }

  // --- Enumeration ----------------------------------------------------------

  /// Shard-major row-id enumeration: all rows of shard 0 in insertion
  /// order, then shard 1, ... Deterministic for a fixed mutation history.
  /// `for (uint32_t id : rel->Rows())` replaces the pre-sharding
  /// `for (i < size())` dense loop. Iterators read live shard sizes: do
  /// not mutate the relation while enumerating (snapshot ShardSize per
  /// shard first if appends-during-scan semantics are needed, as the
  /// evaluator's recursive scans do).
  class RowIterator {
   public:
    RowIterator(const Relation* rel, size_t shard) : rel_(rel), shard_(shard) {
      SkipEmpty();
    }
    uint32_t operator*() const { return rel_->MakeRowId(shard_, local_); }
    RowIterator& operator++() {
      if (++local_ >= rel_->ShardSize(shard_)) {
        ++shard_;
        local_ = 0;
        SkipEmpty();
      }
      return *this;
    }
    bool operator!=(const RowIterator& o) const {
      return shard_ != o.shard_ || local_ != o.local_;
    }

   private:
    void SkipEmpty() {
      while (shard_ < rel_->shard_count() && rel_->ShardSize(shard_) == 0) {
        ++shard_;
      }
    }
    const Relation* rel_;
    size_t shard_;
    size_t local_ = 0;
  };
  struct RowRange {
    const Relation* rel;
    RowIterator begin() const { return RowIterator(rel, 0); }
    RowIterator end() const { return RowIterator(rel, rel->shard_count()); }
  };
  RowRange Rows() const { return RowRange{this}; }

  /// True if the row with id `row`'s columns selected by `mask` equal
  /// `key` (bound columns only, in column order). Read-only; used by the
  /// parallel evaluator's partitioned first-literal scans.
  bool RowMatchesKey(uint32_t row, uint64_t mask, const ValueId* key) const;

  /// Appends the row ids matching `key` on the columns set in `mask`
  /// (LSB = column 0) to `out`. `key` holds only the bound columns, in
  /// column order — callers keep a scratch buffer, so a probe allocates
  /// nothing beyond `out`'s growth. mask == 0 is invalid (scan instead).
  void LookupIds(uint64_t mask, const ValueId* key,
                 std::vector<uint32_t>* out) const;

  /// True if at least one row matches (wildcard semantics for negation).
  /// mask == 0 asks "any row at all?".
  bool MatchesIds(uint64_t mask, const ValueId* key) const;

  /// Builds (or incrementally extends) the index for `mask` so that a
  /// frozen relation can serve LookupIds/MatchesIds on it without
  /// mutating anything. Idempotent; must not be called while frozen.
  void BuildIndex(uint64_t mask);

  /// Enters frozen read-only mode: mutations hard-fail and index probes
  /// require a prior BuildIndex for their mask. Concurrent readers are
  /// then race-free by construction. The row count is snapshotted so the
  /// frozen index-coverage check is a single compare.
  void FreezeForRead() {
    frozen_rows_ = size();
    frozen_ = true;
  }
  /// Leaves frozen mode (single-threaded again).
  void Thaw() { frozen_ = false; }
  bool frozen() const { return frozen_; }

  /// Boundary conveniences over the id probes (tests, tools).
  std::vector<uint32_t> Lookup(uint64_t mask, const Tuple& key) const;
  bool Matches(uint64_t mask, const Tuple& key) const;

 private:
  /// One hash partition: exactly the pre-sharding relation storage, with
  /// local (per-shard) row ids inside `primary_slots`.
  struct Shard {
    std::vector<ValueId> data;  ///< arity-strided row storage
    /// Set membership: open-addressing table of local row ids (linear
    /// probing, power-of-two capacity, tombstoned deletes) — one flat
    /// allocation, no per-row nodes. Empty for AppendUnchecked-only
    /// (delta) relations.
    std::vector<uint32_t> primary_slots;
    std::vector<uint64_t> row_hash;  ///< cached HashRow per local row
    size_t primary_used = 0;         ///< occupied slots incl. tombstones
  };

  struct Index {
    /// key-span hash -> row ids whose projection hashes there. Global row
    /// ids: one map probe per lookup regardless of shard count.
    std::unordered_map<uint64_t, std::vector<uint32_t>> map;
    /// Per-shard count of local rows already indexed (lazily extended).
    std::vector<uint32_t> built_upto;
    /// Sum of built_upto: == size() iff the index covers every row
    /// (built_upto[s] never exceeds ShardSize(s)).
    size_t built_rows = 0;
  };

  static constexpr uint32_t kEmptySlot = 0xFFFFFFFF;
  static constexpr uint32_t kTombstone = 0xFFFFFFFE;

  /// Always-on invariant failure: message to stderr, then abort. The
  /// append-only and frozen guards must hold in Release too — violating
  /// them silently corrupts set semantics.
  [[noreturn]] void Fail(const char* msg) const;

  uint64_t HashRow(const ValueId* row) const;
  uint64_t HashProjected(const ValueId* row, uint64_t mask) const;
  static uint64_t HashKeySpan(const ValueId* key, size_t n);
  /// Row storage of local row `local` in shard `s`.
  const ValueId* LocalRow(const Shard& s, size_t local) const {
    return s.data.data() + local * arity_;
  }
  bool LocalRowEquals(const Shard& s, uint32_t local, const ValueId* ids) const;
  void ExtendIndex(uint64_t mask, Index* index) const;
  /// Frozen-mode index fetch: hard-fails unless BuildIndex(mask) ran and
  /// covers every row.
  const Index* FrozenIndex(uint64_t mask) const;
  /// Lazy-mode get-or-build-and-extend (single-threaded contract).
  const Index* LazyIndex(uint64_t mask) const;
  /// Projects the boundary key into ids via pool Find; false when some key
  /// value was never interned (no row can match).
  bool ProjectKey(const Tuple& key, IdTuple* out) const;

  /// Open-addressing primary set helpers (per shard).
  void GrowPrimary(Shard* s, size_t min_capacity);
  /// Slot index holding local row `local` (which must be present), located
  /// via its cached hash.
  size_t FindPrimarySlot(const Shard& s, uint32_t local) const;

  size_t arity_;
  ValuePool* pool_;
  std::vector<Shard> shards_;
  uint32_t shard_mask_ = 0;   ///< shard_count() - 1
  uint32_t shard_shift_ = 0;  ///< log2(shard_count())
  /// Set by the first AppendUnchecked: the relation has no primary-set
  /// bookkeeping and must never see checked mutations again (hard failure
  /// in InsertIds/EraseIds — mixing would silently break set semantics).
  /// Atomic (relaxed) because the parallel merge appends from several
  /// workers at once; the flag only ever goes false -> true.
  std::atomic<bool> append_only_{false};
  /// FreezeForRead() mode: mutations hard-fail, probes are read-only.
  bool frozen_ = false;
  /// Row count snapshotted by FreezeForRead (frozen probes compare index
  /// coverage against this instead of re-summing shard sizes).
  size_t frozen_rows_ = 0;
  mutable std::unordered_map<uint64_t, Index> indexes_;
#ifndef NDEBUG
  /// Debug detector for the lazy single-threaded contract: entered on
  /// every lazy (non-frozen) index acquisition; a second concurrent entry
  /// means two threads are racing the lazy build.
  mutable std::atomic<int> lazy_probes_{0};
#endif
};

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_RELATION_H_
