#ifndef LBTRUST_DATALOG_RELATION_H_
#define LBTRUST_DATALOG_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"

namespace lbtrust::datalog {

/// Set-semantics tuple store with lazily built, incrementally extended hash
/// indexes keyed by bound-column masks. The evaluator asks for "all rows
/// whose columns {i: mask bit i set} equal this key"; the first such query
/// builds the index, later inserts extend it on demand.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Returns true if the tuple was new.
  bool Insert(Tuple t);
  bool Contains(const Tuple& t) const;
  /// Removes a tuple (swap-and-pop; built indexes are patched in place, so
  /// removal cost is O(indexes), not O(rows * indexes)). Returns true if
  /// present.
  bool Erase(const Tuple& t);
  void Clear();

  const std::vector<Tuple>& rows() const { return rows_; }

  /// Row indexes matching `key` on the columns set in `mask` (LSB =
  /// column 0). `key` holds only the bound columns, in column order.
  /// mask == 0 is invalid (iterate rows() instead).
  const std::vector<uint32_t>& Lookup(uint64_t mask, const Tuple& key) const;

  /// True if at least one row matches (wildcard semantics for negation).
  bool Matches(uint64_t mask, const Tuple& key) const;

 private:
  struct Index {
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> map;
    size_t built_upto = 0;
  };

  void ExtendIndex(uint64_t mask, Index* index) const;
  static Tuple Project(const Tuple& row, uint64_t mask);

  size_t arity_;
  std::vector<Tuple> rows_;
  std::unordered_map<Tuple, uint32_t, TupleHash> primary_;
  mutable std::unordered_map<uint64_t, Index> indexes_;
};

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_RELATION_H_
