#ifndef LBTRUST_DATALOG_PARSER_H_
#define LBTRUST_DATALOG_PARSER_H_

#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace lbtrust::datalog {

/// Parses a whole program into clauses. The accepted dialect is exactly the
/// constructs used in the paper's listings — see DESIGN.md §6:
///
///   head <- body.           rules (bodies may nest , ; ! and parentheses;
///                           the parser DNF-splits into plain rules)
///   fact.                   facts
///   lhs -> rhs.             schema constraints; `p(X) ->.` declares an
///                           entity type, `p(X,Y) -> t(X), u(Y).` also
///                           records column types
///   agg<<N = count(U)>>     aggregation prefix after <-
///   [| ... |]               quoted code with meta-variables, star patterns
///   p[X](Y)                 partitioned (curried) predicates
///   me, _, 42, "s", sym, Var
util::Result<std::vector<ParsedClause>> ParseProgram(std::string_view source);

/// Parses a single clause that must be a rule or fact (multi-head and DNF
/// splitting not applied — errors if the clause would split).
util::Result<Rule> ParseRuleText(std::string_view source);

/// Parses a single atom, e.g. for queries: "access(P,O,read)".
util::Result<Atom> ParseAtomText(std::string_view source);

/// Parses a single term, e.g. "[|p(a).|]" or "42".
util::Result<Term> ParseTermText(std::string_view source);

/// A group of surface-syntax rules under one `At <context>:` header (or the
/// header-less prefix). Used by the Binder and SeNDlog front-ends (§5).
struct SurfaceUnit {
  /// Context name as written ("S" in "At S:"); empty when no header.
  std::string context;
  /// True when the context is a variable (rules are generic over the
  /// executing principal and the front-end substitutes `me` for it).
  bool context_is_variable = false;
  std::vector<Rule> rules;
};

/// Parses the trust-management surface syntax shared by Binder and SeNDlog:
///
///   At S:                       context header (SeNDlog)
///   head :- body.               rules (<- also accepted)
///   p(X,Y)@Z :- ...             export head -> says(me,Z,[| p(X,Y). |])
///   ..., W says p(X), ...       import    -> says(W,me,[| p(X). |])
///
/// The produced rules are in core form (says lowered); context variables
/// are NOT yet substituted — front-ends replace them with `me`.
util::Result<std::vector<SurfaceUnit>> ParseSurfaceProgram(
    std::string_view source);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_PARSER_H_
