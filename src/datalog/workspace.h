#ifndef LBTRUST_DATALOG_WORKSPACE_H_
#define LBTRUST_DATALOG_WORKSPACE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "datalog/builtins.h"
#include "datalog/catalog.h"
#include "datalog/eval.h"
#include "datalog/explain.h"
#include "datalog/lint.h"
#include "util/status.h"

namespace lbtrust::datalog {

class Workspace;

/// A compiled, reusable query handle — the hot read path of the session
/// model. `Workspace::Prepare()` lexes, parses, me-resolves and compiles the
/// atom pattern exactly once; every subsequent `Run()`/`Count()`/`Exists()`
/// evaluates the compiled plan directly against the current post-Fixpoint
/// store with no lexer, parser or rule-compiler involvement. Handles remain
/// valid across Fixpoint() calls, rule churn and scheme swaps (the plan
/// reads relations by name at evaluation time), so a server can prepare its
/// policy-decision queries at startup and serve every request through them.
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  /// The original pattern text, for diagnostics.
  const std::string& pattern() const { return pattern_; }
  /// Number of output columns per result tuple.
  size_t num_columns() const;

  /// Streams matching tuples; return false from `cb` to stop early.
  util::Status ForEach(const std::function<bool(const Tuple&)>& cb);
  /// Materializes all matching tuples.
  util::Result<std::vector<Tuple>> Run();
  /// Number of matches, without materializing a result vector.
  util::Result<size_t> Count();
  /// True iff at least one tuple matches (stops at the first match).
  util::Result<bool> Exists();

  /// Renders this query's compiled plan + measured selectivities (see
  /// ExplainCompiledRule). Distinct from Workspace::Explain(), which
  /// renders provenance derivation trees.
  std::string Explain(ExplainFormat format = ExplainFormat::kText) const;

 private:
  friend class Workspace;
  PreparedQuery(Workspace* workspace, std::string pattern,
                std::unique_ptr<CompiledRule> compiled)
      : workspace_(workspace),
        pattern_(std::move(pattern)),
        compiled_(std::move(compiled)) {}

  Workspace* workspace_;
  std::string pattern_;
  std::unique_ptr<CompiledRule> compiled_;
};

/// A batch mutation — the write path of the session model. Mutations staged
/// on a Transaction do not touch the workspace until `Commit()`, which
/// applies them in staging order and then runs a single `Fixpoint()`;
/// the commit records per-relation dirty deltas so an EDB-only batch takes
/// the delta-aware (semi-naive-from-delta) fixpoint path instead of a full
/// rebuild. `Abort()` discards the staged operations.
///
/// If applying a staged operation fails (parse error, arity mismatch, ...),
/// previously applied fact and rule operations of the same batch are rolled
/// back before the error is returned; predicate declarations and installed
/// constraints are idempotent metadata and are not undone. A constraint
/// violation reported by the commit-time Fixpoint() leaves the applied
/// mutations in place (matching the one-shot API, where callers typically
/// retract the offending fact or constraint and re-run Fixpoint()).
class Transaction {
 public:
  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Staging calls; errors (e.g. unparsable text) surface at Commit().
  Transaction& AddFact(std::string pred, Tuple tuple);
  Transaction& RemoveFact(std::string pred, Tuple tuple);
  Transaction& AddRule(const Rule& rule);
  Transaction& RemoveRule(const Rule& rule);
  Transaction& AddRuleText(std::string_view text);
  /// "p(a). q(1,2)." fact text, me-resolved to the workspace principal
  /// (or an explicit one).
  Transaction& AddFactText(std::string_view text);
  Transaction& AddFactTextAs(std::string principal, std::string_view text);
  /// Full program text (rules, facts, constraints), as Workspace::Load.
  Transaction& AddProgram(std::string_view text);
  Transaction& AddProgramAs(std::string principal, std::string_view text);
  /// Stages says(me, destination, [| rule_text |]) — batch counterpart of
  /// TrustRuntime::Say().
  Transaction& Say(std::string destination, std::string_view rule_text);

  /// Applies the staged operations in order, then runs one Fixpoint().
  util::Status Commit();
  /// Applies the staged operations without the fixpoint; the recorded
  /// deltas are picked up by the next Fixpoint(). For callers that batch
  /// across several transactions (e.g. cluster message delivery).
  util::Status CommitNoFixpoint();
  /// Discards the staged operations; the transaction becomes inert.
  void Abort();

  /// False after Commit()/Abort().
  bool active() const { return !done_; }
  size_t pending_ops() const { return ops_.size(); }

 private:
  friend class Workspace;

  struct Op {
    enum class Kind {
      kAddFact,
      kRemoveFact,
      kAddRule,
      kRemoveRule,
      kAddRuleText,
      kAddFactText,
      kAddProgram,
      kSay,
    };
    Kind kind = Kind::kAddFact;
    std::string pred;       ///< kAddFact/kRemoveFact; destination for kSay
    Tuple tuple;            ///< kAddFact/kRemoveFact
    Rule rule;              ///< kAddRule/kRemoveRule
    std::string text;       ///< text-bearing ops
    std::string principal;  ///< me-resolution override ("" = workspace's)
  };

  explicit Transaction(Workspace* workspace) : workspace_(workspace) {}

  /// Applies ops in order with rollback of facts/rules on failure.
  util::Status Apply();

  Workspace* workspace_;
  std::vector<Op> ops_;
  bool done_ = false;
};

/// A workspace is a database instance: predicate definitions, EDB facts and
/// a set of active rules (§3.1). Fixpoint() recomputes the derived state
/// bottom-up (semi-naive, stratified), then runs the meta-programming loop —
/// code values derived into `active` are installed as new rules and the
/// fixpoint repeats — and finally checks schema constraints, failing with
/// kConstraintViolation like LogicBlox's fail() (§3.2).
///
/// ## Session model
///
/// The public API is built around two long-lived handle types, separating
/// per-request evaluation from policy-state management (the SAFE/GEM split):
///
///  - the READ path: `Prepare()` compiles an atom pattern once into a
///    `PreparedQuery`; its `Run()/Count()/Exists()` touch no lexer or
///    parser. The legacy one-shot `Query()`/`Count()` string calls remain
///    as thin shims that prepare-and-run per call.
///  - the WRITE path: `Begin()` opens a `Transaction`; staged mutations
///    apply on `Commit()` followed by exactly one Fixpoint(). One-shot
///    `AddFact()`/`RemoveFact()`/`Load()` remain for interactive use.
///
/// The workspace tracks per-relation EDB deltas between fixpoints. When a
/// Fixpoint() finds that only EDB insertions happened since the last
/// successful run — no rule installs/removals, no constraint or scheme
/// churn, no fact retraction, and the inserted relations cannot reach a
/// negated or aggregated body literal — it seeds semi-naive evaluation from
/// those deltas on top of the existing store instead of clearing and
/// rebuilding it. All other mutations fall back to the full rebuild, so
/// results are always identical to a from-scratch evaluation (the
/// differential tests in tests/datalog_workspace_test.cc enforce this
/// against the naive evaluator).
///
/// The `me` keyword in loaded programs resolves to the workspace principal
/// (or to an explicit principal via the *As APIs, which is how the §9 demo
/// emulates multiple principals inside one shared workspace). Each installed
/// rule R is recorded in the meta relations `active(R)` and `owner(R,U)`.
class Workspace {
 public:
  struct Options {
    /// The principal that `me` denotes.
    std::string principal = "local";
    /// Worker threads for intra-stratum rule evaluation. 0 = one per
    /// hardware thread (std::thread::hardware_concurrency); 1 = today's
    /// exact sequential behavior. With threads > 1, parallel-safe rules
    /// evaluate concurrently against a frozen store snapshot and a
    /// sequential merge keeps results deterministic — Workspace dumps are
    /// byte-identical to sequential evaluation (see README "Parallel
    /// evaluation"). Provenance tracking and naive_eval force sequential.
    unsigned threads = 0;
    /// Hash shards per derived relation (rounded up to a power of two,
    /// capped at Relation::kMaxShards). 0 = derive from the resolved
    /// thread count, additionally clamped at hardware_concurrency (shards
    /// beyond the core count are partitions the merge can never replay in
    /// parallel); 1 = today's single-partition layout. With shards > 1
    /// the parallel round merge replays each shard on its own worker
    /// instead of funneling through one thread (see README "Sharded
    /// storage"); the stored row SET — and therefore Dump() — is
    /// identical at every (threads, shards) combination.
    size_t shards = 0;
    /// Codegen (active-rule installation) iterations per Fixpoint().
    int max_codegen_rounds = 64;
    /// Evaluator budgets (diverging-program guards).
    Evaluator::Limits limits;
    /// Disable semi-naive deltas (naive fixpoint) — ablation only. Also
    /// disables the delta-aware fixpoint path.
    bool naive_eval = false;
    /// Disable the delta-aware fixpoint path (every Fixpoint() rebuilds
    /// the store from scratch, as the seed engine did) — ablation and
    /// escape hatch.
    bool delta_fixpoint = true;
    /// If false, constraints are compiled but not checked (ablation).
    bool check_constraints = true;
    /// Record a derivation witness per derived tuple (§7's provenance
    /// extension); query via Explain(). Off by default (memory cost).
    /// Disables the delta-aware fixpoint path (witnesses are rebuilt
    /// per full evaluation).
    bool track_provenance = false;
    /// Own a metrics registry and instrument evaluation, commits and
    /// prepared queries. When false every hot-path instrumentation site
    /// collapses to one null-pointer test and DumpMetrics() reports the
    /// registry as disabled.
    bool metrics = true;
    /// Static analysis at program ingress (Load/LoadAs and
    /// Transaction::AddProgram). kWarn (default) lints every routed
    /// program and collects the report in last_lint() without changing
    /// behavior; kEnforce additionally rejects programs with lint
    /// *errors* (the same programs CompileRule/Stratify would reject,
    /// but diagnosed before any rule installs); kOff skips the analysis
    /// entirely. AddRule/AddFact bypass the linter — they carry single
    /// clauses, not programs.
    enum class LintMode { kOff, kWarn, kEnforce };
    LintMode lint = LintMode::kWarn;
  };

  Workspace() : Workspace(Options()) {}
  explicit Workspace(Options options);

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  const Options& options() const { return options_; }
  const std::string& principal() const { return options_.principal; }

  // --- Session API ---------------------------------------------------------

  /// Compiles an atom pattern ("access(P,O,read)") into a reusable handle.
  /// The handle stays valid for the lifetime of the workspace.
  util::Result<PreparedQuery> Prepare(std::string_view atom_text);

  /// Opens a batch mutation; see Transaction.
  Transaction Begin() { return Transaction(this); }

  // --- One-shot mutation API (shims kept during migration) -----------------

  /// Parses and installs a program (rules, facts, constraints).
  util::Status Load(std::string_view program);
  /// Same, with `me` resolved to `principal` (shared-workspace emulation).
  util::Status LoadAs(const std::string& principal, std::string_view program);

  /// Installs one rule (multi-head rules are split). Duplicate rules
  /// (by canonical form) are no-ops.
  util::Status AddRule(const Rule& rule);
  util::Status AddRuleAs(const std::string& principal, const Rule& rule);
  util::Status AddRuleText(std::string_view text);

  /// Retracts a rule by canonical form; derived consequences disappear at
  /// the next Fixpoint(). Returns kNotFound if absent.
  util::Status RemoveRule(const Rule& rule);

  /// EDB fact manipulation. Unknown predicates are declared with the
  /// tuple's arity.
  util::Status AddFact(const std::string& pred, Tuple tuple);
  util::Status RemoveFact(const std::string& pred, const Tuple& tuple);
  /// Parses "p(a,b). q(1)." style fact text (me-resolved).
  util::Status AddFactText(std::string_view text);
  util::Status AddFactTextAs(const std::string& principal,
                             std::string_view text);

  util::Status AddConstraint(const Constraint& constraint);

  /// Removes all constraints carrying this label (e.g. "exp3"), including
  /// their hidden auxiliary rules. Used when reconfiguring authentication
  /// schemes at runtime. Returns kNotFound if no constraint matched.
  util::Status RemoveConstraintsByLabel(const std::string& label);

  /// Registers a builtin predicate (see BuiltinDef for mode strings).
  void RegisterBuiltin(const std::string& name, size_t arity,
                       std::vector<std::string> modes, BuiltinFn fn);

  /// Ensures a predicate exists (declared relations appear in pname).
  util::Status EnsurePredicate(const std::string& name, size_t arity,
                               bool partitioned = false);

  /// Recomputes derived state; runs codegen to quiescence; checks
  /// constraints. On violation returns kConstraintViolation and records
  /// details in violations(). Takes the delta-aware path when eligible
  /// (see the class comment); last_fixpoint_incremental() reports which
  /// path ran.
  util::Status Fixpoint();

  // --- One-shot query API (shims over Prepare) -----------------------------

  /// Matches an atom pattern ("access(P,O,read)") against the current
  /// (post-Fixpoint) state; returns the matching stored tuples.
  util::Result<std::vector<Tuple>> Query(std::string_view atom_text);
  /// Convenience: number of matches (no result materialization).
  util::Result<size_t> Count(std::string_view atom_text);

  /// Renders derivation trees for every tuple matching the atom pattern
  /// (requires Options::track_provenance and a prior Fixpoint()). This is
  /// the §7 provenance extension: chains of trust become inspectable.
  util::Result<std::string> Explain(std::string_view atom_text);
  const ProvenanceStore& provenance() const { return provenance_; }

  const Relation* GetRelation(const std::string& name) const;
  const Catalog& catalog() const { return catalog_; }
  BuiltinRegistry* builtins() { return &builtins_; }
  /// The workspace's value pool: every relation (EDB, store, deltas)
  /// interns into it, so ids are comparable engine-wide.
  ValuePool* pool() { return &pool_; }
  const ValuePool& pool() const { return pool_; }

  /// Installed rules in install order.
  std::vector<const Rule*> rules() const;
  /// True if a rule with this canonical form is installed.
  bool HasRule(const std::string& canon) const;

  /// Constraint-violation report from the last Fixpoint().
  const std::vector<std::string>& violations() const { return violations_; }

  /// Hook invoked for every installed rule (used by meta::Reflector).
  /// Hidden engine predicates (aux constraint rules) do not trigger it.
  using InstallHook = std::function<void(const Rule& rule, int rule_id)>;
  void SetInstallHook(InstallHook hook) { install_hook_ = std::move(hook); }

  /// Hook invoked when a rule is retracted via RemoveRule.
  using RemoveHook = std::function<void(const Rule& rule)>;
  void SetRemoveHook(RemoveHook hook) { remove_hook_ = std::move(hook); }

  /// Number of fixpoint iterations the last Fixpoint() used (codegen
  /// rounds); exposed for tests and benchmarks.
  int last_codegen_rounds() const { return last_codegen_rounds_; }

  /// True if the last Fixpoint() round ran the delta-aware path (store
  /// seeded from recorded EDB deltas, no rebuild). Exposed for tests and
  /// benchmarks.
  bool last_fixpoint_incremental() const {
    return last_fixpoint_incremental_;
  }
  /// Cumulative counts of full-rebuild vs delta-seeded evaluation rounds.
  int full_eval_rounds() const { return full_eval_rounds_; }
  int delta_eval_rounds() const { return delta_eval_rounds_; }

  // --- Observability --------------------------------------------------------

  /// The workspace-owned metrics registry, or nullptr when
  /// Options::metrics is false. Other layers (trust runtime, transports)
  /// register their counters here so one DumpMetrics() call covers the
  /// whole node.
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Attaches a span tracer (not owned; pass nullptr to detach). Fixpoint,
  /// stratum and rule spans are emitted while attached.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Prometheus-style text exposition of every registered metric, with
  /// per-relation row-count gauges refreshed from the current store.
  /// Returns a "# metrics disabled" stub when Options::metrics is false.
  std::string DumpMetrics();

  /// EXPLAIN over every installed rule (install order; hidden constraint
  /// aux rules included — they execute like any other rule): compiled
  /// literal schedules, static probe masks, and measured selectivities
  /// when metrics are on. Served at /explainz by the HTTP exporter.
  std::string ExplainRules(ExplainFormat format = ExplainFormat::kText);

  /// Lints the installed rule set (visible rules + constraints) against
  /// the live store: the full static analysis plus L050 join-order
  /// smells measured against current relation cardinalities. Hidden
  /// constraint aux rules are skipped (their shapes are synthesized).
  /// Served at /lintz by the HTTP exporter.
  LintReport LintRules() const;

  /// The report from the most recent linted program ingress (Load /
  /// LoadAs / Transaction::AddProgram). Empty when Options::lint is kOff
  /// or nothing was loaded yet.
  const LintReport& last_lint() const { return last_lint_; }

  /// Name-sorted (relation, row count) snapshot of the visible store
  /// (post-Fixpoint state), for /statusz.
  std::vector<std::pair<std::string, size_t>> RelationRowCounts() const;

 private:
  friend class PreparedQuery;
  friend class Transaction;

  struct InstalledRule {
    Rule rule;
    std::string canon;
    int id = 0;
    std::string owner;
    bool hidden = false;  // constraint aux rules
    std::unique_ptr<CompiledRule> compiled;
  };

  struct CompiledConstraint {
    Constraint source;
    std::string label;
    std::string display;
    /// Violation queries: constraint violated iff any has a solution.
    std::vector<std::unique_ptr<CompiledRule>> fail_rules;
    /// Canonical forms of the hidden aux rules this constraint installed.
    std::vector<std::string> aux_canons;
  };

  util::Status LoadClauses(const std::string& principal,
                           std::string_view program);
  /// Shared program-clause routing for Load and Transaction::AddProgram:
  /// parses `program`, me-resolves every clause against `principal`,
  /// splits multi-head rules, and dispatches — single-head rules (and
  /// fact clauses) to `on_rule`, raw `fail() <- body.` constraints to
  /// `on_fail_constraint`, `lhs -> rhs.` constraints to `on_constraint`.
  util::Status RouteProgramClauses(
      const std::string& principal, std::string_view program,
      const std::function<util::Status(Rule)>& on_rule,
      const std::function<util::Status(Constraint)>& on_fail_constraint,
      const std::function<util::Status(Constraint)>& on_constraint);
  util::Status InstallResolved(Rule rule, const std::string& owner,
                               bool hidden, bool from_activation = false);
  /// Insert target for InstallFactRule: null means AddFact; Transaction
  /// substitutes an undo-recording sink.
  using FactSink =
      std::function<util::Status(const std::string& pred, Tuple tuple)>;
  util::Status InstallFactRule(const Rule& rule, const std::string& owner,
                               bool from_activation = false,
                               const FactSink* sink = nullptr);
  util::Status CompileConstraint(Constraint constraint);
  util::Status DeclareAtomPredicate(const Atom& atom);
  util::Status PrepareStore();
  util::Status FixpointImpl();
  util::Status RunRules();
  util::Status RunRulesDelta(std::map<std::string, Relation> seed);
  util::Result<int> ScanAndInstallActive();
  void CheckConstraints();

  /// Bookkeeping for the delta-aware fixpoint: every EDB insertion lands
  /// here (already interned — the API edge interns exactly once); a
  /// successful (or constraint-rejecting) Fixpoint() consumes it.
  void RecordEdbInsert(const std::string& pred, const IdTuple& ids,
                       bool inserted);
  /// False when this workspace's options rule the delta path out entirely
  /// (no point logging deltas then).
  bool DeltaTrackingEnabled() const {
    return options_.delta_fixpoint && !options_.naive_eval &&
           !options_.track_provenance;
  }
  /// Flags rule-set churn (forces the next Fixpoint() onto the full path)
  /// and drops the cached stratification.
  void MarkRulesChanged();
  /// Stratification of the installed rules, cached across delta fixpoints.
  util::Result<const Stratification*> CurrentStratification();
  /// True when the pending deltas are EDB-only and cannot reach a negated
  /// or aggregated body literal (so additive semi-naive is exact).
  bool DeltaFixpointEligible() const;

  Options options_;
  Catalog catalog_;
  BuiltinRegistry builtins_;
  /// Shared worker-pool slot handed to every Evaluator this workspace
  /// constructs: threads spawn on the first parallel round and are
  /// reused across fixpoints (see EvalWorkerPoolHandle).
  EvalWorkerPoolHandle worker_pool_;
  ValuePool pool_;       // interned values; must outlive the stores below
  RelationStore edb_;    // explicit facts
  RelationStore store_;  // visible state (EDB + derived); rebuilt by full
                         // fixpoints, extended in place by delta fixpoints
  std::vector<std::unique_ptr<InstalledRule>> rules_;
  std::map<std::string, InstalledRule*> rules_by_canon_;
  std::vector<std::unique_ptr<CompiledConstraint>> constraints_;
  ProvenanceStore provenance_;
  std::vector<std::string> violations_;
  InstallHook install_hook_;
  RemoveHook remove_hook_;
  LintReport last_lint_;  ///< from the most recent program ingress
  int next_rule_id_ = 1;
  int next_hidden_id_ = 1;
  int next_constraint_id_ = 0;
  int last_codegen_rounds_ = 0;

  /// Delta-aware fixpoint state.
  std::unique_ptr<Stratification> strat_cache_;
  std::map<std::string, Relation> edb_delta_;  ///< inserts since last run
  bool store_valid_ = false;   ///< store_ reflects a completed Fixpoint()
  bool rules_dirty_ = true;    ///< rule/constraint churn since last run
  bool edb_removed_ = false;   ///< a fact retraction since last run
  bool last_fixpoint_incremental_ = false;
  int full_eval_rounds_ = 0;
  int delta_eval_rounds_ = 0;

  /// Observability. The registry is heap-owned so handles held by other
  /// layers stay stable; all handle pointers below are registry-owned and
  /// null iff metrics_ is null.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* fixpoints_full_ = nullptr;
  obs::Counter* fixpoints_delta_ = nullptr;
  obs::Histogram* fixpoint_latency_us_ = nullptr;
  obs::Histogram* commit_latency_us_ = nullptr;
  obs::Histogram* query_latency_us_ = nullptr;
};

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_WORKSPACE_H_
