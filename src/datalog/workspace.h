#ifndef LBTRUST_DATALOG_WORKSPACE_H_
#define LBTRUST_DATALOG_WORKSPACE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "datalog/builtins.h"
#include "datalog/catalog.h"
#include "datalog/eval.h"
#include "util/status.h"

namespace lbtrust::datalog {

/// A workspace is a database instance: predicate definitions, EDB facts and
/// a set of active rules (§3.1). Fixpoint() recomputes the derived state
/// bottom-up (semi-naive, stratified), then runs the meta-programming loop —
/// code values derived into `active` are installed as new rules and the
/// fixpoint repeats — and finally checks schema constraints, failing with
/// kConstraintViolation like LogicBlox's fail() (§3.2).
///
/// The `me` keyword in loaded programs resolves to the workspace principal
/// (or to an explicit principal via the *As APIs, which is how the §9 demo
/// emulates multiple principals inside one shared workspace). Each installed
/// rule R is recorded in the meta relations `active(R)` and `owner(R,U)`.
class Workspace {
 public:
  struct Options {
    /// The principal that `me` denotes.
    std::string principal = "local";
    /// Codegen (active-rule installation) iterations per Fixpoint().
    int max_codegen_rounds = 64;
    /// Evaluator budgets (diverging-program guards).
    Evaluator::Limits limits;
    /// Disable semi-naive deltas (naive fixpoint) — ablation only.
    bool naive_eval = false;
    /// If false, constraints are compiled but not checked (ablation).
    bool check_constraints = true;
    /// Record a derivation witness per derived tuple (§7's provenance
    /// extension); query via Explain(). Off by default (memory cost).
    bool track_provenance = false;
  };

  Workspace() : Workspace(Options()) {}
  explicit Workspace(Options options);

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  const Options& options() const { return options_; }
  const std::string& principal() const { return options_.principal; }

  /// Parses and installs a program (rules, facts, constraints).
  util::Status Load(std::string_view program);
  /// Same, with `me` resolved to `principal` (shared-workspace emulation).
  util::Status LoadAs(const std::string& principal, std::string_view program);

  /// Installs one rule (multi-head rules are split). Duplicate rules
  /// (by canonical form) are no-ops.
  util::Status AddRule(const Rule& rule);
  util::Status AddRuleAs(const std::string& principal, const Rule& rule);
  util::Status AddRuleText(std::string_view text);

  /// Retracts a rule by canonical form; derived consequences disappear at
  /// the next Fixpoint(). Returns kNotFound if absent.
  util::Status RemoveRule(const Rule& rule);

  /// EDB fact manipulation. Unknown predicates are declared with the
  /// tuple's arity.
  util::Status AddFact(const std::string& pred, Tuple tuple);
  util::Status RemoveFact(const std::string& pred, const Tuple& tuple);
  /// Parses "p(a,b). q(1)." style fact text (me-resolved).
  util::Status AddFactText(std::string_view text);
  util::Status AddFactTextAs(const std::string& principal,
                             std::string_view text);

  util::Status AddConstraint(const Constraint& constraint);

  /// Removes all constraints carrying this label (e.g. "exp3"), including
  /// their hidden auxiliary rules. Used when reconfiguring authentication
  /// schemes at runtime. Returns kNotFound if no constraint matched.
  util::Status RemoveConstraintsByLabel(const std::string& label);

  /// Registers a builtin predicate (see BuiltinDef for mode strings).
  void RegisterBuiltin(const std::string& name, size_t arity,
                       std::vector<std::string> modes, BuiltinFn fn);

  /// Ensures a predicate exists (declared relations appear in pname).
  util::Status EnsurePredicate(const std::string& name, size_t arity,
                               bool partitioned = false);

  /// Recomputes derived state; runs codegen to quiescence; checks
  /// constraints. On violation returns kConstraintViolation and records
  /// details in violations().
  util::Status Fixpoint();

  /// Matches an atom pattern ("access(P,O,read)") against the current
  /// (post-Fixpoint) state; returns the matching stored tuples.
  util::Result<std::vector<Tuple>> Query(std::string_view atom_text);
  /// Convenience: number of matches.
  util::Result<size_t> Count(std::string_view atom_text);

  /// Renders derivation trees for every tuple matching the atom pattern
  /// (requires Options::track_provenance and a prior Fixpoint()). This is
  /// the §7 provenance extension: chains of trust become inspectable.
  util::Result<std::string> Explain(std::string_view atom_text);
  const ProvenanceStore& provenance() const { return provenance_; }

  const Relation* GetRelation(const std::string& name) const;
  const Catalog& catalog() const { return catalog_; }
  BuiltinRegistry* builtins() { return &builtins_; }

  /// Installed rules in install order.
  std::vector<const Rule*> rules() const;
  /// True if a rule with this canonical form is installed.
  bool HasRule(const std::string& canon) const;

  /// Constraint-violation report from the last Fixpoint().
  const std::vector<std::string>& violations() const { return violations_; }

  /// Hook invoked for every installed rule (used by meta::Reflector).
  /// Hidden engine predicates (aux constraint rules) do not trigger it.
  using InstallHook = std::function<void(const Rule& rule, int rule_id)>;
  void SetInstallHook(InstallHook hook) { install_hook_ = std::move(hook); }

  /// Hook invoked when a rule is retracted via RemoveRule.
  using RemoveHook = std::function<void(const Rule& rule)>;
  void SetRemoveHook(RemoveHook hook) { remove_hook_ = std::move(hook); }

  /// Number of fixpoint iterations the last Fixpoint() used (codegen
  /// rounds); exposed for tests and benchmarks.
  int last_codegen_rounds() const { return last_codegen_rounds_; }

 private:
  struct InstalledRule {
    Rule rule;
    std::string canon;
    int id = 0;
    std::string owner;
    bool hidden = false;  // constraint aux rules
    std::unique_ptr<CompiledRule> compiled;
  };

  struct CompiledConstraint {
    Constraint source;
    std::string label;
    std::string display;
    /// Violation queries: constraint violated iff any has a solution.
    std::vector<std::unique_ptr<CompiledRule>> fail_rules;
    /// Canonical forms of the hidden aux rules this constraint installed.
    std::vector<std::string> aux_canons;
  };

  util::Status LoadClauses(const std::string& principal,
                           std::string_view program);
  util::Status InstallResolved(Rule rule, const std::string& owner,
                               bool hidden, bool from_activation = false);
  util::Status InstallFactRule(const Rule& rule, const std::string& owner,
                               bool from_activation = false);
  util::Status CompileConstraint(Constraint constraint);
  util::Status DeclareAtomPredicate(const Atom& atom);
  util::Status PrepareStore();
  util::Status RunRules();
  util::Result<int> ScanAndInstallActive();
  void CheckConstraints();

  Options options_;
  Catalog catalog_;
  BuiltinRegistry builtins_;
  RelationStore edb_;    // explicit facts
  RelationStore store_;  // visible state (EDB + derived), rebuilt by Fixpoint
  std::vector<std::unique_ptr<InstalledRule>> rules_;
  std::map<std::string, InstalledRule*> rules_by_canon_;
  std::vector<std::unique_ptr<CompiledConstraint>> constraints_;
  ProvenanceStore provenance_;
  std::vector<std::string> violations_;
  InstallHook install_hook_;
  RemoveHook remove_hook_;
  int next_rule_id_ = 1;
  int next_hidden_id_ = 1;
  int next_constraint_id_ = 0;
  int last_codegen_rounds_ = 0;
};

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_WORKSPACE_H_
