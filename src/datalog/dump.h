#ifndef LBTRUST_DATALOG_DUMP_H_
#define LBTRUST_DATALOG_DUMP_H_

#include <string>

#include "datalog/workspace.h"

namespace lbtrust::datalog {

/// Textual stand-in for the demo proposal's visualization tool (§9:
/// "display a table of the values of various predicates and rules stored
/// at each principal"). Renders the workspace after a Fixpoint():
/// installed rules (with owners), then every non-engine relation as a
/// sorted table. `max_rows` truncates large relations (0 = no limit).
/// `sort_rules` prints rules in sorted order instead of install order —
/// required when comparing dumps across deployments whose rule arrival
/// order differs (e.g. socket vs simulated cluster convergence checks).
std::string DumpWorkspace(const Workspace& workspace, size_t max_rows = 20,
                          bool sort_rules = false);

/// Renders a single relation as a table.
std::string DumpRelation(const Workspace& workspace, const std::string& name,
                         size_t max_rows = 0);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_DUMP_H_
