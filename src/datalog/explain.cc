#include "datalog/explain.h"

#include <cstdio>
#include <set>
#include <utility>

#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::datalog {

namespace {

const char* LiteralKindName(CompiledLiteral::Kind kind) {
  switch (kind) {
    case CompiledLiteral::Kind::kRelation: return "relation";
    case CompiledLiteral::Kind::kNegation: return "negation";
    case CompiledLiteral::Kind::kBuiltin: return "builtin";
    case CompiledLiteral::Kind::kEquality: return "equality";
  }
  return "?";
}

/// A column is bound at its scheduled position iff it is a constant or
/// every variable it carries was bound by an earlier literal — the same
/// static replay CompiledRule::OrderProbes is derived from.
uint64_t ProbeMaskAt(const CompiledLiteral& lit, const std::set<int>& bound) {
  uint64_t mask = 0;
  for (size_t ci = 0; ci < lit.cols.size(); ++ci) {
    const CompiledArg& col = lit.cols[ci];
    bool is_bound = false;
    switch (col.kind) {
      case CompiledArg::Kind::kConst:
        is_bound = true;
        break;
      case CompiledArg::Kind::kVar:
        is_bound = bound.count(col.slot) != 0;
        break;
      case CompiledArg::Kind::kPattern:
      case CompiledArg::Kind::kExpr: {
        is_bound = true;
        for (int slot : col.term_slots) {
          if (bound.count(slot) == 0) {
            is_bound = false;
            break;
          }
        }
        break;
      }
    }
    if (is_bound) mask |= uint64_t{1} << ci;
  }
  return mask;
}

/// Marks every slot the literal can bind. Exact for relation literals;
/// for builtins this covers output modes, and for negations/equalities it
/// re-marks already-bound slots (harmless).
void BindSlots(const CompiledLiteral& lit, std::set<int>* bound) {
  for (const CompiledArg& col : lit.cols) {
    if (col.kind == CompiledArg::Kind::kVar) {
      bound->insert(col.slot);
    } else {
      for (int slot : col.term_slots) bound->insert(slot);
    }
  }
}

/// One scheduled position: body index, mask, literal text.
struct ScheduleEntry {
  int body_idx = 0;
  uint64_t probe_mask = 0;
  std::string literal;
  const char* kind = "";
};

std::vector<ScheduleEntry> ReplaySchedule(const CompiledRule& rule,
                                          const std::vector<int>& order) {
  std::vector<ScheduleEntry> out;
  out.reserve(order.size());
  std::set<int> bound;
  for (int bi : order) {
    const CompiledLiteral& lit = rule.body[bi];
    ScheduleEntry entry;
    entry.body_idx = bi;
    entry.probe_mask = ProbeMaskAt(lit, bound);
    entry.literal = static_cast<size_t>(bi) < rule.source.body.size()
                        ? PrintLiteral(rule.source.body[bi])
                        : lit.pred;
    entry.kind = LiteralKindName(lit.kind);
    BindSlots(lit, &bound);
    out.push_back(std::move(entry));
  }
  return out;
}

std::string RuleLabels(const CompiledRule& rule) {
  return util::StrCat("head=\"", obs::LabelEscape(rule.head_pred),
                      "\",rule=\"", rule.id, "\"");
}

/// Measured counters for one rule. Reads go through GetCounter, which
/// creates-if-missing — an unevaluated rule reads as zeros, never errors.
struct Measured {
  uint64_t evals = 0, derived = 0, probes = 0, eval_us = 0;
  struct RelationStats {
    std::string relation;
    uint64_t probes = 0, hits = 0;
  };
  std::vector<RelationStats> relations;
};

Measured ReadMeasured(const CompiledRule& rule,
                      obs::MetricsRegistry* metrics) {
  Measured m;
  const std::string labels = RuleLabels(rule);
  m.evals = metrics->GetCounter("lbtrust_rule_evals_total", labels)->value();
  m.derived =
      metrics->GetCounter("lbtrust_rule_tuples_derived_total", labels)->value();
  m.probes = metrics->GetCounter("lbtrust_rule_probes_total", labels)->value();
  m.eval_us =
      metrics->GetCounter("lbtrust_rule_eval_us_total", labels)->value();
  std::set<std::string> seen;
  for (const CompiledLiteral& lit : rule.body) {
    if (lit.kind != CompiledLiteral::Kind::kRelation &&
        lit.kind != CompiledLiteral::Kind::kNegation) {
      continue;
    }
    if (!seen.insert(lit.pred).second) continue;
    const std::string rel_labels =
        util::StrCat("relation=\"", obs::LabelEscape(lit.pred), "\"");
    Measured::RelationStats stats;
    stats.relation = lit.pred;
    stats.probes =
        metrics->GetCounter("lbtrust_relation_probes_total", rel_labels)
            ->value();
    stats.hits =
        metrics->GetCounter("lbtrust_relation_probe_hits_total", rel_labels)
            ->value();
    m.relations.push_back(std::move(stats));
  }
  return m;
}

std::string Ratio(uint64_t hits, uint64_t probes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f",
                probes == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(probes));
  return buf;
}

std::string RenderText(const CompiledRule& rule, obs::MetricsRegistry* metrics,
                       const std::vector<Diagnostic>* diagnostics) {
  std::string out = util::StrCat("rule ", rule.id, " [head=", rule.head_pred,
                                 rule.parallel_safe ? ", parallel-safe" : "",
                                 "]: ", PrintRule(rule.source), "\n");
  out += "  schedule (full):\n";
  for (const ScheduleEntry& e : ReplaySchedule(rule, rule.order_full)) {
    out += util::StrCat("    body[", e.body_idx, "] ", e.literal,
                        "  kind=", e.kind, " probe_mask=0x");
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%llx",
                  static_cast<unsigned long long>(e.probe_mask));
    out += hex;
    if (e.probe_mask == 0) out += " (leading scan)";
    out.push_back('\n');
  }
  for (const auto& [pos, order] : rule.order_delta) {
    out += util::StrCat("  schedule (delta@", pos, "):");
    for (int bi : order) out += util::StrCat(" ", bi);
    out.push_back('\n');
  }
  if (metrics == nullptr) {
    out += "  measured: (metrics disabled)\n";
  } else {
    Measured m = ReadMeasured(rule, metrics);
    out += util::StrCat("  measured: evals=", m.evals, " derived=", m.derived,
                        " probes=", m.probes, " eval_us=", m.eval_us, "\n");
    for (const auto& rel : m.relations) {
      out += util::StrCat("    ", rel.relation, ": probes=", rel.probes,
                          " hits=", rel.hits, " selectivity=",
                          Ratio(rel.hits, rel.probes), "\n");
    }
  }
  if (diagnostics != nullptr && !diagnostics->empty()) {
    out += "  diagnostics:\n";
    for (const Diagnostic& d : *diagnostics) {
      out += util::StrCat("    ", d.code, " ", LintSeverityName(d.severity),
                          ": ", d.message, "\n");
    }
  }
  return out;
}

std::string RenderJson(const CompiledRule& rule, obs::MetricsRegistry* metrics,
                       const std::vector<Diagnostic>* diagnostics) {
  std::string out = util::StrCat("{\"rule\":", rule.id, ",\"head\":\"",
                                 obs::LabelEscape(rule.head_pred),
                                 "\",\"source\":\"",
                                 obs::LabelEscape(PrintRule(rule.source)),
                                 "\",\"parallel_safe\":",
                                 rule.parallel_safe ? "true" : "false",
                                 ",\"schedule\":[");
  bool first = true;
  for (const ScheduleEntry& e : ReplaySchedule(rule, rule.order_full)) {
    if (!first) out.push_back(',');
    first = false;
    out += util::StrCat("{\"body\":", e.body_idx, ",\"literal\":\"",
                        obs::LabelEscape(e.literal), "\",\"kind\":\"", e.kind,
                        "\",\"probe_mask\":", e.probe_mask, "}");
  }
  out += "],\"delta_orders\":[";
  first = true;
  for (const auto& [pos, order] : rule.order_delta) {
    if (!first) out.push_back(',');
    first = false;
    out += util::StrCat("{\"pos\":", pos, ",\"order\":[");
    for (size_t i = 0; i < order.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += std::to_string(order[i]);
    }
    out += "]}";
  }
  out += "]";
  if (metrics != nullptr) {
    Measured m = ReadMeasured(rule, metrics);
    out += util::StrCat(",\"measured\":{\"evals\":", m.evals,
                        ",\"derived\":", m.derived, ",\"probes\":", m.probes,
                        ",\"eval_us\":", m.eval_us, ",\"selectivity\":[");
    first = true;
    for (const auto& rel : m.relations) {
      if (!first) out.push_back(',');
      first = false;
      out += util::StrCat("{\"relation\":\"", obs::LabelEscape(rel.relation),
                          "\",\"probes\":", rel.probes, ",\"hits\":", rel.hits,
                          ",\"ratio\":", Ratio(rel.hits, rel.probes), "}");
    }
    out += "]}";
  }
  out += ",\"diagnostics\":[";
  if (diagnostics != nullptr) {
    first = true;
    for (const Diagnostic& d : *diagnostics) {
      if (!first) out.push_back(',');
      first = false;
      out += d.ToJson();
    }
  }
  out += "]}";
  return out;
}

}  // namespace

std::string ExplainCompiledRule(const CompiledRule& rule,
                                obs::MetricsRegistry* metrics,
                                ExplainFormat format,
                                const std::vector<Diagnostic>* diagnostics) {
  return format == ExplainFormat::kJson
             ? RenderJson(rule, metrics, diagnostics)
             : RenderText(rule, metrics, diagnostics);
}

std::string ExplainCompiledRules(
    const std::vector<const CompiledRule*>& rules,
    obs::MetricsRegistry* metrics, ExplainFormat format,
    const std::vector<std::vector<Diagnostic>>* diagnostics) {
  auto rule_diags = [&](size_t i) -> const std::vector<Diagnostic>* {
    if (diagnostics == nullptr || i >= diagnostics->size()) return nullptr;
    return &(*diagnostics)[i];
  };
  if (format == ExplainFormat::kText) {
    std::string out;
    for (size_t i = 0; i < rules.size(); ++i) {
      if (rules[i] == nullptr) continue;
      out += RenderText(*rules[i], metrics, rule_diags(i));
    }
    return out;
  }
  std::string out = "{\"rules\":[";
  bool first = true;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i] == nullptr) continue;
    if (!first) out.push_back(',');
    first = false;
    out += RenderJson(*rules[i], metrics, rule_diags(i));
  }
  out += "]}";
  return out;
}

}  // namespace lbtrust::datalog
