#ifndef LBTRUST_DATALOG_ANALYSIS_H_
#define LBTRUST_DATALOG_ANALYSIS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/builtins.h"
#include "util/status.h"

namespace lbtrust::datalog {

/// Predicate stratification of a rule set. Negation and aggregation induce
/// "must be strictly lower" edges; a cycle through such an edge makes the
/// program non-stratifiable (kNotStratifiable).
struct Stratification {
  /// Stratum index per derived predicate.
  std::unordered_map<std::string, int> level;
  /// Predicates grouped by stratum, bottom-up.
  std::vector<std::vector<std::string>> strata;
};

/// Computes a stratification over the given (single-head, installed) rules.
/// `builtins` lets the analysis skip builtin predicates (they never carry
/// derived tuples).
util::Result<Stratification> Stratify(const std::vector<const Rule*>& rules,
                                      const BuiltinRegistry& builtins);

/// Install-time structural validation: no meta-atoms / meta-functors /
/// star patterns outside quoted code, exactly one head, no negated heads.
util::Status ValidateInstallableRule(const Rule& rule);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_ANALYSIS_H_
