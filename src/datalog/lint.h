#ifndef LBTRUST_DATALOG_LINT_H_
#define LBTRUST_DATALOG_LINT_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "datalog/builtins.h"
#include "datalog/eval.h"
#include "util/status.h"

namespace lbtrust::datalog {

/// Static program analysis ("lint"): proves a program safe before it
/// touches a workspace, and explains *why* when it is not. The checks
/// mirror the engine's own compile/stratification semantics exactly — a
/// lint *error* means CompileRule or Stratify would reject the program —
/// but report structured diagnostics (the offending variable, predicate
/// and schedule position) instead of the engine's bare status strings.
///
/// Diagnostic codes:
///   L000  program does not parse                              (error)
///   L001  unbound head variable                               (error)
///   L002  unbound shared variable in a negated literal        (error)
///   L003  builtin/equality arguments unbindable in any mode   (error)
///   L004  aggregate input unbound / result pre-bound          (error)
///   L005  no safe evaluation order (other causes)             (error)
///   L010  negation/aggregation cycle (not stratifiable)       (error)
///   L020  rule unreachable from any exported/effectful root   (warning)
///   L021  predicate derived but never read (explicit exports) (warning)
///   L030  predicate/builtin used at conflicting arities       (error)
///   L031  constant can never unify with any producer          (warning)
///   L050  cardinality-blind leading scan (join-order smell)   (warning)
///   L060  says-attribution/context violation                  (see below)
enum class LintSeverity { kError, kWarning, kInfo };

const char* LintSeverityName(LintSeverity severity);

/// One structured finding. `rule_index` indexes the linted rule list (the
/// split, me-resolved single-head view; -1 for program-level findings) and
/// `position` is the body literal's source index when the finding anchors
/// to one. ToJson() is a single JSON object; keys are always present so
/// consumers can rely on the shape.
struct Diagnostic {
  LintSeverity severity = LintSeverity::kError;
  std::string code;       ///< "L001"
  int rule_index = -1;    ///< index into the linted rules; -1 = program
  std::string rule;       ///< printed rule text ("" = program-level)
  std::string predicate;  ///< offending predicate, if any
  std::string variable;   ///< offending variable, if any
  int position = -1;      ///< body literal index (source order), if any
  std::string message;

  std::string ToJson() const;
};

struct LintOptions {
  /// Builtin registry used to classify body literals (mode strings drive
  /// the schedulability check). Null = the standard builtin set.
  const BuiltinRegistry* builtins = nullptr;
  /// Explicitly queryable predicates. When non-empty these (plus
  /// constraints and side-effecting predicates) are the only dead-code
  /// roots, and L021 fires for derived-but-never-read predicates. When
  /// empty, roots are inferred (sink predicates count as the query
  /// surface) and L021 is disabled.
  std::vector<std::string> exports;
  /// Enables the L060 says-context checks: a rule head `says(S, D, R)`
  /// must be attributed to the local principal (`me` or `says_principal`);
  /// a body literal `says(W, D, R)` with a constant destination other than
  /// the local principal reads a message this context cannot receive.
  /// Constant violations are errors; a variable speaker in a head is a
  /// warning (re-attribution). Off by default: core Datalog uses says as
  /// an ordinary relation (e.g. auth-scheme unwrap rules).
  bool says_check = false;
  /// The principal `me` resolves to for the says check (a constant symbol
  /// equal to this name counts as self-attribution).
  std::string says_principal;
};

class LintReport {
 public:
  std::vector<Diagnostic> diagnostics;

  size_t errors() const;
  size_t warnings() const;
  bool has_errors() const { return errors() > 0; }

  /// One line per diagnostic: `L001 error: <message>`.
  std::string ToText() const;
  /// `{"diagnostics":[...],"errors":N,"warnings":N}`.
  std::string ToJson() const;
  /// OkStatus when error-free; otherwise a status whose code matches what
  /// the engine itself would return (kNotStratifiable for L010, kTypeError
  /// for L030, kUnsafeProgram otherwise) carrying the first error's
  /// message.
  util::Status ToStatus() const;
};

/// Lints a set of installed-form rules (me-resolved; multi-head rules are
/// split internally). Fact rules contribute to the arity/type/dead-code
/// analyses but are not themselves flagged.
LintReport LintRules(const std::vector<const Rule*>& rules,
                     const LintOptions& opts = LintOptions());

/// Like LintRules but with schema constraints included: constraint
/// literals participate in the arity analysis and anchor dead-code
/// reachability. This is the workspace's ingress entry point — rules and
/// constraints arrive already me-resolved and routed, so no re-parse.
LintReport LintResolved(const std::vector<const Rule*>& rules,
                        const std::vector<const Constraint*>& constraints,
                        const LintOptions& opts = LintOptions());

/// Parses `program` (rules, facts, constraints), me-resolves it against
/// `principal` exactly as Workspace::Load would, and lints the result.
/// A parse failure yields a single L000 diagnostic.
LintReport LintProgram(std::string_view program, const std::string& principal,
                       const LintOptions& opts = LintOptions());

/// Returned by a row-count callback when the relation's cardinality is
/// unknown (the literal is then ignored by the join-order check).
inline constexpr size_t kUnknownRows = static_cast<size_t>(-1);

/// Appends L050 join-order-smell diagnostics for one compiled rule: the
/// full-order schedule leads with an unbound scan (probe_mask 0x0) of a
/// relation at least 4x larger than another body relation that could have
/// led instead — the BM_JoinOrderSelectiveLast shape the greedy,
/// cardinality-blind scheduler cannot see. `rows` maps a relation name to
/// its current row count (measured store size, or static fact counts);
/// return kUnknownRows to skip a relation. Self-recursive leads are
/// exempt (semi-naive evaluation drives them from the delta orders).
void LintJoinOrder(const CompiledRule& rule, int rule_index,
                   const std::function<size_t(const std::string&)>& rows,
                   std::vector<Diagnostic>* out);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_LINT_H_
