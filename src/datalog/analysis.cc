#include "datalog/analysis.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::datalog {

using util::Result;
using util::Status;

Status ValidateInstallableRule(const Rule& rule) {
  if (rule.heads.size() != 1) {
    return util::Internal("installable rules must have exactly one head");
  }
  auto bad = [&](const std::string& what) {
    return util::UnsafeProgram(util::StrCat(
        what, " outside quoted code in rule: ", PrintRule(rule)));
  };
  auto check_atom = [&](const Atom& a) -> Status {
    if (a.meta_atom || a.star) return bad("meta-atom pattern");
    if (a.meta_functor) return bad("meta-variable functor");
    for (const Term& t : a.args) {
      if (t.kind == Term::Kind::kStarVar) return bad("star variable");
    }
    if (a.partition && a.partition->kind == Term::Kind::kStarVar) {
      return bad("star variable");
    }
    return util::OkStatus();
  };
  LB_RETURN_IF_ERROR(check_atom(rule.heads[0]));
  for (const Literal& l : rule.body) {
    LB_RETURN_IF_ERROR(check_atom(l.atom));
  }
  if (rule.aggregate.has_value() && rule.body.empty()) {
    return util::UnsafeProgram("aggregate rule with empty body");
  }
  return util::OkStatus();
}

namespace {

struct Graph {
  // Adjacency: pred -> (pred, negative?) successors, deduped.
  std::map<std::string, std::set<std::pair<std::string, bool>>> edges;
  std::set<std::string> nodes;
};

// Tarjan SCC over the predicate graph.
class SccFinder {
 public:
  explicit SccFinder(const Graph& g) : g_(g) {}

  std::vector<std::vector<std::string>> Run() {
    for (const std::string& n : g_.nodes) {
      if (index_.find(n) == index_.end()) Strongconnect(n);
    }
    return sccs_;
  }

  int SccOf(const std::string& n) const { return scc_of_.at(n); }

 private:
  void Strongconnect(const std::string& v) {
    index_[v] = next_index_;
    lowlink_[v] = next_index_;
    ++next_index_;
    stack_.push_back(v);
    on_stack_.insert(v);
    auto it = g_.edges.find(v);
    if (it != g_.edges.end()) {
      for (const auto& [w, neg] : it->second) {
        if (index_.find(w) == index_.end()) {
          Strongconnect(w);
          lowlink_[v] = std::min(lowlink_[v], lowlink_[w]);
        } else if (on_stack_.count(w)) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      }
    }
    if (lowlink_[v] == index_[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        scc_of_[w] = static_cast<int>(sccs_.size());
        scc.push_back(w);
        if (w == v) break;
      }
      sccs_.push_back(std::move(scc));
    }
  }

  const Graph& g_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  std::map<std::string, int> scc_of_;
  std::vector<std::vector<std::string>> sccs_;
  int next_index_ = 0;
};

}  // namespace

Result<Stratification> Stratify(const std::vector<const Rule*>& rules,
                                const BuiltinRegistry& builtins) {
  Graph g;
  for (const Rule* rule : rules) {
    const std::string& head = rule->heads[0].predicate;
    g.nodes.insert(head);
    for (const Literal& lit : rule->body) {
      const std::string& pred = lit.atom.predicate;
      if (builtins.Find(pred) != nullptr) continue;
      bool negative = lit.negated || rule->aggregate.has_value();
      g.nodes.insert(pred);
      g.edges[pred].insert({head, negative});
    }
  }

  SccFinder finder(g);
  std::vector<std::vector<std::string>> sccs = finder.Run();

  // Reject negative edges inside an SCC (negation/aggregation through
  // recursion), spelling out the offending cycle as a predicate path:
  // the negative edge, then a BFS inside the SCC closing dst back to src.
  for (const auto& [src, succs] : g.edges) {
    for (const auto& [dst, neg] : succs) {
      if (neg && finder.SccOf(src) == finder.SccOf(dst)) {
        const int scc = finder.SccOf(src);
        std::map<std::string, std::string> parent;
        std::deque<std::string> queue{dst};
        parent[dst] = dst;
        while (!queue.empty() && parent.find(src) == parent.end()) {
          std::string v = queue.front();
          queue.pop_front();
          auto it = g.edges.find(v);
          if (it == g.edges.end()) continue;
          for (const auto& [w, unused] : it->second) {
            (void)unused;
            if (finder.SccOf(w) != scc || parent.count(w)) continue;
            parent[w] = v;
            queue.push_back(w);
          }
        }
        std::string cycle = util::StrCat(src, " -!-> ", dst);
        if (parent.count(src) && src != dst) {
          std::vector<std::string> path;
          for (std::string v = src; v != dst; v = parent[v]) {
            path.push_back(v);
          }
          for (auto it2 = path.rbegin(); it2 != path.rend(); ++it2) {
            cycle += util::StrCat(" -> ", *it2);
          }
        }
        return util::NotStratifiable(util::StrCat(
            "negation or aggregation through recursion between '", src,
            "' and '", dst, "' (cycle: ", cycle, ")"));
      }
    }
  }

  // level(P) = max over incoming edges of level(Q) (+1 if negative),
  // computed by a small fixpoint over the edges (the graph has one node
  // per predicate; convergence is immediate in practice).
  std::vector<int> scc_level(sccs.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [src, succs] : g.edges) {
      int src_scc = finder.SccOf(src);
      for (const auto& [dst, neg] : succs) {
        int dst_scc = finder.SccOf(dst);
        if (src_scc == dst_scc) continue;
        int want = scc_level[src_scc] + (neg ? 1 : 0);
        if (scc_level[dst_scc] < want) {
          scc_level[dst_scc] = want;
          changed = true;
        }
      }
    }
  }

  Stratification out;
  int max_level = 0;
  for (size_t i = 0; i < sccs.size(); ++i) {
    max_level = std::max(max_level, scc_level[i]);
  }
  out.strata.resize(static_cast<size_t>(max_level) + 1);
  // Deterministic order: reverse Tarjan emission = topological order.
  for (size_t i = sccs.size(); i-- > 0;) {
    for (const std::string& pred : sccs[i]) {
      out.level[pred] = scc_level[i];
      out.strata[static_cast<size_t>(scc_level[i])].push_back(pred);
    }
  }
  return out;
}

}  // namespace lbtrust::datalog
