#include "datalog/builtins.h"

#include "datalog/ast.h"
#include "util/strings.h"

namespace lbtrust::datalog {

using util::Status;

void BuiltinRegistry::Register(std::string name, size_t arity,
                               std::vector<std::string> modes, BuiltinFn fn) {
  BuiltinDef def;
  def.name = name;
  def.arity = arity;
  def.modes = std::move(modes);
  def.fn = std::move(fn);
  defs_[std::move(name)] = std::move(def);
}

const BuiltinDef* BuiltinRegistry::Find(const std::string& name) const {
  auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : &it->second;
}

namespace {

Tuple BoundTuple(const std::vector<std::optional<Value>>& args) {
  Tuple t;
  t.reserve(args.size());
  for (const auto& a : args) t.push_back(*a);
  return t;
}

// Comparison over two bound values. Numeric kinds compare numerically;
// string/symbol compare lexicographically within their kind. Mixed,
// incomparable kinds simply do not match (no error: constraints routinely
// probe heterogeneous relations).
int CompareValues(const Value& a, const Value& b, bool* comparable) {
  *comparable = true;
  if (a.IsNumeric() && b.IsNumeric()) {
    double x = a.NumericValue(), y = b.NumericValue();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.kind() == b.kind() && (a.kind() == ValueKind::kString ||
                               a.kind() == ValueKind::kSymbol)) {
    return a.AsText().compare(b.AsText());
  }
  *comparable = false;
  return 0;
}

BuiltinFn MakeComparison(int lo, int hi) {
  return [lo, hi](const std::vector<std::optional<Value>>& args,
                  const EmitFn& emit) -> Status {
    bool comparable = false;
    int cmp = CompareValues(*args[0], *args[1], &comparable);
    if (comparable && cmp >= lo && cmp <= hi) emit(BoundTuple(args));
    return util::OkStatus();
  };
}

BuiltinFn MakeKindCheck(std::function<bool(const Value&)> pred) {
  return [pred = std::move(pred)](const std::vector<std::optional<Value>>& args,
                                  const EmitFn& emit) -> Status {
    if (pred(*args[0])) emit(BoundTuple(args));
    return util::OkStatus();
  };
}

bool IsCodeWhat(const Value& v, CodeValue::What what) {
  return v.kind() == ValueKind::kCode && v.AsCode().what == what;
}

}  // namespace

void RegisterStandardBuiltins(BuiltinRegistry* registry) {
  registry->Register("<", 2, {"bb"}, MakeComparison(-1, -1));
  registry->Register("<=", 2, {"bb"}, MakeComparison(-1, 0));
  registry->Register(">", 2, {"bb"}, MakeComparison(1, 1));
  registry->Register(">=", 2, {"bb"}, MakeComparison(0, 1));
  registry->Register(
      "!=", 2, {"bb"},
      [](const std::vector<std::optional<Value>>& args,
         const EmitFn& emit) -> Status {
        if (!(*args[0] == *args[1])) emit(BoundTuple(args));
        return util::OkStatus();
      });
  // "=" is handled specially by the evaluator (unification); the registry
  // entry only reserves the name so programs cannot redefine it.
  registry->Register("=", 2, {"bb"},
                     [](const std::vector<std::optional<Value>>& args,
                        const EmitFn& emit) -> Status {
                       if (*args[0] == *args[1]) emit(BoundTuple(args));
                       return util::OkStatus();
                     });

  // Value-kind type checks.
  registry->Register("int", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return v.kind() == ValueKind::kInt;
                     }));
  registry->Register("int64", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return v.kind() == ValueKind::kInt;
                     }));
  registry->Register("string", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return v.kind() == ValueKind::kString ||
                              v.kind() == ValueKind::kSymbol;
                     }));
  registry->Register("float", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return v.kind() == ValueKind::kDouble;
                     }));
  registry->Register("bool", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return v.kind() == ValueKind::kBool;
                     }));

  // Meta-model kind checks (Figure 1 entity types).
  registry->Register("rule", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return IsCodeWhat(v, CodeValue::What::kRule);
                     }));
  registry->Register("atom", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return IsCodeWhat(v, CodeValue::What::kAtom) ||
                              IsCodeWhat(v, CodeValue::What::kRule);
                     }));
  registry->Register("term", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return IsCodeWhat(v, CodeValue::What::kTerm) ||
                              !v.is_nil();
                     }));
  registry->Register("variable", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return IsCodeWhat(v, CodeValue::What::kTerm) &&
                              v.AsCode().term->kind == Term::Kind::kVariable;
                     }));
  registry->Register("constant", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return v.kind() != ValueKind::kNil &&
                              !IsCodeWhat(v, CodeValue::What::kRule) &&
                              !(IsCodeWhat(v, CodeValue::What::kTerm) &&
                                v.AsCode().term->kind ==
                                    Term::Kind::kVariable);
                     }));
  registry->Register("predicate", 1, {"b"}, MakeKindCheck([](const Value& v) {
                       return v.kind() == ValueKind::kSymbol;
                     }));
}

}  // namespace lbtrust::datalog
