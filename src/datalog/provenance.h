#ifndef LBTRUST_DATALOG_PROVENANCE_H_
#define LBTRUST_DATALOG_PROVENANCE_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datalog/value.h"

namespace lbtrust::datalog {

/// Why a tuple holds: one derivation witness (the first found) per derived
/// tuple. The paper lists provenance as LBTrust's in-progress extension
/// (§7) — "useful for analyzing derivations of security policies, runtime
/// verification, and dynamic type checking"; for trust management it makes
/// chains of trust inspectable (who said what, verified how).
struct Derivation {
  enum class Kind {
    kBase,       ///< asserted EDB fact
    kRule,       ///< derived by a rule from the listed premises
    kAggregate,  ///< derived by an aggregation rule (premises omitted)
    kActivated,  ///< installed by the codegen loop from an active(R) fact
  };
  Kind kind = Kind::kBase;
  std::string rule_canon;  ///< deriving rule (kRule/kAggregate/kActivated)
  /// Relational body facts this tuple was derived from (kRule only).
  std::vector<std::pair<std::string, Tuple>> premises;
};

/// Per-workspace provenance table, rebuilt on every fixpoint.
class ProvenanceStore {
 public:
  void Clear() { table_.clear(); }

  /// Records a witness if the tuple has none yet (first derivation wins).
  void Record(const std::string& predicate, const Tuple& tuple,
              Derivation derivation);

  const Derivation* Find(const std::string& predicate,
                         const Tuple& tuple) const;

  /// Renders the full derivation tree (premises recursively), e.g.:
  ///
  ///   access(dave,f1,read)
  ///   `- rule: access(P,O,read) <- says(bob,me,[| ... |]).
  ///      `- says(bob,alice,[| access(dave,f1,read). |])
  ///         `- rule: says(U,me,R) <- export[me](U,R,S).
  ///            `- export(alice,bob,[| ... |],"...")   [base]
  ///
  /// Cycles (possible through recursive rules) are cut with "...".
  std::string Explain(const std::string& predicate, const Tuple& tuple) const;

  size_t size() const { return table_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const std::pair<std::string, Tuple>& key) const;
  };

  void ExplainInto(const std::string& predicate, const Tuple& tuple,
                   const std::string& indent,
                   std::vector<std::pair<std::string, Tuple>>* path,
                   std::string* out) const;

  std::unordered_map<std::pair<std::string, Tuple>, Derivation, KeyHash>
      table_;
};

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_PROVENANCE_H_
