#ifndef LBTRUST_DATALOG_EXPLAIN_H_
#define LBTRUST_DATALOG_EXPLAIN_H_

#include <string>
#include <vector>

#include "datalog/eval.h"
#include "datalog/lint.h"
#include "obs/metrics.h"

namespace lbtrust::datalog {

/// EXPLAIN output formats: human text (one indented block per rule) or a
/// JSON document (`{"rules":[...]}`; a single rule renders as one object).
enum class ExplainFormat { kText, kJson };

/// Renders one compiled rule's plan: the literal schedule actually
/// executed (full order plus each per-delta-position order), the static
/// probe mask at every scheduled position (a column counts as bound iff it
/// is a constant or was bound by an earlier literal — the same replay the
/// parallel evaluator derives its index masks from), and — when `metrics`
/// is non-null — the measured side: per-rule cumulative
/// evals/derived/probes/eval-time counters and per-relation probe/hit
/// selectivities (`lbtrust_relation_{probes,probe_hits}_total`). This is
/// the Prepare()-time stats feed cost-based join ordering consumes
/// (ROADMAP item 5): plan = what the static scheduler chose, selectivity =
/// what the workload measured, disagreement = reorder opportunity.
/// `diagnostics` (optional) are this rule's lint findings: the JSON form
/// always carries a `"diagnostics"` array (empty when null/none) so
/// consumers can rely on the shape; text prints a `diagnostics:` section
/// only when non-empty.
std::string ExplainCompiledRule(const CompiledRule& rule,
                                obs::MetricsRegistry* metrics,
                                ExplainFormat format,
                                const std::vector<Diagnostic>* diagnostics =
                                    nullptr);

/// Renders a rule set: JSON `{"rules":[...]}` or concatenated text blocks.
/// `diagnostics`, when non-null, is aligned with `rules` (per-rule lint
/// findings; shorter is fine — missing entries render empty).
std::string ExplainCompiledRules(
    const std::vector<const CompiledRule*>& rules,
    obs::MetricsRegistry* metrics, ExplainFormat format,
    const std::vector<std::vector<Diagnostic>>* diagnostics = nullptr);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_EXPLAIN_H_
