#ifndef LBTRUST_DATALOG_EXPLAIN_H_
#define LBTRUST_DATALOG_EXPLAIN_H_

#include <string>
#include <vector>

#include "datalog/eval.h"
#include "obs/metrics.h"

namespace lbtrust::datalog {

/// EXPLAIN output formats: human text (one indented block per rule) or a
/// JSON document (`{"rules":[...]}`; a single rule renders as one object).
enum class ExplainFormat { kText, kJson };

/// Renders one compiled rule's plan: the literal schedule actually
/// executed (full order plus each per-delta-position order), the static
/// probe mask at every scheduled position (a column counts as bound iff it
/// is a constant or was bound by an earlier literal — the same replay the
/// parallel evaluator derives its index masks from), and — when `metrics`
/// is non-null — the measured side: per-rule cumulative
/// evals/derived/probes/eval-time counters and per-relation probe/hit
/// selectivities (`lbtrust_relation_{probes,probe_hits}_total`). This is
/// the Prepare()-time stats feed cost-based join ordering consumes
/// (ROADMAP item 5): plan = what the static scheduler chose, selectivity =
/// what the workload measured, disagreement = reorder opportunity.
std::string ExplainCompiledRule(const CompiledRule& rule,
                                obs::MetricsRegistry* metrics,
                                ExplainFormat format);

/// Renders a rule set: JSON `{"rules":[...]}` or concatenated text blocks.
std::string ExplainCompiledRules(const std::vector<const CompiledRule*>& rules,
                                 obs::MetricsRegistry* metrics,
                                 ExplainFormat format);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_EXPLAIN_H_
