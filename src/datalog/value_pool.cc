#include "datalog/value_pool.h"

#include <atomic>
#include <cstring>

namespace lbtrust::datalog {

ValuePool::ValuePool() {
  static std::atomic<uint64_t> counter{0};
  generation_ = counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace {

/// IEEE bit pattern with -0.0 normalized to +0.0 so that ids preserve
/// `Value::operator==` on doubles.
uint64_t DoubleBits(double d) {
  if (d == 0) d = 0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Tag an inline-representable value, or report the pooled tag to use.
bool TryInline(const Value& v, ValueId* out, ValueId::Tag* pooled_tag) {
  switch (v.kind()) {
    case ValueKind::kNil:
      *out = ValueId::Nil();
      return true;
    case ValueKind::kBool:
      *out = ValueId::Bool(v.AsBool());
      return true;
    case ValueKind::kInt:
      if (ValueId::IntFitsInline(v.AsInt())) {
        *out = ValueId::InlineInt(v.AsInt());
        return true;
      }
      *pooled_tag = ValueId::kTagPooledInt;
      return false;
    case ValueKind::kDouble: {
      // NaN never compares equal to anything (including itself) under
      // Value::operator==; inline-encoding it would make two NaN ids
      // bit-equal and break "id equality iff value equality". Pool it
      // instead — and InternSlow/Find below never dedup or resolve NaN,
      // so every NaN intern is a fresh, never-equal id, exactly mirroring
      // the seed engine's equality semantics.
      if (v.AsDouble() != v.AsDouble()) {
        *pooled_tag = ValueId::kTagPooledDouble;
        return false;
      }
      uint64_t bits = DoubleBits(v.AsDouble());
      if ((bits & 0xFF) == 0) {
        *out = ValueId::FromBits(
            (uint64_t{ValueId::kTagInlineDouble} << ValueId::kPayloadBits) |
            (bits >> 8));
        return true;
      }
      *pooled_tag = ValueId::kTagPooledDouble;
      return false;
    }
    case ValueKind::kString:
      *pooled_tag = ValueId::kTagString;
      return false;
    case ValueKind::kSymbol:
      *pooled_tag = ValueId::kTagSymbol;
      return false;
    case ValueKind::kCode:
      *pooled_tag = ValueId::kTagCode;
      return false;
    case ValueKind::kPart:
      *pooled_tag = ValueId::kTagPart;
      return false;
  }
  *out = ValueId::Nil();
  return true;
}

}  // namespace

ValueId ValuePool::Intern(const Value& v) {
  ValueId inline_id;
  ValueId::Tag tag = ValueId::kTagNil;
  if (TryInline(v, &inline_id, &tag)) return inline_id;
  return InternSlow(v, tag);
}

ValueId ValuePool::InternSlow(const Value& v, ValueId::Tag tag) {
  uint64_t h = v.Hash();
  std::vector<uint32_t>& bucket = dedup_[h];
  for (uint32_t index : bucket) {
    if (values_[index] == v) return ValueId::Pooled(tag, index);
  }
  uint32_t index = static_cast<uint32_t>(values_.size());
  values_.push_back(v);
  bucket.push_back(index);
  return ValueId::Pooled(tag, index);
}

bool ValuePool::Find(const Value& v, ValueId* out) const {
  ValueId::Tag tag = ValueId::kTagNil;
  if (TryInline(v, out, &tag)) return true;
  auto it = dedup_.find(v.Hash());
  if (it == dedup_.end()) return false;
  for (uint32_t index : it->second) {
    if (values_[index] == v) {
      *out = ValueId::Pooled(tag, index);
      return true;
    }
  }
  return false;
}

Value ValuePool::Get(ValueId id) const {
  switch (id.tag()) {
    case ValueId::kTagNil:
      return Value();
    case ValueId::kTagFalse:
      return Value::Bool(false);
    case ValueId::kTagTrue:
      return Value::Bool(true);
    case ValueId::kTagInlineInt: {
      // Sign-extend the 56-bit payload.
      int64_t v = static_cast<int64_t>(id.payload() << 8) >> 8;
      return Value::Int(v);
    }
    case ValueId::kTagInlineDouble: {
      uint64_t bits = id.payload() << 8;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    default:
      return values_[static_cast<size_t>(id.payload())];
  }
}

ValuePool* ValuePool::Default() {
  static ValuePool* pool = new ValuePool();
  return pool;
}

IdTuple InternTuple(ValuePool* pool, const Tuple& t) {
  IdTuple out;
  out.reserve(t.size());
  for (const Value& v : t) out.push_back(pool->Intern(v));
  return out;
}

Tuple MaterializeTuple(const ValuePool& pool, const ValueId* row, size_t n) {
  Tuple out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(pool.Get(row[i]));
  return out;
}

}  // namespace lbtrust::datalog
