#include "datalog/lint.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace lbtrust::datalog {

namespace {

const BuiltinRegistry& StandardBuiltins() {
  static const BuiltinRegistry* reg = [] {
    auto* r = new BuiltinRegistry;
    RegisterStandardBuiltins(r);
    return r;
  }();
  return *reg;
}

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNil: return "nil";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "int";
    case ValueKind::kDouble: return "float";
    case ValueKind::kString: return "string";
    case ValueKind::kSymbol: return "symbol";
    case ValueKind::kCode: return "code";
    case ValueKind::kPart: return "partition";
  }
  return "?";
}

/// Allocation-free early-exit twin of CollectTermVars: does the term bind
/// any variable (same shallow visibility — quoted code stays opaque)?
bool TermHasVars(const Term& t) {
  switch (t.kind) {
    case Term::Kind::kVariable:
    case Term::Kind::kStarVar:
      return true;
    case Term::Kind::kExpr:
      return TermHasVars(*t.lhs) || TermHasVars(*t.rhs);
    case Term::Kind::kPartRef:
      return TermHasVars(*t.part_key);
    default:
      return false;  // constants (incl. quoted code) and `me` bind nothing
  }
}

bool AtomHasVars(const Atom& a) {
  if (a.partition && TermHasVars(*a.partition)) return true;
  for (const Term& t : a.args) {
    if (TermHasVars(t)) return true;
  }
  return false;
}

/// A clause whose heads are ground routes to the EDB, not the rule set
/// (mirrors the workspace's IsGroundFactRule).
bool IsEdbFact(const Rule& rule) {
  if (!rule.IsFact()) return false;
  for (const Atom& h : rule.heads) {
    if (h.meta_atom || h.meta_functor || AtomHasVars(h)) return false;
  }
  return true;
}

// --- Per-rule binding-flow analysis ---------------------------------------
//
// Mirrors eval.cc's greedy scheduler at the AST level (same shallow
// variable visibility as CompileRule's slot interning): a literal is
// schedulable under the same conditions ScheduleScore accepts it, and
// binds the same variables BindLiteralOutputs binds. Because binding is
// monotone, "repeat: schedule any schedulable literal" reaches the same
// stuck-or-done verdict as the engine's scored greedy walk — so a lint
// error here is exactly a CompileRule rejection, but with the offending
// variable and position attached.

/// Per-rule variable interner: analysis runs on small integer ids (bound
/// state is a flat bitset, not a std::set<std::string>), names are kept
/// only for diagnostics. Rules have a handful of variables, so linear
/// search beats any hash map here.
struct VarTable {
  std::vector<std::string> names;
  std::vector<std::string> scratch;  ///< reused by Collect below

  int Intern(const std::string& v) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == v) return static_cast<int>(i);
    }
    names.push_back(v);
    return static_cast<int>(names.size()) - 1;
  }
  int Find(const std::string& v) const {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == v) return static_cast<int>(i);
    }
    return -1;
  }
  const std::string& name(int id) const {
    return names[static_cast<size_t>(id)];
  }
};

/// Flat bitset over interned variable ids.
using BoundSet = std::vector<char>;

bool IsBound(const BoundSet& bound, int id) {
  return bound[static_cast<size_t>(id)] != 0;
}

struct LintCol {
  uint32_t vars_first = 0;  ///< offset into RuleScratch::var_pool
  uint32_t vars_len = 0;    ///< shallow variable count (quoted code opaque)
  bool is_expr = false;     ///< arithmetic: check-only, never inverted
};

struct LintLit {
  enum class Kind { kRelation, kNegation, kBuiltin, kEquality };
  Kind kind = Kind::kRelation;
  int body_idx = 0;
  const Literal* src = nullptr;
  const BuiltinDef* builtin = nullptr;
  bool negated_builtin = false;   ///< negated non-equality builtin
  uint32_t cols_first = 0;        ///< offset into RuleScratch::col_pool,
  uint32_t cols_len = 0;          ///< partition key first, like the engine
  uint32_t elsewhere_first = 0;   ///< negation only: offset into
                                  ///< elsewhere_pool (num_vars flags)
};

/// Per-rule analysis state, pooled so one Linter run performs a constant
/// number of allocations regardless of rule count: variable ids, columns
/// and negation masks all live in flat arrays keyed by (offset, length),
/// and Reset() keeps every pool's capacity for the next rule.
struct RuleScratch {
  VarTable table;
  std::vector<int> var_pool;         ///< LintCol -> variable ids
  std::vector<LintCol> col_pool;     ///< LintLit / head -> columns
  std::vector<char> elsewhere_pool;  ///< negation masks, num_vars each
  std::vector<LintLit> body;
  BoundSet bound;
  std::vector<char> done;

  void Reset() {
    table.names.clear();
    var_pool.clear();
    col_pool.clear();
    elsewhere_pool.clear();
    body.clear();
  }
  const int* vars(const LintCol& c) const {
    return var_pool.data() + c.vars_first;
  }
  const LintCol* cols(const LintLit& l) const {
    return col_pool.data() + l.cols_first;
  }
  const char* elsewhere(const LintLit& l) const {
    return elsewhere_pool.data() + l.elsewhere_first;
  }
};

LintCol MakeCol(const Term& t, RuleScratch& s) {
  LintCol col;
  col.vars_first = static_cast<uint32_t>(s.var_pool.size());
  col.is_expr = t.kind == Term::Kind::kExpr;
  // Fast paths for the two dominant shapes — a bare variable and a
  // var-free term — skip the string-copying CollectTermVars round trip.
  switch (t.kind) {
    case Term::Kind::kVariable:
    case Term::Kind::kStarVar:
      s.var_pool.push_back(s.table.Intern(t.var));
      col.vars_len = 1;
      return col;
    case Term::Kind::kConstant:
    case Term::Kind::kMe:
      return col;  // binds nothing (quoted code stays opaque)
    default:
      break;
  }
  s.table.scratch.clear();
  CollectTermVars(t, &s.table.scratch);
  for (const std::string& v : s.table.scratch) {
    s.var_pool.push_back(s.table.Intern(v));
  }
  col.vars_len = static_cast<uint32_t>(s.var_pool.size()) - col.vars_first;
  return col;
}

/// Appends the atom's columns to the column pool; returns (first, count).
std::pair<uint32_t, uint32_t> AtomCols(const Atom& atom, RuleScratch& s) {
  uint32_t first = static_cast<uint32_t>(s.col_pool.size());
  if (atom.partition) s.col_pool.push_back(MakeCol(*atom.partition, s));
  for (const Term& t : atom.args) s.col_pool.push_back(MakeCol(t, s));
  return {first, static_cast<uint32_t>(s.col_pool.size()) - first};
}

bool ColGround(const RuleScratch& s, const LintCol& col,
               const BoundSet& bound) {
  const int* vs = s.vars(col);
  for (uint32_t i = 0; i < col.vars_len; ++i) {
    if (!IsBound(bound, vs[i])) return false;
  }
  return true;
}

std::vector<int> ColUnbound(const RuleScratch& s, const LintCol& col,
                            const BoundSet& bound) {
  std::vector<int> out;
  const int* vs = s.vars(col);
  for (uint32_t i = 0; i < col.vars_len; ++i) {
    if (!IsBound(bound, vs[i])) out.push_back(vs[i]);
  }
  return out;
}

/// Fills the literal's elsewhere mask with the variables occurring in
/// literals other than `skip` or in the head — the wildcard-negation rule
/// from eval.cc's SlotsUsedElsewhere. Computed once per negation literal
/// per rule (the mask never changes as the schedule progresses).
void FillVarsUsedElsewhere(RuleScratch& s, uint32_t head_first,
                           uint32_t head_len, size_t skip, size_t num_vars,
                           LintLit* lit) {
  lit->elsewhere_first = static_cast<uint32_t>(s.elsewhere_pool.size());
  s.elsewhere_pool.resize(s.elsewhere_pool.size() + num_vars, 0);
  char* mask = s.elsewhere_pool.data() + lit->elsewhere_first;
  for (size_t i = 0; i < s.body.size(); ++i) {
    if (i == skip) continue;
    const LintCol* cs = s.cols(s.body[i]);
    for (uint32_t c = 0; c < s.body[i].cols_len; ++c) {
      const int* vs = s.vars(cs[c]);
      for (uint32_t v = 0; v < cs[c].vars_len; ++v) {
        mask[vs[v]] = 1;
      }
    }
  }
  for (uint32_t c = 0; c < head_len; ++c) {
    const LintCol& col = s.col_pool[head_first + c];
    const int* vs = s.vars(col);
    for (uint32_t v = 0; v < col.vars_len; ++v) mask[vs[v]] = 1;
  }
}

bool LitSchedulable(const RuleScratch& s, size_t idx, const BoundSet& bound) {
  const LintLit& lit = s.body[idx];
  const LintCol* cs = s.cols(lit);
  switch (lit.kind) {
    case LintLit::Kind::kEquality: {
      bool g0 = ColGround(s, cs[0], bound);
      bool g1 = ColGround(s, cs[1], bound);
      if (g0 && g1) return true;
      if (g0 && !cs[1].is_expr) return true;
      if (g1 && !cs[0].is_expr) return true;
      return false;
    }
    case LintLit::Kind::kBuiltin: {
      if (lit.negated_builtin) {
        for (uint32_t c = 0; c < lit.cols_len; ++c) {
          if (!ColGround(s, cs[c], bound)) return false;
        }
        return true;
      }
      for (const std::string& mode : lit.builtin->modes) {
        bool ok = true;
        for (size_t i = 0; i < mode.size() && i < lit.cols_len; ++i) {
          if (mode[i] == 'b' && !ColGround(s, cs[i], bound)) {
            ok = false;
            break;
          }
        }
        if (ok) return true;
      }
      return false;
    }
    case LintLit::Kind::kNegation: {
      const char* mask = s.elsewhere(lit);
      for (uint32_t c = 0; c < lit.cols_len; ++c) {
        const int* vs = s.vars(cs[c]);
        for (uint32_t v = 0; v < cs[c].vars_len; ++v) {
          if (!IsBound(bound, vs[v]) && mask[vs[v]]) return false;
        }
      }
      return true;
    }
    case LintLit::Kind::kRelation: {
      for (uint32_t c = 0; c < lit.cols_len; ++c) {
        if (cs[c].is_expr && !ColGround(s, cs[c], bound)) return false;
      }
      return true;
    }
  }
  return false;
}

void BindLitOutputs(const RuleScratch& s, const LintLit& lit,
                    BoundSet* bound) {
  const LintCol* cs = s.cols(lit);
  switch (lit.kind) {
    case LintLit::Kind::kRelation:
      for (uint32_t c = 0; c < lit.cols_len; ++c) {
        // Relation columns bind unless they are check-only arithmetic.
        if (!cs[c].is_expr) {
          const int* vs = s.vars(cs[c]);
          for (uint32_t v = 0; v < cs[c].vars_len; ++v) {
            (*bound)[static_cast<size_t>(vs[v])] = 1;
          }
        }
      }
      return;
    case LintLit::Kind::kEquality:
    case LintLit::Kind::kBuiltin:
      for (uint32_t c = 0; c < lit.cols_len; ++c) {
        const int* vs = s.vars(cs[c]);
        for (uint32_t v = 0; v < cs[c].vars_len; ++v) {
          (*bound)[static_cast<size_t>(vs[v])] = 1;
        }
      }
      return;
    case LintLit::Kind::kNegation:
      return;
  }
}

std::string JoinVars(const std::vector<int>& vars, const VarTable& table) {
  std::string out;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i != 0) out += ", ";
    out += util::StrCat("'", table.name(vars[i]), "'");
  }
  return out;
}

// --- The analyzer ---------------------------------------------------------

constexpr size_t kNoArity = ~static_cast<size_t>(0);
constexpr int kEqPred = -1;

/// Predicate interner entry shared by every pass: one builtin-registry
/// lookup per distinct predicate for the whole run, and integer ids instead
/// of string-keyed maps in the graph passes. Programs have a handful of
/// predicates, so linear search allocates nothing and beats hashing.
struct PredInfo {
  std::string name;
  const BuiltinDef* builtin = nullptr;
  size_t arity = kNoArity;        ///< first seen arity (CheckArities)
  const Atom* first_use = nullptr;
  bool is_head = false;           ///< appears as a rule/fact head
  bool is_derived = false;        ///< head of a non-fact rule
  bool is_read = false;           ///< appears in a rule body
};

/// Interned view of one atom, cached per rule by CheckArities so the
/// graph passes never re-run the string search. `id` is kEqPred for the
/// '=' pseudo-predicate, a preds index otherwise (meta atoms included).
struct AtomId {
  int id = kEqPred;
  bool meta = false;
};

/// A head<-body dependency edge in the stratification graph.
struct DepEdge {
  int src, dst;
  bool negative;
  int rule_index;
};

/// Reusable whole-run storage. A run fills these and leaves the capacity
/// behind for the next run on the same thread, so steady-state ingress
/// linting performs no per-run pool allocations at all.
struct LintArena {
  std::vector<const Rule*> rules;
  std::vector<const Constraint*> constraints;
  std::vector<PredInfo> preds;
  std::vector<AtomId> atom_ids;
  std::vector<uint32_t> rule_ids_first;
  RuleScratch scratch;

  // Graph-pass scratch. Each pass re-initializes exactly what it uses, so
  // Reset() leaves these alone; the two vector-of-vectors never shrink,
  // keeping their inner capacity too.
  std::vector<char> is_edb;                           ///< per rule index
  std::vector<DepEdge> strat_edges;
  std::vector<std::vector<std::pair<int, bool>>> strat_adj;
  std::vector<int> scc_of, tarjan_index, tarjan_lowlink, tarjan_stack;
  std::vector<char> tarjan_on_stack;
  std::vector<std::vector<uint16_t>> drift_masks;     ///< per pred id
  std::vector<char> roots, reachable;                 ///< per pred id

  void Reset() {
    rules.clear();
    constraints.clear();
    preds.clear();
    atom_ids.clear();
    rule_ids_first.clear();
    scratch.Reset();
  }
};

class Linter {
 public:
  Linter(const LintOptions& opts, std::vector<std::string> self_names,
         LintArena* arena)
      : opts_(opts),
        builtins_(opts.builtins != nullptr ? *opts.builtins
                                           : StandardBuiltins()),
        self_names_(std::move(self_names)),
        arena_(*arena),
        rules_(arena->rules),
        constraints_(arena->constraints),
        preds_(arena->preds),
        atom_ids_(arena->atom_ids),
        rule_ids_first_(arena->rule_ids_first),
        scratch_(arena->scratch) {
    arena->Reset();
    // Typical programs stay under these; at most one allocation per pool
    // per thread, ever (the arena keeps capacity across runs).
    preds_.reserve(48);
    scratch_.table.names.reserve(16);
    scratch_.var_pool.reserve(32);
    scratch_.col_pool.reserve(32);
    scratch_.body.reserve(16);
  }

  void AddRule(const Rule& rule) { rules_.push_back(&rule); }
  void AddConstraint(const Constraint& constraint) {
    constraints_.push_back(&constraint);
  }

  int PredId(const std::string& name) {
    for (size_t i = 0; i < preds_.size(); ++i) {
      if (preds_[i].name == name) return static_cast<int>(i);
    }
    PredInfo info;
    info.name = name;
    info.builtin = builtins_.Find(name);
    preds_.push_back(std::move(info));
    return static_cast<int>(preds_.size()) - 1;
  }

  const BuiltinDef* FindBuiltin(const std::string& name) {
    return preds_[static_cast<size_t>(PredId(name))].builtin;
  }

  const std::string& PredName(int id) const {
    return preds_[static_cast<size_t>(id)].name;
  }

  // One flat pool, heads then body per rule; rule_ids_first_[i] is rule
  // i's offset. Lengths come from the rule itself, so no per-rule vectors.
  AtomId HeadId(size_t rule, size_t h) const {
    return atom_ids_[rule_ids_first_[rule] + h];
  }
  AtomId BodyId(size_t rule, size_t b) const {
    return atom_ids_[rule_ids_first_[rule] + rules_[rule]->heads.size() + b];
  }

  AtomId IdFor(const Atom& atom) {
    AtomId out;
    out.meta = atom.meta_atom || atom.meta_functor;
    if (atom.predicate != "=") out.id = PredId(atom.predicate);
    return out;
  }

  bool IsEdb(size_t rule) const { return arena_.is_edb[rule] != 0; }

  LintReport Run() {
    CheckArities();  // also fills arena_.is_edb and the dead-code flags
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (!IsEdb(i)) CheckRule(static_cast<int>(i), *rules_[i]);
      if (opts_.says_check) CheckSays(static_cast<int>(i), *rules_[i]);
    }
    CheckStratification();
    CheckConstantDrift();
    CheckDeadCode();
    return std::move(report_);
  }

 private:
  // Cold + noinline: clean programs never emit, and the attribute lets the
  // compiler move every diagnostic-formatting block (the StrCat chains at
  // the call sites) out of the hot analysis loops' instruction stream.
#if defined(__GNUC__)
  __attribute__((cold, noinline))
#endif
  void Emit(LintSeverity severity, const char* code, int rule_index,
            const Rule* rule, std::string predicate, std::string variable,
            int position, std::string message) {
    Diagnostic d;
    d.severity = severity;
    d.code = code;
    d.rule_index = rule_index;
    if (rule != nullptr) d.rule = PrintRule(*rule);
    d.predicate = std::move(predicate);
    d.variable = std::move(variable);
    d.position = position;
    d.message = std::move(message);
    report_.diagnostics.push_back(std::move(d));
  }

  // L030: one predicate, one arity — across heads, bodies, facts and
  // constraints; builtins against their registered arity. Doubles as the
  // interning sweep: every atom's predicate id is cached in rule_ids_ for
  // the stratification/drift/dead-code passes.
  void CheckArities() {
    auto check = [&](const Atom& atom, AtomId aid, int rule_index,
                     const Rule* rule, int position) {
      if (aid.meta || aid.id == kEqPred) return;
      const std::string& pred = atom.predicate;
      size_t arity = atom.Arity();
      PredInfo& info = preds_[static_cast<size_t>(aid.id)];
      if (info.builtin != nullptr) {
        if (arity != info.builtin->arity) {
          Emit(LintSeverity::kError, "L030", rule_index, rule, pred, "",
               position,
               util::StrCat("builtin '", pred, "' expects ",
                            info.builtin->arity, " arguments, got ", arity,
                            " in ", PrintAtom(atom)));
        }
        return;
      }
      if (info.arity == kNoArity) {
        info.arity = arity;
        info.first_use = &atom;
      } else if (info.arity != arity) {
        Emit(LintSeverity::kError, "L030", rule_index, rule, pred, "",
             position,
             util::StrCat("predicate '", pred, "' used at arity ", arity,
                          " in ", PrintAtom(atom), " but at arity ",
                          info.arity, " in ", PrintAtom(*info.first_use)));
      }
    };
    size_t total_atoms = 0;
    for (const Rule* rule : rules_) {
      total_atoms += rule->heads.size() + rule->body.size();
    }
    atom_ids_.reserve(total_atoms);
    rule_ids_first_.reserve(rules_.size());
    arena_.is_edb.assign(rules_.size(), 0);
    for (size_t i = 0; i < rules_.size(); ++i) {
      const Rule& rule = *rules_[i];
      const bool fact = IsEdbFact(rule);
      arena_.is_edb[i] = fact ? 1 : 0;
      rule_ids_first_.push_back(static_cast<uint32_t>(atom_ids_.size()));
      for (const Atom& h : rule.heads) {
        atom_ids_.push_back(IdFor(h));
        const AtomId aid = atom_ids_.back();
        if (aid.id != kEqPred) {
          // Dead-code flags ride the interning sweep; CheckDeadCode only
          // reads them.
          PredInfo& info = preds_[static_cast<size_t>(aid.id)];
          info.is_head = true;
          if (!fact) info.is_derived = true;
        }
        check(h, aid, static_cast<int>(i), &rule, -1);
      }
      for (size_t b = 0; b < rule.body.size(); ++b) {
        atom_ids_.push_back(IdFor(rule.body[b].atom));
        const AtomId aid = atom_ids_.back();
        if (aid.id != kEqPred &&
            preds_[static_cast<size_t>(aid.id)].builtin == nullptr) {
          preds_[static_cast<size_t>(aid.id)].is_read = true;
        }
        check(rule.body[b].atom, aid, static_cast<int>(i), &rule,
              static_cast<int>(b));
      }
    }
    for (const Constraint* c : constraints_) {
      for (const Literal& l : c->lhs) check(l.atom, IdFor(l.atom), -1, nullptr, -1);
      for (const auto& alt : c->rhs_dnf) {
        for (const Literal& l : alt) check(l.atom, IdFor(l.atom), -1, nullptr, -1);
      }
    }
  }

  // Safety / range restriction: L001-L005.
  void CheckRule(int rule_index, const Rule& rule) {
    if (rule.heads.size() != 1) return;  // split upstream; defensive
    util::Status installable = ValidateInstallableRule(rule);
    if (!installable.ok()) {
      Emit(LintSeverity::kError, "L005", rule_index, &rule,
           rule.heads[0].predicate, "", -1, installable.message());
      return;
    }

    // Classify body literals; a misclassified (bad-arity builtin) literal
    // already carries an L030, so skip the schedule to avoid noise.
    RuleScratch& s = scratch_;
    s.Reset();
    for (size_t b = 0; b < rule.body.size(); ++b) {
      const Literal& lit = rule.body[b];
      LintLit ll;
      ll.body_idx = static_cast<int>(b);
      ll.src = &lit;
      std::tie(ll.cols_first, ll.cols_len) = AtomCols(lit.atom, s);
      const AtomId aid = BodyId(static_cast<size_t>(rule_index), b);
      const BuiltinDef* def =
          aid.id == kEqPred ? nullptr
                            : preds_[static_cast<size_t>(aid.id)].builtin;
      if (aid.id == kEqPred && !lit.negated) {
        ll.kind = LintLit::Kind::kEquality;
      } else if (aid.id == kEqPred || def != nullptr) {
        ll.kind = LintLit::Kind::kBuiltin;
        if (aid.id == kEqPred) {
          ll.builtin = FindBuiltin("!=");  // negated '=' runs as '!='
        } else {
          ll.builtin = def;
          ll.negated_builtin = lit.negated;
        }
        if (ll.builtin == nullptr || ll.cols_len != ll.builtin->arity) {
          return;  // L030 already emitted by CheckArities
        }
      } else if (lit.negated) {
        ll.kind = LintLit::Kind::kNegation;
      } else {
        ll.kind = LintLit::Kind::kRelation;
      }
      s.body.push_back(ll);
    }
    const auto [head_first, head_len] = AtomCols(rule.heads[0], s);
    const size_t num_vars = s.table.names.size();
    for (size_t i = 0; i < s.body.size(); ++i) {
      if (s.body[i].kind == LintLit::Kind::kNegation) {
        FillVarsUsedElsewhere(s, head_first, head_len, i, num_vars,
                              &s.body[i]);
      }
    }

    // Monotone schedule replay: keep binding until stuck or done.
    s.bound.assign(num_vars, 0);
    s.done.assign(s.body.size(), 0);
    size_t scheduled = 0;
    bool progress = true;
    while (progress && scheduled < s.body.size()) {
      progress = false;
      for (size_t i = 0; i < s.body.size(); ++i) {
        if (s.done[i]) continue;
        if (!LitSchedulable(s, i, s.bound)) continue;
        BindLitOutputs(s, s.body[i], &s.bound);
        s.done[i] = true;
        ++scheduled;
        progress = true;
      }
    }

    if (scheduled < s.body.size()) {
      ExplainStuck(rule_index, rule, s, scheduled);
      return;  // head/aggregate failures would be downstream noise
    }

    auto bound_by_name = [&](const std::string& v) {
      int id = s.table.Find(v);
      return id >= 0 && IsBound(s.bound, id);
    };
    if (rule.aggregate.has_value()) {
      const Aggregate& agg = *rule.aggregate;
      if (!bound_by_name(agg.input_var)) {
        Emit(LintSeverity::kError, "L004", rule_index, &rule,
             rule.heads[0].predicate, agg.input_var, -1,
             util::StrCat("aggregate input variable '", agg.input_var,
                          "' is not bound by the body of ", PrintRule(rule)));
      }
      if (bound_by_name(agg.result_var)) {
        Emit(LintSeverity::kError, "L004", rule_index, &rule,
             rule.heads[0].predicate, agg.result_var, -1,
             util::StrCat("aggregate result variable '", agg.result_var,
                          "' must not be bound by the body of ",
                          PrintRule(rule)));
      }
    }
    std::vector<char> head_reported(num_vars, 0);
    for (uint32_t c = 0; c < head_len; ++c) {
      const LintCol& col = s.col_pool[head_first + c];
      const int* vs = s.vars(col);
      for (uint32_t vi = 0; vi < col.vars_len; ++vi) {
        const int v = vs[vi];
        const std::string& name = s.table.name(v);
        if (rule.aggregate.has_value() &&
            name == rule.aggregate->result_var) {
          continue;
        }
        if (head_reported[static_cast<size_t>(v)]) continue;
        head_reported[static_cast<size_t>(v)] = 1;
        if (!IsBound(s.bound, v)) {
          Emit(LintSeverity::kError, "L001", rule_index, &rule,
               rule.heads[0].predicate, name, -1,
               util::StrCat("head variable '", name,
                            "' is not bound by any positive body literal in ",
                            PrintRule(rule)));
        }
      }
    }
  }

  // Why each remaining literal cannot be scheduled, with the exact
  // unbound variables and the position the schedule stalled at.
  void ExplainStuck(int rule_index, const Rule& rule, const RuleScratch& s,
                    size_t scheduled) {
    const VarTable& table = s.table;
    const BoundSet& bound = s.bound;
    const std::string at = util::StrCat(
        " (schedule stuck after ", scheduled, " of ", s.body.size(),
        " body literals)");
    for (size_t i = 0; i < s.body.size(); ++i) {
      if (s.done[i]) continue;
      const LintLit& lit = s.body[i];
      const LintCol* cs = s.cols(lit);
      const std::string text = PrintLiteral(*lit.src);
      switch (lit.kind) {
        case LintLit::Kind::kNegation: {
          std::vector<int> blocking;
          const char* mask = s.elsewhere(lit);
          for (uint32_t c = 0; c < lit.cols_len; ++c) {
            const int* vs = s.vars(cs[c]);
            for (uint32_t vi = 0; vi < cs[c].vars_len; ++vi) {
              const int v = vs[vi];
              if (!IsBound(bound, v) && mask[v] &&
                  std::find(blocking.begin(), blocking.end(), v) ==
                      blocking.end()) {
                blocking.push_back(v);
              }
            }
          }
          Emit(LintSeverity::kError, "L002", rule_index, &rule,
               lit.src->atom.predicate,
               blocking.empty() ? "" : table.name(blocking[0]), lit.body_idx,
               util::StrCat("variable(s) ", JoinVars(blocking, table),
                            " in negated literal ", text,
                            " are shared with the rest of the rule but no "
                            "positive literal can bind them",
                            at));
          break;
        }
        case LintLit::Kind::kEquality:
        case LintLit::Kind::kBuiltin: {
          std::vector<int> unbound;
          for (uint32_t c = 0; c < lit.cols_len; ++c) {
            for (int v : ColUnbound(s, cs[c], bound)) {
              if (std::find(unbound.begin(), unbound.end(), v) ==
                  unbound.end()) {
                unbound.push_back(v);
              }
            }
          }
          Emit(LintSeverity::kError, "L003", rule_index, &rule,
               lit.src->atom.predicate,
               unbound.empty() ? "" : table.name(unbound[0]), lit.body_idx,
               util::StrCat(lit.kind == LintLit::Kind::kEquality
                                ? "neither side of "
                                : "no instantiation mode of ",
                            text, " is evaluable: variable(s) ",
                            JoinVars(unbound, table), " cannot be bound", at));
          break;
        }
        case LintLit::Kind::kRelation: {
          std::vector<int> unbound;
          for (uint32_t c = 0; c < lit.cols_len; ++c) {
            if (!cs[c].is_expr) continue;
            for (int v : ColUnbound(s, cs[c], bound)) {
              unbound.push_back(v);
            }
          }
          Emit(LintSeverity::kError, "L005", rule_index, &rule,
               lit.src->atom.predicate,
               unbound.empty() ? "" : table.name(unbound[0]), lit.body_idx,
               util::StrCat("relation literal ", text,
                            " matches through arithmetic over unbound "
                            "variable(s) ",
                            JoinVars(unbound, table), at));
          break;
        }
      }
    }
  }

  // L060: speech attribution. A term denotes "self" if it is `me` or a
  // constant symbol naming one of self_names_.
  bool IsSelf(const Term& t) const {
    if (t.kind == Term::Kind::kMe) return true;
    if (t.kind == Term::Kind::kConstant &&
        t.value.kind() == ValueKind::kSymbol) {
      for (const std::string& name : self_names_) {
        if (!name.empty() && t.value.AsText() == name) return true;
      }
    }
    return false;
  }

  void CheckSays(int rule_index, const Rule& rule) {
    for (const Atom& h : rule.heads) {
      if (h.predicate != "says" || h.Arity() != 3 || h.partition) continue;
      const Term& speaker = h.args[0];
      if (IsSelf(speaker)) continue;
      if (speaker.kind == Term::Kind::kVariable) {
        Emit(LintSeverity::kWarning, "L060", rule_index, &rule, "says",
             speaker.var, -1,
             util::StrCat("rule re-attributes speech to variable speaker '",
                          speaker.var, "' in ", PrintAtom(h),
                          "; only the local principal can speak for itself"));
      } else {
        Emit(LintSeverity::kError, "L060", rule_index, &rule, "says", "", -1,
             util::StrCat("rule attributes speech to '", PrintTerm(speaker),
                          "' in ", PrintAtom(h),
                          ", a principal this context cannot speak for"));
      }
    }
    for (size_t b = 0; b < rule.body.size(); ++b) {
      const Atom& a = rule.body[b].atom;
      if (a.predicate != "says" || a.Arity() != 3 || a.partition) continue;
      const Term& dest = a.args[1];
      if (dest.kind == Term::Kind::kVariable || IsSelf(dest)) continue;
      Emit(LintSeverity::kError, "L060", rule_index, &rule, "says", "",
           static_cast<int>(b),
           util::StrCat("body literal ", PrintAtom(a),
                        " imports a message addressed to '", PrintTerm(dest),
                        "', which this context cannot receive"));
    }
  }

  // L010: negation/aggregation through recursion, reported as the full
  // predicate cycle instead of analysis.cc's bare edge. All graph state is
  // keyed by interned predicate id — flat vectors, no string maps.
  void CheckStratification() {
    std::vector<DepEdge>& edge_list = arena_.strat_edges;
    edge_list.clear();
    for (size_t i = 0; i < rules_.size(); ++i) {
      const Rule& rule = *rules_[i];
      if (rule.IsFact() || rule.heads.size() != 1) continue;
      const int head = HeadId(i, 0).id;
      if (head == kEqPred) continue;
      for (size_t b = 0; b < rule.body.size(); ++b) {
        const int pid = BodyId(i, b).id;
        if (pid == kEqPred ||
            preds_[static_cast<size_t>(pid)].builtin != nullptr) {
          continue;
        }
        bool negative = rule.body[b].negated || rule.aggregate.has_value();
        edge_list.push_back({pid, head, negative, static_cast<int>(i)});
      }
    }
    if (edge_list.empty()) return;

    const size_t n = preds_.size();
    auto& edges = arena_.strat_adj;
    if (edges.size() < n) edges.resize(n);
    for (size_t i = 0; i < n; ++i) edges[i].clear();
    for (const DepEdge& e : edge_list) {
      auto& succs = edges[static_cast<size_t>(e.src)];
      bool dup = false;
      for (auto& [dst, neg] : succs) {
        if (dst == e.dst) {
          neg = neg || e.negative;  // any negative occurrence taints the edge
          dup = true;
        }
      }
      if (!dup) succs.push_back({e.dst, e.negative});
    }

    // Tarjan SCC (iterative not needed: programs are small and the
    // engine's own Stratify recurses the same way).
    auto& scc_of = arena_.scc_of;
    auto& index = arena_.tarjan_index;
    auto& lowlink = arena_.tarjan_lowlink;
    scc_of.assign(n, -1);
    index.assign(n, -1);
    lowlink.assign(n, -1);
    {
      auto& stack = arena_.tarjan_stack;
      auto& on_stack = arena_.tarjan_on_stack;
      stack.clear();
      on_stack.assign(n, 0);
      int next_index = 0, next_scc = 0;
      auto connect = [&](auto&& self, int v) -> void {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[static_cast<size_t>(v)] = 1;
        for (const auto& [w, neg] : edges[static_cast<size_t>(v)]) {
          (void)neg;
          if (index[w] < 0) {
            self(self, w);
            lowlink[v] = std::min(lowlink[v], lowlink[w]);
          } else if (on_stack[static_cast<size_t>(w)]) {
            lowlink[v] = std::min(lowlink[v], index[w]);
          }
        }
        if (lowlink[v] == index[v]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = 0;
            scc_of[static_cast<size_t>(w)] = next_scc;
            if (w == v) break;
          }
          ++next_scc;
        }
      };
      for (size_t v = 0; v < n; ++v) {
        if (!edges[v].empty() && index[v] < 0) {
          connect(connect, static_cast<int>(v));
        }
      }
    }

    std::set<std::pair<int, int>> reported;
    for (const DepEdge& e : edge_list) {
      if (!e.negative) continue;
      if (scc_of[static_cast<size_t>(e.src)] < 0 ||
          scc_of[static_cast<size_t>(e.src)] !=
              scc_of[static_cast<size_t>(e.dst)]) {
        continue;
      }
      if (!reported.insert({e.src, e.dst}).second) continue;
      // BFS dst -> src inside the SCC closes the cycle.
      std::vector<int> path = FindPath(edges, scc_of, e.dst, e.src);
      std::string cycle = util::StrCat(PredName(e.src), " -!-> ",
                                       PredName(e.dst));
      for (size_t p = 1; p < path.size(); ++p) {
        cycle += util::StrCat(" -> ", PredName(path[p]));
      }
      Emit(LintSeverity::kError, "L010", e.rule_index,
           rules_[static_cast<size_t>(e.rule_index)], PredName(e.src), "",
           -1,
           util::StrCat("not stratifiable: negation or aggregation "
                        "through the recursive cycle ",
                        cycle));
    }
  }

  static std::vector<int> FindPath(
      const std::vector<std::vector<std::pair<int, bool>>>& edges,
      const std::vector<int>& scc_of, int from, int to) {
    std::vector<int> parent(edges.size(), -1);
    std::deque<int> queue{from};
    parent[static_cast<size_t>(from)] = from;
    int scc = scc_of[static_cast<size_t>(from)];
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop_front();
      if (v == to) break;
      for (const auto& [w, neg] : edges[static_cast<size_t>(v)]) {
        (void)neg;
        if (scc_of[static_cast<size_t>(w)] != scc ||
            parent[static_cast<size_t>(w)] >= 0) {
          continue;
        }
        parent[static_cast<size_t>(w)] = v;
        queue.push_back(w);
      }
    }
    std::vector<int> path;
    if (parent[static_cast<size_t>(to)] < 0) {
      return {from};  // self-loop (from == to handled)
    }
    for (int v = to; v != from; v = parent[static_cast<size_t>(v)]) {
      path.push_back(v);
    }
    path.push_back(from);
    std::reverse(path.begin(), path.end());
    return path;
  }

  // L031: a body constant of a kind no producer of that column can emit.
  // Per (pred id, column) a uint16 mask: bit 1<<kind per ValueKind seen,
  // kAnyProducer when a variable can put anything there, 0 = no producer
  // info at all (EDB fed from elsewhere: stay silent).
  void CheckConstantDrift() {
    static constexpr uint16_t kAnyProducer = 0x8000;
    auto& produced = arena_.drift_masks;
    if (produced.size() < preds_.size()) produced.resize(preds_.size());
    for (size_t i = 0; i < preds_.size(); ++i) produced[i].clear();
    auto term_mask = [](const Term& t) -> uint16_t {
      if (t.kind == Term::Kind::kConstant) {
        return static_cast<uint16_t>(1u << static_cast<int>(t.value.kind()));
      }
      if (t.kind == Term::Kind::kMe) {
        return static_cast<uint16_t>(1u
                                     << static_cast<int>(ValueKind::kSymbol));
      }
      return kAnyProducer;
    };
    auto record_producer = [&](const Atom& atom, AtomId aid) {
      if (aid.meta || aid.id == kEqPred) return;
      auto& cols = produced[static_cast<size_t>(aid.id)];
      if (cols.size() < atom.Arity()) cols.resize(atom.Arity(), 0);
      size_t ci = 0;
      if (atom.partition) cols[ci++] |= term_mask(*atom.partition);
      for (const Term& t : atom.args) cols[ci++] |= term_mask(t);
    };
    for (size_t i = 0; i < rules_.size(); ++i) {
      const Rule& rule = *rules_[i];
      for (size_t h = 0; h < rule.heads.size(); ++h) {
        record_producer(rule.heads[h], HeadId(i, h));
      }
    }
    for (size_t i = 0; i < rules_.size(); ++i) {
      const Rule& rule = *rules_[i];
      for (size_t b = 0; b < rule.body.size(); ++b) {
        const Atom& a = rule.body[b].atom;
        const AtomId aid = BodyId(i, b);
        if (aid.meta || aid.id == kEqPred ||
            preds_[static_cast<size_t>(aid.id)].builtin != nullptr) {
          continue;
        }
        const std::vector<uint16_t>& masks =
            produced[static_cast<size_t>(aid.id)];
        const Term* partition = a.partition.get();
        const size_t ncols = a.args.size() + (partition != nullptr ? 1 : 0);
        for (size_t ci = 0; ci < ncols; ++ci) {
          const Term& t = (partition != nullptr)
                              ? (ci == 0 ? *partition : a.args[ci - 1])
                              : a.args[ci];
          if (t.kind != Term::Kind::kConstant) continue;
          if (ci >= masks.size()) continue;  // EDB elsewhere: unknown
          uint16_t mask = masks[ci];
          if (mask == 0 || (mask & kAnyProducer) != 0) continue;
          ValueKind kind = t.value.kind();
          if ((mask & (1u << static_cast<int>(kind))) != 0) continue;
          std::string kinds;
          for (int k = 0; k < 16; ++k) {
            if ((mask & (1u << k)) == 0) continue;
            if (!kinds.empty()) kinds += "/";
            kinds += ValueKindName(static_cast<ValueKind>(k));
          }
          Emit(LintSeverity::kWarning, "L031", static_cast<int>(i), &rule,
               a.predicate, "", static_cast<int>(b),
               util::StrCat("constant ", PrintTerm(t), " (",
                            ValueKindName(kind), ") in ", PrintAtom(a),
                            " can never unify: every '", a.predicate,
                            "' producer emits ", kinds, " at column ", ci));
        }
      }
    }
  }

  // L020/L021 roots: exported predicates, constraints, and side-effecting
  // predicates the engine itself consumes.
  static bool SideEffecting(const std::string& pred) {
    return pred == "says" || pred == "active" || pred == "export" ||
           pred == "fail" || (!pred.empty() && pred[0] == '$');
  }

  void CheckDeadCode() {
    // Meta programs opt out wholesale; everything below runs on the atom
    // ids cached by CheckArities, so 'roots' from exports are the only
    // lookups that can still intern a new predicate.
    for (const AtomId& aid : atom_ids_) {
      if (aid.meta) return;  // meta program: skip
    }
    auto& roots = arena_.roots;
    roots.assign(preds_.size(), 0);
    auto mark_root = [&](const std::string& pred) {
      const size_t pid = static_cast<size_t>(PredId(pred));
      if (roots.size() <= pid) roots.resize(preds_.size(), 0);
      roots[pid] = 1;
    };
    for (const Constraint* c : constraints_) {
      for (const Literal& l : c->lhs) mark_root(l.atom.predicate);
      for (const auto& alt : c->rhs_dnf) {
        for (const Literal& l : alt) mark_root(l.atom.predicate);
      }
    }
    for (size_t pid = 0; pid < preds_.size(); ++pid) {
      if (preds_[pid].is_head && SideEffecting(preds_[pid].name)) {
        roots[pid] = 1;
      }
    }
    if (!opts_.exports.empty()) {
      for (const std::string& e : opts_.exports) mark_root(e);
    } else {
      // No declared query surface: sink predicates (derived but read by
      // nobody) ARE the query surface.
      for (size_t pid = 0; pid < preds_.size(); ++pid) {
        if (preds_[pid].is_derived && !preds_[pid].is_read) roots[pid] = 1;
      }
    }
    roots.resize(preds_.size(), 0);  // exports may have interned new ids
    if (std::find(roots.begin(), roots.end(), 1) == roots.end()) {
      return;  // nothing to anchor reachability on
    }

    // reachable = predicates some root depends on (transitively).
    auto& reachable = arena_.reachable;
    reachable.assign(roots.begin(), roots.end());
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < rules_.size(); ++i) {
        if (rules_[i]->IsFact()) continue;
        const int head = HeadId(i, 0).id;
        if (head == kEqPred || !reachable[static_cast<size_t>(head)]) {
          continue;
        }
        for (size_t b = 0; b < rules_[i]->body.size(); ++b) {
          const AtomId aid = BodyId(i, b);
          if (aid.id == kEqPred ||
              preds_[static_cast<size_t>(aid.id)].builtin != nullptr) {
            continue;
          }
          char& flag = reachable[static_cast<size_t>(aid.id)];
          if (!flag) {
            flag = 1;
            changed = true;
          }
        }
      }
    }

    for (size_t i = 0; i < rules_.size(); ++i) {
      const Rule& rule = *rules_[i];
      if (IsEdb(i) || rule.heads.size() != 1) continue;
      const int head = HeadId(i, 0).id;
      if (head == kEqPred || reachable[static_cast<size_t>(head)]) continue;
      Emit(LintSeverity::kWarning, "L020", static_cast<int>(i), &rule,
           rule.heads[0].predicate, "", -1,
           util::StrCat("dead rule: '", rule.heads[0].predicate,
                        "' is unreachable from any exported, constrained or "
                        "side-effecting predicate"));
    }
    if (!opts_.exports.empty()) {
      for (size_t pid = 0; pid < preds_.size(); ++pid) {
        const PredInfo& info = preds_[pid];
        if (!info.is_derived || info.is_read || roots[pid]) continue;
        Emit(LintSeverity::kWarning, "L021", -1, nullptr, info.name, "", -1,
             util::StrCat("predicate '", info.name,
                          "' is derived but never read by any rule, "
                          "constraint or export"));
      }
    }
  }

  const LintOptions& opts_;
  const BuiltinRegistry& builtins_;
  std::vector<std::string> self_names_;
  // Pooled in the per-thread LintArena; cleared at construction, capacity
  // reused across runs.
  LintArena& arena_;
  std::vector<const Rule*>& rules_;
  std::vector<const Constraint*>& constraints_;
  std::vector<PredInfo>& preds_;
  std::vector<AtomId>& atom_ids_;
  std::vector<uint32_t>& rule_ids_first_;
  RuleScratch& scratch_;
  LintReport report_;
};

std::string JsonStr(const std::string& s) {
  return util::StrCat("\"", obs::LabelEscape(s), "\"");
}

}  // namespace

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError: return "error";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kInfo: return "info";
  }
  return "?";
}

std::string Diagnostic::ToJson() const {
  return util::StrCat(
      "{\"code\":", JsonStr(code), ",\"severity\":\"",
      LintSeverityName(severity), "\",\"rule\":", rule_index,
      ",\"source\":", JsonStr(rule), ",\"predicate\":", JsonStr(predicate),
      ",\"variable\":", JsonStr(variable), ",\"position\":", position,
      ",\"message\":", JsonStr(message), "}");
}

size_t LintReport::errors() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == LintSeverity::kError) ++n;
  }
  return n;
}

size_t LintReport::warnings() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == LintSeverity::kWarning) ++n;
  }
  return n;
}

std::string LintReport::ToText() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += util::StrCat(d.code, " ", LintSeverityName(d.severity), ": ",
                        d.message, "\n");
  }
  return out;
}

std::string LintReport::ToJson() const {
  std::string out = "{\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += diagnostics[i].ToJson();
  }
  out += util::StrCat("],\"errors\":", errors(), ",\"warnings\":", warnings(),
                      "}");
  return out;
}

util::Status LintReport::ToStatus() const {
  const Diagnostic* first = nullptr;
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != LintSeverity::kError) continue;
    if (first == nullptr) first = &d;
    ++n;
  }
  if (first == nullptr) return util::OkStatus();
  std::string msg = util::StrCat("lint ", first->code, ": ", first->message);
  if (n > 1) msg += util::StrCat(" (and ", n - 1, " more error(s))");
  if (first->code == "L010") return util::NotStratifiable(msg);
  if (first->code == "L030") return util::TypeError(msg);
  return util::UnsafeProgram(msg);
}

LintReport LintRules(const std::vector<const Rule*>& rules,
                     const LintOptions& opts) {
  return LintResolved(rules, {}, opts);
}

LintReport LintResolved(const std::vector<const Rule*>& rules,
                        const std::vector<const Constraint*>& constraints,
                        const LintOptions& opts) {
  static thread_local LintArena arena;
  Linter linter(opts, {opts.says_principal}, &arena);
  std::vector<Rule> owned;  // multi-head rules, split like install
  for (const Rule* rule : rules) {
    if (rule->heads.size() != 1) {
      for (const Atom& head : rule->heads) {
        Rule single;
        single.label = rule->label;
        single.heads = {CloneAtom(head)};
        single.body = rule->body;
        single.aggregate = rule->aggregate;
        owned.push_back(std::move(single));
      }
    }
  }
  size_t next_owned = 0;
  for (const Rule* rule : rules) {
    if (rule->heads.size() == 1) {
      linter.AddRule(*rule);
    } else {
      for (size_t h = 0; h < rule->heads.size(); ++h) {
        linter.AddRule(owned[next_owned++]);
      }
    }
  }
  for (const Constraint* c : constraints) linter.AddConstraint(*c);
  return linter.Run();
}

LintReport LintProgram(std::string_view program, const std::string& principal,
                       const LintOptions& opts) {
  auto clauses = ParseProgram(program);
  if (!clauses.ok()) {
    LintReport report;
    Diagnostic d;
    d.severity = LintSeverity::kError;
    d.code = "L000";
    d.message = clauses.status().message();
    report.diagnostics.push_back(std::move(d));
    return report;
  }
  // Mirror Workspace::RouteProgramClauses: me-resolve, convert raw
  // `fail() <- body.` constraints, split multi-head rules.
  std::vector<Rule> rules;
  std::vector<Constraint> constraints;
  for (ParsedClause& clause : *clauses) {
    if (clause.kind == ParsedClause::Kind::kRule) {
      for (Rule& rule : clause.rules) {
        Rule resolved = ResolveMeRule(rule, principal);
        if (resolved.heads.size() == 1 &&
            resolved.heads[0].predicate == "fail" &&
            resolved.heads[0].args.empty() && !resolved.body.empty()) {
          Constraint c;
          c.label = resolved.label;
          c.lhs = resolved.body;
          c.display = PrintRule(resolved);
          constraints.push_back(std::move(c));
          continue;
        }
        for (const Atom& head : resolved.heads) {
          Rule single;
          single.label = resolved.label;
          single.heads = {CloneAtom(head)};
          single.body = resolved.body;
          single.aggregate = resolved.aggregate;
          rules.push_back(std::move(single));
        }
      }
    } else {
      for (Constraint& c : clause.constraints) {
        Constraint resolved;
        resolved.label = c.label;
        resolved.display = c.display;
        for (const Literal& l : c.lhs) {
          resolved.lhs.push_back(
              Literal{ResolveMeAtom(l.atom, principal), l.negated});
        }
        for (const auto& alt : c.rhs_dnf) {
          std::vector<Literal> out;
          for (const Literal& l : alt) {
            out.push_back(Literal{ResolveMeAtom(l.atom, principal),
                                  l.negated});
          }
          resolved.rhs_dnf.push_back(std::move(out));
        }
        constraints.push_back(std::move(resolved));
      }
    }
  }
  static thread_local LintArena arena;
  Linter linter(opts, {principal, opts.says_principal}, &arena);
  for (const Rule& r : rules) linter.AddRule(r);
  for (const Constraint& c : constraints) linter.AddConstraint(c);
  return linter.Run();
}

void LintJoinOrder(const CompiledRule& rule, int rule_index,
                   const std::function<size_t(const std::string&)>& rows,
                   std::vector<Diagnostic>* out) {
  if (rule.order_full.empty() || rows == nullptr) return;
  const int lead_idx = rule.order_full[0];
  const CompiledLiteral& lead = rule.body[static_cast<size_t>(lead_idx)];
  if (lead.kind != CompiledLiteral::Kind::kRelation) return;
  for (const CompiledArg& col : lead.cols) {
    if (col.kind == CompiledArg::Kind::kConst) return;  // not a blind scan
  }
  // Semi-naive evaluation drives recursive rules from the delta orders;
  // the full order only runs on the first round.
  if (lead.pred == rule.head_pred) return;
  const size_t lead_rows = rows(lead.pred);
  if (lead_rows == kUnknownRows || lead_rows < 16) return;

  const CompiledLiteral* best = nullptr;
  size_t best_rows = kUnknownRows;
  for (size_t b = 0; b < rule.body.size(); ++b) {
    if (static_cast<int>(b) == lead_idx) continue;
    const CompiledLiteral& lit = rule.body[b];
    if (lit.kind != CompiledLiteral::Kind::kRelation) continue;
    if (lit.pred == lead.pred) continue;  // same relation: no better lead
    const size_t r = rows(lit.pred);
    if (r == kUnknownRows) continue;
    if (best == nullptr || r < best_rows) {
      best = &lit;
      best_rows = r;
    }
  }
  if (best == nullptr || best_rows * 4 > lead_rows) return;

  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.1f",
                best_rows == 0
                    ? static_cast<double>(lead_rows)
                    : static_cast<double>(lead_rows) /
                          static_cast<double>(best_rows));
  Diagnostic d;
  d.severity = LintSeverity::kWarning;
  d.code = "L050";
  d.rule_index = rule_index;
  d.rule = PrintRule(rule.source);
  d.predicate = lead.pred;
  d.position = lead_idx;
  d.message = util::StrCat(
      "cardinality-blind leading scan: the schedule leads with a full scan "
      "of '",
      lead.pred, "' (", lead_rows, " rows) while '", best->pred, "' (",
      best_rows, " rows) is ", ratio,
      "x smaller; the greedy scheduler cannot see cardinalities — consider "
      "reordering or cost-based ordering (ROADMAP item 5)");
  out->push_back(std::move(d));
}

}  // namespace lbtrust::datalog
