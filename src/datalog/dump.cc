#include "datalog/dump.h"

#include <algorithm>

#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::datalog {

namespace {

bool IsEngineRelation(const std::string& name) {
  // Meta bookkeeping and reflection tables are dumped only on request.
  static const char* kEngine[] = {"active", "owner",   "pname", "head",
                                  "body",   "functor", "arg",   "negated",
                                  "vname",  "value"};
  for (const char* e : kEngine) {
    if (name == e) return true;
  }
  return util::StartsWith(name, "$");
}

}  // namespace

std::string DumpRelation(const Workspace& workspace, const std::string& name,
                         size_t max_rows) {
  const Relation* rel = workspace.GetRelation(name);
  if (rel == nullptr) return util::StrCat(name, ": <no relation>\n");
  std::vector<std::string> lines;
  lines.reserve(rel->size());
  for (uint32_t i : rel->Rows()) {
    lines.push_back(TupleToString(rel->RowTuple(i)));
  }
  std::sort(lines.begin(), lines.end());
  std::string out = util::StrCat(name, "/", rel->arity(), "  (", rel->size(),
                                 " rows)\n");
  size_t shown = 0;
  for (const std::string& line : lines) {
    if (max_rows != 0 && shown == max_rows) {
      out += util::StrCat("  ... ", lines.size() - shown, " more\n");
      break;
    }
    out += util::StrCat("  ", name, line, "\n");
    ++shown;
  }
  return out;
}

std::string DumpWorkspace(const Workspace& workspace, size_t max_rows,
                          bool sort_rules) {
  std::string out =
      util::StrCat("== workspace of '", workspace.principal(), "' ==\n");
  out += "\n-- active rules --\n";
  std::vector<std::string> rule_lines;
  for (const Rule* rule : workspace.rules()) {
    rule_lines.push_back(util::StrCat("  ", PrintRule(*rule), "\n"));
  }
  if (sort_rules) std::sort(rule_lines.begin(), rule_lines.end());
  for (const std::string& line : rule_lines) out += line;
  out += "\n-- relations --\n";
  for (const auto& [name, info] : workspace.catalog().predicates()) {
    if (info.builtin || IsEngineRelation(name)) continue;
    const Relation* rel = workspace.GetRelation(name);
    if (rel == nullptr || rel->empty()) continue;
    out += DumpRelation(workspace, name, max_rows);
  }
  return out;
}

}  // namespace lbtrust::datalog
