#include "datalog/value.h"

#include <cstdio>

#include "datalog/ast.h"
#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::datalog {

Value Value::Bool(bool v) {
  Value out;
  out.kind_ = ValueKind::kBool;
  out.scalar_.b = v;
  return out;
}

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInt;
  out.scalar_.i = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.kind_ = ValueKind::kDouble;
  out.scalar_.d = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.kind_ = ValueKind::kString;
  out.text_ = std::make_shared<const std::string>(std::move(v));
  return out;
}

Value Value::Sym(std::string v) {
  Value out;
  out.kind_ = ValueKind::kSymbol;
  out.text_ = std::make_shared<const std::string>(std::move(v));
  return out;
}

Value Value::CodeRule(std::shared_ptr<const Rule> rule) {
  auto code = std::make_shared<CodeValue>();
  code->what = CodeValue::What::kRule;
  code->canon = PrintRule(*rule);
  code->rule = std::move(rule);
  Value out;
  out.kind_ = ValueKind::kCode;
  out.code_ = std::move(code);
  return out;
}

Value Value::CodeAtom(std::shared_ptr<const Atom> atom) {
  auto code = std::make_shared<CodeValue>();
  code->what = CodeValue::What::kAtom;
  code->canon = PrintAtom(*atom);
  code->atom = std::move(atom);
  Value out;
  out.kind_ = ValueKind::kCode;
  out.code_ = std::move(code);
  return out;
}

Value Value::CodeTerm(std::shared_ptr<const Term> term) {
  auto code = std::make_shared<CodeValue>();
  code->what = CodeValue::What::kTerm;
  code->canon = PrintTerm(*term);
  code->term = std::move(term);
  Value out;
  out.kind_ = ValueKind::kCode;
  out.code_ = std::move(code);
  return out;
}

Value Value::CodeLiteralList(std::vector<Literal> literals) {
  auto code = std::make_shared<CodeValue>();
  code->what = CodeValue::What::kLiteralList;
  std::string canon;
  for (size_t i = 0; i < literals.size(); ++i) {
    if (i > 0) canon += ", ";
    canon += PrintLiteral(literals[i]);
  }
  code->canon = std::move(canon);
  code->literals =
      std::make_shared<const std::vector<Literal>>(std::move(literals));
  Value out;
  out.kind_ = ValueKind::kCode;
  out.code_ = std::move(code);
  return out;
}

Value Value::CodeTermList(std::vector<Term> terms) {
  auto code = std::make_shared<CodeValue>();
  code->what = CodeValue::What::kTermList;
  std::string canon;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) canon += ", ";
    canon += PrintTerm(terms[i]);
  }
  code->canon = std::move(canon);
  code->terms = std::make_shared<const std::vector<Term>>(std::move(terms));
  Value out;
  out.kind_ = ValueKind::kCode;
  out.code_ = std::move(code);
  return out;
}

Value Value::Part(std::string predicate, Value key) {
  auto part = std::make_shared<PartValue>();
  part->canon = util::StrCat(predicate, "[", key.ToString(), "]");
  part->predicate = std::move(predicate);
  part->key = std::make_shared<const Value>(std::move(key));
  Value out;
  out.kind_ = ValueKind::kPart;
  out.part_ = std::move(part);
  return out;
}

uint64_t Value::Hash() const {
  uint64_t seed = static_cast<uint64_t>(kind_) * 0x9E3779B97F4A7C15ULL;
  switch (kind_) {
    case ValueKind::kNil:
      return seed;
    case ValueKind::kBool:
      return util::HashCombine(seed, scalar_.b ? 1 : 0);
    case ValueKind::kInt:
      return util::HashCombine(seed, static_cast<uint64_t>(scalar_.i));
    case ValueKind::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(scalar_.d));
      __builtin_memcpy(&bits, &scalar_.d, sizeof(bits));
      return util::HashCombine(seed, bits);
    }
    case ValueKind::kString:
    case ValueKind::kSymbol:
      return util::HashCombine(seed, util::Fnv1a(*text_));
    case ValueKind::kCode:
      return util::HashCombine(seed, util::Fnv1a(code_->canon));
    case ValueKind::kPart:
      return util::HashCombine(seed, util::Fnv1a(part_->canon));
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNil:
      return "nil";
    case ValueKind::kBool:
      return scalar_.b ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(scalar_.i);
    case ValueKind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", scalar_.d);
      // Make sure a double prints distinguishably from an int.
      std::string s(buf);
      if (s.find_first_of(".einf") == std::string::npos) s += ".0";
      return s;
    }
    case ValueKind::kString:
      return util::StrCat("\"", util::EscapeQuoted(*text_), "\"");
    case ValueKind::kSymbol:
      return *text_;
    case ValueKind::kCode:
      return util::StrCat("[| ", code_->canon, " |]");
    case ValueKind::kPart:
      return part_->canon;
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case ValueKind::kNil:
      return true;
    case ValueKind::kBool:
      return a.scalar_.b == b.scalar_.b;
    case ValueKind::kInt:
      return a.scalar_.i == b.scalar_.i;
    case ValueKind::kDouble:
      return a.scalar_.d == b.scalar_.d;
    case ValueKind::kString:
    case ValueKind::kSymbol:
      return *a.text_ == *b.text_;
    case ValueKind::kCode:
      return a.code_->canon == b.code_->canon;
    case ValueKind::kPart:
      return a.part_->canon == b.part_->canon;
  }
  return false;
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) {
    return static_cast<int>(a.kind_) < static_cast<int>(b.kind_);
  }
  switch (a.kind_) {
    case ValueKind::kNil:
      return false;
    case ValueKind::kBool:
      return a.scalar_.b < b.scalar_.b;
    case ValueKind::kInt:
      return a.scalar_.i < b.scalar_.i;
    case ValueKind::kDouble:
      return a.scalar_.d < b.scalar_.d;
    case ValueKind::kString:
    case ValueKind::kSymbol:
      return *a.text_ < *b.text_;
    case ValueKind::kCode:
      return a.code_->canon < b.code_->canon;
    case ValueKind::kPart:
      return a.part_->canon < b.part_->canon;
  }
  return false;
}

size_t TupleHash::operator()(const Tuple& t) const {
  uint64_t h = 0x811C9DC5ULL;
  for (const Value& v : t) h = util::HashCombine(h, v.Hash());
  return static_cast<size_t>(h);
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ",";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace lbtrust::datalog
