#ifndef LBTRUST_DATALOG_EVAL_H_
#define LBTRUST_DATALOG_EVAL_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/builtins.h"
#include "datalog/provenance.h"
#include "datalog/relation.h"
#include "datalog/unify.h"
#include "datalog/value_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace lbtrust::datalog {

/// Name -> Relation map holding the visible database state. Hash-keyed
/// (rule evaluation resolves relations by name only on the first touch per
/// store generation — see CompiledLiteral's cache); every relation interns
/// into the store's pool so ids are comparable across relations. Relation
/// pointers are stable until Clear(), which bumps the generation so cached
/// pointers self-invalidate.
class RelationStore {
 public:
  explicit RelationStore(ValuePool* pool = nullptr)
      : pool_(pool != nullptr ? pool : ValuePool::Default()),
        generation_(NextGeneration()) {}

  Relation* GetOrCreate(const std::string& name, size_t arity);

  /// Shard count for relations this store creates from now on (existing
  /// relations keep their layout). The evaluator creates its delta
  /// relations with the same count, so hash-routed parallel merges see a
  /// consistent shard topology across every relation they touch.
  void set_default_shards(size_t shards) { default_shards_ = shards; }
  size_t default_shards() const { return default_shards_; }
  Relation* Get(const std::string& name);
  const Relation* Get(const std::string& name) const;
  std::unordered_map<std::string, Relation>& relations() { return rels_; }
  const std::unordered_map<std::string, Relation>& relations() const {
    return rels_;
  }

  /// Drops every relation and invalidates cached Relation pointers.
  void Clear() {
    rels_.clear();
    generation_ = NextGeneration();
  }

  ValuePool* pool() const { return pool_; }
  /// Unique across all stores and all Clear() epochs of one store.
  uint64_t generation() const { return generation_; }

 private:
  static uint64_t NextGeneration();

  ValuePool* pool_;
  uint64_t generation_;
  size_t default_shards_ = 1;
  std::unordered_map<std::string, Relation> rels_;
};

/// One column of a compiled literal or head.
struct CompiledArg {
  enum class Kind {
    kConst,    ///< fully ground at compile time (precomputed value)
    kVar,      ///< a single plain variable
    kPattern,  ///< term containing variables that *bind* on match
               ///< (quoted-code patterns, partition refs with variables)
    kExpr,     ///< arithmetic term: check-only, requires operands bound
  };
  Kind kind = Kind::kConst;
  Value constant;               ///< kConst
  int slot = -1;                ///< kVar
  Term term;                    ///< kPattern / kExpr (also kVar, for unify)
  std::vector<int> term_slots;  ///< slots of variables inside `term`

  /// kConst probe cache: `constant` interned once per pool (CompileRule is
  /// pool-agnostic; the evaluator fills this on first use and re-validates
  /// against the pool *generation* — never reused, unlike addresses — so a
  /// compiled rule stays usable with any workspace while its steady-state
  /// probes never re-hash the constant).
  mutable ValueId const_id;
  mutable uint64_t const_pool_gen = 0;
};

struct CompiledLiteral {
  enum class Kind { kRelation, kNegation, kBuiltin, kEquality };
  Kind kind = Kind::kRelation;
  std::string pred;
  bool negated = false;         ///< for kBuiltin: negated builtin
  std::vector<CompiledArg> cols;
  const BuiltinDef* builtin = nullptr;

  /// Relation-resolution cache: avoids the per-evaluation string-keyed map
  /// walk. Valid while (store, generation) match; RelationStore::Clear()
  /// bumps the generation, so stale pointers are never dereferenced.
  mutable const RelationStore* cached_store = nullptr;
  mutable uint64_t cached_gen = 0;
  mutable Relation* cached_rel = nullptr;
};

/// A rule compiled against a builtin registry: variables interned to slots,
/// terms classified, body literal evaluation orders chosen greedily by
/// boundness (the engine's stand-in for LogicBlox's cost-based optimizer;
/// ablated in bench_engine).
struct CompiledRule {
  Rule source;                  ///< single-head, me-resolved
  int id = -1;
  VarTable vars;
  std::vector<CompiledLiteral> body;
  std::vector<CompiledArg> head_cols;
  std::string head_pred;
  std::optional<Aggregate> agg;
  int agg_input_slot = -1;
  int agg_result_slot = -1;

  std::vector<int> order_full;               ///< literal visit order
  std::map<int, std::vector<int>> order_delta;  ///< per delta position
  std::vector<int> relation_positions;       ///< body idx of kRelation lits

  /// True when evaluating this rule touches nothing but the interned id
  /// plane: no aggregate, every body literal is a relation or negation,
  /// and every column (body and head) is a constant or a plain variable.
  /// Such rules never intern into the pool, never unify patterns, and
  /// never materialize Values — so any number of workers can evaluate
  /// them concurrently against a frozen store. Rules with builtins,
  /// equality, patterns/expressions or aggregates run sequentially in the
  /// merge phase instead.
  bool parallel_safe = false;

  /// For parallel-safe rules: the probe masks each evaluation order needs,
  /// derived statically from the schedule (a column is bound at position
  /// `oi` iff it is a constant or bound by an earlier literal — for
  /// const/var-only rules runtime boundness equals scheduled boundness).
  /// The parallel evaluator pre-builds exactly these indexes before
  /// freezing the round's relations.
  struct OrderProbes {
    struct Need {
      int body_idx;    ///< literal whose relation needs the index
      uint64_t mask;   ///< probe mask at its scheduled position
    };
    std::vector<Need> index_masks;
    /// order[0] is a relation literal, so worker chunks can partition its
    /// row enumeration (delta scans and round-0 leading scans).
    bool partition_first = false;
  };
  OrderProbes probes_full;
  std::map<int, OrderProbes> probes_delta;  ///< keyed like order_delta
};

/// Compiles and safety-checks a rule. Fails with kUnsafeProgram when no
/// evaluation order can bind every head variable / negation / builtin input.
util::Result<std::unique_ptr<CompiledRule>> CompileRule(
    const Rule& rule, const BuiltinRegistry& builtins);

class EvalWorkerPool;

/// Opaque owner handle for a worker pool (the type lives in eval.cc).
/// A Workspace keeps one of these and passes its address to every
/// Evaluator it constructs, so the pool's threads are spawned once and
/// reused across fixpoints instead of per-Evaluator.
struct EvalWorkerPoolDeleter {
  void operator()(EvalWorkerPool* pool) const;
};
using EvalWorkerPoolHandle =
    std::unique_ptr<EvalWorkerPool, EvalWorkerPoolDeleter>;

/// Bottom-up semi-naive stratified evaluator over a RelationStore.
///
/// ## Parallel evaluation (threads > 1)
///
/// Within each stratum round, parallel-safe rules (CompiledRule::
/// parallel_safe) are evaluated by a worker pool against a frozen
/// read-only view of the store: relations are resolved, constants
/// interned and the statically known probe-mask indexes built *before*
/// the round's threads start, then every reachable relation is
/// FreezeForRead()-locked, so workers touch no shared mutable state at
/// all. Each task's leading literal enumeration is partitioned into row
/// ranges (chunks); workers emit pre-hashed head rows — already filtered
/// against the frozen full relation — into per-chunk buffers. The merge
/// then replays the buffers in deterministic (task, chunk, row) order:
/// deduplicating full-store inserts, delta construction and the tuple
/// budget exactly as the sequential path, while non-safe rules (builtins,
/// patterns, aggregates) evaluate inline at their task position. When the
/// store is sharded (shards > 1) the merge itself is parallel: each
/// worker owns a disjoint set of shards and replays only the buffered
/// rows whose hash routes to its shards, so dedup insert, delta appends
/// and per-task derived counts all happen shard-locally with no
/// synchronization beyond the end-of-merge barrier (budget totals are
/// summed there, preserving the sequential accept/reject decision). The
/// fixpoint SET is identical to sequential evaluation
/// (rounds are confluent; a consequence skipped under the frozen view is
/// derived from the next round's delta), so Workspace::Dump — which
/// sorts rows — is byte-identical across thread counts. threads == 1
/// runs today's exact sequential code path; provenance tracking and the
/// naive ablation force it.
class Evaluator {
 public:
  struct Limits {
    size_t max_rounds = 100000;
    size_t max_tuples = 10000000;
  };

  /// `provenance` may be null; when set, Run() records one derivation
  /// witness per newly derived tuple (relational premises only).
  /// `threads` is the worker count for intra-stratum rule parallelism
  /// (1 = sequential; callers resolve 0/auto before constructing).
  /// `shared_pool` may point at a caller-owned worker-pool slot (see
  /// EvalWorkerPoolHandle); when null, the evaluator owns a private pool
  /// for its own lifetime. Either way the pool is created lazily, sized
  /// to the largest parallel round actually seen, and never spawns more
  /// than `threads - 1` workers.
  /// `metrics` (nullable) receives per-rule/per-relation evaluation
  /// counters — probes, probe hits, tuples derived, round/delta sizes (the
  /// selectivity feed for cost-based join ordering). `tracer` (nullable)
  /// receives per-stratum and per-rule spans. Both default off; a null
  /// pointer keeps every hot path at a single predictable branch.
  Evaluator(const BuiltinRegistry* builtins, RelationStore* store,
            ProvenanceStore* provenance = nullptr, unsigned threads = 1,
            EvalWorkerPoolHandle* shared_pool = nullptr,
            obs::MetricsRegistry* metrics = nullptr,
            obs::Tracer* tracer = nullptr);
  ~Evaluator();

  /// Runs all rules to fixpoint. The store must already be seeded with EDB
  /// facts (including facts of derived predicates). `naive` disables the
  /// semi-naive delta optimization (for the ablation benchmark).
  util::Status Run(const std::vector<CompiledRule*>& rules,
                   const Stratification& strat, const Limits& limits,
                   bool naive = false);

  /// Incremental (delta-seeded) counterpart of Run(): assumes the store
  /// already holds a complete fixpoint of the rules minus the tuples in
  /// `seed` (newly inserted EDB tuples, already present in the store), and
  /// extends the store with every additional consequence. Sound only for
  /// additive change sets that cannot reach a negated or aggregated body
  /// literal — the caller (Workspace::Fixpoint) checks eligibility.
  util::Status RunIncremental(const std::vector<CompiledRule*>& rules,
                              const Stratification& strat,
                              const Limits& limits,
                              std::map<std::string, Relation> seed);

  /// Evaluates a body-only query (constraint checks, Workspace::Query),
  /// invoking `cb` once per solution with the rule's bindings.
  util::Status EvalQuery(CompiledRule* rule,
                         const std::function<void(const Bindings&)>& cb);

  /// Like EvalQuery, but `cb` returns false to stop the enumeration early
  /// (PreparedQuery::Exists / bounded scans).
  util::Status EvalQueryUntil(CompiledRule* rule,
                              const std::function<bool(const Bindings&)>& cb);

 private:
  struct ExecContext {
    CompiledRule* rule = nullptr;
    const std::vector<int>* order = nullptr;
    int delta_pos = -1;
    Relation* delta_rel = nullptr;
    Bindings bindings;
    std::function<util::Status()> on_solution;
    /// Per-order-position probe result scratch, reused across the rows a
    /// position enumerates (a position is never re-entered concurrently).
    std::vector<std::vector<uint32_t>> probe_scratch;
    /// When provenance is tracked: the relational rows matched so far.
    std::vector<std::pair<std::string, Tuple>>* premises = nullptr;
    /// Worker-chunk row-range restriction for the first order position
    /// (the partitioned leading scan). Inactive unless first_restricted.
    bool first_restricted = false;
    size_t first_begin = 0;
    size_t first_end = 0;
    /// Per-body-literal probe tallies (indexed by body position; null =
    /// not collecting). Plain counters owned by the single thread running
    /// this context; folded into registry counters after the rule
    /// evaluation completes, so the probe loop never touches an atomic.
    uint64_t* probe_tally = nullptr;
    uint64_t* hit_tally = nullptr;
  };

  /// One (rule, delta position) evaluation within a stratum round.
  struct RoundTask {
    CompiledRule* rule = nullptr;
    int pos = -1;                  ///< delta position, -1 for full order
    Relation* delta_rel = nullptr;
  };

  /// Worker output: arity-strided head rows plus their primary-set
  /// hashes, already filtered against the frozen full relation.
  struct EmitBuffer {
    std::vector<ValueId> rows;
    std::vector<uint64_t> hashes;
    /// Chunk-local probe tallies (sized to the rule's body when metrics
    /// are on); summed by the merge so workers never share counters.
    std::vector<uint64_t> probes;
    std::vector<uint64_t> hits;
    /// Wall time this chunk's evaluation took on its worker; summed at
    /// fold time into the rule's cumulative eval-time counter.
    uint64_t eval_us = 0;
    void clear() {
      rows.clear();
      hashes.clear();
      probes.clear();
      hits.clear();
      eval_us = 0;
    }
  };

  /// Cached by-name relation resolution (see CompiledLiteral).
  Relation* ResolveRelation(const CompiledLiteral& lit, size_t arity);

  util::Status Step(ExecContext* ctx, size_t oi);
  util::Status EvalRelation(ExecContext* ctx, size_t oi,
                            const CompiledLiteral& lit);
  util::Status EvalNegation(ExecContext* ctx, size_t oi,
                            const CompiledLiteral& lit);
  util::Status EvalEquality(ExecContext* ctx, size_t oi,
                            const CompiledLiteral& lit);
  util::Status EvalBuiltin(ExecContext* ctx, size_t oi,
                           const CompiledLiteral& lit);

  /// `emit` receives the head row as rule->head_cols.size() interned ids
  /// (valid only for the duration of the call). `probe_tally`/`hit_tally`
  /// (nullable) are per-body-literal arrays the evaluation accumulates
  /// probe statistics into.
  util::Status EvalRuleOnce(
      CompiledRule* rule, int delta_pos, Relation* delta_rel,
      const std::function<util::Status(const ValueId*)>& emit,
      uint64_t* probe_tally = nullptr, uint64_t* hit_tally = nullptr);

  /// Shared rule-evaluation driver for Run/RunIncremental: resolves the
  /// head relation once (not per emitted tuple), evaluates the rule
  /// (delta-seeded when pos >= 0), inserts every emission into the full
  /// store — recording provenance when enabled — and appends tuples that
  /// were new there to lazily created per-predicate outputs in
  /// `next_delta` and (when non-null) `stratum_new`; the full-store
  /// insert deduped, so the outputs take unchecked appends.
  util::Status RunRuleInto(CompiledRule* rule, int pos, Relation* delta_rel,
                           const Limits& limits, size_t* total_tuples,
                           std::map<std::string, Relation>* next_delta,
                           std::map<std::string, Relation>* stratum_new);

  /// Executes one stratum round's tasks. With threads_ == 1 (or when
  /// nothing in the round is parallel-safe) this is exactly the classic
  /// sequential loop over RunRuleInto; otherwise parallel-safe tasks run
  /// the frozen-view worker path (see the class comment) and the merge
  /// applies all results in deterministic task order.
  util::Status RunRound(const std::vector<RoundTask>& tasks,
                        const Limits& limits, size_t* total_tuples,
                        std::map<std::string, Relation>* next_delta,
                        std::map<std::string, Relation>* stratum_new);

  /// Worker body: evaluates `rule` (delta-seeded when pos >= 0) with the
  /// leading literal restricted to rows [begin, end) when `restricted`,
  /// buffering emissions (pre-hashed, pre-filtered against `full`).
  util::Status EvalRuleChunk(CompiledRule* rule, int pos, Relation* delta_rel,
                             bool restricted, size_t begin, size_t end,
                             const Limits& limits, Relation* full,
                             EmitBuffer* buf);

  /// Registry handles for one rule, resolved lazily (registry mutex) on
  /// the rule's first evaluation by this Evaluator, then reused across
  /// rounds and strata.
  struct RuleCounters {
    obs::Counter* evals = nullptr;
    obs::Counter* derived = nullptr;
    obs::Counter* probes = nullptr;
    obs::Counter* eval_us = nullptr;  ///< cumulative evaluation wall time
  };
  struct RelationCounters {
    obs::Counter* probes = nullptr;
    obs::Counter* hits = nullptr;
  };
  RuleCounters* CountersFor(const CompiledRule* rule);
  /// Folds one rule evaluation's plain tallies into registry counters:
  /// per-relation probes/hits (selectivity feed), per-rule totals, and
  /// `elapsed_us` of evaluation wall time (the EXPLAIN cost column).
  /// No-op when metrics are off.
  void FoldRuleMetrics(const CompiledRule* rule, uint64_t derived,
                       const uint64_t* probe_tally, const uint64_t* hit_tally,
                       uint64_t elapsed_us);
  /// Observes the row count of every relation in `delta` on the delta-size
  /// histogram and counts one evaluation round.
  void RecordRoundDelta(const std::map<std::string, Relation>& delta);

  const BuiltinRegistry* builtins_;
  RelationStore* store_;
  ProvenanceStore* provenance_;
  ValuePool* pool_;
  unsigned threads_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  obs::Counter* tuples_derived_ = nullptr;
  obs::Counter* rounds_total_ = nullptr;
  obs::Histogram* delta_rows_ = nullptr;
  /// Merge-path instrumentation: parallel vs sequential merge counts, the
  /// per-parallel-segment merge latency distribution (sequential inline
  /// replays skip the clock entirely), and per-shard replayed-row counters
  /// (`lbtrust_merge_shard_rows_total{shard=...}`, resolved lazily per
  /// shard index) so shard skew shows up in every metrics dump.
  obs::Counter* merge_parallel_ = nullptr;
  obs::Counter* merge_sequential_ = nullptr;
  obs::Histogram* merge_latency_ = nullptr;
  std::vector<obs::Counter*> merge_shard_rows_;
  obs::Counter* MergeShardCounter(size_t shard);
  std::unordered_map<const CompiledRule*, RuleCounters> rule_counters_;
  std::unordered_map<std::string, RelationCounters> relation_counters_;
  /// Sequential-path tally scratch (RunRuleInto), reused across calls.
  std::vector<uint64_t> tally_probes_;
  std::vector<uint64_t> tally_hits_;
  /// Worker-pool slot: points at the caller's shared slot when one was
  /// provided (pool reused across fixpoints), else at owned_workers_.
  /// Populated lazily on the first round with > 1 chunk and grown to the
  /// largest concurrent chunk count seen (never beyond threads_ - 1).
  EvalWorkerPoolHandle* workers_slot_;
  EvalWorkerPoolHandle owned_workers_;
  /// Per-chunk emission buffers, recycled across rounds.
  std::vector<EmitBuffer> emit_bufs_;
  /// Set while a rule is emitting (read by Run's insertion callback; only
  /// touched when provenance is tracked, which forces sequential mode).
  const CompiledRule* emitting_rule_ = nullptr;
  const std::vector<std::pair<std::string, Tuple>>* emitting_premises_ =
      nullptr;
};

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_EVAL_H_
