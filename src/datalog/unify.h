#ifndef LBTRUST_DATALOG_UNIFY_H_
#define LBTRUST_DATALOG_UNIFY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/value.h"
#include "datalog/value_pool.h"
#include "util/status.h"

namespace lbtrust::datalog {

/// Rule-scope variable table: maps variable names to dense slots. All
/// variables of a rule — including variables inside quoted-code constants,
/// which act as pattern variables (§3.3 "meta-variables") — share one scope,
/// so a meta-variable bound by a body pattern joins with its other
/// occurrences.
class VarTable {
 public:
  /// Returns the slot for `name`, adding it if new.
  int Intern(const std::string& name);
  /// Returns the slot or -1.
  int Find(const std::string& name) const;
  size_t size() const { return names_.size(); }
  const std::string& name(int slot) const { return names_[slot]; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> index_;
};

/// Slot-indexed bindings over interned values; a nil ValueId (the default)
/// means unbound. Slots hold 8-byte ids so binding, comparing and copying
/// in join loops never touch shared_ptr payloads; `Get`/`Set` bridge to
/// full Values at pattern/builtin boundaries through the attached pool.
struct Bindings {
  ValuePool* pool = ValuePool::Default();
  std::vector<ValueId> slots;

  void EnsureSize(size_t n) {
    if (slots.size() < n) slots.resize(n);
  }
  bool IsBound(int slot) const {
    return slot < static_cast<int>(slots.size()) && !slots[slot].is_nil();
  }
  /// Materializes the bound value (callers must check IsBound first).
  Value Get(int slot) const { return pool->Get(slots[slot]); }
  /// Interns and binds (no trail bookkeeping — evaluator-internal).
  void Set(int slot, const Value& v) { slots[slot] = pool->Intern(v); }
};

/// Slots bound during a unification attempt; unwound on backtrack.
using Trail = std::vector<int>;

/// Star patterns (`A*`, `T*`) bind in their own namespace so that the
/// paper's idiom `[| A <- P(T*), A*. |]` — where `A` names both the head
/// placeholder and the "rest of body" star — does not self-collide (the
/// paper's meta-model translation treats both as independent).
inline std::string StarKey(const std::string& name) { return name + "$star"; }

void UndoTrail(const Trail& trail, Bindings* b);

/// The value a meta-variable receives when matched against a target term:
/// constants yield their value, variables/expressions yield a kCode term.
Value ValueFromTerm(const Term& t);

/// Inverse conversion used during code construction: scalar values become
/// constants, kCode term values splice back in as terms.
Term TermFromValue(const Value& v);

/// Unifies a pattern term against a runtime value (e.g. a code-valued
/// column). Binds pattern variables into `b`, recording new bindings in
/// `trail`. Returns false (leaving a partial trail for the caller to undo)
/// on mismatch.
bool UnifyTermValue(const Term& pattern, const Value& value, VarTable* vars,
                    Bindings* b, Trail* trail);

/// Structural unification of quoted-code fragments. Supports meta-variable
/// functors `P(...)`, whole-atom meta-variables `A`, and trailing Kleene
/// stars `A*` / `T*` which bind literal/term lists.
bool UnifyCodeValue(const CodeValue& pattern, const CodeValue& target,
                    VarTable* vars, Bindings* b, Trail* trail);
bool UnifyRulePattern(const Rule& pattern, const Rule& target, VarTable* vars,
                      Bindings* b, Trail* trail);
bool UnifyAtomPattern(const Atom& pattern, const Atom& target, VarTable* vars,
                      Bindings* b, Trail* trail);
bool UnifyTermPattern(const Term& pattern, const Term& target, VarTable* vars,
                      Bindings* b, Trail* trail);

/// Substitutes bound variables into an AST fragment (code construction for
/// quoted heads): bound meta-variables are replaced, arithmetic over
/// constants is folded, star variables bound to lists are spliced, and
/// unbound variables survive as variables of the constructed code.
Term SubstituteTerm(const Term& t, const VarTable& vars, const Bindings& b);
Atom SubstituteAtom(const Atom& a, const VarTable& vars, const Bindings& b);
Rule SubstituteRule(const Rule& r, const VarTable& vars, const Bindings& b);

/// True if the term (transitively, including quoted code) mentions any
/// variable that is unbound under `b`.
bool TermHasUnboundVars(const Term& t, const VarTable& vars,
                        const Bindings& b);

/// Evaluates a term to a runtime value: variables must be bound, arithmetic
/// must be numeric, quoted code is substituted (it may legitimately retain
/// inner variables), partition references build kPart values.
util::Result<Value> EvalGroundTerm(const Term& t, const VarTable& vars,
                                   const Bindings& b);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_UNIFY_H_
