#include "datalog/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace lbtrust::datalog {

using util::ParseError;
using util::Result;

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVar: return "variable";
    case TokenKind::kUnderscore: return "'_'";
    case TokenKind::kInt: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kQuoteOpen: return "'[|'";
    case TokenKind::kQuoteClose: return "'|]'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kArrowLeft: return "'<-'";
    case TokenKind::kArrowRight: return "'->'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kAggOpen: return "'<<'";
    case TokenKind::kAggClose: return "'>>'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) { return std::islower(static_cast<unsigned char>(c)); }
bool IsVarStart(char c) { return std::isupper(static_cast<unsigned char>(c)); }
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      LB_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (pos_ >= src_.size()) {
        tok.kind = TokenKind::kEnd;
        out.push_back(tok);
        return out;
      }
      char c = src_[pos_];
      if (IsIdentStart(c)) {
        tok.kind = TokenKind::kIdent;
        tok.text = LexIdent();
      } else if (IsVarStart(c)) {
        tok.kind = TokenKind::kVar;
        tok.text = LexWord();
      } else if (c == '_') {
        // '_' alone is anonymous; '_x' is a named variable.
        size_t start = pos_;
        Advance();
        if (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
          while (pos_ < src_.size() && IsIdentChar(src_[pos_])) Advance();
          tok.kind = TokenKind::kVar;
          tok.text = std::string(src_.substr(start, pos_ - start));
        } else {
          tok.kind = TokenKind::kUnderscore;
        }
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        LB_RETURN_IF_ERROR(LexNumber(&tok));
      } else if (c == '"') {
        LB_RETURN_IF_ERROR(LexString(&tok));
      } else {
        LB_RETURN_IF_ERROR(LexPunct(&tok));
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  util::Status SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        int start_line = line_;
        Advance();
        Advance();
        while (pos_ < src_.size() && !(src_[pos_] == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ >= src_.size()) {
          return ParseError(util::StrCat("unterminated comment at line ",
                                         start_line));
        }
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return util::OkStatus();
  }

  std::string LexWord() {
    size_t start = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) Advance();
    return std::string(src_.substr(start, pos_ - start));
  }

  // Identifier with ':'-continuation (message:id, rsa:3:c1ebab5d).
  std::string LexIdent() {
    size_t start = pos_;
    while (pos_ < src_.size()) {
      if (IsIdentChar(src_[pos_])) {
        Advance();
      } else if (src_[pos_] == ':' && pos_ + 1 < src_.size() &&
                 IsIdentChar(src_[pos_ + 1]) && src_[pos_ + 1] != '-') {
        Advance();  // consume ':'
      } else {
        break;
      }
    }
    return std::string(src_.substr(start, pos_ - start));
  }

  util::Status LexNumber(Token* tok) {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      Advance();
    }
    // Float only when '.' is followed by a digit ('p(3).' keeps the dot).
    bool is_float = false;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      Advance();
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        Advance();
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    if (is_float) {
      tok->kind = TokenKind::kFloat;
      tok->float_value = std::stod(text);
    } else {
      tok->kind = TokenKind::kInt;
      errno = 0;
      tok->int_value = std::strtoll(text.c_str(), nullptr, 10);
      if (errno != 0) {
        return ParseError(util::StrCat("integer overflow at line ", tok->line,
                                       ": ", text));
      }
    }
    return util::OkStatus();
  }

  util::Status LexString(Token* tok) {
    int start_line = line_;
    Advance();  // opening quote
    std::string out;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      char c = src_[pos_];
      if (c == '\\') {
        Advance();
        if (pos_ >= src_.size()) break;
        char esc = src_[pos_];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case '\\': out.push_back('\\'); break;
          case '"': out.push_back('"'); break;
          default:
            return ParseError(util::StrCat("bad escape '\\", esc,
                                           "' at line ", line_));
        }
        Advance();
      } else {
        out.push_back(c);
        Advance();
      }
    }
    if (pos_ >= src_.size()) {
      return ParseError(util::StrCat("unterminated string at line ",
                                     start_line));
    }
    Advance();  // closing quote
    tok->kind = TokenKind::kString;
    tok->text = std::move(out);
    return util::OkStatus();
  }

  util::Status LexPunct(Token* tok) {
    char c = src_[pos_];
    char n = Peek(1);
    auto two = [&](TokenKind kind) {
      tok->kind = kind;
      Advance();
      Advance();
    };
    auto one = [&](TokenKind kind) {
      tok->kind = kind;
      Advance();
    };
    switch (c) {
      case '(': one(TokenKind::kLParen); return util::OkStatus();
      case ')': one(TokenKind::kRParen); return util::OkStatus();
      case '[':
        if (n == '|') {
          two(TokenKind::kQuoteOpen);
        } else {
          one(TokenKind::kLBracket);
        }
        return util::OkStatus();
      case ']': one(TokenKind::kRBracket); return util::OkStatus();
      case '|':
        if (n == ']') {
          two(TokenKind::kQuoteClose);
          return util::OkStatus();
        }
        return ParseError(util::StrCat("stray '|' at line ", line_));
      case ',': one(TokenKind::kComma); return util::OkStatus();
      case ';': one(TokenKind::kSemi); return util::OkStatus();
      case '!':
        if (n == '=') {
          two(TokenKind::kNeq);
        } else {
          one(TokenKind::kBang);
        }
        return util::OkStatus();
      case '.': one(TokenKind::kDot); return util::OkStatus();
      case '<':
        if (n == '-') {
          two(TokenKind::kArrowLeft);
        } else if (n == '=') {
          two(TokenKind::kLe);
        } else if (n == '<') {
          two(TokenKind::kAggOpen);
        } else {
          one(TokenKind::kLt);
        }
        return util::OkStatus();
      case '>':
        if (n == '=') {
          two(TokenKind::kGe);
        } else if (n == '>') {
          two(TokenKind::kAggClose);
        } else {
          one(TokenKind::kGt);
        }
        return util::OkStatus();
      case '-':
        if (n == '>') {
          two(TokenKind::kArrowRight);
        } else {
          one(TokenKind::kMinus);
        }
        return util::OkStatus();
      case ':':
        if (n == '-') {
          two(TokenKind::kColonDash);
        } else {
          one(TokenKind::kColon);
        }
        return util::OkStatus();
      case '=': one(TokenKind::kEq); return util::OkStatus();
      case '+': one(TokenKind::kPlus); return util::OkStatus();
      case '*': one(TokenKind::kStar); return util::OkStatus();
      case '/': one(TokenKind::kSlash); return util::OkStatus();
      case '@': one(TokenKind::kAt); return util::OkStatus();
      case '^': one(TokenKind::kCaret); return util::OkStatus();
      default:
        return ParseError(util::StrCat("unexpected character '", c,
                                       "' at line ", line_, " column ",
                                       column_));
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace lbtrust::datalog
