#ifndef LBTRUST_DATALOG_MAGIC_H_
#define LBTRUST_DATALOG_MAGIC_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace lbtrust::datalog {

/// Magic-sets transformation (Bancilhon/Maier/Sagiv/Ullman — the paper's
/// [6], named in §7 as the planned bridge between the top-down evaluation
/// access-control languages use and the engine's bottom-up fixpoint).
///
/// Given a rule set and a query atom whose constant arguments define the
/// demand, produces a demand-driven program: adorned copies of the reached
/// rules (`p__bf` for p queried with first argument bound), magic
/// predicates that seed and propagate demand, and guards so bottom-up
/// evaluation derives only tuples relevant to the query.
struct MagicProgram {
  /// Transformed rules (magic + guarded adorned rules), ready to install
  /// into a workspace holding the original EDB.
  std::vector<Rule> rules;
  /// The demand seed: assert `seed_pred(seed_args...)` before Fixpoint().
  std::string seed_pred;
  Tuple seed_args;
  /// Read answers from this adorned predicate (same arity as the query).
  std::string answer_pred;
};

/// Restrictions (documented subset): aggregates are not transformed, and
/// negated / builtin literals pass through untransformed (they never carry
/// demand). Rules must be installable (single head, no loose meta
/// patterns).
util::Result<MagicProgram> MagicSetTransform(
    const std::vector<const Rule*>& rules, const Atom& query);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_MAGIC_H_
