#include "datalog/eval.h"

#include <algorithm>
#include <set>

#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::datalog {

using util::Result;
using util::Status;

Relation* RelationStore::GetOrCreate(const std::string& name, size_t arity) {
  auto it = rels_.find(name);
  if (it == rels_.end()) {
    it = rels_.emplace(name, Relation(arity)).first;
  }
  return &it->second;
}

Relation* RelationStore::Get(const std::string& name) {
  auto it = rels_.find(name);
  return it == rels_.end() ? nullptr : &it->second;
}

const Relation* RelationStore::Get(const std::string& name) const {
  auto it = rels_.find(name);
  return it == rels_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

namespace {

// Collects every variable name in a term, descending into quoted code
// (pattern variables share the enclosing rule's scope, §3.3).
void CollectDeep(const Term& t, std::vector<std::string>* out);

void CollectDeepAtom(const Atom& a, std::vector<std::string>* out) {
  if (a.meta_atom) {
    out->push_back(a.star ? StarKey(a.predicate) : a.predicate);
    return;
  }
  if (a.meta_functor) out->push_back(a.predicate);
  if (a.partition) CollectDeep(*a.partition, out);
  for (const Term& t : a.args) CollectDeep(t, out);
}

void CollectDeepRule(const Rule& r, std::vector<std::string>* out) {
  for (const Atom& h : r.heads) CollectDeepAtom(h, out);
  for (const Literal& l : r.body) CollectDeepAtom(l.atom, out);
  if (r.aggregate.has_value()) {
    out->push_back(r.aggregate->result_var);
    out->push_back(r.aggregate->input_var);
  }
}

void CollectDeep(const Term& t, std::vector<std::string>* out) {
  switch (t.kind) {
    case Term::Kind::kVariable:
      out->push_back(t.var);
      return;
    case Term::Kind::kStarVar:
      out->push_back(StarKey(t.var));
      return;
    case Term::Kind::kExpr:
      CollectDeep(*t.lhs, out);
      CollectDeep(*t.rhs, out);
      return;
    case Term::Kind::kPartRef:
      CollectDeep(*t.part_key, out);
      return;
    case Term::Kind::kConstant:
      if (t.value.kind() == ValueKind::kCode) {
        const CodeValue& code = t.value.AsCode();
        switch (code.what) {
          case CodeValue::What::kRule:
            CollectDeepRule(*code.rule, out);
            break;
          case CodeValue::What::kAtom:
            CollectDeepAtom(*code.atom, out);
            break;
          case CodeValue::What::kTerm:
            CollectDeep(*code.term, out);
            break;
          default:
            break;
        }
      }
      return;
    case Term::Kind::kMe:
      return;
  }
}

// Variables that occur *outside* quoted code (must be bound for heads).
void CollectShallow(const Term& t, std::vector<std::string>* out) {
  switch (t.kind) {
    case Term::Kind::kVariable:
    case Term::Kind::kStarVar:
      out->push_back(t.var);
      return;
    case Term::Kind::kExpr:
      CollectShallow(*t.lhs, out);
      CollectShallow(*t.rhs, out);
      return;
    case Term::Kind::kPartRef:
      CollectShallow(*t.part_key, out);
      return;
    default:
      return;
  }
}

CompiledArg CompileArg(const Term& t, VarTable* vars) {
  CompiledArg arg;
  arg.term = CloneTerm(t);
  std::vector<std::string> deep;
  CollectDeep(t, &deep);
  for (const std::string& name : deep) {
    arg.term_slots.push_back(vars->Intern(name));
  }
  if (deep.empty()) {
    arg.kind = CompiledArg::Kind::kConst;
    Bindings empty;
    VarTable no_vars;
    Result<Value> v = EvalGroundTerm(t, no_vars, empty);
    // Ground terms always evaluate (code stays code; arithmetic folds).
    arg.constant = v.ok() ? *v : Value();
    return arg;
  }
  if (t.is_variable()) {
    arg.kind = CompiledArg::Kind::kVar;
    arg.slot = vars->Intern(t.var);
    return arg;
  }
  // Arithmetic can only check; patterns (quoted code, partition refs,
  // star vars) bind their variables on match.
  arg.kind = (t.kind == Term::Kind::kExpr) ? CompiledArg::Kind::kExpr
                                           : CompiledArg::Kind::kPattern;
  return arg;
}

std::vector<CompiledArg> CompileAtomCols(const Atom& atom, VarTable* vars) {
  std::vector<CompiledArg> cols;
  cols.reserve(atom.Arity());
  if (atom.partition) cols.push_back(CompileArg(*atom.partition, vars));
  for (const Term& t : atom.args) cols.push_back(CompileArg(t, vars));
  return cols;
}

// Greedy scheduling -------------------------------------------------------

struct SchedState {
  std::vector<bool> bound;  // per slot
  bool IsBound(int slot) const {
    return slot >= 0 && slot < static_cast<int>(bound.size()) && bound[slot];
  }
  void Bind(int slot) {
    if (slot >= static_cast<int>(bound.size())) bound.resize(slot + 1, false);
    bound[slot] = true;
  }
};

bool ArgGround(const CompiledArg& arg, const SchedState& st) {
  if (arg.kind == CompiledArg::Kind::kConst) return true;
  for (int slot : arg.term_slots) {
    if (!st.IsBound(slot)) return false;
  }
  return true;
}

// Slots a literal guarantees to bind when it succeeds.
void BindLiteralOutputs(const CompiledLiteral& lit, SchedState* st) {
  switch (lit.kind) {
    case CompiledLiteral::Kind::kRelation:
      for (const CompiledArg& c : lit.cols) {
        if (c.kind == CompiledArg::Kind::kVar ||
            c.kind == CompiledArg::Kind::kPattern) {
          for (int slot : c.term_slots) st->Bind(slot);
        }
      }
      return;
    case CompiledLiteral::Kind::kEquality:
    case CompiledLiteral::Kind::kBuiltin:
      for (const CompiledArg& c : lit.cols) {
        for (int slot : c.term_slots) st->Bind(slot);
      }
      return;
    case CompiledLiteral::Kind::kNegation:
      return;
  }
}

// Variables occurring in literals other than `skip` or in the head.
std::set<int> SlotsUsedElsewhere(const CompiledRule& cr, size_t skip) {
  std::set<int> used;
  for (size_t i = 0; i < cr.body.size(); ++i) {
    if (i == skip) continue;
    for (const CompiledArg& c : cr.body[i].cols) {
      used.insert(c.term_slots.begin(), c.term_slots.end());
    }
  }
  for (const CompiledArg& c : cr.head_cols) {
    used.insert(c.term_slots.begin(), c.term_slots.end());
  }
  return used;
}

// Returns a negative score when not schedulable.
int ScheduleScore(const CompiledRule& cr, size_t idx, const SchedState& st) {
  const CompiledLiteral& lit = cr.body[idx];
  switch (lit.kind) {
    case CompiledLiteral::Kind::kEquality: {
      bool g0 = ArgGround(lit.cols[0], st);
      bool g1 = ArgGround(lit.cols[1], st);
      // Pattern sides can consume a ground other side; expressions cannot
      // be inverted.
      if (g0 && g1) return 3000;
      if (g0 && lit.cols[1].kind != CompiledArg::Kind::kExpr) return 2900;
      if (g1 && lit.cols[0].kind != CompiledArg::Kind::kExpr) return 2900;
      return -1;
    }
    case CompiledLiteral::Kind::kBuiltin: {
      if (lit.negated) {
        for (const CompiledArg& c : lit.cols) {
          if (!ArgGround(c, st)) return -1;
        }
        return 2500;
      }
      for (const std::string& mode : lit.builtin->modes) {
        bool ok = true;
        for (size_t i = 0; i < mode.size(); ++i) {
          if (mode[i] == 'b' && !ArgGround(lit.cols[i], st)) {
            ok = false;
            break;
          }
        }
        if (ok) return 2500;
      }
      return -1;
    }
    case CompiledLiteral::Kind::kNegation: {
      // Schedulable when every variable shared with the rest of the rule
      // is bound; purely local variables act as wildcards.
      std::set<int> elsewhere = SlotsUsedElsewhere(cr, idx);
      for (const CompiledArg& c : lit.cols) {
        for (int slot : c.term_slots) {
          if (!st.IsBound(slot) && elsewhere.count(slot)) return -1;
        }
      }
      return 2400;
    }
    case CompiledLiteral::Kind::kRelation: {
      int bound_cols = 0;
      for (const CompiledArg& c : lit.cols) {
        if (c.kind == CompiledArg::Kind::kExpr && !ArgGround(c, st)) {
          return -1;  // cannot match through arithmetic
        }
        if (ArgGround(c, st)) ++bound_cols;
      }
      return 1000 + 50 * bound_cols;
    }
  }
  return -1;
}

Result<std::vector<int>> ScheduleOrder(const CompiledRule& cr,
                                       int forced_first) {
  std::vector<int> order;
  std::vector<bool> done(cr.body.size(), false);
  SchedState st;
  st.bound.resize(cr.vars.size(), false);
  if (forced_first >= 0) {
    order.push_back(forced_first);
    done[static_cast<size_t>(forced_first)] = true;
    BindLiteralOutputs(cr.body[static_cast<size_t>(forced_first)], &st);
  }
  while (order.size() < cr.body.size()) {
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < cr.body.size(); ++i) {
      if (done[i]) continue;
      int score = ScheduleScore(cr, i, st);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0 || best_score < 0) {
      return util::UnsafeProgram(util::StrCat(
          "no safe evaluation order for rule: ", PrintRule(cr.source)));
    }
    order.push_back(best);
    done[static_cast<size_t>(best)] = true;
    BindLiteralOutputs(cr.body[static_cast<size_t>(best)], &st);
  }
  return order;
}

}  // namespace

Result<std::unique_ptr<CompiledRule>> CompileRule(
    const Rule& rule, const BuiltinRegistry& builtins) {
  LB_RETURN_IF_ERROR(ValidateInstallableRule(rule));
  auto cr = std::make_unique<CompiledRule>();
  cr->source = CloneRule(rule);
  cr->agg = rule.aggregate;

  const Atom& head = rule.heads[0];
  cr->head_pred = head.predicate;
  cr->head_cols = CompileAtomCols(head, &cr->vars);

  for (const Literal& lit : rule.body) {
    CompiledLiteral cl;
    cl.pred = lit.atom.predicate;
    cl.negated = lit.negated;
    cl.cols = CompileAtomCols(lit.atom, &cr->vars);
    if (cl.pred == "=" && !lit.negated) {
      cl.kind = CompiledLiteral::Kind::kEquality;
    } else if (const BuiltinDef* def = builtins.Find(cl.pred)) {
      if (cl.pred == "=") {
        // Negated equality behaves as '!='.
        cl.kind = CompiledLiteral::Kind::kBuiltin;
        cl.builtin = builtins.Find("!=");
        cl.negated = false;
      } else {
        cl.kind = CompiledLiteral::Kind::kBuiltin;
        cl.builtin = def;
      }
      if (cl.cols.size() != cl.builtin->arity) {
        return util::TypeError(util::StrCat("builtin '", cl.pred,
                                            "' expects ", cl.builtin->arity,
                                            " arguments"));
      }
    } else if (lit.negated) {
      cl.kind = CompiledLiteral::Kind::kNegation;
    } else {
      cl.kind = CompiledLiteral::Kind::kRelation;
    }
    if (cl.kind == CompiledLiteral::Kind::kRelation) {
      cr->relation_positions.push_back(static_cast<int>(cr->body.size()));
    }
    cr->body.push_back(std::move(cl));
  }

  LB_ASSIGN_OR_RETURN(cr->order_full, ScheduleOrder(*cr, -1));
  for (int pos : cr->relation_positions) {
    LB_ASSIGN_OR_RETURN(std::vector<int> order, ScheduleOrder(*cr, pos));
    cr->order_delta[pos] = std::move(order);
  }

  // Safety: head variables outside quoted code must be bound by the body.
  SchedState st;
  st.bound.resize(cr->vars.size(), false);
  for (int idx : cr->order_full) {
    BindLiteralOutputs(cr->body[static_cast<size_t>(idx)], &st);
  }
  if (cr->agg.has_value()) {
    cr->agg_input_slot = cr->vars.Find(cr->agg->input_var);
    if (cr->agg_input_slot < 0 || !st.IsBound(cr->agg_input_slot)) {
      return util::UnsafeProgram(util::StrCat(
          "aggregate input variable '", cr->agg->input_var,
          "' is not bound by the body: ", PrintRule(rule)));
    }
    cr->agg_result_slot = cr->vars.Find(cr->agg->result_var);
    if (cr->agg_result_slot >= 0 && st.IsBound(cr->agg_result_slot)) {
      return util::UnsafeProgram(util::StrCat(
          "aggregate result variable '", cr->agg->result_var,
          "' must not be bound by the body: ", PrintRule(rule)));
    }
    if (cr->agg_result_slot < 0) cr->agg_result_slot = cr->vars.Intern(cr->agg->result_var);
  }
  std::vector<std::string> head_vars;
  if (head.partition) CollectShallow(*head.partition, &head_vars);
  for (const Term& t : head.args) CollectShallow(t, &head_vars);
  for (const std::string& name : head_vars) {
    int slot = cr->vars.Find(name);
    bool is_agg_result =
        cr->agg.has_value() && name == cr->agg->result_var;
    if (!is_agg_result && (slot < 0 || !st.IsBound(slot))) {
      return util::UnsafeProgram(util::StrCat(
          "head variable '", name, "' is not bound by the body: ",
          PrintRule(rule)));
    }
  }
  return cr;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

// Grounds a *head* column. Quoted-code constants are always constructible:
// bound meta-variables substitute in, unbound variables legitimately remain
// variables of the constructed code (e.g. del1's generated rule).
bool TryGroundHeadArg(const CompiledArg& arg, const VarTable& vars,
                      const Bindings& b, Value* out) {
  if (arg.kind == CompiledArg::Kind::kPattern &&
      arg.term.kind == Term::Kind::kConstant) {
    Result<Value> v = EvalGroundTerm(arg.term, vars, b);
    if (!v.ok()) return false;
    *out = std::move(*v);
    return true;
  }
  if (arg.kind == CompiledArg::Kind::kConst) {
    *out = arg.constant;
    return true;
  }
  if (arg.kind == CompiledArg::Kind::kVar) {
    if (!b.IsBound(arg.slot)) return false;
    *out = b.slots[arg.slot];
    return true;
  }
  for (int slot : arg.term_slots) {
    if (!b.IsBound(slot)) return false;
  }
  Result<Value> v = EvalGroundTerm(arg.term, vars, b);
  if (!v.ok()) return false;
  *out = std::move(*v);
  return true;
}

// Tries to evaluate a column to a ground value under current bindings.
bool TryGroundArg(const CompiledArg& arg, const VarTable& vars,
                  const Bindings& b, Value* out) {
  switch (arg.kind) {
    case CompiledArg::Kind::kConst:
      *out = arg.constant;
      return true;
    case CompiledArg::Kind::kVar:
      if (b.IsBound(arg.slot)) {
        *out = b.slots[arg.slot];
        return true;
      }
      return false;
    case CompiledArg::Kind::kPattern:
    case CompiledArg::Kind::kExpr: {
      for (int slot : arg.term_slots) {
        if (!b.IsBound(slot)) return false;
      }
      Result<Value> v = EvalGroundTerm(arg.term, vars, b);
      if (!v.ok()) return false;
      *out = std::move(*v);
      return true;
    }
  }
  return false;
}

}  // namespace

Status Evaluator::Step(ExecContext* ctx, size_t oi) {
  if (oi == ctx->order->size()) return ctx->on_solution();
  const CompiledLiteral& lit =
      ctx->rule->body[static_cast<size_t>((*ctx->order)[oi])];
  bool is_delta = (*ctx->order)[oi] == ctx->delta_pos;
  switch (lit.kind) {
    case CompiledLiteral::Kind::kRelation:
      return EvalRelation(ctx, oi, lit);
    case CompiledLiteral::Kind::kNegation:
      return EvalNegation(ctx, oi, lit);
    case CompiledLiteral::Kind::kEquality:
      return EvalEquality(ctx, oi, lit);
    case CompiledLiteral::Kind::kBuiltin:
      return EvalBuiltin(ctx, oi, lit);
  }
  (void)is_delta;
  return util::Internal("unknown literal kind");
}

Status Evaluator::EvalRelation(ExecContext* ctx, size_t oi,
                               const CompiledLiteral& lit) {
  int body_idx = (*ctx->order)[oi];
  Relation* rel = (body_idx == ctx->delta_pos)
                      ? ctx->delta_rel
                      : store_->GetOrCreate(lit.pred, lit.cols.size());
  if (rel->arity() != lit.cols.size()) {
    return util::TypeError(util::StrCat("predicate '", lit.pred, "' used with ",
                                        lit.cols.size(), " columns, stored as ",
                                        rel->arity()));
  }
  Bindings& b = ctx->bindings;
  const VarTable& vars = ctx->rule->vars;

  uint64_t mask = 0;
  Tuple key;
  std::vector<size_t> open;  // unbound column indices
  for (size_t i = 0; i < lit.cols.size(); ++i) {
    Value v;
    if (TryGroundArg(lit.cols[i], vars, b, &v)) {
      mask |= uint64_t{1} << i;
      key.push_back(std::move(v));
    } else {
      open.push_back(i);
    }
  }

  auto try_row = [&](const Tuple& row) -> Status {
    Trail trail;
    bool ok = true;
    for (size_t i : open) {
      if (!UnifyTermValue(lit.cols[i].term, row[i], &ctx->rule->vars, &b,
                          &trail)) {
        ok = false;
        break;
      }
    }
    Status st = util::OkStatus();
    if (ok) {
      if (ctx->premises != nullptr) ctx->premises->emplace_back(lit.pred, row);
      st = Step(ctx, oi + 1);
      if (ctx->premises != nullptr) ctx->premises->pop_back();
    }
    UndoTrail(trail, &b);
    return st;
  };

  if (mask != 0) {
    // Lookup returns row ids valid for the relation's current rows; the
    // callee may insert into *other* relations but never into `rel` while
    // we iterate (head predicates are never read in the same traversal
    // thanks to delta separation) — except self-recursive rules hitting the
    // head relation. Snapshot ids defensively.
    std::vector<uint32_t> ids = rel->Lookup(mask, key);
    for (uint32_t id : ids) {
      Tuple row = rel->rows()[id];  // copy: insertions may reallocate
      LB_RETURN_IF_ERROR(try_row(row));
    }
  } else {
    size_t n = rel->size();  // snapshot: rows appended during recursion are
                             // handled by later semi-naive rounds
    for (size_t i = 0; i < n; ++i) {
      Tuple row = rel->rows()[i];
      LB_RETURN_IF_ERROR(try_row(row));
    }
  }
  return util::OkStatus();
}

Status Evaluator::EvalNegation(ExecContext* ctx, size_t oi,
                               const CompiledLiteral& lit) {
  Relation* rel = store_->GetOrCreate(lit.pred, lit.cols.size());
  Bindings& b = ctx->bindings;
  const VarTable& vars = ctx->rule->vars;

  uint64_t mask = 0;
  Tuple key;
  std::vector<size_t> open_patterns;
  for (size_t i = 0; i < lit.cols.size(); ++i) {
    Value v;
    if (TryGroundArg(lit.cols[i], vars, b, &v)) {
      mask |= uint64_t{1} << i;
      key.push_back(std::move(v));
    } else if (lit.cols[i].kind == CompiledArg::Kind::kPattern) {
      open_patterns.push_back(i);
    }
    // Unbound kVar columns are wildcards (∄ semantics, e.g. dd4's
    // `!delegates(me,_,P)` before P's delegation exists).
  }

  bool found = false;
  if (open_patterns.empty()) {
    found = (mask == 0) ? !rel->rows().empty() : rel->Matches(mask, key);
  } else {
    const std::vector<uint32_t>* ids = nullptr;
    std::vector<uint32_t> all;
    if (mask != 0) {
      ids = &rel->Lookup(mask, key);
    } else {
      all.resize(rel->size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
      ids = &all;
    }
    for (uint32_t id : *ids) {
      const Tuple& row = rel->rows()[id];
      Trail trail;
      bool ok = true;
      for (size_t i : open_patterns) {
        if (!UnifyTermValue(lit.cols[i].term, row[i], &ctx->rule->vars, &b,
                            &trail)) {
          ok = false;
          break;
        }
      }
      UndoTrail(trail, &b);
      if (ok) {
        found = true;
        break;
      }
    }
  }
  if (found) return util::OkStatus();  // negation fails: no solutions here
  return Step(ctx, oi + 1);
}

Status Evaluator::EvalEquality(ExecContext* ctx, size_t oi,
                               const CompiledLiteral& lit) {
  Bindings& b = ctx->bindings;
  const VarTable& vars = ctx->rule->vars;
  Value v0, v1;
  bool g0 = TryGroundArg(lit.cols[0], vars, b, &v0);
  bool g1 = TryGroundArg(lit.cols[1], vars, b, &v1);
  if (g0 && g1) {
    if (v0 == v1) return Step(ctx, oi + 1);
    return util::OkStatus();
  }
  const CompiledArg* pattern = nullptr;
  const Value* value = nullptr;
  if (g0) {
    pattern = &lit.cols[1];
    value = &v0;
  } else if (g1) {
    pattern = &lit.cols[0];
    value = &v1;
  } else {
    // Both sides open (possible only via deferred pattern bindings): no
    // match rather than an error — mirrors EvalBuiltin.
    return util::OkStatus();
  }
  Trail trail;
  Status st = util::OkStatus();
  if (UnifyTermValue(pattern->term, *value, &ctx->rule->vars, &b, &trail)) {
    st = Step(ctx, oi + 1);
  }
  UndoTrail(trail, &b);
  return st;
}

Status Evaluator::EvalBuiltin(ExecContext* ctx, size_t oi,
                              const CompiledLiteral& lit) {
  Bindings& b = ctx->bindings;
  const VarTable& vars = ctx->rule->vars;
  std::vector<std::optional<Value>> args(lit.cols.size());
  for (size_t i = 0; i < lit.cols.size(); ++i) {
    Value v;
    if (TryGroundArg(lit.cols[i], vars, b, &v)) args[i] = std::move(v);
  }
  // Mode check (compile guaranteed one exists given schedule, but builtins
  // may also be reached through EvalQuery with user-chosen bindings).
  bool mode_ok = false;
  for (const std::string& mode : lit.builtin->modes) {
    bool ok = true;
    for (size_t i = 0; i < mode.size() && i < args.size(); ++i) {
      if (mode[i] == 'b' && !args[i].has_value()) {
        ok = false;
        break;
      }
    }
    if (ok) {
      mode_ok = true;
      break;
    }
  }
  if (!mode_ok && !lit.negated) {
    // The schedule guarantees bindability in the common case, but deferred
    // pattern-variable bindings (pattern var matched against a target
    // variable) can leave arguments unbound at runtime; the builtin then
    // simply does not match.
    return util::OkStatus();
  }

  if (lit.negated) {
    bool any = false;
    LB_RETURN_IF_ERROR(lit.builtin->fn(args, [&](const Tuple&) { any = true; }));
    if (any) return util::OkStatus();
    return Step(ctx, oi + 1);
  }

  Status inner = util::OkStatus();
  LB_RETURN_IF_ERROR(lit.builtin->fn(args, [&](const Tuple& solution) {
    if (!inner.ok()) return;
    if (solution.size() != lit.cols.size()) {
      inner = util::Internal(util::StrCat("builtin '", lit.pred,
                                          "' emitted wrong arity"));
      return;
    }
    Trail trail;
    bool ok = true;
    for (size_t i = 0; i < lit.cols.size(); ++i) {
      if (!UnifyTermValue(lit.cols[i].term, solution[i], &ctx->rule->vars, &b,
                          &trail)) {
        ok = false;
        break;
      }
    }
    if (ok) inner = Step(ctx, oi + 1);
    UndoTrail(trail, &b);
  }));
  return inner;
}

Status Evaluator::EvalRuleOnce(CompiledRule* rule, int delta_pos,
                               Relation* delta_rel,
                               const std::function<Status(Tuple)>& emit) {
  ExecContext ctx;
  ctx.rule = rule;
  ctx.delta_pos = delta_pos;
  ctx.delta_rel = delta_rel;
  ctx.order = (delta_pos >= 0) ? &rule->order_delta.at(delta_pos)
                               : &rule->order_full;
  ctx.bindings.EnsureSize(rule->vars.size());
  std::vector<std::pair<std::string, Tuple>> premises;
  if (provenance_ != nullptr && !rule->agg.has_value()) {
    ctx.premises = &premises;
  }
  emitting_rule_ = rule;
  emitting_premises_ = ctx.premises;

  if (rule->agg.has_value()) {
    // Aggregate over the *set* of body solutions (deduplicated on the full
    // variable assignment — standard bag-of-distinct-substitutions
    // semantics): count folds distinct input values; total/min/max fold the
    // input of every distinct solution, so two bureaus with equal weight
    // both contribute to a weighted threshold (§4.2.2).
    std::set<Tuple> seen_solutions;
    std::map<Tuple, std::vector<Value>> by_group;
    ctx.on_solution = [&]() -> Status {
      Tuple group;
      group.reserve(rule->head_cols.size());
      for (const CompiledArg& col : rule->head_cols) {
        if (col.kind == CompiledArg::Kind::kVar &&
            col.slot == rule->agg_result_slot) {
          continue;  // computed below
        }
        Value v;
        if (!TryGroundHeadArg(col, rule->vars, ctx.bindings, &v)) {
          return util::UnsafeProgram("unbound aggregate group column");
        }
        group.push_back(std::move(v));
      }
      if (!ctx.bindings.IsBound(rule->agg_input_slot)) {
        return util::UnsafeProgram("unbound aggregate input");
      }
      if (!seen_solutions.insert(ctx.bindings.slots).second) {
        return util::OkStatus();
      }
      by_group[std::move(group)].push_back(
          ctx.bindings.slots[rule->agg_input_slot]);
      return util::OkStatus();
    };
    LB_RETURN_IF_ERROR(Step(&ctx, 0));

    for (const auto& [group, inputs] : by_group) {
      Value result;
      switch (rule->agg->fn) {
        case Aggregate::Fn::kCount: {
          std::set<Value> distinct(inputs.begin(), inputs.end());
          result = Value::Int(static_cast<int64_t>(distinct.size()));
          break;
        }
        case Aggregate::Fn::kTotal: {
          bool all_int = true;
          double sum = 0;
          int64_t isum = 0;
          for (const Value& v : inputs) {
            if (!v.IsNumeric()) {
              return util::TypeError("total() over non-numeric values");
            }
            if (v.kind() == ValueKind::kInt) {
              isum += v.AsInt();
            } else {
              all_int = false;
            }
            sum += v.NumericValue();
          }
          result = all_int ? Value::Int(isum) : Value::Double(sum);
          break;
        }
        case Aggregate::Fn::kMin:
        case Aggregate::Fn::kMax: {
          result = inputs[0];
          for (const Value& v : inputs) {
            bool take = rule->agg->fn == Aggregate::Fn::kMin ? (v < result)
                                                             : (result < v);
            if (take) result = v;
          }
          break;
        }
      }
      // Rebuild the head tuple: group columns in order, result in place.
      Tuple out;
      size_t gi = 0;
      for (const CompiledArg& col : rule->head_cols) {
        if (col.kind == CompiledArg::Kind::kVar &&
            col.slot == rule->agg_result_slot) {
          out.push_back(result);
        } else {
          out.push_back(group[gi++]);
        }
      }
      LB_RETURN_IF_ERROR(emit(std::move(out)));
    }
    return util::OkStatus();
  }

  ctx.on_solution = [&]() -> Status {
    Tuple out;
    out.reserve(rule->head_cols.size());
    for (const CompiledArg& col : rule->head_cols) {
      Value v;
      if (!TryGroundHeadArg(col, rule->vars, ctx.bindings, &v)) {
        return util::UnsafeProgram(
            util::StrCat("unbound head column in rule: ",
                         PrintRule(rule->source)));
      }
      out.push_back(std::move(v));
    }
    return emit(std::move(out));
  };
  return Step(&ctx, 0);
}

Status Evaluator::Run(const std::vector<CompiledRule*>& rules,
                      const Stratification& strat, const Limits& limits,
                      bool naive) {
  size_t total_tuples = 0;

  for (size_t level = 0; level < strat.strata.size(); ++level) {
    std::vector<CompiledRule*> stratum_rules;
    for (CompiledRule* r : rules) {
      auto it = strat.level.find(r->head_pred);
      if (it != strat.level.end() &&
          it->second == static_cast<int>(level)) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    // Delta per in-stratum predicate.
    std::map<std::string, Relation> delta;
    auto in_stratum = [&](const std::string& pred) {
      auto it = strat.level.find(pred);
      return it != strat.level.end() &&
             it->second == static_cast<int>(level);
    };

    auto emit_into = [&](const std::string& pred, size_t arity, Tuple t,
                         std::map<std::string, Relation>* next_delta)
        -> Status {
      Relation* full = store_->GetOrCreate(pred, arity);
      if (full->arity() != t.size()) {
        return util::TypeError(util::StrCat("arity mismatch inserting into '",
                                            pred, "'"));
      }
      if (provenance_ != nullptr && emitting_rule_ != nullptr) {
        Derivation d;
        d.kind = emitting_rule_->agg.has_value()
                     ? Derivation::Kind::kAggregate
                     : Derivation::Kind::kRule;
        d.rule_canon = PrintRule(emitting_rule_->source);
        if (emitting_premises_ != nullptr) d.premises = *emitting_premises_;
        provenance_->Record(pred, t, std::move(d));
      }
      if (full->Insert(t)) {
        ++total_tuples;
        if (total_tuples > limits.max_tuples) {
          return util::Internal(
              "fixpoint exceeded tuple budget (diverging program?)");
        }
        auto [it, inserted] = next_delta->try_emplace(pred, Relation(t.size()));
        it->second.Insert(std::move(t));
      }
      return util::OkStatus();
    };

    // Round 0: naive evaluation of every rule in the stratum.
    for (CompiledRule* r : stratum_rules) {
      LB_RETURN_IF_ERROR(EvalRuleOnce(r, -1, nullptr, [&](Tuple t) {
        return emit_into(r->head_pred, r->head_cols.size(), std::move(t),
                         &delta);
      }));
    }

    // Recursive rounds.
    size_t rounds = 0;
    while (!delta.empty()) {
      if (++rounds > limits.max_rounds) {
        return util::Internal("fixpoint exceeded round budget");
      }
      std::map<std::string, Relation> next_delta;
      for (CompiledRule* r : stratum_rules) {
        if (r->agg.has_value()) continue;  // agg bodies are lower strata
        if (naive) {
          bool recursive = false;
          for (int pos : r->relation_positions) {
            if (in_stratum(r->body[static_cast<size_t>(pos)].pred)) {
              recursive = true;
              break;
            }
          }
          if (!recursive) continue;
          LB_RETURN_IF_ERROR(EvalRuleOnce(r, -1, nullptr, [&](Tuple t) {
            return emit_into(r->head_pred, r->head_cols.size(), std::move(t),
                             &next_delta);
          }));
          continue;
        }
        for (int pos : r->relation_positions) {
          const std::string& pred = r->body[static_cast<size_t>(pos)].pred;
          if (!in_stratum(pred)) continue;
          auto dit = delta.find(pred);
          if (dit == delta.end() || dit->second.empty()) continue;
          LB_RETURN_IF_ERROR(
              EvalRuleOnce(r, pos, &dit->second, [&](Tuple t) {
                return emit_into(r->head_pred, r->head_cols.size(),
                                 std::move(t), &next_delta);
              }));
        }
      }
      delta = std::move(next_delta);
    }
  }
  return util::OkStatus();
}

Status Evaluator::RunIncremental(const std::vector<CompiledRule*>& rules,
                                 const Stratification& strat,
                                 const Limits& limits,
                                 std::map<std::string, Relation> seed) {
  size_t total_tuples = 0;
  // Predicates changed so far: the EDB seed plus everything derived by
  // lower strata during this call. Entries drive the round-0 delta joins
  // of each stratum exactly once.
  std::map<std::string, Relation>& accumulated = seed;

  for (size_t level = 0; level < strat.strata.size(); ++level) {
    std::vector<CompiledRule*> stratum_rules;
    for (CompiledRule* r : rules) {
      auto it = strat.level.find(r->head_pred);
      if (it != strat.level.end() &&
          it->second == static_cast<int>(level)) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    auto in_stratum = [&](const std::string& pred) {
      auto it = strat.level.find(pred);
      return it != strat.level.end() &&
             it->second == static_cast<int>(level);
    };

    // Everything this stratum derives, for the benefit of higher strata.
    std::map<std::string, Relation> stratum_new;

    auto emit_into = [&](const std::string& pred, size_t arity, Tuple t,
                         std::map<std::string, Relation>* next_delta)
        -> Status {
      Relation* full = store_->GetOrCreate(pred, arity);
      if (full->arity() != t.size()) {
        return util::TypeError(util::StrCat("arity mismatch inserting into '",
                                            pred, "'"));
      }
      if (full->Insert(t)) {
        ++total_tuples;
        if (total_tuples > limits.max_tuples) {
          return util::Internal(
              "fixpoint exceeded tuple budget (diverging program?)");
        }
        auto [sit, sfresh] = stratum_new.try_emplace(pred, Relation(t.size()));
        (void)sfresh;
        sit->second.Insert(t);
        auto [it, fresh] = next_delta->try_emplace(pred, Relation(t.size()));
        (void)fresh;
        it->second.Insert(std::move(t));
      }
      return util::OkStatus();
    };

    // Round 0: drive every rule once per changed body relation. Non-delta
    // positions read the full (already extended) store, so combinations of
    // several changed relations are covered; set semantics dedups the
    // overlap. Rules with no changed body relation are skipped — their
    // consequences are already in the store. Aggregate rules never reach
    // this path (Workspace::DeltaFixpointEligible falls back to a full
    // rebuild when a delta can feed an aggregate).
    std::map<std::string, Relation> delta;
    for (CompiledRule* r : stratum_rules) {
      if (r->agg.has_value()) continue;
      for (int pos : r->relation_positions) {
        const std::string& pred = r->body[static_cast<size_t>(pos)].pred;
        auto ait = accumulated.find(pred);
        if (ait == accumulated.end() || ait->second.empty()) continue;
        LB_RETURN_IF_ERROR(EvalRuleOnce(r, pos, &ait->second, [&](Tuple t) {
          return emit_into(r->head_pred, r->head_cols.size(), std::move(t),
                           &delta);
        }));
      }
    }

    // In-stratum recursion: identical to Run()'s semi-naive rounds.
    size_t rounds = 0;
    while (!delta.empty()) {
      if (++rounds > limits.max_rounds) {
        return util::Internal("fixpoint exceeded round budget");
      }
      std::map<std::string, Relation> next_delta;
      for (CompiledRule* r : stratum_rules) {
        if (r->agg.has_value()) continue;
        for (int pos : r->relation_positions) {
          const std::string& pred = r->body[static_cast<size_t>(pos)].pred;
          if (!in_stratum(pred)) continue;
          auto dit = delta.find(pred);
          if (dit == delta.end() || dit->second.empty()) continue;
          LB_RETURN_IF_ERROR(
              EvalRuleOnce(r, pos, &dit->second, [&](Tuple t) {
                return emit_into(r->head_pred, r->head_cols.size(),
                                 std::move(t), &next_delta);
              }));
        }
      }
      delta = std::move(next_delta);
    }

    for (auto& [pred, rel] : stratum_new) {
      auto [it, fresh] = accumulated.try_emplace(pred, Relation(rel.arity()));
      (void)fresh;
      for (const Tuple& t : rel.rows()) it->second.Insert(t);
    }
  }
  return util::OkStatus();
}

Status Evaluator::EvalQuery(CompiledRule* rule,
                            const std::function<void(const Bindings&)>& cb) {
  return EvalQueryUntil(rule, [&](const Bindings& b) {
    cb(b);
    return true;
  });
}

Status Evaluator::EvalQueryUntil(CompiledRule* rule,
                                 const std::function<bool(const Bindings&)>& cb) {
  ExecContext ctx;
  ctx.rule = rule;
  ctx.delta_pos = -1;
  ctx.delta_rel = nullptr;
  ctx.order = &rule->order_full;
  ctx.bindings.EnsureSize(rule->vars.size());
  bool stopped = false;
  ctx.on_solution = [&]() -> Status {
    if (!cb(ctx.bindings)) {
      stopped = true;
      // Sentinel error: unwinds the enumeration, stripped below.
      return util::Internal("enumeration stopped");
    }
    return util::OkStatus();
  };
  Status st = Step(&ctx, 0);
  if (stopped) return util::OkStatus();
  return st;
}

}  // namespace lbtrust::datalog
